//! LU factorization with partial pivoting, and the associated solves.
//!
//! Used by the LP solver to (re)factorize basis matrices and by tests as
//! an independent path for verifying simplex arithmetic.

use crate::matrix::Matrix;
use crate::SINGULARITY_TOL;

/// Errors from [`Lu::factor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuError {
    /// The matrix is not square.
    NotSquare,
    /// A pivot fell below the singularity tolerance at the given
    /// elimination step.
    Singular {
        /// Elimination step at which no acceptable pivot existed.
        step: usize,
    },
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuError::NotSquare => write!(f, "matrix is not square"),
            LuError::Singular { step } => {
                write!(f, "matrix is singular to working precision (step {step})")
            }
        }
    }
}

impl std::error::Error for LuError {}

/// LU factorization `P·A = L·U` with partial pivoting.
///
/// `L` (unit lower-triangular) and `U` (upper-triangular) are stored
/// packed in a single matrix; `perm` records the row permutation.
#[derive(Debug, Clone)]
pub struct Lu {
    packed: Matrix,
    perm: Vec<usize>,
    /// Sign of the permutation (+1/−1), used by [`Lu::det`].
    perm_sign: f64,
}

impl Lu {
    /// Factor a square matrix with the default [`SINGULARITY_TOL`]
    /// relative pivot tolerance.
    pub fn factor(a: &Matrix) -> Result<Self, LuError> {
        Self::factor_with_tol(a, SINGULARITY_TOL)
    }

    /// Factor a square matrix, declaring singularity when a pivot falls
    /// to `tol` times the matrix's max-abs entry.
    ///
    /// [`factor`](Self::factor) is the right call for general use. A
    /// caller that pairs the factors with iterative refinement against
    /// the pristine matrix — the LP basis path, where equilibrated
    /// bases are exactly invertible but can be conditioned worse than
    /// `1/SINGULARITY_TOL` — may pass a smaller tolerance and rely on
    /// its own residual checks to judge solve quality.
    pub fn factor_with_tol(a: &Matrix, tol: f64) -> Result<Self, LuError> {
        if a.rows() != a.cols() {
            return Err(LuError::NotSquare);
        }
        let n = a.rows();
        let mut m = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let scale = m.max_abs().max(1.0);

        for k in 0..n {
            // Partial pivoting: largest |entry| in column k at/below row k.
            let mut piv = k;
            let mut piv_val = m[(k, k)].abs();
            for r in k + 1..n {
                let v = m[(r, k)].abs();
                if v > piv_val {
                    piv = r;
                    piv_val = v;
                }
            }
            if piv_val <= tol * scale {
                return Err(LuError::Singular { step: k });
            }
            if piv != k {
                m.swap_rows(piv, k);
                perm.swap(piv, k);
                perm_sign = -perm_sign;
            }
            let pivot = m[(k, k)];
            for r in k + 1..n {
                let mult = m[(r, k)] / pivot;
                m[(r, k)] = mult;
                // cubis:allow(NUM01): exact-zero sparsity skip — only a
                // bit-exact zero multiplier leaves the row untouched.
                if mult == 0.0 {
                    continue;
                }
                let (rk, rr) = m.two_rows_mut(k, r);
                for c in k + 1..n {
                    rr[c] -= mult * rk[c];
                }
            }
        }
        Ok(Self { packed: m, perm, perm_sign })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.packed.rows()
    }

    /// Solve `A·x = b`.
    ///
    /// # Panics
    /// Panics if `b.len() != self.order()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.order();
        assert_eq!(b.len(), n, "solve: rhs length mismatch");
        // Apply permutation: y = P·b.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit L.
        for r in 1..n {
            let row = self.packed.row(r);
            let mut s = x[r];
            for c in 0..r {
                s -= row[c] * x[c];
            }
            x[r] = s;
        }
        // Back substitution with U.
        for r in (0..n).rev() {
            let row = self.packed.row(r);
            let mut s = x[r];
            for c in r + 1..n {
                s -= row[c] * x[c];
            }
            x[r] = s / row[r];
        }
        x
    }

    /// Solve `Aᵀ·x = b`.
    ///
    /// # Panics
    /// Panics if `b.len() != self.order()`.
    pub fn solve_transposed(&self, b: &[f64]) -> Vec<f64> {
        let n = self.order();
        assert_eq!(b.len(), n, "solve_transposed: rhs length mismatch");
        let mut x = b.to_vec();
        // Solve Uᵀ·z = b (forward, Uᵀ is lower-triangular).
        for r in 0..n {
            let mut s = x[r];
            for c in 0..r {
                s -= self.packed[(c, r)] * x[c];
            }
            x[r] = s / self.packed[(r, r)];
        }
        // Solve Lᵀ·w = z (backward, Lᵀ is unit upper-triangular).
        for r in (0..n).rev() {
            let mut s = x[r];
            for c in r + 1..n {
                s -= self.packed[(c, r)] * x[c];
            }
            x[r] = s;
        }
        // Undo permutation: x = Pᵀ·w.
        let mut out = vec![0.0; n];
        for (i, &p) in self.perm.iter().enumerate() {
            out[p] = x[i];
        }
        out
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.order() {
            d *= self.packed[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.mul_vec(x);
        ax.iter().zip(b).map(|(l, r)| (l - r).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn solves_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[5.0, 10.0]);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[3.0, 7.0]);
        assert_eq!(x, vec![7.0, 3.0]);
        assert!((lu.det() - -1.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::factor(&a), Err(LuError::Singular { .. })));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(Lu::factor(&a).unwrap_err(), LuError::NotSquare);
    }

    #[test]
    fn transposed_solve_agrees_with_explicit_transpose() {
        let a = Matrix::from_rows(&[
            &[4.0, -2.0, 1.0],
            &[3.0, 6.0, -4.0],
            &[2.0, 1.0, 8.0],
        ]);
        let b = [1.0, -2.0, 3.0];
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve_transposed(&b);
        let at = a.transpose();
        assert!(residual(&at, &x, &b) < 1e-10);
    }

    #[test]
    fn det_of_identity_is_one() {
        let lu = Lu::factor(&Matrix::identity(5)).unwrap();
        assert!((lu.det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_systems_have_small_residual() {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for n in [1usize, 2, 5, 12, 30] {
            let data: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut a = Matrix::from_vec(n, n, data);
            // Diagonal boost keeps the random matrix comfortably nonsingular.
            for i in 0..n {
                a[(i, i)] += n as f64;
            }
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let lu = Lu::factor(&a).unwrap();
            let x = lu.solve(&b);
            assert!(residual(&a, &x, &b) < 1e-9, "n={n}");
            let xt = lu.solve_transposed(&b);
            assert!(residual(&a.transpose(), &xt, &b) < 1e-9, "n={n} transposed");
        }
    }
}
