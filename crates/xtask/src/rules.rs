//! The numeric-safety lint rules.
//!
//! Every rule is a purely lexical pattern over the token stream from
//! [`crate::lexer`], scoped by file class (library / test / bench /
//! example / binary) and by `#[cfg(test)]` regions inside library
//! files. See DESIGN.md §"Static analysis" for the rationale behind
//! each rule and the `cubis:allow` escape hatch.

use crate::lexer::{TokKind, Token};
use crate::{FileClass, Finding};
use std::collections::BTreeSet;
use std::path::Path;

/// Identifier and one-line summary for each rule, used by the CLI
/// `rules` subcommand and the documentation.
pub const RULE_DOCS: &[(&str, &str)] = &[
    (
        "NUM01",
        "raw f64 `==`/`!=` against a float literal or NAN/INFINITY in library code; \
         use cubis_linalg::approx_eq (or annotate intentional exact-bit compares)",
    ),
    (
        "NUM02",
        "`.unwrap()`/`.expect()`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in \
         library code; route failures through SolveError/MilpError instead",
    ),
    (
        "NUM03",
        "NaN-hazardous comparator: `partial_cmp(..).unwrap()` or a \
         `sort_by`/`max_by`/`min_by` closure built on `partial_cmp`; use f64::total_cmp",
    ),
    (
        "CONC01",
        "`Ordering::Relaxed` atomic operation in library code; the incumbent/termination \
         protocol documents Acquire/Release — prove and annotate any relaxation",
    ),
    (
        "DET01",
        "unseeded randomness (`thread_rng`/`from_entropy`/`rand::random`/`OsRng`) outside \
         eval binaries and benches; seed a ChaCha8Rng for reproducibility",
    ),
    (
        "LINT00",
        "malformed suppression: `cubis:allow` without a justification string or naming an \
         unknown rule (not itself suppressible)",
    ),
];

/// Rule identifiers that may appear inside `cubis:allow(…)`.
pub const ALLOWABLE_RULES: &[&str] = &["NUM01", "NUM02", "NUM03", "CONC01", "DET01"];

/// Run every token-level rule over one file's token stream.
///
/// `in_test[i]` marks tokens inside `#[cfg(test)]`/`#[test]` regions of
/// library files; file-level classes (test files, benches, examples)
/// come in through `class`.
pub fn scan_tokens(
    path: &Path,
    class: FileClass,
    toks: &[Token],
    in_test: &[bool],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lib_code = |i: usize| class == FileClass::Library && !in_test[i];
    // NUM03 and DET01 guard every execution context: a NaN panic in a
    // test comparator is a flaky test, unseeded randomness anywhere but
    // the eval/bench entry points breaks reproduction runs.
    let det_exempt = matches!(class, FileClass::Bench | FileClass::EvalBinary);
    let mut num03_lines: BTreeSet<u32> = BTreeSet::new();

    for i in 0..toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if t.text == "==" || t.text == "!=" => {
                if lib_code(i) {
                    let nan_const = |k: usize| {
                        toks.get(k).is_some_and(|n| {
                            n.kind == TokKind::Ident
                                && matches!(n.text.as_str(), "NAN" | "INFINITY" | "NEG_INFINITY")
                        })
                    };
                    let floaty = |k: usize| {
                        toks.get(k).is_some_and(|n| n.kind == TokKind::Float) || nan_const(k)
                    };
                    // `x == f64::NAN` — the constant sits two tokens past `::`.
                    let qualified_nan_after = toks
                        .get(i + 1)
                        .is_some_and(|n| n.is_ident("f64") || n.is_ident("f32"))
                        && toks.get(i + 2).is_some_and(|n| n.is_punct("::"))
                        && nan_const(i + 3);
                    if (i > 0 && floaty(i - 1)) || floaty(i + 1) || qualified_nan_after {
                        findings.push(Finding::new(
                            "NUM01",
                            path,
                            t.line,
                            format!(
                                "raw float `{}` comparison; use cubis_linalg::approx_eq or \
                                 annotate the intentional exact compare",
                                t.text
                            ),
                        ));
                    }
                }
            }
            TokKind::Ident => {
                let next_is = |k: usize, p: &str| toks.get(k).is_some_and(|n| n.is_punct(p));
                // NUM02: `.unwrap()` / `.expect(`.
                if (t.text == "unwrap" || t.text == "expect")
                    && i > 0
                    && toks[i - 1].is_punct(".")
                    && next_is(i + 1, "(")
                    && lib_code(i)
                    && !follows_partial_cmp(toks, i)
                {
                    findings.push(Finding::new(
                        "NUM02",
                        path,
                        t.line,
                        format!(
                            "`.{}()` in library code; propagate a SolveError/MilpError (or \
                             annotate why this cannot fail)",
                            t.text
                        ),
                    ));
                }
                // NUM02: panic-family macros.
                if matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && next_is(i + 1, "!")
                    && lib_code(i)
                {
                    findings.push(Finding::new(
                        "NUM02",
                        path,
                        t.line,
                        format!(
                            "`{}!` in library code; return an error variant instead of aborting \
                             the solve",
                            t.text
                        ),
                    ));
                }
                // NUM03a: partial_cmp(..).unwrap()/.expect(..).
                if t.text == "partial_cmp" && next_is(i + 1, "(") {
                    if let Some(close) = matching_paren(toks, i + 1) {
                        let panicking = toks.get(close + 1).is_some_and(|n| n.is_punct("."))
                            && toks
                                .get(close + 2)
                                .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"));
                        if panicking {
                            num03_lines.insert(t.line);
                        }
                    }
                }
                // NUM03b: partial_cmp anywhere inside an ordering closure.
                if matches!(
                    t.text.as_str(),
                    "sort_by"
                        | "sort_unstable_by"
                        | "sort_by_key"
                        | "max_by"
                        | "min_by"
                        | "binary_search_by"
                ) && next_is(i + 1, "(")
                {
                    if let Some(close) = matching_paren(toks, i + 1) {
                        for inner in &toks[i + 2..close] {
                            if inner.is_ident("partial_cmp") {
                                num03_lines.insert(inner.line);
                            }
                        }
                    }
                }
                // CONC01: Ordering::Relaxed (std::cmp::Ordering has no
                // Relaxed variant, so the sequence is unambiguous).
                if t.text == "Relaxed"
                    && i >= 2
                    && toks[i - 1].is_punct("::")
                    && toks[i - 2].is_ident("Ordering")
                    && lib_code(i)
                {
                    findings.push(Finding::new(
                        "CONC01",
                        path,
                        t.line,
                        "`Ordering::Relaxed` is weaker than the documented incumbent/termination \
                         protocol; use Acquire/Release/AcqRel or annotate the proof"
                            .to_string(),
                    ));
                }
                // DET01: unseeded randomness.
                if !det_exempt {
                    let unseeded = matches!(t.text.as_str(), "thread_rng" | "from_entropy")
                        || t.text == "OsRng"
                        || (t.text == "random"
                            && i >= 2
                            && toks[i - 1].is_punct("::")
                            && toks[i - 2].is_ident("rand"));
                    if unseeded {
                        findings.push(Finding::new(
                            "DET01",
                            path,
                            t.line,
                            format!(
                                "`{}` draws unseeded entropy; use ChaCha8Rng::seed_from_u64 so \
                                 runs reproduce",
                                t.text
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }
    }

    for line in num03_lines {
        findings.push(Finding::new(
            "NUM03",
            path,
            line,
            "comparator panics or misorders on NaN; use f64::total_cmp".to_string(),
        ));
    }
    findings
}

/// True when the `.unwrap`/`.expect` identifier at `i` directly chains
/// off a `partial_cmp(…)` call — that hazard is NUM03's (more specific)
/// finding, so NUM02 stays quiet to avoid double-reporting.
fn follows_partial_cmp(toks: &[Token], i: usize) -> bool {
    if i < 2 || !toks[i - 2].is_punct(")") {
        return false;
    }
    let mut depth = 0usize;
    for k in (0..i - 1).rev() {
        if toks[k].kind == TokKind::Punct {
            match toks[k].text.as_str() {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        return k > 0 && toks[k - 1].is_ident("partial_cmp");
                    }
                }
                _ => {}
            }
        }
    }
    false
}

/// Index of the `)` matching the `(` at `open` (same nesting level), if
/// the stream is balanced.
fn matching_paren(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth = depth.checked_sub(1)?;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Compute, for each token, whether it sits inside a test-only region
/// of a library file: a `#[cfg(test)] mod … { … }`, a `#[test]`/
/// `#[bench]` function, or any other item carrying a test-flavored
/// attribute. Brace-depth tracking makes the mask robust to nesting.
pub fn test_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut depth: i64 = 0;
    // Depths whose closing brace ends an active test region.
    let mut regions: Vec<i64> = Vec::new();
    // Depth at which a test attribute was seen, awaiting its item body.
    let mut pending: Option<i64> = None;
    let mut i = 0;
    while i < toks.len() {
        mask[i] = !regions.is_empty();
        let t = &toks[i];
        if t.is_punct("#") {
            // `#[…]` outer attribute (inner `#![…]` attributes are
            // skipped without affecting the mask).
            let inner = toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
            let open = i + 1 + usize::from(inner);
            if toks.get(open).is_some_and(|n| n.is_punct("[")) {
                if let Some(close) = matching_bracket(toks, open) {
                    if !inner {
                        let body = &toks[open + 1..close];
                        let has = |name: &str| body.iter().any(|b| b.is_ident(name));
                        if (has("test") || has("bench")) && !has("not") {
                            pending = Some(depth);
                        }
                    }
                    for m in mask.iter_mut().take(close + 1).skip(i) {
                        *m = !regions.is_empty();
                    }
                    i = close + 1;
                    continue;
                }
            }
        } else if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => {
                    depth += 1;
                    if pending.take().is_some() {
                        regions.push(depth);
                    }
                }
                "}" => {
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                    depth -= 1;
                }
                ";" => {
                    // `#[cfg(test)] use …;` — attribute consumed by a
                    // braceless item at the same depth.
                    if pending == Some(depth) {
                        pending = None;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    mask
}

/// Index of the `]` matching the `[` at `open`, if balanced.
fn matching_bracket(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth = depth.checked_sub(1)?;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
    }
    None
}
