//! Breakpoint-grid inner maximizer with a certified optimality gap —
//! the production path at wildlife-park scale.
//!
//! Proposition 3 makes the per-probe objective separable,
//! `G_c(x) = Σ_i min(f1_i, f2_i)`, under the single coupling
//! constraint `Σ x_i ≤ R`. On the coverage grid `x_i = a_i / P` that is
//! a separable resource-allocation problem, and the classical
//! concave-envelope greedy solves its *concavified* relaxation exactly:
//!
//! 1. sample `g_i` at the `P + 1` grid points (cached across probes by
//!    [`crate::warm::WarmState`] — the samples are `c`-independent);
//! 2. take the **upper concave hull** of each target's samples
//!    (monotone chain, `O(P)` per target);
//! 3. fill the budget greedily in decreasing hull-segment slope order
//!    (a max-heap with one live segment per target).
//!
//! Because the hull dominates the samples pointwise, the envelope value
//! at the greedy allocation is an *exact* upper bound on the
//! grid-restricted optimum — no Lipschitz estimate enters. The greedy
//! consumes whole hull segments except possibly the last one cut by
//! budget exhaustion, so at most **one** target sits strictly inside a
//! hull segment ("the straddler"); it alone contributes to the gap
//! `UB − achieved`, which this backend repairs locally and then
//! **certifies** on [`InnerResult::gap`] in utility (`c`) units: since
//! `∂G/∂c ≤ −Σ_i min_j L_i[j]` for every grid point, an inner slack of
//! `Δ` in `G` can shift the binary search's feasibility threshold by at
//! most `Δ / Σ_i min_j L_i[j]` (see `docs/SCALE.md`).
//!
//! Complexity per probe is `O(T·P)` after the grid build — no
//! branch-and-bound, no LP — which is what makes `T` in the hundreds of
//! thousands routine where the MILP route scales with node counts.

use super::{BudgetMode, InnerResult, InnerSolver, InnerStats, SolveError};
use crate::problem::RobustProblem;
use crate::warm::{GridSamples, WarmState};
use cubis_behavior::IntervalChoiceModel;
use cubis_trace::SharedRecorder;
use std::collections::BinaryHeap;

/// Breakpoint-grid inner maximizer with a certified gap.
#[derive(Debug, Clone)]
pub struct ScaleInner {
    /// Grid points per unit coverage (the effective `K`).
    pub points_per_unit: usize,
    /// Budget handling.
    pub budget: BudgetMode,
    /// Observability sink (see [`InnerSolver::attach_recorder`]).
    recorder: SharedRecorder,
}

/// The per-probe certificate detail behind [`InnerResult::gap`],
/// exposed for the differential oracles and property tests.
#[derive(Debug, Clone, Copy)]
pub struct ScaleCertificate {
    /// `Σ_i g_i(a_i/P)` at the returned allocation (= `g_value`).
    pub achieved: f64,
    /// The concave-envelope optimum `Σ_i ĝ_i(a_i/P)` — an exact upper
    /// bound on the grid-restricted `max_x G_c(x)`.
    pub envelope: f64,
    /// `max(0, envelope − achieved)`, in `G` units.
    pub gap_g: f64,
    /// `gap_g / rate`, in utility (`c`) units — what
    /// [`InnerResult::gap`] carries.
    pub gap_c: f64,
    /// The `G`-to-`c` conversion rate `Σ_i min_j L_i[j]` (the minimum
    /// magnitude of `∂G/∂c` over the grid).
    pub rate: f64,
}

/// One live hull segment in the greedy heap. Max-heap order: steeper
/// slope first, ties broken toward the smaller target index (then the
/// earlier segment, unreachable with one live segment per target) so
/// the fill order is deterministic — the same `total_cmp` discipline as
/// [`super::improves`], under which a NaN slope outranks everything and
/// loudly poisons the result.
#[derive(Debug, Clone, Copy)]
struct SegEntry {
    slope: f64,
    target: u32,
    seg: u32,
}

impl PartialEq for SegEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for SegEntry {}

impl PartialOrd for SegEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SegEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.slope
            .total_cmp(&other.slope)
            .then_with(|| other.target.cmp(&self.target))
            .then_with(|| other.seg.cmp(&self.seg))
    }
}

/// Indices of the upper concave hull of `(j, row[j])`, `j = 0..row.len()`.
///
/// Monotone chain: a vertex is popped when it falls on or below the
/// chord joining its neighbors, so consecutive hull slopes are strictly
/// decreasing and collinear points keep only the endpoints. The first
/// and last sample are always vertices.
fn upper_hull(row: &[f64]) -> Vec<u32> {
    let mut hull: Vec<u32> = Vec::new();
    for (j, &v) in row.iter().enumerate() {
        while hull.len() >= 2 {
            let b = hull[hull.len() - 1] as usize;
            let a = hull[hull.len() - 2] as usize;
            // Pop `b` iff slope(a→b) ≤ slope(b→j), cross-multiplied to
            // avoid the divisions (grid indices are exact in f64).
            let lhs = (row[b] - row[a]) * ((j - b) as f64);
            let rhs = (v - row[b]) * ((b - a) as f64);
            if lhs <= rhs {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(j as u32);
    }
    hull
}

impl ScaleInner {
    /// A scale backend with `points_per_unit = p` and the paper's `≤ R`
    /// budget.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "ScaleInner: points_per_unit must be positive");
        Self {
            points_per_unit: p,
            budget: BudgetMode::AtMost,
            recorder: SharedRecorder::null(),
        }
    }

    /// Use exact budget `Σ x_i = R` instead.
    pub fn exact_budget(mut self) -> Self {
        self.budget = BudgetMode::Exact;
        self
    }

    /// Maximize and return the full certificate detail alongside the
    /// result (a fresh grid build; the solver path reuses the warm
    /// cache instead).
    pub fn maximize_with_certificate<M: IntervalChoiceModel>(
        &self,
        p: &RobustProblem<'_, M>,
        c: f64,
    ) -> Result<(InnerResult, ScaleCertificate), SolveError> {
        let grid = GridSamples::build(p, self.points_per_unit);
        let evaluations = (self.points_per_unit + 1) * p.num_targets();
        self.solve_on_grid(&grid, p.resources(), c, evaluations)
    }

    /// The envelope greedy over a sampled grid. The grid fully
    /// determines the result, so cached (warm) and fresh (cold) grids —
    /// which are bitwise identical by [`GridSamples`]' contract — give
    /// a bitwise-identical solve.
    pub(crate) fn solve_on_grid(
        &self,
        grid: &GridSamples,
        resources: f64,
        c: f64,
        evaluations: usize,
    ) -> Result<(InnerResult, ScaleCertificate), SolveError> {
        debug_assert_eq!(grid.points, self.points_per_unit);
        let t = grid.l.len();
        let pp = self.points_per_unit;
        let budget = ((resources * pp as f64).round() as usize).min(t * pp);

        // Per-target sample rows g_i[j] — same branch arithmetic as
        // `transform::g`, via the shared `GridSamples::g`.
        let values: Vec<Vec<f64>> = (0..t)
            .map(|i| (0..=pp).map(|j| grid.g(i, j, c)).collect())
            .collect();

        // Upper concave hulls and the greedy fill.
        let hulls: Vec<Vec<u32>> = values.iter().map(|row| upper_hull(row)).collect();
        let segments: usize = hulls.iter().map(|h| h.len() - 1).sum();
        let seg_slope = |i: usize, seg: usize| -> f64 {
            let lo = hulls[i][seg] as usize;
            let hi = hulls[i][seg + 1] as usize;
            (values[i][hi] - values[i][lo]) / ((hi - lo) as f64)
        };

        let mut heap: BinaryHeap<SegEntry> = BinaryHeap::with_capacity(t);
        for (i, hull) in hulls.iter().enumerate() {
            if hull.len() >= 2 {
                heap.push(SegEntry { slope: seg_slope(i, 0), target: i as u32, seg: 0 });
            }
        }

        let mut alloc = vec![0u32; t];
        let mut rem = budget;
        // The one target (if any) whose allocation stopped strictly
        // inside a hull segment, with the segment's vertex span.
        let mut straddle: Option<(usize, usize, usize)> = None;
        while rem > 0 {
            let Some(top) = heap.pop() else { break };
            // In ≤-budget mode a non-positive marginal gain never helps;
            // stopping here leaves every allocation on a hull vertex.
            // (A NaN slope compares greater and is consumed — loud.)
            if matches!(self.budget, BudgetMode::AtMost) && top.slope <= 0.0 {
                break;
            }
            let i = top.target as usize;
            let seg = top.seg as usize;
            let lo = hulls[i][seg] as usize;
            let hi = hulls[i][seg + 1] as usize;
            let take = (hi - lo).min(rem);
            alloc[i] = (lo + take) as u32;
            rem -= take;
            if take == hi - lo {
                if seg + 2 < hulls[i].len() {
                    heap.push(SegEntry {
                        slope: seg_slope(i, seg + 1),
                        target: top.target,
                        seg: (seg + 1) as u32,
                    });
                }
            } else {
                straddle = Some((i, lo, hi));
            }
        }

        // Local repair: the straddler is the only target off a hull
        // vertex. With every other allocation fixed it may spend up to
        // its current units, so the best true sample at or below that
        // level can only improve the achieved value (the envelope bound
        // is untouched).
        let mut repairs = 0u64;
        if matches!(self.budget, BudgetMode::AtMost) {
            if let Some((i, _, _)) = straddle {
                let cap = alloc[i] as usize;
                let mut best_a = cap;
                for a in 0..cap {
                    if super::improves(values[i][a], values[i][best_a]) {
                        best_a = a;
                    }
                }
                if best_a != cap {
                    alloc[i] = best_a as u32;
                    repairs = 1;
                }
            }
        }

        // Achieved value and the envelope bound. Every non-straddling
        // target sits on a hull vertex where ĝ = g; only the straddler
        // needs the chord interpolation (evaluated at its *pre-repair*
        // level, where the greedy envelope optimum lives).
        let mut achieved = 0.0f64;
        let mut envelope = 0.0f64;
        for i in 0..t {
            achieved += values[i][alloc[i] as usize];
            match straddle {
                Some((s, lo, hi)) if s == i => {
                    let at = (budget
                        - alloc
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| j != i)
                            .map(|(_, &a)| a as usize)
                            .sum::<usize>()) as f64;
                    let slope = (values[i][hi] - values[i][lo]) / ((hi - lo) as f64);
                    envelope += values[i][lo] + slope * (at - lo as f64);
                }
                _ => envelope += values[i][alloc[i] as usize],
            }
        }
        if !achieved.is_finite() {
            return Err(SolveError::UnexpectedInfeasible { c });
        }

        let gap_g = (envelope - achieved).max(0.0);
        let rate = grid.sum_l_min;
        let gap_c = if rate > 0.0 && rate.is_finite() { gap_g / rate } else { gap_g };
        let x: Vec<f64> = alloc.iter().map(|&a| a as f64 / pp as f64).collect();

        if self.recorder.enabled() {
            self.recorder.counter("inner.scale_probes", 1);
            self.recorder.counter("inner.scale_segments", segments as u64);
            self.recorder.counter("inner.scale_repairs", repairs);
        }

        let result = InnerResult {
            g_value: achieved,
            x,
            gap: gap_c,
            stats: InnerStats { milp_nodes: 0, lp_iterations: 0, evaluations },
        };
        let cert = ScaleCertificate { achieved, envelope, gap_g, gap_c, rate };
        Ok((result, cert))
    }
}

impl InnerSolver for ScaleInner {
    fn maximize_g<M: IntervalChoiceModel>(
        &self,
        p: &RobustProblem<'_, M>,
        c: f64,
    ) -> Result<InnerResult, SolveError> {
        self.maximize_with_certificate(p, c).map(|(res, _)| res)
    }

    /// Warm probe: the grid samples `(L, U, Ud)` are `c`-independent,
    /// so after the first probe the envelope greedy runs off the cache
    /// with zero model evaluations — bitwise identical to the cold path
    /// (the cached samples *are* the cold samples).
    fn feasibility_g_warm<M: IntervalChoiceModel>(
        &self,
        p: &RobustProblem<'_, M>,
        c: f64,
        tol: f64,
        warm: &mut WarmState,
    ) -> Result<InnerResult, SolveError> {
        let fresh = warm.ensure_grid(p, self.points_per_unit);
        match warm.grid(self.points_per_unit) {
            Some(grid) => {
                self.solve_on_grid(grid, p.resources(), c, fresh).map(|(res, _)| res)
            }
            // Unreachable in practice (ensure_grid just built it); fall
            // back to the cold path rather than assert.
            None => self.feasibility_g(p, c, tol),
        }
    }

    fn resolution(&self) -> Option<usize> {
        Some(self.points_per_unit)
    }

    fn name(&self) -> &'static str {
        "scale"
    }

    fn attach_recorder(&mut self, recorder: &SharedRecorder) {
        self.recorder = recorder.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inner::DpInner;
    use crate::transform;
    use cubis_behavior::{BoundConvention, SuqrUncertainty, UncertainSuqr};
    use cubis_game::{GameGenerator, SecurityGame, TargetPayoffs};

    fn small() -> (SecurityGame, UncertainSuqr) {
        let game = SecurityGame::new(
            vec![
                TargetPayoffs::new(5.0, -3.0, 3.0, -5.0),
                TargetPayoffs::new(7.0, -7.0, 7.0, -7.0),
                TargetPayoffs::new(2.0, -4.0, 4.0, -2.0),
            ],
            1.0,
        );
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            0.5,
            BoundConvention::ExactInterval,
        );
        (game, model)
    }

    fn generated(seed: u64, t: usize, r: f64) -> (SecurityGame, UncertainSuqr) {
        let game = GameGenerator::new(seed).generate(t, r);
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            0.5,
            BoundConvention::ExactInterval,
        );
        (game, model)
    }

    #[test]
    fn hull_is_concave_and_dominates_samples() {
        let rows: [&[f64]; 4] = [
            &[0.0, 1.0, 3.0, 4.0, 4.5],
            &[0.0, -1.0, 5.0, -2.0, 3.0],
            &[2.0, 2.0, 2.0],
            &[1.0, 0.0],
        ];
        for row in rows {
            let hull = upper_hull(row);
            assert_eq!(hull[0], 0);
            assert_eq!(*hull.last().expect("nonempty hull") as usize, row.len() - 1);
            // Strictly decreasing segment slopes.
            let slopes: Vec<f64> = hull
                .windows(2)
                .map(|w| {
                    (row[w[1] as usize] - row[w[0] as usize]) / ((w[1] - w[0]) as f64)
                })
                .collect();
            for pair in slopes.windows(2) {
                assert!(pair[0] > pair[1], "slopes not decreasing: {slopes:?}");
            }
            // Pointwise dominance.
            for (j, &v) in row.iter().enumerate() {
                let seg = hull
                    .windows(2)
                    .find(|w| (w[0] as usize) <= j && j <= w[1] as usize)
                    .expect("covering segment");
                let (lo, hi) = (seg[0] as usize, seg[1] as usize);
                let slope = (row[hi] - row[lo]) / ((hi - lo) as f64);
                let env = row[lo] + slope * ((j - lo) as f64);
                assert!(env >= v - 1e-12, "hull under sample at {j}: {env} < {v}");
            }
        }
    }

    #[test]
    fn scale_matches_dp_within_certificate() {
        let (game, model) = small();
        let p = RobustProblem::new(&game, &model);
        let pp = 7;
        let dp = DpInner::new(pp);
        let scale = ScaleInner::new(pp);
        for &c in &[-4.0, -1.0, 0.0, 0.5, 1.5] {
            let exact = dp.maximize_g(&p, c).expect("dp").g_value;
            let (res, cert) = scale.maximize_with_certificate(&p, c).expect("scale");
            // Grid-feasible, so never above the grid optimum…
            assert!(res.g_value <= exact + 1e-9, "c={c}: scale {} > dp {exact}", res.g_value);
            // …and the certificate covers the shortfall.
            assert!(
                res.g_value + cert.gap_g >= exact - 1e-9,
                "c={c}: achieved {} + gap {} < dp {exact}",
                res.g_value,
                cert.gap_g
            );
            assert!(cert.gap_g >= 0.0 && cert.gap_c >= 0.0);
            assert!(cert.envelope >= exact - 1e-9, "envelope must bound the grid optimum");
            // The reported value is the true G at the returned point.
            assert!((transform::g_total(&p, &res.x, c) - res.g_value).abs() < 1e-12);
        }
    }

    #[test]
    fn scale_is_budget_feasible() {
        let (game, model) = generated(9, 12, 3.0);
        let p = RobustProblem::new(&game, &model);
        let res = ScaleInner::new(16).maximize_g(&p, 0.0).expect("solve");
        assert!(res.x.iter().sum::<f64>() <= game.resources() + 1e-9);
        assert!(res.x.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn exact_budget_uses_all_resources() {
        let (game, model) = small();
        let p = RobustProblem::new(&game, &model);
        let res = ScaleInner::new(10).exact_budget().maximize_g(&p, 0.0).expect("solve");
        assert!((res.x.iter().sum::<f64>() - game.resources()).abs() < 1e-9);
    }

    #[test]
    fn warm_is_bitwise_identical_to_cold() {
        let (game, model) = generated(4, 30, 5.0);
        let p = RobustProblem::new(&game, &model);
        let scale = ScaleInner::new(12);
        let mut warm = WarmState::new();
        for &c in &[-2.0, 0.0, 1.0] {
            let cold = scale.feasibility_g(&p, c, 1e-9).expect("cold");
            let hot = scale.feasibility_g_warm(&p, c, 1e-9, &mut warm).expect("warm");
            assert_eq!(cold.g_value.to_bits(), hot.g_value.to_bits(), "c={c}");
            assert_eq!(cold.gap.to_bits(), hot.gap.to_bits(), "c={c}");
            let cold_bits: Vec<u64> = cold.x.iter().map(|v| v.to_bits()).collect();
            let hot_bits: Vec<u64> = hot.x.iter().map(|v| v.to_bits()).collect();
            assert_eq!(cold_bits, hot_bits, "c={c}");
        }
        assert_eq!(warm.stats.cold_builds, 1);
        assert_eq!(warm.stats.cached_builds, 2);
    }

    #[test]
    fn envelope_dominates_random_grid_allocations() {
        let (game, model) = generated(11, 25, 6.0);
        let p = RobustProblem::new(&game, &model);
        let pp = 9usize;
        let scale = ScaleInner::new(pp);
        let budget = (game.resources() * pp as f64).round() as usize;
        for &c in &[-3.0, 0.0, 2.0] {
            let (_, cert) = scale.maximize_with_certificate(&p, c).expect("solve");
            // Deterministic LCG over feasible grid allocations.
            let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ c.to_bits();
            for _ in 0..64 {
                let mut rem = budget;
                let mut value = 0.0;
                for i in 0..game.num_targets() {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let a = (state >> 33) as usize % (pp.min(rem) + 1);
                    rem -= a;
                    value += transform::g(&p, i, a as f64 / pp as f64, c);
                }
                assert!(
                    value <= cert.envelope + 1e-9,
                    "c={c}: sampled grid allocation {value} beats the envelope {}",
                    cert.envelope
                );
            }
        }
    }

    #[test]
    fn refining_the_grid_never_lowers_the_envelope() {
        // The coarse grid's samples are a subset of the fine grid's
        // (j/P = 2j/2P exactly in IEEE-754), so the fine hull dominates
        // the coarse hull and the envelope optimum is monotone.
        let (game, model) = generated(6, 15, 4.0);
        let p = RobustProblem::new(&game, &model);
        for &c in &[-2.0, 0.25, 1.0] {
            let (_, coarse) = ScaleInner::new(6).maximize_with_certificate(&p, c).expect("pp=6");
            let (_, fine) = ScaleInner::new(12).maximize_with_certificate(&p, c).expect("pp=12");
            assert!(
                fine.envelope >= coarse.envelope - 1e-9,
                "c={c}: envelope dropped under refinement: {} -> {}",
                coarse.envelope,
                fine.envelope
            );
            assert!(
                fine.achieved >= coarse.achieved - 1e-9,
                "c={c}: achieved dropped under refinement"
            );
        }
    }

    #[test]
    fn large_instance_is_fast_and_tightly_certified() {
        let (game, model) = generated(21, 2000, 40.0);
        let p = RobustProblem::new(&game, &model);
        let (lo, hi) = p.utility_range();
        let scale = ScaleInner::new(24);
        for f in [0.0, 0.3, 0.6] {
            let c = lo + f * (hi - lo);
            let (res, cert) = scale.maximize_with_certificate(&p, c).expect("solve");
            assert!(cert.gap_g >= 0.0 && cert.gap_c.is_finite());
            assert!(res.x.iter().sum::<f64>() <= game.resources() + 1e-9);
            // The certificate is one target's local hull slack divided
            // by a rate that grows with T — tiny at this size.
            assert!(cert.gap_c <= 1e-6, "c={c}: gap_c {} too large", cert.gap_c);
        }
    }
}
