//! Incremental (resumable) HTTP/1.1 request parsing and response
//! encoding.
//!
//! The blocking one-shot parser in `cubis-serve::http` pulls bytes
//! until a request completes; an event loop cannot afford that — bytes
//! arrive in whatever fragments the kernel delivers, and a connection
//! may carry many requests back-to-back (keep-alive) or even several
//! requests in one segment (pipelining). [`RequestParser`] is the
//! resumable equivalent: push bytes as they arrive, pull zero or more
//! complete requests out, and the unconsumed tail stays buffered for
//! the next round.
//!
//! The grammar is deliberately the same subset the one-shot parser
//! accepts — request line split on whitespace, `HTTP/1.x` only,
//! `\n`-terminated lines with optional `\r`, lowercased header names,
//! `Content-Length` bodies, no chunked encoding — and the
//! `serve-parser-incremental-vs-oneshot` differential oracle holds the
//! two implementations byte-for-byte equal on every split of every
//! valid request.

/// Default cap on the request line + headers, in bytes (matches the
/// one-shot parser's cap).
pub const DEFAULT_MAX_HEAD_BYTES: usize = 16 * 1024;
/// Default cap on the request body, in bytes.
pub const DEFAULT_MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A complete parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRequest {
    /// Request method as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path only; no query parsing).
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased, both trimmed.
    pub headers: Vec<(String, String)>,
    /// Request body (empty without `Content-Length`).
    pub body: Vec<u8>,
    /// Whether HTTP semantics keep the connection open after the
    /// response: HTTP/1.1 unless `Connection: close`, HTTP/1.0 only
    /// with `Connection: keep-alive`.
    pub keep_alive: bool,
}

impl ParsedRequest {
    /// First value of the (lowercased) header `name`, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Why parsing failed. The connection is unrecoverable afterwards —
/// framing is lost — so the caller writes one error response and
/// closes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The request line or a header was malformed.
    Malformed(String),
    /// The head outgrew the cap before its terminating blank line
    /// (maps to `431 Request Header Fields Too Large`).
    HeadTooLarge(String),
    /// `Content-Length` exceeds the body cap (maps to `413`).
    BodyTooLarge(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Malformed(d) => write!(f, "malformed request: {d}"),
            Self::HeadTooLarge(d) => write!(f, "request head too large: {d}"),
            Self::BodyTooLarge(d) => write!(f, "request body too large: {d}"),
        }
    }
}

/// One step of the pull loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseStep {
    /// No complete request buffered; push more bytes.
    NeedMore,
    /// One complete request, consumed from the buffer.
    Ready(ParsedRequest),
    /// The stream is unparseable from here on.
    Bad(ParseError),
}

/// The resumable request parser: one per connection.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily).
    start: usize,
    max_head: usize,
    max_body: usize,
    poisoned: bool,
}

impl RequestParser {
    /// A parser with explicit head/body caps.
    pub fn new(max_head: usize, max_body: usize) -> Self {
        Self { buf: Vec::new(), start: 0, max_head, max_body, poisoned: false }
    }

    /// Append bytes received from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True when nothing is buffered — the connection is between
    /// requests (idle) rather than mid-request (reading).
    pub fn is_idle(&self) -> bool {
        self.buffered() == 0
    }

    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Try to pull the next complete request out of the buffer.
    pub fn next_request(&mut self) -> ParseStep {
        if self.poisoned {
            return ParseStep::Bad(ParseError::Malformed("stream already failed".to_string()));
        }
        let bytes = &self.buf[self.start..];
        // Locate the head terminator: the first empty line. Lines are
        // `\n`-terminated with an optional `\r`, so the head ends at
        // the first `\n` followed by `\n` or `\r\n`.
        let mut head_end = None;
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'\n' {
                if bytes.get(i + 1) == Some(&b'\n') {
                    head_end = Some((i + 1, i + 2));
                    break;
                }
                if bytes.get(i + 1) == Some(&b'\r') && bytes.get(i + 2) == Some(&b'\n') {
                    head_end = Some((i + 1, i + 3));
                    break;
                }
            }
            i += 1;
        }
        let Some((head_len, consumed_head)) = head_end else {
            if bytes.len() > self.max_head {
                self.poisoned = true;
                return ParseStep::Bad(ParseError::HeadTooLarge(format!(
                    "no end of head within {} bytes",
                    self.max_head
                )));
            }
            return ParseStep::NeedMore;
        };
        if consumed_head > self.max_head {
            self.poisoned = true;
            return ParseStep::Bad(ParseError::HeadTooLarge(format!(
                "head of {consumed_head} bytes exceeds {}",
                self.max_head
            )));
        }

        let head = match std::str::from_utf8(&bytes[..head_len]) {
            Ok(s) => s,
            Err(_) => {
                self.poisoned = true;
                return ParseStep::Bad(ParseError::Malformed("non-UTF-8 head".to_string()));
            }
        };
        let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split_whitespace();
        let Some(method) = parts.next() else {
            self.poisoned = true;
            return ParseStep::Bad(ParseError::Malformed("empty request line".to_string()));
        };
        let Some(path) = parts.next() else {
            self.poisoned = true;
            return ParseStep::Bad(ParseError::Malformed(
                "request line missing target".to_string(),
            ));
        };
        let Some(version) = parts.next() else {
            self.poisoned = true;
            return ParseStep::Bad(ParseError::Malformed(
                "request line missing version".to_string(),
            ));
        };
        if !version.starts_with("HTTP/1.") {
            self.poisoned = true;
            return ParseStep::Bad(ParseError::Malformed(format!(
                "unsupported version {version}"
            )));
        }

        let mut headers = Vec::new();
        let mut content_length = 0usize;
        let mut keep_alive = version != "HTTP/1.0";
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let Some((name, value)) = line.split_once(':') else {
                self.poisoned = true;
                return ParseStep::Bad(ParseError::Malformed(format!(
                    "header without colon: {line:?}"
                )));
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = match value.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => {
                        self.poisoned = true;
                        return ParseStep::Bad(ParseError::Malformed(format!(
                            "bad content-length {value:?}"
                        )));
                    }
                };
            }
            if name == "connection" {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
            headers.push((name, value));
        }
        if content_length > self.max_body {
            self.poisoned = true;
            return ParseStep::Bad(ParseError::BodyTooLarge(format!(
                "body of {content_length} bytes exceeds {}",
                self.max_body
            )));
        }
        let total = consumed_head + content_length;
        if bytes.len() < total {
            return ParseStep::NeedMore;
        }
        let body = bytes[consumed_head..total].to_vec();
        let method = method.to_string();
        let path = path.to_string();
        self.start += total;
        ParseStep::Ready(ParsedRequest { method, path, headers, body, keep_alive })
    }
}

/// Encode a full response: status line, `content-type`,
/// `content-length`, a `connection` header that matches `keep_alive`,
/// any extra headers, and the body.
pub fn encode_response(
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let mut head = format!("HTTP/1.1 {status} {reason}\r\n");
    head.push_str(&format!("content-type: {content_type}\r\n"));
    head.push_str(&format!("content-length: {}\r\n", body.len()));
    head.push_str(if keep_alive {
        "connection: keep-alive\r\n"
    } else {
        "connection: close\r\n"
    });
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parser() -> RequestParser {
        RequestParser::new(DEFAULT_MAX_HEAD_BYTES, DEFAULT_MAX_BODY_BYTES)
    }

    #[test]
    fn whole_request_in_one_push() {
        let mut p = parser();
        p.push(b"POST /v1/solve HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello");
        match p.next_request() {
            ParseStep::Ready(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/v1/solve");
                assert_eq!(req.header("host"), Some("x"));
                assert_eq!(req.body, b"hello");
                assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
            }
            other => panic!("expected Ready, got {other:?}"),
        }
        assert_eq!(p.next_request(), ParseStep::NeedMore);
        assert!(p.is_idle());
    }

    #[test]
    fn byte_at_a_time_split_across_every_boundary() {
        let raw = b"POST /v1/solve HTTP/1.1\r\ncontent-length: 4\r\nx-k: v\r\n\r\nbody";
        let mut p = parser();
        let mut got = None;
        for &b in raw.iter() {
            p.push(&[b]);
            match p.next_request() {
                ParseStep::NeedMore => {}
                ParseStep::Ready(req) => got = Some(req),
                ParseStep::Bad(e) => panic!("unexpected parse error: {e}"),
            }
        }
        let req = got.expect("request must complete at the final byte");
        assert_eq!(req.body, b"body");
        assert_eq!(req.header("x-k"), Some("v"));
    }

    #[test]
    fn pipelined_requests_pull_in_order() {
        let mut p = parser();
        p.push(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nconnection: close\r\n\r\n");
        let first = match p.next_request() {
            ParseStep::Ready(req) => req,
            other => panic!("first: {other:?}"),
        };
        assert_eq!(first.path, "/a");
        assert!(first.keep_alive);
        let second = match p.next_request() {
            ParseStep::Ready(req) => req,
            other => panic!("second: {other:?}"),
        };
        assert_eq!(second.path, "/b");
        assert!(!second.keep_alive);
        assert_eq!(p.next_request(), ParseStep::NeedMore);
    }

    #[test]
    fn http_1_0_closes_by_default() {
        let mut p = parser();
        p.push(b"GET / HTTP/1.0\r\n\r\nGET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n");
        match (p.next_request(), p.next_request()) {
            (ParseStep::Ready(a), ParseStep::Ready(b)) => {
                assert!(!a.keep_alive);
                assert!(b.keep_alive, "explicit keep-alive overrides the 1.0 default");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_head_is_reported_even_without_terminator() {
        let mut p = RequestParser::new(64, 1024);
        p.push(b"GET / HTTP/1.1\r\n");
        p.push(&vec![b'a'; 80]);
        assert!(matches!(p.next_request(), ParseStep::Bad(ParseError::HeadTooLarge(_))));
        // Poisoned: further pulls keep failing.
        assert!(matches!(p.next_request(), ParseStep::Bad(_)));
    }

    #[test]
    fn oversized_body_declaration_is_reported() {
        let mut p = RequestParser::new(1024, 16);
        p.push(b"POST / HTTP/1.1\r\ncontent-length: 17\r\n\r\n");
        assert!(matches!(p.next_request(), ParseStep::Bad(ParseError::BodyTooLarge(_))));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for raw in [
            &b"NOT-HTTP\r\n\r\n"[..],
            b"GET /\r\n\r\n",
            b"GET / FTP/9\r\n\r\n",
            b"\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"POST / HTTP/1.1\r\ncontent-length: wat\r\n\r\n",
        ] {
            let mut p = parser();
            p.push(raw);
            assert!(
                matches!(p.next_request(), ParseStep::Bad(_)),
                "must reject {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn bare_lf_line_endings_parse() {
        let mut p = parser();
        p.push(b"GET /x HTTP/1.1\nhost: y\n\n");
        match p.next_request() {
            ParseStep::Ready(req) => {
                assert_eq!(req.path, "/x");
                assert_eq!(req.header("host"), Some("y"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn encode_response_sets_connection_header() {
        let ka = encode_response(200, "OK", "application/json", &[("x-a", "1")], b"{}", true);
        let text = String::from_utf8(ka).expect("ascii head");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.contains("x-a: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let close = encode_response(400, "Bad Request", "text/plain", &[], b"", false);
        assert!(String::from_utf8(close).expect("ascii head").contains("connection: close\r\n"));
    }
}
