//! Cross-probe warm state for the binary search.
//!
//! Consecutive binary-search probes differ only in the utility value
//! `c`: per Proposition 3, `f1_i = L_i·(Ud_i − c)` and
//! `f2_i = U_i·(Ud_i − c)` share the model samples `(L_i, U_i, Ud_i)`
//! at every breakpoint, and only the `−c` offset moves. [`WarmState`]
//! therefore caches the raw breakpoint samples once per resolution and
//! reassembles `f1/f2/g` per probe with the *exact same floating-point
//! expressions* as [`crate::transform`] — warm-started solves are
//! bitwise identical to cold ones (a `cubis-check` oracle pins this),
//! and the saving is the skipped model evaluations (the SUQR
//! exponentials), not different arithmetic.
//!
//! Two more artifacts carry across probes:
//!
//! * the previous feasible probe's **incumbent** `x`, replayed as the
//!   branch-and-bound warm start (any coverage vector with
//!   `Σ x ≤ R` has a feasible MILP assignment via the fill-order
//!   construction);
//! * the previous infeasible probe's **bound certificate**, transferred
//!   to the new `c` by a Lipschitz argument (see
//!   [`WarmState::transfer_hint`]) and handed to branch-and-bound as
//!   [`cubis_milp::MilpOptions::bound_hint`] so pruning starts at node
//!   zero.

use crate::problem::RobustProblem;
use cubis_behavior::IntervalChoiceModel;
use std::collections::BTreeMap;

/// Effort counters for the warm-start machinery, reported on
/// [`crate::CubisSolution::warm`] and as `cubis.*` trace counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Probes that had to sample the model to build a breakpoint grid.
    pub cold_builds: usize,
    /// Probes served entirely from a cached breakpoint grid.
    pub cached_builds: usize,
    /// Probes seeded with the previous probe's incumbent strategy.
    pub warm_seeds: usize,
    /// Probes that received a transferred bound certificate.
    pub bound_hints: usize,
}

/// A proven upper bound on the linearized `max_x Ḡ_c(x)` at one `c`,
/// produced by a `TargetUnreachable` branch-and-bound certificate.
#[derive(Debug, Clone, Copy)]
pub struct BoundCertificate {
    /// Grid resolution the certificate's linearization used.
    pub points: usize,
    /// The utility value it was proven at.
    pub c: f64,
    /// The bound itself, in unscaled `Ḡ` units.
    pub bound: f64,
}

/// Raw model samples on the uniform coverage grid `x = j/points`,
/// `j = 0..=points`: everything `f1/f2/g` need except the probe's `c`.
#[derive(Debug, Clone)]
pub struct GridSamples {
    /// Grid resolution (the MILP's `K` or the DP's points-per-unit).
    pub points: usize,
    /// `L_i(j/points)` per target and grid point.
    pub l: Vec<Vec<f64>>,
    /// `U_i(j/points)` per target and grid point.
    pub u: Vec<Vec<f64>>,
    /// `Ud_i(j/points)` per target and grid point.
    pub ud: Vec<Vec<f64>>,
    /// `Σ_i min_j L_i[j]` — the bound-transfer rate for increasing `c`.
    pub sum_l_min: f64,
    /// `Σ_i max_j U_i[j]` — the bound-transfer rate for decreasing `c`.
    pub sum_u_max: f64,
}

impl GridSamples {
    /// Sample the model on the grid. Costs `(points+1)·T` model-point
    /// evaluations (each yielding `L`, `U` and `Ud`).
    pub fn build<M: IntervalChoiceModel>(p: &RobustProblem<'_, M>, points: usize) -> Self {
        assert!(points > 0, "GridSamples: points must be positive");
        let t = p.num_targets();
        let pf = points as f64;
        let mut l = vec![vec![0.0f64; points + 1]; t];
        let mut u = vec![vec![0.0f64; points + 1]; t];
        let mut ud = vec![vec![0.0f64; points + 1]; t];
        let mut sum_l_min = 0.0f64;
        let mut sum_u_max = 0.0f64;
        for i in 0..t {
            let mut l_min = f64::INFINITY;
            let mut u_max = f64::NEG_INFINITY;
            for j in 0..=points {
                let x = j as f64 / pf;
                let (li, ui) = p.bounds(i, x);
                l[i][j] = li;
                u[i][j] = ui;
                ud[i][j] = p.ud(i, x);
                l_min = l_min.min(li);
                u_max = u_max.max(ui);
            }
            sum_l_min += l_min;
            sum_u_max += u_max;
        }
        Self { points, l, u, ud, sum_l_min, sum_u_max }
    }

    /// `f1_i(j/points; c)` — same expression as [`crate::transform::f1`]
    /// (`l · (ud − c)`), so the result is bitwise identical to a fresh
    /// evaluation.
    #[inline]
    pub fn f1(&self, i: usize, j: usize, c: f64) -> f64 {
        self.l[i][j] * (self.ud[i][j] - c)
    }

    /// `f2_i(j/points; c)` — same expression as [`crate::transform::f2`].
    #[inline]
    pub fn f2(&self, i: usize, j: usize, c: f64) -> f64 {
        self.u[i][j] * (self.ud[i][j] - c)
    }

    /// `g_i(j/points; c) = min(f1, f2)` with the same branch arithmetic
    /// as [`crate::transform::g`].
    #[inline]
    pub fn g(&self, i: usize, j: usize, c: f64) -> f64 {
        let d = self.ud[i][j] - c;
        if d >= 0.0 {
            self.l[i][j] * d
        } else {
            self.u[i][j] * d
        }
    }

    fn num_targets(&self) -> usize {
        self.l.len()
    }
}

/// Breakpoint tables of `f1`/`f2` (unscaled) for one probe, either
/// assembled from a cached [`GridSamples`] or sampled fresh — the two
/// routes are bitwise identical.
#[derive(Debug, Clone)]
pub(crate) struct BreakpointTables {
    /// `f1[i][j] = f1_i(j/K; c)`.
    pub f1: Vec<Vec<f64>>,
    /// `f2[i][j] = f2_i(j/K; c)`.
    pub f2: Vec<Vec<f64>>,
}

/// Mutable state threaded through the probes of one binary search.
///
/// Created per [`crate::Cubis::solve`] call (one per instance in
/// [`crate::Cubis::solve_batch`]); the grids it caches are
/// model-specific and must not be shared across instances.
#[derive(Debug, Clone, Default)]
pub struct WarmState {
    /// Breakpoint grids, keyed by resolution (MILP `K`, DP grid).
    grids: BTreeMap<usize, GridSamples>,
    /// Last feasible probe's maximizing coverage vector.
    pub incumbent: Option<Vec<f64>>,
    /// Last infeasible probe's proven bound on `max Ḡ`.
    pub bound: Option<BoundCertificate>,
    /// Effort counters.
    pub stats: WarmStats,
}

impl WarmState {
    /// Fresh, empty warm state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Make sure the grid at `points` exists; returns the number of
    /// fresh model-point evaluations performed (`(points+1)·T` on a
    /// cold build, `0` on a cache hit) and bumps the matching counter.
    /// Call exactly once per probe.
    pub fn ensure_grid<M: IntervalChoiceModel>(
        &mut self,
        p: &RobustProblem<'_, M>,
        points: usize,
    ) -> usize {
        if self.grids.contains_key(&points) {
            self.stats.cached_builds += 1;
            return 0;
        }
        self.grids.insert(points, GridSamples::build(p, points));
        self.stats.cold_builds += 1;
        (points + 1) * p.num_targets()
    }

    /// The cached grid at `points`, if built.
    pub fn grid(&self, points: usize) -> Option<&GridSamples> {
        self.grids.get(&points)
    }

    /// Assemble the `f1/f2` breakpoint tables for a probe at `c` from
    /// the cached grid. `None` if [`WarmState::ensure_grid`] was not
    /// called for this resolution (callers then fall back to fresh
    /// sampling).
    pub(crate) fn breakpoint_tables(&self, points: usize, c: f64) -> Option<BreakpointTables> {
        let grid = self.grids.get(&points)?;
        let t = grid.num_targets();
        let mut f1 = vec![vec![0.0f64; points + 1]; t];
        let mut f2 = vec![vec![0.0f64; points + 1]; t];
        for i in 0..t {
            for j in 0..=points {
                f1[i][j] = grid.f1(i, j, c);
                f2[i][j] = grid.f2(i, j, c);
            }
        }
        Some(BreakpointTables { f1, f2 })
    }

    /// Per-target `g` values on the grid for a probe at `c` (the DP
    /// backend's value table), from the cached grid.
    pub(crate) fn g_values(&self, points: usize, c: f64) -> Option<Vec<Vec<f64>>> {
        let grid = self.grids.get(&points)?;
        let t = grid.num_targets();
        let mut values = vec![vec![0.0f64; points + 1]; t];
        for (i, row) in values.iter_mut().enumerate() {
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = grid.g(i, j, c);
            }
        }
        Some(values)
    }

    /// Transfer the stored bound certificate to a new utility value.
    ///
    /// For the linearized objective, every interpolated `L̄_i(x)`/`Ū_i(x)`
    /// is a convex combination of the grid samples, so with
    /// `lmin = Σ_i min_j L_i[j]` and `umax = Σ_i max_j U_i[j]`
    /// (both nonnegative — attractiveness values are positive):
    ///
    /// * `c₂ ≥ c₁`: every `f̄` drops by at least `(c₂−c₁)·L̄_i ≥
    ///   (c₂−c₁)·min_j L_i[j]` per target, so
    ///   `bound(c₂) ≤ bound(c₁) − (c₂−c₁)·lmin`;
    /// * `c₂ < c₁`: every `f̄` rises by at most `(c₁−c₂)·Ū_i`, so
    ///   `bound(c₂) ≤ bound(c₁) + (c₁−c₂)·umax`.
    ///
    /// A small relative margin keeps the transferred bound provably
    /// valid under floating-point rounding (a slightly loose hint only
    /// costs pruning power; a tight one would change results).
    pub fn transfer_hint(&self, points: usize, c: f64) -> Option<f64> {
        let cert = self.bound.as_ref()?;
        if cert.points != points {
            return None;
        }
        let grid = self.grids.get(&points)?;
        let raw = if c >= cert.c {
            cert.bound - (c - cert.c) * grid.sum_l_min
        } else {
            cert.bound + (cert.c - c) * grid.sum_u_max
        };
        let hint = raw + 1e-9 * (1.0 + raw.abs());
        hint.is_finite().then_some(hint)
    }

    /// Store a `TargetUnreachable` certificate: `max Ḡ_c ≤ bound`
    /// (unscaled), proven at resolution `points`.
    pub fn record_bound(&mut self, points: usize, c: f64, bound: f64) {
        if bound.is_finite() {
            self.bound = Some(BoundCertificate { points, c, bound });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform;
    use cubis_behavior::{BoundConvention, SuqrUncertainty, UncertainSuqr};
    use cubis_game::{SecurityGame, TargetPayoffs};

    fn fixture() -> (SecurityGame, UncertainSuqr) {
        let game = SecurityGame::new(
            vec![
                TargetPayoffs::new(5.0, -3.0, 3.0, -5.0),
                TargetPayoffs::new(7.0, -7.0, 7.0, -7.0),
                TargetPayoffs::new(2.0, -4.0, 4.0, -2.0),
            ],
            1.0,
        );
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            0.5,
            BoundConvention::ExactInterval,
        );
        (game, model)
    }

    #[test]
    fn cached_f1_f2_g_are_bitwise_identical_to_fresh() {
        let (game, model) = fixture();
        let p = RobustProblem::new(&game, &model);
        let k = 6;
        let grid = GridSamples::build(&p, k);
        for &c in &[-3.0, 0.0, 1.25] {
            for i in 0..game.num_targets() {
                for j in 0..=k {
                    let x = j as f64 / k as f64;
                    assert_eq!(
                        grid.f1(i, j, c).to_bits(),
                        transform::f1(&p, i, x, c).to_bits(),
                        "f1 c={c} i={i} j={j}"
                    );
                    assert_eq!(
                        grid.f2(i, j, c).to_bits(),
                        transform::f2(&p, i, x, c).to_bits(),
                        "f2 c={c} i={i} j={j}"
                    );
                    assert_eq!(
                        grid.g(i, j, c).to_bits(),
                        transform::g(&p, i, x, c).to_bits(),
                        "g c={c} i={i} j={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn ensure_grid_counts_cold_then_cached() {
        let (game, model) = fixture();
        let p = RobustProblem::new(&game, &model);
        let mut warm = WarmState::new();
        let fresh = warm.ensure_grid(&p, 5);
        assert_eq!(fresh, 6 * game.num_targets());
        assert_eq!(warm.stats.cold_builds, 1);
        assert_eq!(warm.ensure_grid(&p, 5), 0);
        assert_eq!(warm.stats.cached_builds, 1);
        // A different resolution is its own cold build.
        assert!(warm.ensure_grid(&p, 8) > 0);
        assert_eq!(warm.stats.cold_builds, 2);
    }

    /// The transferred hint must upper-bound the true linearized optimum
    /// at the new `c` whenever the certificate was valid at the old one.
    #[test]
    fn transferred_bound_dominates_the_true_grid_optimum() {
        let (game, model) = fixture();
        let p = RobustProblem::new(&game, &model);
        let k = 8;
        let mut warm = WarmState::new();
        warm.ensure_grid(&p, k);
        // True grid maxima at a sweep of c values, via exhaustive max of
        // Σ_i g on the (small) grid through the DP backend.
        let dp = crate::inner::DpInner::new(k);
        let g_max =
            |c: f64| crate::inner::InnerSolver::maximize_g(&dp, &p, c).ok().map(|r| r.g_value);
        let (lo, hi) = p.utility_range();
        for f_from in [0.55, 0.7, 0.9] {
            let c_from = lo + f_from * (hi - lo);
            let Some(true_from) = g_max(c_from) else { continue };
            // Pretend a solver proved the (valid) bound `true_from` there.
            warm.record_bound(k, c_from, true_from);
            for f_to in [0.4, 0.6, 0.8, 0.95] {
                let c_to = lo + f_to * (hi - lo);
                let hint = warm.transfer_hint(k, c_to).expect("hint");
                let Some(true_to) = g_max(c_to) else { continue };
                // The DP optimum is over grid points only; the linearized
                // optimum can exceed it between breakpoints, but grid
                // points are what the transfer rates were derived from,
                // so the grid optimum must respect the transferred bound.
                assert!(
                    true_to <= hint + 1e-9,
                    "c {c_from} -> {c_to}: grid optimum {true_to} exceeds hint {hint}"
                );
            }
        }
    }

    #[test]
    fn hint_requires_matching_resolution_and_certificate() {
        let (game, model) = fixture();
        let p = RobustProblem::new(&game, &model);
        let mut warm = WarmState::new();
        warm.ensure_grid(&p, 5);
        assert!(warm.transfer_hint(5, 0.0).is_none(), "no certificate yet");
        warm.record_bound(5, 0.0, -1.0);
        assert!(warm.transfer_hint(5, 0.5).is_some());
        assert!(warm.transfer_hint(7, 0.5).is_none(), "resolution mismatch");
        warm.record_bound(5, 0.0, f64::NAN);
        assert!(warm.transfer_hint(5, 0.5).is_some(), "NaN bound must not clobber");
    }
}
