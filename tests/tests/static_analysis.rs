//! Tier-1 gate: the `cubis-xtask analyze` numeric-safety pass must be
//! clean over the whole workspace.
//!
//! This is the enforcement half of the analyzer (its rule unit tests
//! live in `cubis-xtask` itself): any new raw float `==`, library
//! `unwrap`, NaN-hazardous comparator, weakened atomic ordering, or
//! unseeded RNG fails `cargo test -q` with the exact `path:line: [RULE]`
//! list, unless the site carries a justified `// cubis:allow(RULE): why`
//! annotation. See DESIGN.md §"Static analysis".

use cubis_xtask::analyze_workspace;
use std::path::Path;

fn workspace_root() -> &'static Path {
    // tests/ sits directly under the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests crate must live inside the workspace")
}

#[test]
fn workspace_has_no_numeric_safety_findings() {
    let findings = analyze_workspace(workspace_root()).expect("analyzer walked the workspace");
    assert!(
        findings.is_empty(),
        "cubis-xtask analyze found {} unsuppressed finding(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| format!("  {f}\n"))
            .collect::<String>()
    );
}

#[test]
fn analyzer_sees_the_solver_crates() {
    // Guard against the gate silently passing because the directory walk
    // broke or the root was mislocated.
    let root = workspace_root();
    assert!(
        root.join("crates/lp/src/simplex.rs").exists(),
        "root mislocated: {root:?}"
    );
    assert!(root.join("crates/xtask/src/lib.rs").exists());
}

#[test]
fn gate_is_live() {
    // The clean-workspace assertion above is only meaningful if the
    // analyzer still fires on bad code; feed it a known-bad snippet.
    let findings = cubis_xtask::analyze_source(
        Path::new("crates/demo/src/lib.rs"),
        cubis_xtask::FileClass::Library,
        "pub fn f(a: f64) -> f64 { if a == 0.25 { a } else { g().unwrap() } }",
    );
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, ["NUM01", "NUM02"], "{findings:?}");
}
