//! Regenerates T1 (see DESIGN.md §4). Set CUBIS_TRACE=1 (or a path)
//! to also capture a solve journal (default `table1.trace.json`);
//! render it with `cubis-xtask trace-report`.

use cubis_eval::trace::{self, TraceSink};

fn main() {
    let sink = TraceSink::from_env("table1.trace.json");
    cubis_eval::experiments::table1::run_traced(&trace::recorder_or_null(sink.as_ref()))
        .expect("experiment failed")
        .print();
    trace::finish(sink.as_ref());
}
