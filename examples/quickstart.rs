//! Quickstart: build a small security game with behavioral uncertainty
//! and compute the robust defender strategy with CUBIS.
//!
//! ```sh
//! cargo run --release --bin quickstart
//! ```

use cubis_behavior::{BoundConvention, SuqrUncertainty, SuqrWeights, UncertainSuqr};
use cubis_core::{Cubis, MilpInner, RobustProblem};
use cubis_game::{SecurityGame, TargetPayoffs};

fn main() {
    // 1. A game: three targets, one patrol unit. Payoff order per target:
    //    defender reward, defender penalty, attacker reward, attacker penalty.
    let game = SecurityGame::new(
        vec![
            TargetPayoffs::new(4.0, -5.0, 6.0, -4.0), // high-value, exposed
            TargetPayoffs::new(3.0, -2.0, 3.0, -3.0), // modest
            TargetPayoffs::new(5.0, -8.0, 8.0, -6.0), // critical
        ],
        1.0,
    );

    // 2. An attacker model with uncertainty: SUQR weights only known to
    //    lie in a box around the literature point estimate, and payoff
    //    perception known to ±1.0.
    let weights = SuqrUncertainty::around(SuqrWeights::LITERATURE, 0.4);
    let model =
        UncertainSuqr::from_game(&game, weights, 1.0, BoundConvention::ExactInterval);

    // 3. Solve the robust maximin problem (5) with CUBIS: binary search
    //    over the defender-utility value, each step a piecewise-linear
    //    MILP with K = 10 segments.
    let problem = RobustProblem::new(&game, &model);
    let solution = Cubis::new(MilpInner::new(10))
        .with_epsilon(1e-3)
        .solve(&problem)
        .expect("solve");

    println!("robust coverage:   {:?}", round3(&solution.x));
    println!("worst-case utility: {:+.3}", solution.worst_case);
    let cert = solution.certificate();
    println!(
        "certificate:       ub - lb = {:.1e} with K = {:?}  (Theorem 1: O(eps + 1/K))",
        cert.gap, cert.k
    );

    // 4. Compare with the naive defender that trusts the midpoint
    //    parameter estimates.
    let midpoint = cubis_solvers::solve_midpoint_params(&game, &model, 100, 1e-3).unwrap();
    let wc_mid = problem.worst_case(&midpoint).utility;
    println!("\nmidpoint coverage: {:?}", round3(&midpoint));
    println!("its worst case:     {wc_mid:+.3}");
    println!(
        "robustness gain:    {:+.3} utility in the worst case",
        solution.worst_case - wc_mid
    );
}

fn round3(x: &[f64]) -> Vec<f64> {
    x.iter().map(|v| (v * 1000.0).round() / 1000.0).collect()
}
