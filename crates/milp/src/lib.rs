//! Mixed-integer linear programming via branch-and-bound.
//!
//! The paper solves its per-binary-search-step MILP (equations 33–40)
//! with CPLEX; this crate is the from-scratch replacement. It layers a
//! branch-and-bound search over the [`cubis_lp`] simplex:
//!
//! * best-bound node selection with a depth tie-break (plunging),
//! * most-fractional branching with optional per-variable priorities,
//! * an LP-rounding primal heuristic at the root,
//! * warm incumbents (callers can seed a known feasible solution, which
//!   the CUBIS driver does with its dynamic-programming solution),
//! * optional rayon-parallel node processing sharing one incumbent.
//!
//! Exactness: with default tolerances the search is exhaustive, so the
//! returned solution is optimal up to the LP tolerances — matching what
//! CPLEX would report with `mipgap = 0`.
//!
//! # Example
//!
//! ```
//! use cubis_lp::{LpProblem, Sense, Relation};
//! use cubis_milp::{MilpProblem, MilpOptions, solve_milp, MilpStatus};
//!
//! // max x + y, x,y ∈ {0,1}, x + y <= 1.5  → optimum 1.
//! let mut lp = LpProblem::new(Sense::Maximize);
//! let x = lp.add_var("x", 0.0, 1.0, 1.0);
//! let y = lp.add_var("y", 0.0, 1.0, 1.0);
//! lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 1.5);
//! let milp = MilpProblem { lp, integers: vec![x, y] };
//! let sol = solve_milp(&milp, &MilpOptions::default()).unwrap();
//! assert_eq!(sol.status, MilpStatus::Optimal);
//! assert!((sol.objective - 1.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod parallel;

pub use branch::{solve_milp, Branching, MilpError, MilpOptions, MilpSolution, MilpStatus};

use cubis_lp::{LpProblem, VarId};

/// A mixed-integer linear program: an LP plus a set of variables that
/// must take integral values.
#[derive(Debug, Clone)]
pub struct MilpProblem {
    /// The linear relaxation (objective, bounds, rows).
    pub lp: LpProblem,
    /// Variables constrained to integer values. Bounds come from the LP.
    pub integers: Vec<VarId>,
}

impl MilpProblem {
    /// True if `x` satisfies integrality within `tol` on all integer vars.
    pub fn is_integral(&self, x: &[f64], tol: f64) -> bool {
        self.integers
            .iter()
            .all(|v| (x[v.index()] - x[v.index()].round()).abs() <= tol)
    }

    /// Maximum violation of LP constraints/bounds plus integrality at `x`.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let lp_v = self.lp.max_violation(x);
        let int_v = self
            .integers
            .iter()
            .map(|v| (x[v.index()] - x[v.index()].round()).abs())
            .fold(0.0f64, f64::max);
        lp_v.max(int_v)
    }
}
