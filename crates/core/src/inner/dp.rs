//! Grid dynamic program for the inner maximization.
//!
//! Discretize coverage into `P` points per unit (`x_i = a_i / P`,
//! `a_i ∈ {0..P}`) and the budget into `B = ⌊R·P⌉` units; then
//! `max Σ_i g_i(a_i/P)` subject to `Σ a_i ≤ B` (or `= B`) is a bounded
//! knapsack solved in `O(T·B·P)` time and `O(T·B)` memory (for the
//! backtracking table).
//!
//! Unlike the MILP backend this evaluates the **true** `f1/f2` at every
//! grid point — there is no linearization error, only grid granularity —
//! which is what makes it a good reference for the Theorem-1
//! experiments.

use super::{BudgetMode, InnerResult, InnerSolver, InnerStats, SolveError};
use crate::problem::RobustProblem;
use crate::transform;
use cubis_behavior::IntervalChoiceModel;

/// Dynamic-programming inner maximizer.
#[derive(Debug, Clone, Copy)]
pub struct DpInner {
    /// Grid points per unit coverage (the effective `K`).
    pub points_per_unit: usize,
    /// Budget handling.
    pub budget: BudgetMode,
}

impl DpInner {
    /// A DP backend with `points_per_unit = p` and the paper's `≤ R`
    /// budget.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "DpInner: points_per_unit must be positive");
        Self { points_per_unit: p, budget: BudgetMode::AtMost }
    }

    /// Use exact budget `Σ x_i = R` instead.
    pub fn exact_budget(mut self) -> Self {
        self.budget = BudgetMode::Exact;
        self
    }

    /// The knapsack over precomputed per-target value tables
    /// `values[i][a] = g_i(a/P; c)`. Split out from
    /// [`InnerSolver::maximize_g`] so the warm-start path can feed in
    /// cached grid values — the tables fully determine the result, so
    /// identical tables give a bitwise-identical solve. `evaluations`
    /// is the fresh-model-evaluation count to report (0 on a cache hit).
    pub(crate) fn solve_on_values<M: IntervalChoiceModel>(
        &self,
        p: &RobustProblem<'_, M>,
        c: f64,
        values: &[Vec<f64>],
        evaluations: usize,
    ) -> Result<InnerResult, SolveError> {
        let t = values.len();
        let pp = self.points_per_unit;
        let budget = (p.resources() * pp as f64).round() as usize;
        let budget = budget.min(t * pp);

        const NEG: f64 = f64::NEG_INFINITY;
        // dp[b] = best value with the first `i` targets using
        // (AtMost: at most, Exact: exactly) b units.
        let mut dp = vec![NEG; budget + 1];
        match self.budget {
            BudgetMode::AtMost => dp.fill(0.0),
            BudgetMode::Exact => dp[0] = 0.0,
        }
        // choice[i][b]: units given to target i in the optimum for (i, b).
        let mut choice = vec![vec![0u32; budget + 1]; t];

        for i in 0..t {
            let mut next = vec![NEG; budget + 1];
            for b in 0..=budget {
                let a_max = b.min(pp);
                let mut best = NEG;
                let mut best_a = 0u32;
                for a in 0..=a_max {
                    let prev = dp[b - a];
                    if prev == NEG {
                        continue;
                    }
                    let v = prev + values[i][a];
                    if super::improves(v, best) {
                        best = v;
                        best_a = a as u32;
                    }
                }
                next[b] = best;
                choice[i][b] = best_a;
            }
            dp = next;
        }

        // Pick the best budget level (AtMost: dp is already cumulative in
        // the "at most" sense because every level allows a = 0; still
        // scan for safety. Exact: only the full budget qualifies).
        let (mut b, g_value) = match self.budget {
            BudgetMode::AtMost => {
                let mut best = (0usize, NEG);
                for (bb, &v) in dp.iter().enumerate() {
                    if super::improves(v, best.1) {
                        best = (bb, v);
                    }
                }
                best
            }
            BudgetMode::Exact => (budget, dp[budget]),
        };
        if !g_value.is_finite() {
            return Err(SolveError::UnexpectedInfeasible { c });
        }

        // Backtrack the allocation.
        let mut x = vec![0.0f64; t];
        for i in (0..t).rev() {
            let a = choice[i][b] as usize;
            x[i] = a as f64 / pp as f64;
            b -= a;
        }

        Ok(InnerResult {
            g_value,
            x,
            gap: 0.0,
            stats: InnerStats { milp_nodes: 0, lp_iterations: 0, evaluations },
        })
    }
}

impl InnerSolver for DpInner {
    fn maximize_g<M: IntervalChoiceModel>(
        &self,
        p: &RobustProblem<'_, M>,
        c: f64,
    ) -> Result<InnerResult, SolveError> {
        let t = p.num_targets();
        let pp = self.points_per_unit;

        // Per-target values at each allocation level.
        let mut values = vec![vec![0.0f64; pp + 1]; t];
        let mut evaluations = 0usize;
        for (i, row) in values.iter_mut().enumerate() {
            for (a, slot) in row.iter_mut().enumerate() {
                *slot = transform::g(p, i, a as f64 / pp as f64, c);
                evaluations += 1;
            }
        }
        self.solve_on_values(p, c, &values, evaluations)
    }

    /// Warm probe: the grid samples `(L, U, Ud)` are `c`-independent, so
    /// after the first probe the value tables are reassembled from the
    /// cache with zero model evaluations. [`crate::warm::GridSamples::g`]
    /// uses the same branch arithmetic as [`transform::g`], so the solve
    /// is bitwise identical to the cold path.
    fn feasibility_g_warm<M: IntervalChoiceModel>(
        &self,
        p: &RobustProblem<'_, M>,
        c: f64,
        tol: f64,
        warm: &mut crate::warm::WarmState,
    ) -> Result<InnerResult, SolveError> {
        let fresh = warm.ensure_grid(p, self.points_per_unit);
        match warm.g_values(self.points_per_unit, c) {
            Some(values) => self.solve_on_values(p, c, &values, fresh),
            // Unreachable in practice (ensure_grid just built it); fall
            // back to the cold path rather than assert.
            None => self.feasibility_g(p, c, tol),
        }
    }

    fn resolution(&self) -> Option<usize> {
        Some(self.points_per_unit)
    }

    fn name(&self) -> &'static str {
        "dp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubis_behavior::{BoundConvention, SuqrUncertainty, UncertainSuqr};
    use cubis_game::{GameGenerator, SecurityGame, TargetPayoffs};

    fn small() -> (SecurityGame, UncertainSuqr) {
        let game = SecurityGame::new(
            vec![
                TargetPayoffs::new(5.0, -3.0, 3.0, -5.0),
                TargetPayoffs::new(7.0, -7.0, 7.0, -7.0),
                TargetPayoffs::new(2.0, -4.0, 4.0, -2.0),
            ],
            1.0,
        );
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            0.5,
            BoundConvention::ExactInterval,
        );
        (game, model)
    }

    #[test]
    fn dp_matches_exhaustive_grid_enumeration() {
        let (game, model) = small();
        let p = RobustProblem::new(&game, &model);
        let pp = 6usize;
        let dp = DpInner::new(pp);
        for &c in &[-4.0, -1.0, 0.0, 1.5] {
            let res = dp.maximize_g(&p, c).unwrap();
            // Enumerate all (a0, a1, a2) with Σ ≤ R·pp.
            let budget = (game.resources() * pp as f64).round() as usize;
            let mut best = f64::NEG_INFINITY;
            for a0 in 0..=pp.min(budget) {
                for a1 in 0..=pp.min(budget - a0) {
                    for a2 in 0..=pp.min(budget - a0 - a1) {
                        let x = [
                            a0 as f64 / pp as f64,
                            a1 as f64 / pp as f64,
                            a2 as f64 / pp as f64,
                        ];
                        best = best.max(transform::g_total(&p, &x, c));
                    }
                }
            }
            assert!(
                (res.g_value - best).abs() < 1e-9,
                "c={c}: dp {} vs brute {best}",
                res.g_value
            );
            // The reported x must achieve the reported value.
            assert!(
                (transform::g_total(&p, &res.x, c) - res.g_value).abs() < 1e-9
            );
        }
    }

    #[test]
    fn dp_solution_is_budget_feasible() {
        let (game, model) = small();
        let p = RobustProblem::new(&game, &model);
        let res = DpInner::new(10).maximize_g(&p, 0.0).unwrap();
        let total: f64 = res.x.iter().sum();
        assert!(total <= game.resources() + 1e-9);
        assert!(res.x.iter().all(|&xi| (0.0..=1.0).contains(&xi)));
    }

    #[test]
    fn exact_budget_uses_all_resources() {
        let (game, model) = small();
        let p = RobustProblem::new(&game, &model);
        let res = DpInner::new(10).exact_budget().maximize_g(&p, 0.0).unwrap();
        let total: f64 = res.x.iter().sum();
        assert!((total - game.resources()).abs() < 1e-9);
    }

    #[test]
    fn at_most_is_no_worse_than_exact() {
        let (game, model) = small();
        let p = RobustProblem::new(&game, &model);
        for &c in &[-3.0, 0.0, 2.0] {
            let at_most = DpInner::new(8).maximize_g(&p, c).unwrap();
            let exact = DpInner::new(8).exact_budget().maximize_g(&p, c).unwrap();
            assert!(at_most.g_value >= exact.g_value - 1e-12, "c={c}");
        }
    }

    #[test]
    fn finer_grid_never_hurts() {
        let (game, model) = small();
        let p = RobustProblem::new(&game, &model);
        for &c in &[-2.0, 0.5] {
            let coarse = DpInner::new(4).maximize_g(&p, c).unwrap();
            let fine = DpInner::new(8).maximize_g(&p, c).unwrap();
            // Coarse grid points are a subset of fine grid points.
            assert!(fine.g_value >= coarse.g_value - 1e-12, "c={c}");
        }
    }

    #[test]
    fn low_c_is_feasible_high_c_is_not() {
        // G ≥ 0 at c = min Pd (Section IV); G < 0 at c = max Rd for
        // games where no strategy achieves the best reward surely.
        let mut gen = GameGenerator::new(2);
        let game = gen.generate(5, 2.0);
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            0.5,
            BoundConvention::ExactInterval,
        );
        let p = RobustProblem::new(&game, &model);
        let dp = DpInner::new(20);
        let (lo, hi) = p.utility_range();
        assert!(dp.maximize_g(&p, lo).unwrap().g_value >= -1e-12);
        assert!(dp.maximize_g(&p, hi).unwrap().g_value <= 1e-9);
    }
}
