//! A minimal, self-contained JSON reader/writer.
//!
//! The journal format (see [`crate::Journal`]) must serialize without
//! pulling serde into the solver crates, so this module implements the
//! small JSON subset the journal needs: objects, arrays, strings,
//! numbers, booleans and null. Non-finite floats have no JSON literal;
//! the event codec in [`crate::event`] encodes them as the strings
//! `"NaN"`, `"Infinity"` and `"-Infinity"` and accepts either form when
//! reading.

use std::fmt;
use std::fmt::Write as _;

/// Maximum nesting depth accepted by the parser. Journals nest three
/// levels deep; the cap only exists to keep malicious input from
/// overflowing the stack.
const MAX_DEPTH: usize = 128;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Always finite: the grammar has no literal for
    /// NaN or the infinities.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as an ordered list of `(key, value)` pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // cubis:allow(NUM01): exact integrality test on the parsed value, not a tolerance check
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The numeric value as a `usize`, if it is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Append this value's JSON form to `out`. A non-finite `Num`
    /// (unreachable through the event codec) is written as `null`.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Num(v) => {
                if v.is_finite() {
                    // `{}` on f64 is the shortest representation that
                    // round-trips through `str::parse::<f64>`.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_json_string(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escape `s` and append it, quoted, to `out`.
fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse `src` as a single JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(src: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                // High surrogate: expect a \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if (0xdc00..0xe000).contains(&low) {
                                        let combined =
                                            0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                                        char::from_u32(combined)
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input is a &str, so
                    // slicing at a char boundary is always possible.
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    /// Read exactly four hex digits (after `\u`).
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let v: f64 = text.parse().map_err(|_| JsonError {
            offset: start,
            message: format!("invalid number '{text}'"),
        })?;
        if v.is_finite() {
            Ok(JsonValue::Num(v))
        } else {
            Err(JsonError {
                offset: start,
                message: "number out of range".to_string(),
            })
        }
    }
}

/// Byte length of the UTF-8 sequence starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for src in ["null", "true", "false", "0", "-1.5", "1e-3", "\"hi\""] {
            let v = parse(src).unwrap();
            let back = parse(&v.to_json_string()).unwrap();
            assert_eq!(v, back, "{src}");
        }
    }

    #[test]
    fn object_access_and_order() {
        let v = parse(r#"{"a": 1, "b": [true, null], "c": "x"}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(
            v.get("b").and_then(JsonValue::as_arr).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote\" slash\\ newline\n tab\t unicode\u{1f600} ctrl\u{01}";
        let mut out = String::new();
        write_json_string(original, &mut out);
        let parsed = parse(&out).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn surrogate_pair_decodes() {
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn lone_surrogate_becomes_replacement() {
        let v = parse(r#""\ud83d x""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{fffd} x"));
    }

    #[test]
    fn float_precision_survives() {
        let tricky = [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.2250738585072014e-308,
        ];
        for v in tricky {
            let s = JsonValue::Num(v).to_json_string();
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v}");
        }
    }

    #[test]
    fn rejects_garbage() {
        for src in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(parse(src).is_err(), "{src:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_fatal() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(&deep).is_err());
    }
}
