//! A minimal Rust token scanner for the static-analysis pass.
//!
//! This is *not* a full lexer for the language — it is exactly as much
//! lexer as the lint rules need: it distinguishes identifiers, numeric
//! literals (integer vs. float), string/char literals, lifetimes and
//! punctuation, and it is string/char/comment-aware so that rule
//! patterns never fire on text inside literals or comments. Raw
//! strings (`r#"…"#`), byte strings, raw identifiers (`r#match`),
//! nested block comments and escaped chars are all handled.
//!
//! Line comments are additionally scanned for the suppression syntax
//!
//! ```text
//! // cubis:allow(NUM01): justification explaining why this is sound
//! ```
//!
//! which the engine uses to suppress findings (see [`Allow`]).

/// Kind of a scanned token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, unprefixed).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// Integer literal (any base, with suffix).
    Int,
    /// Floating-point literal (`1.0`, `2.`, `1e-6`, `3f64`).
    Float,
    /// String literal of any flavor (raw, byte, C).
    Str,
    /// Character or byte literal.
    Char,
    /// Punctuation; multi-char operators (`==`, `::`, `..=`) are one token.
    Punct,
}

/// One scanned token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// Source text (for `Str`, the contents are not unescaped).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True if this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }
}

/// A parsed `// cubis:allow(RULE[, RULE…]): justification` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the comment appears on.
    pub line: u32,
    /// Line whose findings this comment suppresses: its own line for a
    /// trailing comment, the next token-bearing line for a standalone
    /// comment line (0 if it never resolved, e.g. at end of file).
    pub applies_to: u32,
    /// Upper-cased rule identifiers inside the parentheses.
    pub rules: Vec<String>,
    /// Free-text justification after the closing `):`. The engine
    /// reports an allow with an empty justification as a finding.
    pub justification: String,
}

/// Result of lexing one source file.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// All suppression comments, in source order.
    pub allows: Vec<Allow>,
}

/// Lex `src` into tokens and suppression comments. Never fails: on
/// malformed input the scanner degrades to single-char punctuation,
/// which at worst makes a rule miss — it cannot crash the pass.
pub fn lex(src: &str) -> LexOutput {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    /// Whether a token was already emitted on the current line (used to
    /// tell trailing `cubis:allow` comments from standalone ones).
    line_has_token: bool,
    out: LexOutput,
    /// Indices into `out.allows` of standalone allows still waiting for
    /// the next token-bearing line.
    pending_allows: Vec<usize>,
}

const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            line_has_token: false,
            out: LexOutput::default(),
            pending_allows: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.line_has_token = false;
            }
        }
        c
    }

    fn emit(&mut self, kind: TokKind, text: String, line: u32) {
        // A standalone allow comment applies to the next line that
        // carries any token.
        for idx in self.pending_allows.drain(..) {
            self.out.allows[idx].applies_to = line;
        }
        self.line_has_token = true;
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> LexOutput {
        while let Some(c) = self.peek(0) {
            if c == '\n' || c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c == '"' {
                self.string(false);
            } else if c == '\'' {
                self.char_or_lifetime();
            } else if c.is_ascii_digit() {
                self.number();
            } else if c.is_alphabetic() || c == '_' {
                self.ident_or_prefixed_literal();
            } else {
                self.punct();
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let standalone = !self.line_has_token;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // Suppressions live in plain `//` comments only; doc comments
        // (`///`, `//!`) merely *describe* the syntax.
        if !text.starts_with("///") && !text.starts_with("//!") {
            self.parse_allow(&text, line, standalone);
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Ordinary (escaped) or raw (verbatim) double-quoted string; the
    /// opening quote is at the current position.
    fn string(&mut self, raw: bool) {
        let line = self.line;
        let mut text = String::new();
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' && !raw {
                text.push(c);
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '"' {
                self.bump();
                break;
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.emit(TokKind::Str, text, line);
    }

    /// Raw string whose `r`/`br` prefix was already consumed; the
    /// current position is at the first `#` or the opening quote.
    fn raw_string(&mut self) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some('"') {
            // `r#ident` was handled by the caller; anything else here is
            // malformed — emit nothing and let punctuation lexing resume.
            return;
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.peek(0) {
            if c == '"' {
                // Check for the closing `"####…` run without consuming on failure.
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    break 'outer;
                }
            }
            text.push(c);
            self.bump();
        }
        self.emit(TokKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal, e.g. '\n', '\'', '\u{1F600}'.
                let mut text = String::from("\\");
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                    if e == 'u' && self.peek(0) == Some('{') {
                        while let Some(c) = self.bump() {
                            text.push(c);
                            if c == '}' {
                                break;
                            }
                        }
                    }
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.emit(TokKind::Char, text, line);
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                    self.emit(TokKind::Char, text, line);
                } else {
                    self.emit(TokKind::Lifetime, text, line);
                }
            }
            Some(c) => {
                // Punctuation char literal like '(' or ' '.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.emit(TokKind::Char, c.to_string(), line);
            }
            None => {}
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut float = false;
        let radix_prefixed = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'X' | 'b' | 'B' | 'o' | 'O'));
        if radix_prefixed {
            text.push(self.bump().unwrap_or('0'));
            text.push(self.bump().unwrap_or('x'));
            while let Some(c) = self.peek(0) {
                if c.is_ascii_hexdigit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        } else {
            while let Some(c) = self.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            // Fractional part: `1.5`, or a trailing `2.` that is not a
            // range (`1..n`), field access (`x.1.max(…)`) or method call.
            if self.peek(0) == Some('.') {
                match self.peek(1) {
                    Some(d) if d.is_ascii_digit() => {
                        float = true;
                        text.push('.');
                        self.bump();
                        while let Some(c) = self.peek(0) {
                            if c.is_ascii_digit() || c == '_' {
                                text.push(c);
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    Some(d) if d == '.' || d.is_alphabetic() || d == '_' => {}
                    _ => {
                        float = true;
                        text.push('.');
                        self.bump();
                    }
                }
            }
            // Exponent: `1e6`, `2.5E-3`.
            if matches!(self.peek(0), Some('e' | 'E')) {
                let (a, b) = (self.peek(1), self.peek(2));
                let has_exp = matches!(a, Some(d) if d.is_ascii_digit())
                    || (matches!(a, Some('+' | '-')) && matches!(b, Some(d) if d.is_ascii_digit()));
                if has_exp {
                    float = true;
                    text.push(self.bump().unwrap_or('e'));
                    if matches!(self.peek(0), Some('+' | '-')) {
                        text.push(self.bump().unwrap_or('+'));
                    }
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        // Type suffix (`f64`, `u32`, …).
        let mut suffix = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if suffix.starts_with('f') && !radix_prefixed {
            float = true;
        }
        text.push_str(&suffix);
        let kind = if float { TokKind::Float } else { TokKind::Int };
        self.emit(kind, text, line);
    }

    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let is_str_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb" | "c" | "cr");
        match self.peek(0) {
            Some('"') if is_str_prefix => {
                if text.contains('r') {
                    self.raw_string();
                } else {
                    self.string(false);
                }
            }
            Some('#') if text == "r" => {
                // `r#"…"#` raw string vs `r#ident` raw identifier: look
                // past the run of hashes for a quote.
                let mut k = 0;
                while self.peek(k) == Some('#') {
                    k += 1;
                }
                if self.peek(k) == Some('"') {
                    self.raw_string();
                } else {
                    self.bump(); // single `#` of a raw identifier
                    let mut raw = String::new();
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            raw.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.emit(TokKind::Ident, raw, line);
                }
            }
            Some('#') if is_str_prefix && text != "r" => {
                self.raw_string();
            }
            Some('\'') if text == "b" => {
                // Byte literal b'x'.
                self.char_or_lifetime();
            }
            _ => self.emit(TokKind::Ident, text, line),
        }
    }

    fn punct(&mut self) {
        let line = self.line;
        for op in MULTI_PUNCT {
            let mut matches = true;
            for (k, oc) in op.chars().enumerate() {
                if self.peek(k) != Some(oc) {
                    matches = false;
                    break;
                }
            }
            if matches {
                for _ in 0..op.chars().count() {
                    self.bump();
                }
                self.emit(TokKind::Punct, (*op).to_string(), line);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.emit(TokKind::Punct, c.to_string(), line);
        }
    }

    fn parse_allow(&mut self, comment: &str, line: u32, standalone: bool) {
        let Some(start) = comment.find("cubis:allow(") else {
            return;
        };
        let after = &comment[start + "cubis:allow(".len()..];
        let Some(close) = after.find(')') else {
            // Malformed allow: record it with no rules so the engine can
            // flag it rather than silently ignoring the author's intent.
            self.out.allows.push(Allow {
                line,
                applies_to: line,
                rules: Vec::new(),
                justification: String::new(),
            });
            return;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_ascii_uppercase())
            .filter(|r| !r.is_empty())
            .collect();
        let rest = after[close + 1..].trim_start();
        let justification = rest.strip_prefix(':').unwrap_or(rest).trim().to_string();
        let idx = self.out.allows.len();
        self.out.allows.push(Allow {
            line,
            applies_to: if standalone { 0 } else { line },
            rules,
            justification,
        });
        if standalone {
            self.pending_allows.push(idx);
        }
    }
}
