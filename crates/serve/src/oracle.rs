//! The serve crate's differential oracles.
//!
//! **`cubis-serve-cache-vs-fresh`** — for any valid instance, a
//! from-scratch solve, the in-process handler's first (cache-miss)
//! response, and its second (cache-hit) response all produce
//! *bit-identical* solution bodies. That is the cache's correctness
//! contract — a hit is indistinguishable from a fresh solve at the
//! byte level — and it is checked through [`crate::app::App`], the
//! exact code path production requests take.
//!
//! **`cubis-serve-parser-incremental-vs-oneshot`** — the reactor's
//! resumable request parser ([`cubis_reactor::RequestParser`]) and
//! this crate's blocking one-shot parser ([`crate::http::read_request`])
//! implement the same grammar. For any instance, the oracle encodes a
//! real solve request, feeds it to the incremental parser in
//! seed-derived fragments (byte-split at arbitrary points, then
//! pipelined twice on one buffer), and demands field-for-field
//! agreement with the one-shot parse; a mangled request line must be
//! rejected by *both*. This is what lets the reactor replace the old
//! blocking front end without a wire-visible behavior change.
//!
//! The oracles are registered with `cubis-check` through the extras
//! extension point (`run_fuzz_with`), which exists precisely because
//! the dependency arrow points serve → check: the check crate cannot
//! name these oracles, so the xtask fuzz driver passes them in.

use cubis_check::oracles::{Oracle, OracleStatus};
use cubis_check::{CheckInstance, SplitMix64};
use cubis_core::Deadline;
use cubis_reactor::{ParseStep, RequestParser};

use crate::app::{App, CacheOutcome};
use crate::codec::{RequestPolicy, SolveRequest};
use crate::http;

/// The registry entry for this crate's differential oracle.
pub fn cache_vs_fresh_oracle() -> Oracle {
    Oracle {
        name: "cubis-serve-cache-vs-fresh",
        what: "serve handler twice (miss then hit) vs a from-scratch solve, byte-identical bodies",
        run: cache_vs_fresh,
    }
}

fn cache_vs_fresh(inst: &CheckInstance) -> Result<OracleStatus, String> {
    // Large grids make the DP solve the dominant fuzz cost; the cache
    // property is grid-size-independent, so bound the work.
    if inst.num_targets() > 5 || inst.pp > 6 {
        return Ok(OracleStatus::Skipped);
    }
    let app = App::new(2, 8);
    let fresh = app
        .solve_fresh(inst, Deadline::none(), RequestPolicy::Auto)
        .map_err(|e| format!("fresh solve failed: {e}"))?;
    let req =
        SolveRequest { instance: inst.clone(), deadline_ms: None, policy: RequestPolicy::Auto };
    let first = app.handle_solve(&req);
    if first.status != 200 {
        return Err(format!("first handler call: status {} body {}", first.status, first.body));
    }
    if first.cache != CacheOutcome::Miss {
        return Err(format!("first handler call was not a miss: {:?}", first.cache));
    }
    let second = app.handle_solve(&req);
    if second.status != 200 {
        return Err(format!("second handler call: status {} body {}", second.status, second.body));
    }
    if second.cache != CacheOutcome::Hit {
        return Err(format!("second handler call was not a hit: {:?}", second.cache));
    }
    if first.body != fresh {
        return Err(format!(
            "handler (miss) body diverges from from-scratch solve:\n  handler: {}\n  fresh:   {}",
            first.body, fresh
        ));
    }
    if second.body != first.body {
        return Err(format!(
            "cache hit body diverges from the miss that filled it:\n  hit:  {}\n  miss: {}",
            second.body, first.body
        ));
    }
    Ok(OracleStatus::Checked)
}

/// The registry entry for the parser-equivalence oracle.
pub fn parser_incremental_vs_oneshot_oracle() -> Oracle {
    Oracle {
        name: "cubis-serve-parser-incremental-vs-oneshot",
        what: "reactor's incremental request parser vs the one-shot parser, split/pipelined/mangled",
        run: parser_incremental_vs_oneshot,
    }
}

/// Parse `raw` with the one-shot blocking parser.
fn oneshot(raw: &[u8]) -> Result<http::Request, String> {
    http::read_request(&mut std::io::BufReader::new(raw))
        .map_err(|e| format!("one-shot parser rejected a well-formed request: {e}"))
}

/// Feed `raw` to a fresh incremental parser in `cuts`-delimited
/// fragments and pull out every completed request.
fn incremental(
    raw: &[u8],
    cuts: &[usize],
    expect: usize,
) -> Result<Vec<cubis_reactor::ParsedRequest>, String> {
    let mut parser = RequestParser::new(http::MAX_HEAD_BYTES, http::MAX_BODY_BYTES);
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut feed = |parser: &mut RequestParser, chunk: &[u8]| -> Result<(), String> {
        parser.push(chunk);
        loop {
            match parser.next_request() {
                ParseStep::NeedMore => return Ok(()),
                ParseStep::Ready(req) => out.push(req),
                ParseStep::Bad(err) => {
                    return Err(format!("incremental parser rejected a well-formed request: {err}"))
                }
            }
        }
    };
    for &cut in cuts {
        let cut = cut.min(raw.len());
        if cut > start {
            feed(&mut parser, &raw[start..cut])?;
            start = cut;
        }
    }
    if start < raw.len() {
        feed(&mut parser, &raw[start..])?;
    }
    if out.len() != expect {
        return Err(format!(
            "incremental parser produced {} requests from a buffer holding {expect}",
            out.len()
        ));
    }
    Ok(out)
}

fn same_request(a: &http::Request, b: &cubis_reactor::ParsedRequest) -> Result<(), String> {
    if a.method != b.method || a.path != b.path {
        return Err(format!(
            "request line disagrees: one-shot {} {} vs incremental {} {}",
            a.method, a.path, b.method, b.path
        ));
    }
    if a.headers != b.headers {
        return Err(format!(
            "headers disagree:\n  one-shot:    {:?}\n  incremental: {:?}",
            a.headers, b.headers
        ));
    }
    if a.body != b.body {
        return Err(format!(
            "bodies disagree ({} vs {} bytes)",
            a.body.len(),
            b.body.len()
        ));
    }
    Ok(())
}

fn parser_incremental_vs_oneshot(inst: &CheckInstance) -> Result<OracleStatus, String> {
    // Cheap by construction: encode, split, parse — never solve.
    let body = SolveRequest {
        instance: inst.clone(),
        deadline_ms: Some(1234),
        policy: RequestPolicy::Auto,
    }
    .to_json_string();
    let raw = format!(
        "POST /v1/solve HTTP/1.1\r\nhost: cubis\r\nX-Cubis-Seed: {:#x}\r\ncontent-length: {}\r\n\r\n{body}",
        inst.seed,
        body.len(),
    )
    .into_bytes();
    let reference = oneshot(&raw)?;

    // Split the byte stream at seed-derived points (sorted, possibly
    // duplicated — duplicates exercise empty pushes).
    let mut r = SplitMix64::new(inst.content_hash() ^ 0x9A75_E2C1_0F00_0D1E);
    let mut cuts: Vec<usize> = (0..r.range_usize(1, 9)).map(|_| r.range_usize(0, raw.len())).collect();
    cuts.sort_unstable();
    for req in incremental(&raw, &cuts, 1)? {
        same_request(&reference, &req)?;
    }

    // Pipelined: the same request twice on one buffer, split across
    // the request boundary.
    let mut doubled = raw.clone();
    doubled.extend_from_slice(&raw);
    let mut cuts: Vec<usize> =
        (0..r.range_usize(1, 9)).map(|_| r.range_usize(0, doubled.len())).collect();
    cuts.sort_unstable();
    for req in incremental(&doubled, &cuts, 2)? {
        same_request(&reference, &req)?;
    }

    // Mangled request line: both parsers must reject.
    let mangled: Vec<u8> = raw
        .iter()
        .map(|&b| if b == b'/' { b' ' } else { b })
        .collect();
    if oneshot(&mangled).is_ok() {
        return Err("one-shot parser accepted a mangled request line".to_string());
    }
    let mut parser = RequestParser::new(http::MAX_HEAD_BYTES, http::MAX_BODY_BYTES);
    parser.push(&mangled);
    match parser.next_request() {
        ParseStep::Bad(_) => {}
        step => {
            return Err(format!(
                "incremental parser did not reject a mangled request line: {step:?}"
            ))
        }
    }
    Ok(OracleStatus::Checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_passes_on_generated_instances() {
        let mut checked = 0;
        for seed in 0u64..8 {
            let inst = CheckInstance::generate(seed);
            match cache_vs_fresh(&inst).expect("oracle violation") {
                OracleStatus::Checked => checked += 1,
                OracleStatus::Skipped => {}
            }
        }
        assert!(checked > 0, "every instance was skipped — bounds too tight");
    }

    #[test]
    fn oracle_runs_inside_the_check_harness() {
        let report = cubis_check::run_fuzz_with(
            &cubis_check::FuzzConfig { seed: 42, iters: 3 },
            &[cache_vs_fresh_oracle()],
        );
        assert_eq!(report.cases_run, 3);
        assert!(
            report.failure.is_none(),
            "extras fuzz violation: {:?}",
            report.failure.map(|f| (f.oracle, f.detail))
        );
    }

    #[test]
    fn parser_oracle_checks_every_generated_instance() {
        for seed in 0u64..32 {
            let inst = CheckInstance::generate(seed);
            assert!(
                matches!(
                    parser_incremental_vs_oneshot(&inst).expect("parser oracle violation"),
                    OracleStatus::Checked
                ),
                "the parser oracle never skips"
            );
        }
    }

    #[test]
    fn parser_oracle_runs_inside_the_check_harness() {
        let report = cubis_check::run_fuzz_with(
            &cubis_check::FuzzConfig { seed: 7, iters: 16 },
            &[parser_incremental_vs_oneshot_oracle()],
        );
        assert_eq!(report.cases_run, 16);
        assert!(
            report.failure.is_none(),
            "parser fuzz violation: {:?}",
            report.failure.map(|f| (f.oracle, f.detail))
        );
    }
}
