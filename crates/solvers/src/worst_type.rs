//! Worst-type robust baseline (Brown et al., GameSec'14 flavor).
//!
//! Robustness against a *finite* set of attacker types: maximize
//! `min_t V_t(x)`. Like CUBIS, the value is found by binary search on
//! `c`: level `c` is achievable iff
//!
//! ```text
//! ∃x ∈ X :  Σ_i F_{t,i}(x_i)·(Ud_i(x_i) − c) ≥ 0   for every type t
//! ```
//!
//! (each `V_t(x) ≥ c` multiplied through by its positive normalizer).
//! Each per-type function is separable in the `x_i`, so the feasibility
//! problem is piecewise-linearized on the shared segment grid and posed
//! as one MILP: maximize the minimum type slack `s`; the level is
//! feasible iff `s* ≥ 0`. The only binaries are the shared fill-order
//! indicators `h_{i,k}`.

use crate::types::SampledType;
use cubis_game::SecurityGame;
use cubis_lp::{LpProblem, Relation, Sense, VarId};
use cubis_milp::{solve_milp, MilpOptions, MilpProblem, MilpStatus};

/// Options for [`solve_worst_type`].
#[derive(Debug, Clone)]
pub struct WorstTypeOptions {
    /// Piecewise segments per target.
    pub k: usize,
    /// Binary-search threshold.
    pub epsilon: f64,
    /// Branch-and-bound options for the per-step MILP.
    pub milp: MilpOptions,
    /// Observability sink. Disabled by default; when enabled,
    /// [`solve_worst_type`] emits a `worst_type.solve` span and a
    /// `worst_type.steps` counter, and propagates the recorder into
    /// the per-step MILPs unless `milp.recorder` was set separately.
    pub recorder: cubis_trace::SharedRecorder,
}

impl Default for WorstTypeOptions {
    fn default() -> Self {
        Self {
            k: 5,
            epsilon: 1e-2,
            milp: MilpOptions::default(),
            recorder: cubis_trace::SharedRecorder::null(),
        }
    }
}

/// Errors from the worst-type solver.
#[derive(Debug, Clone)]
pub enum WorstTypeError {
    /// The MILP backend failed.
    Milp(String),
}

impl std::fmt::Display for WorstTypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorstTypeError::Milp(m) => write!(f, "worst-type MILP failure: {m}"),
        }
    }
}

impl std::error::Error for WorstTypeError {}

/// Maximize the minimum expected utility across the given attacker
/// types. Returns the robust coverage vector.
///
/// # Panics
/// Panics if `types` is empty.
pub fn solve_worst_type(
    game: &SecurityGame,
    types: &[SampledType],
    opts: &WorstTypeOptions,
) -> Result<Vec<f64>, WorstTypeError> {
    assert!(!types.is_empty(), "solve_worst_type: no types");
    let _span = opts.recorder.span("worst_type.solve");
    // Propagate the recorder into the per-step MILPs unless the caller
    // routed them elsewhere.
    let mut owned;
    let opts = if opts.recorder.enabled() && !opts.milp.recorder.enabled() {
        owned = opts.clone();
        owned.milp.recorder = opts.recorder.clone();
        &owned
    } else {
        opts
    };
    let mut lo = game.min_defender_utility();
    let mut hi = game.max_defender_utility();
    let mut best = max_min_slack(game, types, opts, lo)?.1;
    opts.recorder.counter("worst_type.steps", 1);
    while hi - lo > opts.epsilon {
        let mid = 0.5 * (lo + hi);
        let (slack, x) = max_min_slack(game, types, opts, mid)?;
        opts.recorder.counter("worst_type.steps", 1);
        if slack >= -1e-9 {
            lo = mid;
            best = x;
        } else {
            hi = mid;
        }
    }
    Ok(best)
}

/// Solve `max_x min_t Σ_i ē_{t,i}(x_i)` for level `c`; returns the
/// optimal (scaled) slack and the maximizing coverage.
fn max_min_slack(
    game: &SecurityGame,
    types: &[SampledType],
    opts: &WorstTypeOptions,
    c: f64,
) -> Result<(f64, Vec<f64>), WorstTypeError> {
    let t_count = game.num_targets();
    let k = opts.k;
    let kf = k as f64;
    let seg = 1.0 / kf;
    let mut lp = LpProblem::new(Sense::Maximize);

    // Shared coverage segments (in segment units z = K·x ∈ [0,1], for
    // conditioning — see cubis-core's MILP builder) and fill-order
    // binaries.
    let xv: Vec<Vec<VarId>> = (0..t_count)
        .map(|i| (0..k).map(|j| lp.add_var(format!("z_{i}_{j}"), 0.0, 1.0, 0.0)).collect())
        .collect();
    let hv: Vec<Vec<VarId>> = (0..t_count)
        .map(|i| {
            (0..k - 1).map(|j| lp.add_var(format!("h_{i}_{j}"), 0.0, 1.0, 0.0)).collect()
        })
        .collect();
    let slack = lp.add_var("s", f64::NEG_INFINITY, f64::INFINITY, 1.0);

    for i in 0..t_count {
        for j in 0..k - 1 {
            lp.add_constraint(vec![(hv[i][j], 1.0), (xv[i][j], -1.0)], Relation::Le, 0.0);
            lp.add_constraint(vec![(xv[i][j + 1], 1.0), (hv[i][j], -1.0)], Relation::Le, 0.0);
        }
    }
    lp.add_constraint(
        xv.iter().flatten().map(|&v| (v, 1.0)).collect(),
        Relation::Le,
        kf * game.resources(),
    );

    // One linearized constraint per type:
    //   Σ_i [e0_{t,i} + Σ_k s_{t,i,k}·x_{i,k}] ≥ s.
    // Each type's row is normalized (divided by its largest coefficient)
    // so the shared slack is comparable across types and the LP is well
    // scaled; this preserves the *sign* of the slack, which is all the
    // binary search consumes.
    for ty in types {
        let e = |i: usize, x: f64| -> f64 {
            let logf = cubis_behavior::clamp_exponent(ty.log_attractiveness(i, x));
            logf.exp() * (game.defender_utility(i, x) - c)
        };
        let mut offset = 0.0;
        let mut terms: Vec<(VarId, f64)> = Vec::with_capacity(t_count * k + 1);
        let mut scale = 0.0f64;
        let mut slopes = vec![vec![0.0; k]; t_count];
        for i in 0..t_count {
            let mut prev = e(i, 0.0);
            offset += prev;
            scale = scale.max(prev.abs());
            for j in 0..k {
                let cur = e(i, (j + 1) as f64 * seg);
                // Slope per *segment unit* of z (= per 1/K of coverage).
                slopes[i][j] = cur - prev;
                scale = scale.max(cur.abs());
                prev = cur;
            }
        }
        let scale = if scale > 0.0 { scale } else { 1.0 };
        for i in 0..t_count {
            for j in 0..k {
                terms.push((xv[i][j], slopes[i][j] / scale));
            }
        }
        terms.push((slack, -1.0));
        lp.add_constraint(terms, Relation::Ge, -offset / scale);
    }

    let integers: Vec<VarId> = hv.iter().flatten().copied().collect();
    let prob = MilpProblem { lp, integers };
    let sol = solve_milp(&prob, &opts.milp).map_err(|e| WorstTypeError::Milp(e.to_string()))?;
    match sol.status {
        MilpStatus::Optimal => {}
        other => return Err(WorstTypeError::Milp(format!("status {other:?} at c = {c}"))),
    }
    let x: Vec<f64> = xv
        .iter()
        .map(|row| (row.iter().map(|&v| sol.x[v.index()]).sum::<f64>() / kf).clamp(0.0, 1.0))
        .collect();
    Ok((sol.objective, x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::sample_types;
    use cubis_behavior::{BoundConvention, SuqrUncertainty, UncertainSuqr};
    use cubis_game::GameGenerator;

    fn fixture(seed: u64, t: usize, r: f64) -> (SecurityGame, Vec<SampledType>) {
        let game = GameGenerator::new(seed).generate(t, r);
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            0.5,
            BoundConvention::ExactInterval,
        );
        let types = sample_types(&model, 6, seed);
        (game, types)
    }

    fn min_type_utility(game: &SecurityGame, types: &[SampledType], x: &[f64]) -> f64 {
        types
            .iter()
            .map(|t| t.defender_utility(game, x))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn output_feasible() {
        let (game, types) = fixture(80, 4, 2.0);
        let x = solve_worst_type(&game, &types, &WorstTypeOptions::default()).unwrap();
        assert!(x.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        assert!(x.iter().sum::<f64>() <= game.resources() + 1e-6);
    }

    #[test]
    fn beats_uniform_on_worst_type_objective() {
        let (game, types) = fixture(81, 5, 2.0);
        let x = solve_worst_type(&game, &types, &WorstTypeOptions::default()).unwrap();
        let uni = cubis_game::uniform_coverage(5, 2.0);
        // Allow a small linearization slack (K = 5 by default).
        assert!(
            min_type_utility(&game, &types, &x)
                >= min_type_utility(&game, &types, &uni) - 0.15,
            "worst-type {} vs uniform {}",
            min_type_utility(&game, &types, &x),
            min_type_utility(&game, &types, &uni)
        );
    }

    #[test]
    fn single_type_reduces_to_point_best_response() {
        let (game, types) = fixture(82, 4, 1.0);
        let single = &types[2..3];
        let opts = WorstTypeOptions { k: 12, epsilon: 5e-3, ..Default::default() };
        let x = solve_worst_type(&game, single, &opts).unwrap();
        let x_point = crate::midpoint::solve_point_qr(&game, &single[0], 60, 1e-3).unwrap();
        let v_wt = single[0].defender_utility(&game, &x);
        let v_pt = single[0].defender_utility(&game, &x_point);
        assert!((v_wt - v_pt).abs() < 0.25, "wt {v_wt} vs point {v_pt}");
    }
}
