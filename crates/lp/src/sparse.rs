//! Compressed sparse column storage for the canonical constraint matrix.
//!
//! The CUBIS MILP relaxations are block-structured and sparse — a few
//! nonzeros per column (a segment variable touches its expected-utility
//! row, a fill-order pair and the budget row) — so the revised simplex
//! prices and FTRANs against columns directly instead of materializing
//! the dense `B⁻¹·A` tableau the previous implementation maintained.

/// Immutable sparse matrix in compressed-sparse-column (CSC) layout.
#[derive(Debug, Clone)]
pub(crate) struct SparseMat {
    m: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMat {
    /// Build from per-column `(row, value)` lists. Entries with a
    /// bit-exact zero value are dropped; duplicate rows per column are
    /// a caller bug (the modeling layer merges terms).
    pub fn from_columns(m: usize, cols: &[Vec<(usize, f64)>]) -> Self {
        let nnz: usize = cols.iter().map(Vec::len).sum();
        let mut col_ptr = Vec::with_capacity(cols.len() + 1);
        let mut row_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        col_ptr.push(0);
        for col in cols {
            for &(r, v) in col {
                debug_assert!(r < m, "sparse entry row out of range");
                // cubis:allow(NUM01): exact-zero entries carry no
                // information in a sparse store; tiny nonzeros are kept.
                if v != 0.0 {
                    row_idx.push(r);
                    values.push(v);
                }
            }
            col_ptr.push(row_idx.len());
        }
        Self { m, col_ptr, row_idx, values }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Sparse view of column `j`: parallel `(rows, values)` slices.
    #[inline]
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Sparse dot product `yᵀ·a_j` against a dense vector.
    #[inline]
    pub fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        let mut s = 0.0;
        for (&r, &v) in rows.iter().zip(vals) {
            s += y[r] * v;
        }
        s
    }

    /// `out += scale · a_j` (dense accumulate of a sparse column).
    #[inline]
    pub fn col_axpy(&self, j: usize, scale: f64, out: &mut [f64]) {
        let (rows, vals) = self.col(j);
        for (&r, &v) in rows.iter().zip(vals) {
            out[r] += scale * v;
        }
    }

    /// Infinity norm over all stored entries.
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0f64, |a, v| a.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_reads_columns() {
        let m = SparseMat::from_columns(
            3,
            &[vec![(0, 1.0), (2, -2.0)], vec![], vec![(1, 0.5), (2, 0.0)]],
        );
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.col(0), (&[0usize, 2][..], &[1.0, -2.0][..]));
        assert_eq!(m.col(1), (&[][..], &[][..]));
        // Exact zeros are dropped from storage.
        assert_eq!(m.col(2), (&[1usize][..], &[0.5][..]));
        assert_eq!(m.col_dot(0, &[3.0, 10.0, 1.0]), 1.0);
        let mut acc = vec![0.0; 3];
        m.col_axpy(0, 2.0, &mut acc);
        assert_eq!(acc, vec![2.0, 0.0, -4.0]);
        assert_eq!(m.max_abs(), 2.0);
    }
}
