//! **F2 — worst-case utility vs number of targets.**

use super::{robust_value, Baseline, Profile};
use crate::fixtures::workload;
use crate::metrics::Series;
use crate::report::Report;
use cubis_core::SolveError;
use rayon::prelude::*;

/// The target-count grid (resources scale as ⌈T/4⌉).
pub const TARGETS: [usize; 5] = [2, 5, 10, 20, 40];
/// Fixed uncertainty level.
pub const DELTA: f64 = 0.5;

/// Run the experiment.
pub fn run(profile: Profile) -> Result<Report, SolveError> {
    let seeds: Vec<u64> = (0..profile.seeds()).collect();
    let zoo = Baseline::all();
    let jobs: Vec<(usize, u64, Baseline)> = TARGETS
        .iter()
        .enumerate()
        .flat_map(|(ti, _)| {
            seeds
                .iter()
                .flat_map(move |&s| Baseline::all().into_iter().map(move |b| (ti, s, b)))
        })
        .collect();
    let cells: Vec<((usize, Baseline), f64)> = jobs
        .into_par_iter()
        .map(|(ti, seed, b)| {
            let t = TARGETS[ti];
            let r = (t as f64 / 4.0).ceil();
            let (game, model) = workload(seed, t, r, DELTA);
            let x = b.solve(&game, &model, seed)?;
            Ok(((ti, b), robust_value(&game, &model, &x)))
        })
        .collect::<Result<_, SolveError>>()?;

    let mut series: std::collections::HashMap<(usize, Baseline), Series> =
        std::collections::HashMap::new();
    for (key, v) in cells {
        series.entry(key).or_default().push(v);
    }

    let mut header = vec!["targets".to_string()];
    header.extend(zoo.iter().map(|b| b.name().to_string()));
    let mut r = Report::new(
        "F2 — worst-case defender utility vs number of targets",
        header.iter().map(String::as_str).collect(),
    );
    r.note(format!(
        "δ = {DELTA}, R = ⌈T/4⌉, {} seeded games per size; exact worst-case \
         utility, mean ± std. Expected shape: CUBIS's margin over the \
         non-robust baselines persists across sizes.",
        profile.seeds()
    ));
    for (ti, t) in TARGETS.iter().enumerate() {
        let mut row = vec![format!("{t}")];
        for b in zoo {
            row.push(series[&(ti, b)].summary());
        }
        r.row(row);
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubis_wins_on_a_larger_game_too() {
        let (game, model) = workload(1, 12, 3.0, 0.5);
        let xc = Baseline::Cubis.solve(&game, &model, 1).unwrap();
        let xu = Baseline::Uniform.solve(&game, &model, 1).unwrap();
        let vc = robust_value(&game, &model, &xc);
        let vu = robust_value(&game, &model, &xu);
        assert!(vc >= vu - 1e-9, "CUBIS {vc} vs uniform {vu}");
    }
}
