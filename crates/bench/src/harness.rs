//! The `cubis-xtask bench` regression harness.
//!
//! Runs seeded CUBIS workloads (from [`cubis_eval::fixtures`]) through
//! the full MILP pipeline twice per shape — warm-started (the default
//! engine) and cold (`warm_start = false`) — and reports per-shape wall
//! times plus the effort counters read off a [`cubis_trace`] journal.
//! The output, `BENCH_solve.json`, is written at the repo root and
//! serialized with the trace crate's own JSON codec so the trajectory
//! stays consumable without serde.
//!
//! Comparisons across commits read the same file from two checkouts:
//! per shape, `warm.wall_ns_median` is the headline number, and
//! `cold_builds`/`bb_nodes`/`lp_pivots` explain *why* it moved (fewer
//! model evaluations vs. better pruning). Timings are medians over
//! `reps` runs with the p95 as a noise gauge; counters are taken from
//! the first rep — the solve is deterministic, so they are
//! rep-invariant.

use cubis_core::{Cubis, InnerPolicy, RobustProblem, RoutedInner};
use cubis_trace::json::{self, JsonValue};
use cubis_trace::{JournalRecorder, SharedRecorder};
use std::sync::Arc;
use std::time::Instant;

/// Version tag in `BENCH_solve.json`; bump on schema changes.
/// (v2: per-shape `engine` and per-mode `inner_gap` for the scale
/// path's certified optimality slack.)
pub const FORMAT_VERSION: u64 = 2;

// The cold-pivot ceiling and the per-seed step pins formerly hard-coded
// here live in the committed `bench-pins.json` (see [`crate::pins`]),
// read by `cubis-xtask bench --smoke` and the tier-1 bench gate alike.

/// One benchmark workload shape.
#[derive(Debug, Clone)]
pub struct BenchShape {
    /// Stable shape label (the comparison key across commits).
    pub name: &'static str,
    /// Workload generator seed.
    pub seed: u64,
    /// Number of targets `T`.
    pub targets: usize,
    /// Defender resources `R`.
    pub resources: f64,
    /// Uncertainty width factor `δ`.
    pub delta: f64,
    /// Piecewise segments `K`.
    pub k: usize,
    /// Binary-search threshold `ε`.
    pub epsilon: f64,
    /// Timed repetitions per mode.
    pub reps: usize,
    /// Inner engine: `"milp"` (the paper's route) or `"scale"` (the
    /// certified breakpoint-grid envelope greedy). For scale shapes
    /// `k` is the grid's points-per-unit rather than MILP segments.
    pub engine: &'static str,
}

/// The tiny shape used by `bench --smoke` and the `ci` gate: big enough
/// to exercise every phase (grid build, DP seed, branch-and-bound,
/// oracle), small enough to finish in well under a second.
pub fn smoke_shapes() -> Vec<BenchShape> {
    vec![BenchShape {
        name: "smoke-t3-k4",
        seed: 7,
        targets: 3,
        resources: 1.0,
        delta: 0.5,
        k: 4,
        epsilon: 1e-2,
        reps: 2,
        engine: "milp",
    }]
}

/// The full trajectory: three shapes spanning small → large. Growth is
/// along both `T` (model evaluations per grid) and `K` (MILP size), the
/// two axes the paper's Figure-group scales.
pub fn full_shapes() -> Vec<BenchShape> {
    vec![
        BenchShape {
            name: "small-t4-k6",
            seed: 11,
            targets: 4,
            resources: 2.0,
            delta: 0.5,
            k: 6,
            epsilon: 1e-3,
            reps: 5,
            engine: "milp",
        },
        BenchShape {
            name: "medium-t6-k10",
            seed: 12,
            targets: 6,
            resources: 2.0,
            delta: 0.6,
            k: 10,
            epsilon: 1e-3,
            reps: 5,
            engine: "milp",
        },
        BenchShape {
            name: "large-t10-k16",
            seed: 13,
            targets: 10,
            resources: 3.0,
            delta: 0.6,
            k: 16,
            epsilon: 1e-3,
            reps: 5,
            engine: "milp",
        },
        // The scale tier: sizes no MILP run should ever see. Solved by
        // `ScaleInner`; the regression gates on these are wall-clock
        // medians (< 1 s and < 30 s) plus the certified per-probe gap
        // (`inner_gap` ≤ 1e-6), asserted by `cubis-xtask ci`'s
        // scale-smoke step against the committed report.
        BenchShape {
            name: "huge-t1000",
            seed: 21,
            targets: 1_000,
            resources: 40.0,
            delta: 0.5,
            k: 64,
            epsilon: 1e-3,
            reps: 2,
            engine: "scale",
        },
        BenchShape {
            name: "huge-t100k",
            seed: 22,
            targets: 100_000,
            resources: 4_000.0,
            delta: 0.5,
            k: 24,
            epsilon: 1e-3,
            reps: 2,
            engine: "scale",
        },
    ]
}

/// Aggregated measurements for one (shape, mode) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeStats {
    /// Median wall time over the reps, nanoseconds.
    pub wall_ns_median: u64,
    /// 95th-percentile wall time over the reps, nanoseconds.
    pub wall_ns_p95: u64,
    /// Binary-search steps (trace `BinaryStep` events).
    pub binary_steps: u64,
    /// Branch-and-bound nodes (`bb.nodes`).
    pub bb_nodes: u64,
    /// Simplex pivots (`lp.pivots`).
    pub lp_pivots: u64,
    /// Probes that sampled the model to build a grid
    /// (`cubis.cold_builds`; on the cold path this equals
    /// `binary_steps` by construction).
    pub cold_builds: u64,
    /// Probes served from a cached grid (`cubis.cached_builds`).
    pub cached_builds: u64,
    /// Probes seeded with the previous incumbent (`cubis.warm_seeds`).
    pub warm_seeds: u64,
    /// Probes pruned by a transferred bound (`cubis.bound_hints`).
    pub bound_hints: u64,
    /// Total time inside inner solves (`cubis.inner` span), ns.
    pub inner_ns: u64,
    /// Total time inside the simplex (`lp.solve` span), ns.
    pub lp_ns: u64,
    /// Largest certified inner-probe optimality slack across the
    /// solve, in utility units (`CubisSolution::inner_gap`); exactly
    /// `0` for the MILP engine.
    pub inner_gap: f64,
}

impl ModeStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("wall_ns_median".into(), JsonValue::Num(self.wall_ns_median as f64)),
            ("wall_ns_p95".into(), JsonValue::Num(self.wall_ns_p95 as f64)),
            ("binary_steps".into(), JsonValue::Num(self.binary_steps as f64)),
            ("bb_nodes".into(), JsonValue::Num(self.bb_nodes as f64)),
            ("lp_pivots".into(), JsonValue::Num(self.lp_pivots as f64)),
            ("cold_builds".into(), JsonValue::Num(self.cold_builds as f64)),
            ("cached_builds".into(), JsonValue::Num(self.cached_builds as f64)),
            ("warm_seeds".into(), JsonValue::Num(self.warm_seeds as f64)),
            ("bound_hints".into(), JsonValue::Num(self.bound_hints as f64)),
            ("inner_ns".into(), JsonValue::Num(self.inner_ns as f64)),
            ("lp_ns".into(), JsonValue::Num(self.lp_ns as f64)),
            ("inner_gap".into(), JsonValue::Num(self.inner_gap)),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("mode stats: missing or non-integer `{name}`"))
        };
        Ok(Self {
            wall_ns_median: field("wall_ns_median")?,
            wall_ns_p95: field("wall_ns_p95")?,
            binary_steps: field("binary_steps")?,
            bb_nodes: field("bb_nodes")?,
            lp_pivots: field("lp_pivots")?,
            cold_builds: field("cold_builds")?,
            cached_builds: field("cached_builds")?,
            warm_seeds: field("warm_seeds")?,
            bound_hints: field("bound_hints")?,
            inner_ns: field("inner_ns")?,
            lp_ns: field("lp_ns")?,
            inner_gap: v
                .get("inner_gap")
                .and_then(JsonValue::as_f64)
                .ok_or("mode stats: missing or non-numeric `inner_gap`")?,
        })
    }
}

/// Warm-vs-cold measurements for one shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeReport {
    /// The shape's stable label.
    pub name: String,
    /// Shape parameters, echoed for self-containedness.
    pub targets: u64,
    /// Piecewise segments `K`.
    pub k: u64,
    /// Timed repetitions behind the medians.
    pub reps: u64,
    /// Inner engine the shape ran on (`"milp"` or `"scale"`).
    pub engine: String,
    /// The cold path (`warm_start = false`).
    pub cold: ModeStats,
    /// The warm-started engine (the default path).
    pub warm: ModeStats,
}

impl ShapeReport {
    /// `cold.wall_ns_median / warm.wall_ns_median` — above 1 means the
    /// warm engine wins.
    pub fn speedup(&self) -> f64 {
        if self.warm.wall_ns_median == 0 {
            return 1.0;
        }
        self.cold.wall_ns_median as f64 / self.warm.wall_ns_median as f64
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("name".into(), JsonValue::Str(self.name.clone())),
            ("targets".into(), JsonValue::Num(self.targets as f64)),
            ("k".into(), JsonValue::Num(self.k as f64)),
            ("reps".into(), JsonValue::Num(self.reps as f64)),
            ("engine".into(), JsonValue::Str(self.engine.clone())),
            ("cold".into(), self.cold.to_json()),
            ("warm".into(), self.warm.to_json()),
            ("speedup".into(), JsonValue::Num(self.speedup())),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let name = v
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("shape: missing `name`")?
            .to_string();
        let num = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("shape `{name}`: missing or non-integer `{key}`"))
        };
        Ok(Self {
            targets: num("targets")?,
            k: num("k")?,
            reps: num("reps")?,
            engine: v
                .get("engine")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("shape `{name}`: missing `engine`"))?
                .to_string(),
            cold: ModeStats::from_json(v.get("cold").ok_or("shape: missing `cold`")?)
                .map_err(|e| format!("shape `{name}` cold: {e}"))?,
            warm: ModeStats::from_json(v.get("warm").ok_or("shape: missing `warm`")?)
                .map_err(|e| format!("shape `{name}` warm: {e}"))?,
            name,
        })
    }
}

/// The full `BENCH_solve.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`FORMAT_VERSION`]).
    pub format_version: u64,
    /// One entry per benched shape.
    pub shapes: Vec<ShapeReport>,
}

impl BenchReport {
    /// Serialize with the trace JSON codec.
    pub fn to_json_string(&self) -> String {
        JsonValue::Obj(vec![
            ("format_version".into(), JsonValue::Num(self.format_version as f64)),
            (
                "shapes".into(),
                JsonValue::Arr(self.shapes.iter().map(ShapeReport::to_json).collect()),
            ),
        ])
        .to_json_string()
    }

    /// Parse (with the trace JSON codec) and structurally validate.
    pub fn from_json_str(src: &str) -> Result<Self, String> {
        let v = json::parse(src).map_err(|e| format!("bench report: {e}"))?;
        let format_version = v
            .get("format_version")
            .and_then(JsonValue::as_u64)
            .ok_or("bench report: missing `format_version`")?;
        let shapes = v
            .get("shapes")
            .and_then(JsonValue::as_arr)
            .ok_or("bench report: missing `shapes` array")?
            .iter()
            .map(ShapeReport::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let report = Self { format_version, shapes };
        report.validate()?;
        Ok(report)
    }

    /// The invariants `cubis-xtask ci` gates on: known version, at
    /// least one shape, nonnegative monotone timings (median ≤ p95),
    /// and — the warm start actually working — strictly fewer warm
    /// cold-builds than binary-search steps, while the cold path
    /// rebuilds on every step.
    pub fn validate(&self) -> Result<(), String> {
        if self.format_version != FORMAT_VERSION {
            return Err(format!(
                "bench report: format_version {} (expected {FORMAT_VERSION})",
                self.format_version
            ));
        }
        if self.shapes.is_empty() {
            return Err("bench report: no shapes".into());
        }
        for s in &self.shapes {
            for (mode, m) in [("cold", &s.cold), ("warm", &s.warm)] {
                if m.wall_ns_median > m.wall_ns_p95 {
                    return Err(format!(
                        "shape `{}` {mode}: median {} > p95 {}",
                        s.name, m.wall_ns_median, m.wall_ns_p95
                    ));
                }
                if m.binary_steps == 0 {
                    return Err(format!("shape `{}` {mode}: zero binary steps", s.name));
                }
            }
            if s.warm.cold_builds >= s.warm.binary_steps {
                return Err(format!(
                    "shape `{}`: warm path built {} grids over {} steps — cache never hit",
                    s.name, s.warm.cold_builds, s.warm.binary_steps
                ));
            }
            if s.cold.cold_builds != 0 || s.cold.cached_builds != 0 {
                return Err(format!(
                    "shape `{}`: cold path reported warm counters ({} cold, {} cached)",
                    s.name, s.cold.cold_builds, s.cold.cached_builds
                ));
            }
            match s.engine.as_str() {
                "milp" => {
                    for (mode, m) in [("cold", &s.cold), ("warm", &s.warm)] {
                        if m.inner_gap != 0.0 {
                            return Err(format!(
                                "shape `{}` {mode}: MILP engine reported a nonzero \
                                 inner gap {}",
                                s.name, m.inner_gap
                            ));
                        }
                    }
                }
                "scale" => {
                    for (mode, m) in [("cold", &s.cold), ("warm", &s.warm)] {
                        if !(m.inner_gap >= 0.0 && m.inner_gap.is_finite()) {
                            return Err(format!(
                                "shape `{}` {mode}: malformed certified gap {}",
                                s.name, m.inner_gap
                            ));
                        }
                    }
                }
                other => {
                    return Err(format!("shape `{}`: unknown engine `{other}`", s.name));
                }
            }
        }
        Ok(())
    }
}

/// Run one (shape, mode) cell: `reps` timed solves, counters from the
/// first rep's journal (the solve is deterministic, so counters are
/// rep-invariant).
pub fn run_mode(shape: &BenchShape, warm: bool) -> Result<ModeStats, String> {
    let (game, model) =
        cubis_eval::fixtures::workload(shape.seed, shape.targets, shape.resources, shape.delta);
    let p = RobustProblem::new(&game, &model);
    let policy = match shape.engine {
        "milp" => InnerPolicy::Milp,
        "scale" => InnerPolicy::Scale,
        other => return Err(format!("shape `{}`: unknown engine `{other}`", shape.name)),
    };
    let mut walls = Vec::with_capacity(shape.reps.max(1));
    let mut counters: Option<ModeStats> = None;
    for _ in 0..shape.reps.max(1) {
        let journal = Arc::new(JournalRecorder::new());
        let mut solver = Cubis::new(RoutedInner::new(policy, shape.k))
            .with_epsilon(shape.epsilon)
            .with_recorder(SharedRecorder::new(journal.clone()));
        solver.opts.warm_start = warm;
        let t0 = Instant::now();
        let sol = solver
            .solve(&p)
            .map_err(|e| format!("shape `{}` ({}): {e}", shape.name, mode_name(warm)))?;
        walls.push(t0.elapsed().as_nanos() as u64);
        if counters.is_none() {
            let j = journal.snapshot();
            let totals = j.counter_totals();
            let counter = |name: &str| totals.get(name).copied().unwrap_or(0);
            let span_ns = |name: &str| {
                j.span_totals()
                    .iter()
                    .find(|s| s.name == name)
                    .map(|s| s.total_ns)
                    .unwrap_or(0)
            };
            counters = Some(ModeStats {
                wall_ns_median: 0,
                wall_ns_p95: 0,
                binary_steps: sol.binary_steps as u64,
                bb_nodes: counter("bb.nodes"),
                lp_pivots: counter("lp.pivots"),
                cold_builds: counter("cubis.cold_builds"),
                cached_builds: counter("cubis.cached_builds"),
                warm_seeds: counter("cubis.warm_seeds"),
                bound_hints: counter("cubis.bound_hints"),
                inner_ns: span_ns("cubis.inner"),
                lp_ns: span_ns("lp.solve"),
                inner_gap: sol.inner_gap,
            });
        }
    }
    walls.sort_unstable();
    let mut stats = counters.ok_or("bench: no reps ran")?;
    stats.wall_ns_median = walls[walls.len() / 2];
    stats.wall_ns_p95 = walls[((walls.len() - 1) as f64 * 0.95).round() as usize];
    Ok(stats)
}

fn mode_name(warm: bool) -> &'static str {
    if warm {
        "warm"
    } else {
        "cold"
    }
}

/// Run warm and cold for one shape.
pub fn run_shape(shape: &BenchShape) -> Result<ShapeReport, String> {
    let cold = run_mode(shape, false)?;
    let warm = run_mode(shape, true)?;
    Ok(ShapeReport {
        name: shape.name.to_string(),
        targets: shape.targets as u64,
        k: shape.k as u64,
        reps: shape.reps as u64,
        engine: shape.engine.to_string(),
        cold,
        warm,
    })
}

/// Run a full shape list into a validated report.
pub fn run(shapes: &[BenchShape]) -> Result<BenchReport, String> {
    let shapes = shapes.iter().map(run_shape).collect::<Result<Vec<_>, _>>()?;
    let report = BenchReport { format_version: FORMAT_VERSION, shapes };
    report.validate()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_round_trips_and_validates() {
        let report = run(&smoke_shapes()).expect("smoke bench");
        let json = report.to_json_string();
        let back = BenchReport::from_json_str(&json).expect("parse");
        assert_eq!(back, report);
        assert_eq!(back.shapes.len(), 1);
        let s = &back.shapes[0];
        // Cache must have hit: exactly one grid build across all steps.
        assert_eq!(s.warm.cold_builds, 1);
        assert_eq!(s.warm.cached_builds, s.warm.binary_steps - 1);
    }

    #[test]
    fn malformed_reports_are_rejected() {
        assert!(BenchReport::from_json_str("{}").is_err());
        assert!(BenchReport::from_json_str("not json").is_err());
        let empty = BenchReport { format_version: FORMAT_VERSION, shapes: Vec::new() };
        assert!(empty.validate().is_err());
        assert!(
            BenchReport::from_json_str(&empty.to_json_string()).is_err(),
            "empty shape list must not validate"
        );
    }
}
