//! Dense linear-algebra substrate for the CUBIS workspace.
//!
//! This crate provides the small amount of numerical linear algebra the
//! simplex-based LP/MILP solvers need: a dense row-major [`Matrix`],
//! vector helpers, an LU factorization with partial pivoting ([`Lu`]),
//! and triangular solves. Everything is `f64`; the problem sizes in this
//! workspace (hundreds of rows/columns) do not justify blocked kernels,
//! but the inner loops are written so the compiler can vectorize them
//! (slice iteration, no bounds checks in hot paths beyond the slice
//! itself).
//!
//! The API deliberately avoids external dependencies so the solver stack
//! is self-contained and auditable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lu;
pub mod matrix;
pub mod vector;

pub use lu::{Lu, LuError};
pub use matrix::Matrix;
pub use vector::{axpy, dot, inf_norm, norm2, scale};

/// Relative tolerance used for singularity detection in factorizations.
pub const SINGULARITY_TOL: f64 = 1e-12;

/// Default absolute tolerance for [`approx_eq`] when callers have no
/// problem-specific scale: comfortably above f64 roundoff for the
/// utility magnitudes in this workspace (|u| ≲ 100), far below any
/// payoff difference that matters.
pub const DEFAULT_EQ_TOL: f64 = 1e-9;

/// Approximate equality for floating-point values: `|a − b| ≤ tol`.
///
/// This is the workspace's one shared answer to "are these two floats
/// the same?" — raw `==`/`!=` on computed floats is flagged by the
/// `cubis-xtask analyze` NUM01 rule. Semantics worth knowing:
///
/// * NaN is never approximately equal to anything (including NaN),
///   matching IEEE `==`.
/// * Equal infinities compare equal for any `tol` (their difference is
///   NaN, so the bound check fails and the exact-bits fallback decides).
/// * `tol = 0.0` degrades to exact comparison, so the helper is also
///   the annotated way to spell an intentional exact compare.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol || a == b
}

#[cfg(test)]
mod tests {
    use super::approx_eq;

    #[test]
    fn within_tolerance_is_equal() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(approx_eq(-3.5, -3.5, 0.0));
        assert!(!approx_eq(1.0, 1.1, 1e-3));
    }

    #[test]
    fn nan_is_never_equal() {
        assert!(!approx_eq(f64::NAN, f64::NAN, f64::INFINITY));
        assert!(!approx_eq(f64::NAN, 0.0, 1.0));
    }

    #[test]
    fn infinities_compare_exactly() {
        assert!(approx_eq(f64::INFINITY, f64::INFINITY, 0.0));
        assert!(!approx_eq(f64::INFINITY, f64::NEG_INFINITY, f64::MAX));
        assert!(!approx_eq(f64::INFINITY, 1e308, 1e300));
    }

    #[test]
    fn zero_tolerance_is_exact() {
        assert!(!approx_eq(0.1 + 0.2, 0.3, 0.0));
        assert!(approx_eq(0.1 + 0.2, 0.3, 1e-15));
    }
}
