use cubis_lp::{parse_dump, LpProblem, Relation};

// Manual check: reconstruct initial point like Tableau::build does and
// verify residuals are representable.
#[test]
fn check_initial_state() {
    let p: LpProblem = parse_dump(include_str!("data_fail_lp_t8k24.txt")).expect("parse");
    // Starting point: every var at finite lower bound (all bounds finite here?).
    let mut n_inf = 0;
    for i in 0..p.num_vars() {
        let (l, u) = p.var_bounds(p.var_id(i));
        if !l.is_finite() { n_inf += 1; }
        let _ = u;
    }
    println!("vars {} constraints {} free-lower {}", p.num_vars(), p.num_constraints(), n_inf);
    // Max |coefficient| and rhs magnitudes.
    let mut cmax = 0.0f64; let mut rmax = 0.0f64;
    for ci in 0..p.num_constraints() {
        let (terms, rel, rhs) = p.constraint(ci);
        assert!(matches!(rel, Relation::Le | Relation::Ge | Relation::Eq));
        for (_, c) in terms { cmax = cmax.max(c.abs()); }
        rmax = rmax.max(rhs.abs());
    }
    println!("cmax {cmax:.3e} rmax {rmax:.3e}");
}
