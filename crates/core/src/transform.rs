//! The dual transform of Section IV-A and the separable objective of
//! Section IV-C.
//!
//! Key quantities, all for a given utility value `c`:
//!
//! * `f1_i(x_i) = L_i(x_i)·(Ud_i(x_i) − c)`
//! * `f2_i(x_i) = U_i(x_i)·(Ud_i(x_i) − c)`
//! * `β*_i = max{0, c − Ud_i(x_i)}` (Proposition 3)
//! * `G_c(x, β*) = Σ_i f1_i − Σ_i v_i` with
//!   `v_i = (U_i − L_i)·β*_i = max{0, f1_i − f2_i}`, so
//!   `G_c(x) = Σ_i min(f1_i, f2_i)` — separable per target.
//! * `H(x, β)` — equation (14), the dualized defender utility.

use crate::problem::RobustProblem;
use cubis_behavior::IntervalChoiceModel;

/// `f1_i(x_i) = L_i(x_i)·(Ud_i(x_i) − c)`.
#[inline]
pub fn f1<M: IntervalChoiceModel>(p: &RobustProblem<'_, M>, i: usize, x_i: f64, c: f64) -> f64 {
    let (l, _) = p.bounds(i, x_i);
    l * (p.ud(i, x_i) - c)
}

/// `f2_i(x_i) = U_i(x_i)·(Ud_i(x_i) − c)`.
#[inline]
pub fn f2<M: IntervalChoiceModel>(p: &RobustProblem<'_, M>, i: usize, x_i: f64, c: f64) -> f64 {
    let (_, u) = p.bounds(i, x_i);
    u * (p.ud(i, x_i) - c)
}

/// The separable per-target term `g_i(x_i; c) = min(f1_i, f2_i)`.
///
/// Identity (proved in the crate tests): with Proposition 3's
/// `β*_i = max{0, c − Ud_i}`, the paper's `f1_i − v_i` equals
/// `min(f1_i, f2_i)` — the adversary uses `L_i` where the defender does
/// well (`Ud_i ≥ c`) and `U_i` where she does poorly.
#[inline]
pub fn g<M: IntervalChoiceModel>(p: &RobustProblem<'_, M>, i: usize, x_i: f64, c: f64) -> f64 {
    let (l, u) = p.bounds(i, x_i);
    let d = p.ud(i, x_i) - c;
    if d >= 0.0 {
        l * d
    } else {
        u * d
    }
}

/// `G_c(x) = Σ_i g_i(x_i; c)` — the numerator of `H(x, β*) − c`
/// (equation 18 after the Proposition-3 substitution).
pub fn g_total<M: IntervalChoiceModel>(p: &RobustProblem<'_, M>, x: &[f64], c: f64) -> f64 {
    assert_eq!(x.len(), p.num_targets(), "g_total: coverage length mismatch");
    x.iter().enumerate().map(|(i, &xi)| g(p, i, xi, c)).sum()
}

/// Proposition 3's extreme point: `β*_i = max{0, c − Ud_i(x_i)}`.
pub fn beta_star<M: IntervalChoiceModel>(p: &RobustProblem<'_, M>, x: &[f64], c: f64) -> Vec<f64> {
    assert_eq!(x.len(), p.num_targets(), "beta_star: coverage length mismatch");
    x.iter()
        .enumerate()
        .map(|(i, &xi)| (c - p.ud(i, xi)).max(0.0))
        .collect()
}

/// Equation (14): the dualized worst-case defender utility
///
/// ```text
/// H(x, β) = [Σ_i L_i·Ud_i − Σ_i (U_i − L_i)·β_i] / Σ_i L_i
/// ```
///
/// # Panics
/// Panics on length mismatches.
pub fn h<M: IntervalChoiceModel>(p: &RobustProblem<'_, M>, x: &[f64], beta: &[f64]) -> f64 {
    let t = p.num_targets();
    assert_eq!(x.len(), t, "h: coverage length mismatch");
    assert_eq!(beta.len(), t, "h: beta length mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..t {
        let (l, u) = p.bounds(i, x[i]);
        num += l * p.ud(i, x[i]) - (u - l) * beta[i];
        den += l;
    }
    num / den
}

/// Equation (13): recover the dual variable
/// `α_i = Ud_i(x_i) + β_i − η` with `η = H(x, β)`.
pub fn alpha<M: IntervalChoiceModel>(
    p: &RobustProblem<'_, M>,
    x: &[f64],
    beta: &[f64],
) -> Vec<f64> {
    let eta = h(p, x, beta);
    x.iter()
        .zip(beta)
        .enumerate()
        .map(|(i, (&xi, &bi))| p.ud(i, xi) + bi - eta)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubis_behavior::{BoundConvention, SuqrUncertainty, UncertainSuqr};
    use cubis_game::{SecurityGame, TargetPayoffs};

    fn fixture() -> (SecurityGame, UncertainSuqr) {
        let game = SecurityGame::new(
            vec![
                TargetPayoffs::new(5.0, -3.0, 3.0, -5.0),
                TargetPayoffs::new(7.0, -7.0, 7.0, -7.0),
                TargetPayoffs::new(4.0, -2.0, 2.0, -4.0),
            ],
            1.5,
        );
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            1.0,
            BoundConvention::ExactInterval,
        );
        (game, model)
    }

    #[test]
    fn g_is_min_of_f1_f2() {
        let (game, model) = fixture();
        let p = RobustProblem::new(&game, &model);
        for &c in &[-5.0, 0.0, 3.0, 6.9] {
            for i in 0..3 {
                for k in 0..=10 {
                    let x = k as f64 / 10.0;
                    let want = f1(&p, i, x, c).min(f2(&p, i, x, c));
                    assert!((g(&p, i, x, c) - want).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn g_equals_f1_minus_v_with_prop3_beta() {
        // The paper's formulation: G = Σ f1_i − Σ v_i with
        // v_i = (U−L)·β*_i. Must equal Σ min(f1, f2).
        let (game, model) = fixture();
        let p = RobustProblem::new(&game, &model);
        let x = [0.5, 0.7, 0.3];
        for &c in &[-4.0, 0.0, 2.5] {
            let beta = beta_star(&p, &x, c);
            let mut g_paper = 0.0;
            for i in 0..3 {
                let (l, u) = p.bounds(i, x[i]);
                let v = (u - l) * beta[i];
                g_paper += f1(&p, i, x[i], c) - v;
            }
            assert!(
                (g_paper - g_total(&p, &x, c)).abs() < 1e-9,
                "c={c}: paper {g_paper} vs separable {}",
                g_total(&p, &x, c)
            );
        }
    }

    #[test]
    fn h_at_beta_star_is_fixed_point_iff_g_zero() {
        // H(x, β*(c)) = c exactly when G_c(x) = 0; more generally
        // H(x, β*(c)) − c has the sign of G_c(x).
        let (game, model) = fixture();
        let p = RobustProblem::new(&game, &model);
        let x = [0.4, 0.8, 0.3];
        for &c in &[-6.0, -1.0, 1.0, 4.0] {
            let beta = beta_star(&p, &x, c);
            let hv = h(&p, &x, &beta);
            let gv = g_total(&p, &x, c);
            assert_eq!(hv > c, gv > 0.0, "c={c}, H={hv}, G={gv}");
        }
    }

    #[test]
    fn g_total_is_decreasing_in_c() {
        let (game, model) = fixture();
        let p = RobustProblem::new(&game, &model);
        let x = [0.5, 0.5, 0.5];
        let mut prev = f64::INFINITY;
        for k in 0..=20 {
            let c = -7.0 + 14.0 * k as f64 / 20.0;
            let gv = g_total(&p, &x, c);
            assert!(gv < prev + 1e-12, "not decreasing at c={c}");
            prev = gv;
        }
    }

    #[test]
    fn alpha_nonnegative_iff_constraint_16() {
        // Constraint (16): Ud_i + β_i − H ≥ 0 ⇔ α_i ≥ 0.
        let (game, model) = fixture();
        let p = RobustProblem::new(&game, &model);
        let x = [0.4, 0.8, 0.3];
        let c = 0.5;
        let beta = beta_star(&p, &x, c);
        let a = alpha(&p, &x, &beta);
        let hv = h(&p, &x, &beta);
        for (i, ai) in a.iter().enumerate() {
            let lhs = p.ud(i, x[i]) + beta[i] - hv;
            assert!((ai - lhs).abs() < 1e-12);
        }
    }

    #[test]
    fn beta_star_zero_when_defender_satisfied() {
        let (game, model) = fixture();
        let p = RobustProblem::new(&game, &model);
        // c below every Pd ⇒ all β* = 0.
        let beta = beta_star(&p, &[0.0, 0.0, 0.0], -10.0);
        assert!(beta.iter().all(|&b| b == 0.0));
        // c above every Rd ⇒ all β* > 0.
        let beta2 = beta_star(&p, &[1.0, 1.0, 1.0], 10.0);
        assert!(beta2.iter().all(|&b| b > 0.0));
    }
}
