//! **T1 bench** — the Table-I worked example: time CUBIS (MILP and DP
//! routes) and the midpoint baseline on the 2-target game, and print
//! the reproduced table once at startup.

use criterion::{criterion_group, criterion_main, Criterion};
use cubis_core::{Cubis, DpInner, MilpInner, RobustProblem};
use cubis_eval::fixtures::{table1_game, table1_model};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let game = table1_game();
    let model = table1_model();

    // Print the reproduced table once so the bench output doubles as the
    // table regeneration.
    cubis_eval::experiments::table1::run()
        .expect("experiment failed")
        .print();

    let mut g = c.benchmark_group("table1");
    g.bench_function("cubis_milp_k20", |b| {
        b.iter(|| {
            let p = RobustProblem::new(black_box(&game), black_box(&model));
            Cubis::new(MilpInner::new(20))
                .with_epsilon(1e-3)
                .solve(&p)
                .unwrap()
        })
    });
    g.bench_function("cubis_dp_200", |b| {
        b.iter(|| {
            let p = RobustProblem::new(black_box(&game), black_box(&model));
            Cubis::new(DpInner::new(200))
                .with_epsilon(1e-3)
                .solve(&p)
                .unwrap()
        })
    });
    g.bench_function("midpoint", |b| {
        b.iter(|| {
            cubis_solvers::solve_midpoint_params(black_box(&game), black_box(&model), 200, 1e-3)
                .unwrap()
        })
    });
    g.bench_function("oracle_eval", |b| {
        let p = RobustProblem::new(&game, &model);
        let x = vec![0.46, 0.54];
        b.iter(|| p.worst_case(black_box(&x)).utility)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table1
}
criterion_main!(benches);
