//! Property-based tests for the simplex: optimality certificates via
//! duality, feasibility of reported solutions, and status soundness on
//! random LPs.

use cubis_lp::{solve, LpOptions, LpProblem, LpStatus, Relation, Sense, VarId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomLp {
    sense: Sense,
    // (lower, width, obj) per variable
    vars: Vec<(f64, f64, f64)>,
    // (coeffs, relation index, rhs)
    rows: Vec<(Vec<f64>, u8, f64)>,
}

fn build(lp: &RandomLp) -> LpProblem {
    let mut p = LpProblem::new(lp.sense);
    let ids: Vec<VarId> = lp
        .vars
        .iter()
        .enumerate()
        .map(|(i, &(lo, w, obj))| p.add_var(format!("x{i}"), lo, lo + w, obj))
        .collect();
    for (coeffs, rel, rhs) in &lp.rows {
        let rel = match rel % 3 {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        p.add_constraint(
            ids.iter().zip(coeffs).map(|(&v, &c)| (v, c)).collect(),
            rel,
            *rhs,
        );
    }
    p
}

fn arb_lp() -> impl Strategy<Value = RandomLp> {
    (2usize..5, 1usize..5, any::<bool>()).prop_flat_map(move |(n, m, maximize)| {
        let rows = proptest::collection::vec(
            (proptest::collection::vec(-2.0f64..2.0, n), any::<u8>(), -3.0f64..3.0),
            m,
        );
        let vars =
            proptest::collection::vec((-3.0f64..3.0, 0.0f64..4.0, -2.0f64..2.0), n);
        (vars, rows).prop_map(move |(vars, rows)| RandomLp {
            sense: if maximize { Sense::Maximize } else { Sense::Minimize },
            vars,
            rows,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Optimal solutions are feasible and no random feasible point beats
    /// them.
    #[test]
    fn optimal_is_feasible_and_undominated(lp in arb_lp(), probe_seed in any::<u64>()) {
        let p = build(&lp);
        let sol = solve(&p, &LpOptions::default()).expect("numerics");
        if sol.status != LpStatus::Optimal {
            return Ok(());
        }
        prop_assert!(p.max_violation(&sol.x) < 1e-6);
        // Probe with random points projected onto the box (not the rows —
        // most will be infeasible and skipped).
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(probe_seed);
        for _ in 0..50 {
            let x: Vec<f64> = lp
                .vars
                .iter()
                .map(|&(lo, w, _)| rng.gen_range(lo..=lo + w.max(1e-12)))
                .collect();
            if p.max_violation(&x) < 1e-9 {
                let v = p.objective_value(&x);
                match lp.sense {
                    Sense::Maximize => prop_assert!(v <= sol.objective + 1e-6),
                    Sense::Minimize => prop_assert!(v >= sol.objective - 1e-6),
                }
            }
        }
    }

    /// Weak duality sanity: for pure-Le maximization problems with
    /// x ≥ 0, the reported duals certify an upper bound
    /// `cᵀx* ≤ bᵀy*` (equality at optimum when variable upper bounds are
    /// slack, inequality in general).
    #[test]
    fn dual_bound_for_le_maximization(
        n in 2usize..5,
        m in 1usize..4,
        coeffs in proptest::collection::vec(0.1f64..2.0, 20),
        objs in proptest::collection::vec(0.1f64..2.0, 5),
        rhss in proptest::collection::vec(0.5f64..4.0, 4),
    ) {
        let mut p = LpProblem::new(Sense::Maximize);
        let ids: Vec<VarId> = (0..n)
            .map(|i| p.add_var(format!("x{i}"), 0.0, f64::INFINITY, objs[i % objs.len()]))
            .collect();
        for r in 0..m {
            let terms: Vec<(VarId, f64)> = ids
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, coeffs[(r * n + i) % coeffs.len()]))
                .collect();
            p.add_constraint(terms, Relation::Le, rhss[r % rhss.len()]);
        }
        let sol = solve(&p, &LpOptions::default()).expect("numerics");
        if sol.status != LpStatus::Optimal {
            return Ok(());
        }
        let dual_obj: f64 = (0..m)
            .map(|r| sol.duals[r] * rhss[r % rhss.len()])
            .sum();
        prop_assert!(sol.objective <= dual_obj + 1e-6,
            "primal {} > dual bound {dual_obj}", sol.objective);
        // Dual feasibility for Le-max: y ≥ 0.
        for &y in &sol.duals {
            prop_assert!(y >= -1e-7);
        }
    }

    /// Equality-only systems: either infeasible, or the solution solves
    /// the system.
    #[test]
    fn equality_systems_are_solved_exactly(
        n in 2usize..4,
        coeffs in proptest::collection::vec(-2.0f64..2.0, 12),
        rhs in proptest::collection::vec(-2.0f64..2.0, 3),
    ) {
        let mut p = LpProblem::new(Sense::Minimize);
        let ids: Vec<VarId> =
            (0..n).map(|i| p.add_var(format!("x{i}"), -5.0, 5.0, 1.0)).collect();
        for (r, &b) in rhs.iter().enumerate().take(n - 1) {
            let terms: Vec<(VarId, f64)> = ids
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, coeffs[(r * n + i) % coeffs.len()]))
                .collect();
            p.add_constraint(terms, Relation::Eq, b);
        }
        let sol = solve(&p, &LpOptions::default()).expect("numerics");
        if sol.status == LpStatus::Optimal {
            prop_assert!(p.max_violation(&sol.x) < 1e-6);
        }
    }
}
