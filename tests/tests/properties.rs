//! Cross-crate property-based tests (proptest): invariants of the
//! robust pipeline under randomized games, models and strategies.

use cubis_behavior::{
    BoundConvention, Interval, IntervalChoiceModel, SuqrUncertainty, UncertainSuqr,
};
use cubis_core::{transform, Cubis, DpInner, RobustProblem};
use cubis_game::{GameGenerator, SecurityGame};
use proptest::prelude::*;

/// Strategy: a random game + exact-interval model + δ.
fn arb_instance() -> impl Strategy<Value = (SecurityGame, UncertainSuqr)> {
    (any::<u64>(), 2usize..7, 0.0f64..=1.0).prop_map(|(seed, t, delta)| {
        let r = (t as f64 / 2.0).max(1.0).floor();
        let game = GameGenerator::new(seed).generate(t, r);
        let weights = SuqrUncertainty::paper_example().scale_width(delta);
        let model =
            UncertainSuqr::from_game(&game, weights, 2.0 * delta, BoundConvention::ExactInterval);
        (game, model)
    })
}

/// A random feasible coverage for a game (projection of a random point).
fn arb_coverage(t: usize, r: f64) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-0.5f64..1.5, t)
        .prop_map(move |raw| cubis_game::project_capped_simplex(&raw, r))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The oracle value always lies within the per-target utility range.
    #[test]
    fn oracle_within_utility_range((game, model) in arb_instance()) {
        let p = RobustProblem::new(&game, &model);
        let x = cubis_game::uniform_coverage(game.num_targets(), game.resources());
        let wc = p.worst_case(&x);
        let us: Vec<f64> = (0..game.num_targets()).map(|i| p.ud(i, x[i])).collect();
        let lo = us.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = us.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(wc.utility >= lo - 1e-9 && wc.utility <= hi + 1e-9);
        // Attack distribution is a distribution.
        let s: f64 = wc.attack.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-9);
        prop_assert!(wc.attack.iter().all(|&q| q >= -1e-12));
    }

    /// φ(c) = Σ min(f1, f2) is non-increasing in c and the oracle value
    /// is its root.
    #[test]
    fn phi_monotone_and_rooted(
        (game, model) in arb_instance(),
        raw in proptest::collection::vec(-0.5f64..1.5, 2..7)
    ) {
        let t = game.num_targets();
        let mut raw = raw;
        raw.resize(t, 0.3);
        let x = cubis_game::project_capped_simplex(&raw, game.resources());
        let p = RobustProblem::new(&game, &model);
        let wc = p.worst_case(&x);
        prop_assert!(transform::g_total(&p, &x, wc.utility).abs() < 1e-6);
        let (lo, hi) = p.utility_range();
        let mut prev = f64::INFINITY;
        for k in 0..=8 {
            let c = lo + (hi - lo) * k as f64 / 8.0;
            let g = transform::g_total(&p, &x, c);
            prop_assert!(g <= prev + 1e-9);
            prev = g;
        }
    }

    /// The interval bounds always bracket the midpoint-parameter model.
    #[test]
    fn bounds_bracket_midpoint((game, model) in arb_instance(), xi in 0.0f64..=1.0) {
        for i in 0..game.num_targets() {
            let (l, u) = model.bounds(&game, i, xi);
            let w = &model.weights;
            let (ra, pa) = model.payoffs[i];
            let mid = (w.w1.mid() * xi + w.w2.mid() * ra.mid() + w.w3.mid() * pa.mid()).exp();
            prop_assert!(l <= mid * (1.0 + 1e-9) && mid <= u * (1.0 + 1e-9),
                "target {i}: {l} <= {mid} <= {u}");
        }
    }

    /// CUBIS's worst case is at least that of any sampled strategy
    /// (up to grid resolution).
    #[test]
    fn cubis_at_least_sampled_strategies((game, model) in arb_instance()) {
        let p = RobustProblem::new(&game, &model);
        let sol = Cubis::new(DpInner::new(60)).with_epsilon(1e-2).solve(&p).unwrap();
        // A handful of deterministic probes derived from the game.
        let t = game.num_targets();
        let probes = vec![
            cubis_game::uniform_coverage(t, game.resources()),
            cubis_solvers::solve_maximin(&game),
            cubis_solvers::solve_origami(&game),
        ];
        for probe in probes {
            let v = p.worst_case(&probe).utility;
            prop_assert!(sol.worst_case >= v - 0.15,
                "probe {v} beats CUBIS {}", sol.worst_case);
        }
    }

    /// Projection onto the capped simplex: feasible, idempotent.
    #[test]
    fn projection_properties(
        raw in proptest::collection::vec(-3.0f64..3.0, 1..9),
        frac in 0.05f64..=1.0
    ) {
        let t = raw.len();
        let r = (frac * t as f64).max(1e-3).min(t as f64);
        let x = cubis_game::project_capped_simplex(&raw, r);
        prop_assert!(x.iter().all(|&v| (-1e-9..=1.0 + 1e-9).contains(&v)));
        prop_assert!((x.iter().sum::<f64>() - r).abs() < 1e-6);
        let y = cubis_game::project_capped_simplex(&x, r);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// Interval arithmetic: products always contain sampled products.
    #[test]
    fn interval_product_containment(
        a_lo in -5.0f64..5.0, a_w in 0.0f64..3.0,
        b_lo in -5.0f64..5.0, b_w in 0.0f64..3.0,
        ta in 0.0f64..=1.0, tb in 0.0f64..=1.0
    ) {
        let a = Interval::new(a_lo, a_lo + a_w);
        let b = Interval::new(b_lo, b_lo + b_w);
        let prod = a.mul(b);
        let va = a.lo + ta * a.width();
        let vb = b.lo + tb * b.width();
        prop_assert!(prod.lo - 1e-9 <= va * vb && va * vb <= prod.hi + 1e-9);
    }
}
