//! Regression: a Table-I CUBIS node LP (T = 2, K = 20) that drove the
//! pre-Harris ratio test into a near-singular basis (tableau entries
//! ~1e12, final violation 0.36). Captured via CUBIS_LP_DUMP.

use cubis_lp::{parse_dump, solve, LpOptions, LpStatus};

#[test]
fn t2_k20_node_lp_solves_cleanly() {
    let p = parse_dump(include_str!("data_fail_lp_t2k20.txt")).expect("parse dump");
    let sol = solve(&p, &LpOptions::default()).expect("no numerical breakdown");
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(p.max_violation(&sol.x) < 1e-6);
}
