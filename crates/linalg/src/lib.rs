//! Dense linear-algebra substrate for the CUBIS workspace.
//!
//! This crate provides the small amount of numerical linear algebra the
//! simplex-based LP/MILP solvers need: a dense row-major [`Matrix`],
//! vector helpers, an LU factorization with partial pivoting ([`Lu`]),
//! and triangular solves. Everything is `f64`; the problem sizes in this
//! workspace (hundreds of rows/columns) do not justify blocked kernels,
//! but the inner loops are written so the compiler can vectorize them
//! (slice iteration, no bounds checks in hot paths beyond the slice
//! itself).
//!
//! The API deliberately avoids external dependencies so the solver stack
//! is self-contained and auditable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lu;
pub mod matrix;
pub mod vector;

pub use lu::{Lu, LuError};
pub use matrix::Matrix;
pub use vector::{axpy, dot, inf_norm, norm2, scale};

/// Relative tolerance used for singularity detection in factorizations.
pub const SINGULARITY_TOL: f64 = 1e-12;
