//! The quantal response (QR) model of McKelvey & Palfrey.

use crate::choice::ChoiceModel;
use cubis_game::SecurityGame;
use serde::{Deserialize, Serialize};

/// Quantal response: `F_i(x_i) = exp(λ · Ua_i(x_i))`.
///
/// `λ ≥ 0` is the precision (rationality) parameter: `λ = 0` is a
/// uniformly random attacker, `λ → ∞` approaches a perfectly rational
/// best responder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Qr {
    /// Precision parameter `λ`.
    pub lambda: f64,
}

impl Qr {
    /// Construct a QR model.
    ///
    /// # Panics
    /// Panics if `lambda` is negative or not finite.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda >= 0.0, "Qr: bad lambda {lambda}");
        Self { lambda }
    }
}

impl ChoiceModel for Qr {
    fn log_attractiveness(&self, game: &SecurityGame, i: usize, x_i: f64) -> f64 {
        self.lambda * game.attacker_utility(i, x_i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choice::attack_distribution;
    use cubis_game::TargetPayoffs;

    fn game() -> SecurityGame {
        SecurityGame::new(
            vec![
                TargetPayoffs::new(5.0, -3.0, 8.0, -2.0),
                TargetPayoffs::new(2.0, -6.0, 3.0, -4.0),
            ],
            1.0,
        )
    }

    #[test]
    fn lambda_zero_is_uniform() {
        let g = game();
        let q = attack_distribution(&Qr::new(0.0), &g, &[0.5, 0.5]);
        assert!((q[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn higher_lambda_concentrates_on_better_target() {
        let g = game();
        let x = [0.5, 0.5];
        // Target 0 has higher attacker utility at x=0.5 (3.0 vs -0.5).
        let q1 = attack_distribution(&Qr::new(0.5), &g, &x);
        let q2 = attack_distribution(&Qr::new(2.0), &g, &x);
        assert!(q1[0] > 0.5);
        assert!(q2[0] > q1[0]);
    }

    #[test]
    fn attack_probability_decreases_with_coverage() {
        let g = game();
        let m = Qr::new(1.0);
        let q_low = attack_distribution(&m, &g, &[0.2, 0.8]);
        let q_high = attack_distribution(&m, &g, &[0.8, 0.2]);
        assert!(q_high[0] < q_low[0]);
    }

    #[test]
    #[should_panic(expected = "bad lambda")]
    fn negative_lambda_rejected() {
        Qr::new(-1.0);
    }
}

/// QR with an interval-valued precision: `λ ∈ [lo, hi]`.
///
/// Since the exponent is `λ·Ua_i(x_i)` and `Ua` changes sign across
/// coverage levels, the exponent extremes always sit at the λ endpoints;
/// the bounds are exact.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UncertainQr {
    /// Lower precision endpoint.
    pub lo: Qr,
    /// Upper precision endpoint.
    pub hi: Qr,
}

impl UncertainQr {
    /// Construct from the precision interval `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either endpoint is invalid.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "UncertainQr: lo {lo} > hi {hi}");
        Self { lo: Qr::new(lo), hi: Qr::new(hi) }
    }

    /// Midpoint precision as a point model.
    pub fn midpoint_qr(&self) -> Qr {
        Qr::new(0.5 * (self.lo.lambda + self.hi.lambda))
    }
}

impl crate::uncertain::IntervalChoiceModel for UncertainQr {
    fn log_bounds(&self, game: &SecurityGame, i: usize, x_i: f64) -> (f64, f64) {
        let a = self.lo.log_attractiveness(game, i, x_i);
        let b = self.hi.log_attractiveness(game, i, x_i);
        (a.min(b), a.max(b))
    }
}

#[cfg(test)]
mod uncertain_qr_tests {
    use super::*;
    use crate::uncertain::IntervalChoiceModel;
    use cubis_game::{SecurityGame, TargetPayoffs};

    fn game() -> SecurityGame {
        SecurityGame::new(
            vec![
                TargetPayoffs::new(5.0, -3.0, 8.0, -2.0),
                TargetPayoffs::new(2.0, -6.0, 3.0, -4.0),
            ],
            1.0,
        )
    }

    #[test]
    fn bounds_contain_every_intermediate_lambda() {
        let g = game();
        let m = UncertainQr::new(0.2, 1.4);
        for step in 0..=6 {
            let lambda = 0.2 + 1.2 * step as f64 / 6.0;
            let point = Qr::new(lambda);
            for i in 0..2 {
                for k in 0..=5 {
                    let x = k as f64 / 5.0;
                    let e = crate::choice::ChoiceModel::log_attractiveness(&point, &g, i, x);
                    let (lo, hi) = m.log_bounds(&g, i, x);
                    assert!(lo - 1e-12 <= e && e <= hi + 1e-12, "λ={lambda} i={i} x={x}");
                }
            }
        }
    }

    #[test]
    fn degenerate_interval_is_a_point_model() {
        let g = game();
        let m = UncertainQr::new(0.7, 0.7);
        let (lo, hi) = m.log_bounds(&g, 0, 0.3);
        assert_eq!(lo, hi);
        assert_eq!(m.midpoint_qr().lambda, 0.7);
    }

    #[test]
    #[should_panic(expected = "lo")]
    fn crossing_interval_rejected() {
        UncertainQr::new(1.0, 0.5);
    }
}
