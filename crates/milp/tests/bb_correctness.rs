//! Branch-and-bound correctness: knapsacks vs exhaustive enumeration,
//! classic MILP shapes, warm starts, and parallel/sequential agreement.

use cubis_lp::{LpProblem, Relation, Sense, VarId};
use cubis_milp::{solve_milp, MilpOptions, MilpProblem, MilpStatus};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn knapsack(values: &[f64], weights: &[f64], cap: f64) -> MilpProblem {
    let mut lp = LpProblem::new(Sense::Maximize);
    let vars: Vec<VarId> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| lp.add_var(format!("x{i}"), 0.0, 1.0, v))
        .collect();
    lp.add_constraint(
        vars.iter().zip(weights).map(|(&v, &w)| (v, w)).collect(),
        Relation::Le,
        cap,
    );
    MilpProblem { lp, integers: vars }
}

fn brute_knapsack(values: &[f64], weights: &[f64], cap: f64) -> f64 {
    let n = values.len();
    let mut best = 0.0f64;
    for mask in 0u32..(1 << n) {
        let mut w = 0.0;
        let mut v = 0.0;
        for i in 0..n {
            if mask & (1 << i) != 0 {
                w += weights[i];
                v += values[i];
            }
        }
        if w <= cap + 1e-12 {
            best = best.max(v);
        }
    }
    best
}

#[test]
fn tiny_binary_example() {
    let prob = knapsack(&[1.0, 1.0], &[1.0, 1.0], 1.5);
    let sol = solve_milp(&prob, &MilpOptions::default()).unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    assert!((sol.objective - 1.0).abs() < 1e-6);
    assert!(prob.is_integral(&sol.x, 1e-6));
}

#[test]
fn knapsack_matches_enumeration() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    for trial in 0..40 {
        let n = rng.gen_range(3..=10usize);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..10.0)).collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..10.0)).collect();
        let cap = rng.gen_range(5.0..25.0);
        let prob = knapsack(&values, &weights, cap);
        let sol = solve_milp(&prob, &MilpOptions::default()).unwrap();
        let brute = brute_knapsack(&values, &weights, cap);
        assert_eq!(sol.status, MilpStatus::Optimal, "trial {trial}");
        assert!(
            (sol.objective - brute).abs() < 1e-6,
            "trial {trial}: milp {} vs brute {brute}",
            sol.objective
        );
        assert!(prob.max_violation(&sol.x) < 1e-6);
    }
}

#[test]
fn general_integers() {
    // max 7x + 2y, 3x + y <= 10, x,y integer >= 0 → enumerate.
    let mut lp = LpProblem::new(Sense::Maximize);
    let x = lp.add_var("x", 0.0, 10.0, 7.0);
    let y = lp.add_var("y", 0.0, 10.0, 2.0);
    lp.add_constraint(vec![(x, 3.0), (y, 1.0)], Relation::Le, 10.0);
    let prob = MilpProblem { lp, integers: vec![x, y] };
    let sol = solve_milp(&prob, &MilpOptions::default()).unwrap();
    // x=3,y=1 → 23  beats x=2,y=4 → 22.
    assert!((sol.objective - 23.0).abs() < 1e-6, "got {}", sol.objective);
}

#[test]
fn minimization_sense() {
    // min x + y s.t. x + y >= 1.5, x,y ∈ {0,1} → 2.
    let mut lp = LpProblem::new(Sense::Minimize);
    let x = lp.add_var("x", 0.0, 1.0, 1.0);
    let y = lp.add_var("y", 0.0, 1.0, 1.0);
    lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 1.5);
    let prob = MilpProblem { lp, integers: vec![x, y] };
    let sol = solve_milp(&prob, &MilpOptions::default()).unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    assert!((sol.objective - 2.0).abs() < 1e-6);
}

#[test]
fn integer_infeasible_but_lp_feasible() {
    // 0.4 <= x <= 0.6, x binary → no integer point.
    let mut lp = LpProblem::new(Sense::Maximize);
    let x = lp.add_var("x", 0.4, 0.6, 1.0);
    let prob = MilpProblem { lp, integers: vec![x] };
    let sol = solve_milp(&prob, &MilpOptions::default()).unwrap();
    assert_eq!(sol.status, MilpStatus::Infeasible);
}

#[test]
fn lp_infeasible_propagates() {
    let mut lp = LpProblem::new(Sense::Maximize);
    let x = lp.add_var("x", 0.0, 1.0, 1.0);
    lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
    let prob = MilpProblem { lp, integers: vec![x] };
    let sol = solve_milp(&prob, &MilpOptions::default()).unwrap();
    assert_eq!(sol.status, MilpStatus::Infeasible);
}

#[test]
fn unbounded_detected() {
    let mut lp = LpProblem::new(Sense::Maximize);
    let _x = lp.add_var("x", 0.0, f64::INFINITY, 1.0);
    let prob = MilpProblem { lp, integers: vec![] };
    let sol = solve_milp(&prob, &MilpOptions::default()).unwrap();
    assert_eq!(sol.status, MilpStatus::Unbounded);
}

#[test]
fn pure_lp_passthrough() {
    // No integers: answer equals the LP optimum.
    let mut lp = LpProblem::new(Sense::Maximize);
    let x = lp.add_var("x", 0.0, 1.0, 2.0);
    let y = lp.add_var("y", 0.0, 1.0, 1.0);
    lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 1.5);
    let prob = MilpProblem { lp, integers: vec![] };
    let sol = solve_milp(&prob, &MilpOptions::default()).unwrap();
    assert!((sol.objective - 2.5).abs() < 1e-6);
}

#[test]
fn warm_start_is_used_and_verified() {
    let prob = knapsack(&[5.0, 4.0, 3.0], &[4.0, 3.0, 2.0], 6.0);
    // Feasible warm start: items 1 and 2 (weight 5, value 7).
    let opts = MilpOptions { warm_start: Some(vec![0.0, 1.0, 1.0]), ..Default::default() };
    let sol = solve_milp(&prob, &opts).unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    assert!((sol.objective - 8.0).abs() < 1e-6); // items 0,2

    // Infeasible warm start (weight 9 > 6) must be rejected, not trusted.
    let opts2 = MilpOptions { warm_start: Some(vec![1.0, 1.0, 1.0]), ..Default::default() };
    let sol2 = solve_milp(&prob, &opts2).unwrap();
    assert!((sol2.objective - 8.0).abs() < 1e-6);
}

#[test]
fn node_limit_reports_best_incumbent() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let n = 14;
    let values: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..10.0)).collect();
    let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..10.0)).collect();
    let prob = knapsack(&values, &weights, 30.0);
    let opts = MilpOptions { max_nodes: 3, ..Default::default() };
    let sol = solve_milp(&prob, &opts).unwrap();
    assert_eq!(sol.status, MilpStatus::NodeLimit);
    // Root heuristic should still have produced something feasible.
    if !sol.objective.is_nan() {
        assert!(prob.max_violation(&sol.x) < 1e-6);
    }
}

#[test]
fn parallel_matches_sequential() {
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    for trial in 0..10 {
        let n = rng.gen_range(6..=12usize);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..10.0)).collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..10.0)).collect();
        let cap = rng.gen_range(10.0..30.0);
        let prob = knapsack(&values, &weights, cap);
        let seq = solve_milp(&prob, &MilpOptions::default()).unwrap();
        let popts = MilpOptions { threads: 4, ..Default::default() };
        let par = solve_milp(&prob, &popts).unwrap();
        assert_eq!(seq.status, MilpStatus::Optimal);
        assert_eq!(par.status, MilpStatus::Optimal, "trial {trial}");
        assert!(
            (seq.objective - par.objective).abs() < 1e-6,
            "trial {trial}: seq {} par {}",
            seq.objective,
            par.objective
        );
    }
}

#[test]
fn branching_rules_agree_on_optimum() {
    let prob = knapsack(&[6.0, 5.0, 4.0, 3.0], &[5.0, 4.0, 3.0, 2.0], 9.0);
    let a = MilpOptions {
        branching: cubis_milp::Branching::MostFractional,
        ..Default::default()
    };
    let b = MilpOptions {
        branching: cubis_milp::Branching::FirstFractional,
        ..Default::default()
    };
    let sa = solve_milp(&prob, &a).unwrap();
    let sb = solve_milp(&prob, &b).unwrap();
    assert!((sa.objective - sb.objective).abs() < 1e-6);
}

#[test]
fn priorities_do_not_change_optimum() {
    let prob = knapsack(&[6.0, 5.0, 4.0, 3.0], &[5.0, 4.0, 3.0, 2.0], 9.0);
    let opts = MilpOptions { priorities: vec![0, 10, 0, 5], ..Default::default() };
    let sol = solve_milp(&prob, &opts).unwrap();
    let base = solve_milp(&prob, &MilpOptions::default()).unwrap();
    assert!((sol.objective - base.objective).abs() < 1e-6);
}

#[test]
fn bound_is_valid_upper_bound_for_maximization() {
    let prob = knapsack(&[5.0, 4.0, 3.0], &[4.0, 3.0, 2.0], 6.0);
    let sol = solve_milp(&prob, &MilpOptions::default()).unwrap();
    assert!(sol.bound >= sol.objective - 1e-6);
}

#[test]
fn equality_constrained_milp() {
    // Exact cover flavor: x + y + z = 2, maximize 3x + 2y + z, binaries.
    let mut lp = LpProblem::new(Sense::Maximize);
    let x = lp.add_var("x", 0.0, 1.0, 3.0);
    let y = lp.add_var("y", 0.0, 1.0, 2.0);
    let z = lp.add_var("z", 0.0, 1.0, 1.0);
    lp.add_constraint(vec![(x, 1.0), (y, 1.0), (z, 1.0)], Relation::Eq, 2.0);
    let prob = MilpProblem { lp, integers: vec![x, y, z] };
    let sol = solve_milp(&prob, &MilpOptions::default()).unwrap();
    assert!((sol.objective - 5.0).abs() < 1e-6);
    assert!((sol.x[0] - 1.0).abs() < 1e-6);
    assert!((sol.x[1] - 1.0).abs() < 1e-6);
}
