//! Solve-event model: what a recorder can capture.
//!
//! Events are deliberately flat and self-describing so a journal can be
//! post-processed without access to the solver that produced it. Each
//! variant carries every number it reports inline; nothing references
//! solver state.

use crate::json::{JsonError, JsonValue};

/// One step of the CUBIS binary search over the defender-utility value
/// `c` (Propositions 1–2 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryStepEvent {
    /// 1-based step index (step 1 is the feasibility anchor at the
    /// lower end of the utility range).
    pub step: usize,
    /// The probed utility value `c`.
    pub c: f64,
    /// The inner maximization value `max_x G_c(x)` returned for this
    /// `c`.
    pub g_value: f64,
    /// Whether `c` was accepted as achievable (`g_value >= -g_tol`).
    pub feasible: bool,
    /// Lower bound after processing this step.
    pub lb: f64,
    /// Upper bound after processing this step.
    pub ub: f64,
}

/// One inner-solver invocation (`max_x G_c(x)`), with the backend's
/// own work counters.
#[derive(Debug, Clone, PartialEq)]
pub struct InnerSolveEvent {
    /// Backend name as reported by `InnerSolver::name` ("milp", "dp",
    /// "greedy", ...).
    pub backend: String,
    /// The utility value the inner problem was solved at.
    pub c: f64,
    /// Piecewise-linear resolution `K` (segment count), when the
    /// backend has one.
    pub k: Option<usize>,
    /// Branch-and-bound nodes explored by this call.
    pub milp_nodes: usize,
    /// Simplex iterations across all LP relaxations of this call.
    pub lp_iterations: usize,
    /// Objective evaluations (piecewise-linear breakpoints, DP cells,
    /// greedy probes).
    pub evaluations: usize,
    /// Wall-clock duration of the call in nanoseconds.
    pub dur_ns: u64,
}

/// One branch-and-bound solve in `cubis-milp`.
#[derive(Debug, Clone, PartialEq)]
pub struct BbSolveEvent {
    /// Nodes explored.
    pub nodes: usize,
    /// Simplex iterations summed over all node relaxations.
    pub lp_iterations: usize,
    /// Number of times the incumbent improved.
    pub incumbent_updates: usize,
    /// Nodes processed per worker (empty for a sequential solve). The
    /// spread between entries measures parallel utilization.
    pub worker_nodes: Vec<u64>,
    /// Wall-clock duration of the solve in nanoseconds.
    pub dur_ns: u64,
}

/// Final outcome of a CUBIS solve, recorded once per `solve` call.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveSummaryEvent {
    /// Final binary-search lower bound.
    pub lb: f64,
    /// Final binary-search upper bound.
    pub ub: f64,
    /// Exact worst-case utility of the returned strategy.
    pub worst_case: f64,
    /// Number of binary-search steps taken.
    pub binary_steps: usize,
}

/// Anything a [`crate::Recorder`] can capture.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A named timed region, emitted once when the region ends.
    /// `dur_ns` is measured by the span guard itself, so the region
    /// started at roughly `t_ns - dur_ns` on the journal clock.
    Span {
        /// Dotted phase name, e.g. `"cubis.solve"` or `"lp.solve"`.
        name: String,
        /// Region duration in nanoseconds.
        dur_ns: u64,
    },
    /// A monotonic counter increment.
    Counter {
        /// Dotted counter name, e.g. `"lp.pivots"`.
        name: String,
        /// Amount added.
        delta: u64,
    },
    /// A binary-search step (see [`BinaryStepEvent`]).
    BinaryStep(BinaryStepEvent),
    /// An inner-solver call (see [`InnerSolveEvent`]).
    InnerSolve(InnerSolveEvent),
    /// A branch-and-bound solve (see [`BbSolveEvent`]).
    BbSolve(BbSolveEvent),
    /// A completed CUBIS solve (see [`SolveSummaryEvent`]).
    SolveSummary(SolveSummaryEvent),
}

/// An [`Event`] stamped with its offset from the journal epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Nanoseconds since the owning journal's epoch.
    pub t_ns: u64,
    /// The recorded event.
    pub event: Event,
}

/// Encode a float that may be non-finite: JSON has no literal for NaN
/// or the infinities, so those become tag strings.
fn num(v: f64) -> JsonValue {
    if v.is_finite() {
        JsonValue::Num(v)
    } else if v.is_nan() {
        JsonValue::Str("NaN".to_string())
    } else if v > 0.0 {
        JsonValue::Str("Infinity".to_string())
    } else {
        JsonValue::Str("-Infinity".to_string())
    }
}

fn unum(v: u64) -> JsonValue {
    JsonValue::Num(v as f64)
}

fn schema(message: impl Into<String>) -> JsonError {
    JsonError {
        offset: 0,
        message: message.into(),
    }
}

/// Decode a float written by [`num`].
fn read_num(v: &JsonValue, field: &str) -> Result<f64, JsonError> {
    match v {
        JsonValue::Num(x) => Ok(*x),
        JsonValue::Str(s) => match s.as_str() {
            "NaN" => Ok(f64::NAN),
            "Infinity" => Ok(f64::INFINITY),
            "-Infinity" => Ok(f64::NEG_INFINITY),
            _ => Err(schema(format!("field '{field}': unknown float tag '{s}'"))),
        },
        _ => Err(schema(format!("field '{field}': expected a number"))),
    }
}

fn field<'a>(obj: &'a JsonValue, name: &str) -> Result<&'a JsonValue, JsonError> {
    obj.get(name)
        .ok_or_else(|| schema(format!("missing field '{name}'")))
}

fn f64_field(obj: &JsonValue, name: &str) -> Result<f64, JsonError> {
    read_num(field(obj, name)?, name)
}

fn u64_field(obj: &JsonValue, name: &str) -> Result<u64, JsonError> {
    field(obj, name)?
        .as_u64()
        .ok_or_else(|| schema(format!("field '{name}': expected a non-negative integer")))
}

fn usize_field(obj: &JsonValue, name: &str) -> Result<usize, JsonError> {
    field(obj, name)?
        .as_usize()
        .ok_or_else(|| schema(format!("field '{name}': expected a non-negative integer")))
}

fn bool_field(obj: &JsonValue, name: &str) -> Result<bool, JsonError> {
    field(obj, name)?
        .as_bool()
        .ok_or_else(|| schema(format!("field '{name}': expected a boolean")))
}

fn str_field(obj: &JsonValue, name: &str) -> Result<String, JsonError> {
    Ok(field(obj, name)?
        .as_str()
        .ok_or_else(|| schema(format!("field '{name}': expected a string")))?
        .to_string())
}

impl TimedEvent {
    /// Encode as a flat JSON object with a `"type"` discriminant.
    pub fn to_value(&self) -> JsonValue {
        let mut pairs = vec![("t".to_string(), unum(self.t_ns))];
        match &self.event {
            Event::Span { name, dur_ns } => {
                pairs.push(("type".to_string(), JsonValue::Str("span".to_string())));
                pairs.push(("name".to_string(), JsonValue::Str(name.clone())));
                pairs.push(("dur_ns".to_string(), unum(*dur_ns)));
            }
            Event::Counter { name, delta } => {
                pairs.push(("type".to_string(), JsonValue::Str("counter".to_string())));
                pairs.push(("name".to_string(), JsonValue::Str(name.clone())));
                pairs.push(("delta".to_string(), unum(*delta)));
            }
            Event::BinaryStep(e) => {
                pairs.push((
                    "type".to_string(),
                    JsonValue::Str("binary_step".to_string()),
                ));
                pairs.push(("step".to_string(), unum(e.step as u64)));
                pairs.push(("c".to_string(), num(e.c)));
                pairs.push(("g_value".to_string(), num(e.g_value)));
                pairs.push(("feasible".to_string(), JsonValue::Bool(e.feasible)));
                pairs.push(("lb".to_string(), num(e.lb)));
                pairs.push(("ub".to_string(), num(e.ub)));
            }
            Event::InnerSolve(e) => {
                pairs.push((
                    "type".to_string(),
                    JsonValue::Str("inner_solve".to_string()),
                ));
                pairs.push(("backend".to_string(), JsonValue::Str(e.backend.clone())));
                pairs.push(("c".to_string(), num(e.c)));
                pairs.push((
                    "k".to_string(),
                    match e.k {
                        Some(k) => unum(k as u64),
                        None => JsonValue::Null,
                    },
                ));
                pairs.push(("milp_nodes".to_string(), unum(e.milp_nodes as u64)));
                pairs.push(("lp_iterations".to_string(), unum(e.lp_iterations as u64)));
                pairs.push(("evaluations".to_string(), unum(e.evaluations as u64)));
                pairs.push(("dur_ns".to_string(), unum(e.dur_ns)));
            }
            Event::BbSolve(e) => {
                pairs.push(("type".to_string(), JsonValue::Str("bb_solve".to_string())));
                pairs.push(("nodes".to_string(), unum(e.nodes as u64)));
                pairs.push(("lp_iterations".to_string(), unum(e.lp_iterations as u64)));
                pairs.push((
                    "incumbent_updates".to_string(),
                    unum(e.incumbent_updates as u64),
                ));
                pairs.push((
                    "worker_nodes".to_string(),
                    JsonValue::Arr(e.worker_nodes.iter().map(|&n| unum(n)).collect()),
                ));
                pairs.push(("dur_ns".to_string(), unum(e.dur_ns)));
            }
            Event::SolveSummary(e) => {
                pairs.push((
                    "type".to_string(),
                    JsonValue::Str("solve_summary".to_string()),
                ));
                pairs.push(("lb".to_string(), num(e.lb)));
                pairs.push(("ub".to_string(), num(e.ub)));
                pairs.push(("worst_case".to_string(), num(e.worst_case)));
                pairs.push(("binary_steps".to_string(), unum(e.binary_steps as u64)));
            }
        }
        JsonValue::Obj(pairs)
    }

    /// Decode an object written by [`TimedEvent::to_value`].
    pub fn from_value(v: &JsonValue) -> Result<TimedEvent, JsonError> {
        let t_ns = u64_field(v, "t")?;
        let kind = str_field(v, "type")?;
        let event = match kind.as_str() {
            "span" => Event::Span {
                name: str_field(v, "name")?,
                dur_ns: u64_field(v, "dur_ns")?,
            },
            "counter" => Event::Counter {
                name: str_field(v, "name")?,
                delta: u64_field(v, "delta")?,
            },
            "binary_step" => Event::BinaryStep(BinaryStepEvent {
                step: usize_field(v, "step")?,
                c: f64_field(v, "c")?,
                g_value: f64_field(v, "g_value")?,
                feasible: bool_field(v, "feasible")?,
                lb: f64_field(v, "lb")?,
                ub: f64_field(v, "ub")?,
            }),
            "inner_solve" => Event::InnerSolve(InnerSolveEvent {
                backend: str_field(v, "backend")?,
                c: f64_field(v, "c")?,
                k: match field(v, "k")? {
                    JsonValue::Null => None,
                    other => Some(other.as_usize().ok_or_else(|| {
                        schema("field 'k': expected null or a non-negative integer")
                    })?),
                },
                milp_nodes: usize_field(v, "milp_nodes")?,
                lp_iterations: usize_field(v, "lp_iterations")?,
                evaluations: usize_field(v, "evaluations")?,
                dur_ns: u64_field(v, "dur_ns")?,
            }),
            "bb_solve" => Event::BbSolve(BbSolveEvent {
                nodes: usize_field(v, "nodes")?,
                lp_iterations: usize_field(v, "lp_iterations")?,
                incumbent_updates: usize_field(v, "incumbent_updates")?,
                worker_nodes: field(v, "worker_nodes")?
                    .as_arr()
                    .ok_or_else(|| schema("field 'worker_nodes': expected an array"))?
                    .iter()
                    .map(|n| {
                        n.as_u64().ok_or_else(|| {
                            schema("field 'worker_nodes': expected non-negative integers")
                        })
                    })
                    .collect::<Result<Vec<u64>, JsonError>>()?,
                dur_ns: u64_field(v, "dur_ns")?,
            }),
            "solve_summary" => Event::SolveSummary(SolveSummaryEvent {
                lb: f64_field(v, "lb")?,
                ub: f64_field(v, "ub")?,
                worst_case: f64_field(v, "worst_case")?,
                binary_steps: usize_field(v, "binary_steps")?,
            }),
            other => return Err(schema(format!("unknown event type '{other}'"))),
        };
        Ok(TimedEvent { t_ns, event })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn round_trip(ev: TimedEvent) -> TimedEvent {
        let text = ev.to_value().to_json_string();
        TimedEvent::from_value(&parse(&text).unwrap()).unwrap()
    }

    #[test]
    fn every_variant_round_trips() {
        let events = vec![
            TimedEvent {
                t_ns: 12,
                event: Event::Span {
                    name: "cubis.solve".to_string(),
                    dur_ns: 99,
                },
            },
            TimedEvent {
                t_ns: 13,
                event: Event::Counter {
                    name: "lp.pivots".to_string(),
                    delta: 41,
                },
            },
            TimedEvent {
                t_ns: 14,
                event: Event::BinaryStep(BinaryStepEvent {
                    step: 3,
                    c: -1.25,
                    g_value: 0.5,
                    feasible: true,
                    lb: -2.0,
                    ub: -0.5,
                }),
            },
            TimedEvent {
                t_ns: 15,
                event: Event::InnerSolve(InnerSolveEvent {
                    backend: "milp".to_string(),
                    c: -1.25,
                    k: Some(20),
                    milp_nodes: 7,
                    lp_iterations: 120,
                    evaluations: 336,
                    dur_ns: 5_000,
                }),
            },
            TimedEvent {
                t_ns: 16,
                event: Event::InnerSolve(InnerSolveEvent {
                    backend: "dp".to_string(),
                    c: 0.0,
                    k: None,
                    milp_nodes: 0,
                    lp_iterations: 0,
                    evaluations: 4_000,
                    dur_ns: 800,
                }),
            },
            TimedEvent {
                t_ns: 17,
                event: Event::BbSolve(BbSolveEvent {
                    nodes: 31,
                    lp_iterations: 420,
                    incumbent_updates: 4,
                    worker_nodes: vec![8, 9, 7, 7],
                    dur_ns: 70_000,
                }),
            },
            TimedEvent {
                t_ns: 18,
                event: Event::SolveSummary(SolveSummaryEvent {
                    lb: -1.5,
                    ub: -1.4995,
                    worst_case: -1.4997,
                    binary_steps: 14,
                }),
            },
        ];
        for ev in events {
            assert_eq!(round_trip(ev.clone()), ev);
        }
    }

    #[test]
    fn non_finite_floats_round_trip() {
        let ev = TimedEvent {
            t_ns: 0,
            event: Event::BinaryStep(BinaryStepEvent {
                step: 1,
                c: f64::NEG_INFINITY,
                g_value: f64::NAN,
                feasible: false,
                lb: f64::NEG_INFINITY,
                ub: f64::INFINITY,
            }),
        };
        let back = round_trip(ev);
        match back.event {
            Event::BinaryStep(e) => {
                assert!(e.c == f64::NEG_INFINITY);
                assert!(e.g_value.is_nan());
                assert!(e.ub == f64::INFINITY);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn unknown_type_is_rejected() {
        let v = parse(r#"{"t": 0, "type": "mystery"}"#).unwrap();
        assert!(TimedEvent::from_value(&v).is_err());
    }

    #[test]
    fn missing_field_is_rejected() {
        let v = parse(r#"{"t": 0, "type": "span", "name": "x"}"#).unwrap();
        let err = TimedEvent::from_value(&v).unwrap_err();
        assert!(err.message.contains("dur_ns"), "{err}");
    }
}
