//! **F3 — runtime vs number of targets.**
//!
//! The paper's efficiency claim: CUBIS (binary search + MILP) is far
//! faster than handing the non-convex program (15–17) to a generic
//! solver with multi-start. We time three routes to (approximately) the
//! same answer: CUBIS-MILP, CUBIS-DP, and the multi-start
//! projected-gradient comparator (our Fmincon stand-in).

use super::{robust_value, Profile};
use crate::fixtures::workload;
use crate::metrics::{median, timed};
use crate::report::Report;
use cubis_core::SolveError;

/// Target sizes (Quick profile trims the largest).
pub const TARGETS: [usize; 4] = [2, 5, 10, 20];
/// Fixed uncertainty level.
pub const DELTA: f64 = 0.5;
/// MILP segment count.
pub const K: usize = 5;

/// Run the experiment.
pub fn run(profile: Profile) -> Result<Report, SolveError> {
    let sizes: &[usize] = if profile == Profile::Full {
        &TARGETS
    } else {
        &TARGETS[..3]
    };
    let reps = match profile {
        Profile::Quick => 3,
        Profile::Full => 5,
    };
    let mut r = Report::new(
        "F3 — median runtime (seconds) vs number of targets",
        vec![
            "targets",
            "CUBIS(MILP)",
            "CUBIS(DP)",
            "multistart-PG",
            "quality gap (PG − CUBIS)",
        ],
    );
    r.note(format!(
        "δ = {DELTA}, R = ⌈T/4⌉, K = {K}, ε = 1e-2, median over {reps} seeded \
         instances. Expected shape: both CUBIS routes scale mildly; the \
         generic non-convex route is slower and no better in quality \
         (absolute runtimes reflect our own simplex/B&B, not CPLEX)."
    ));
    for &t in sizes {
        let res = (t as f64 / 4.0).ceil();
        let mut t_milp = Vec::new();
        let mut t_dp = Vec::new();
        let mut t_pg = Vec::new();
        let mut gaps = Vec::new();
        for seed in 0..reps {
            let (game, model) = workload(seed, t, res, DELTA);
            let p = cubis_core::RobustProblem::new(&game, &model);
            let (milp_sol, s_milp) = timed(|| super::cubis_milp(K, 1e-2).solve(&p));
            let milp_sol = milp_sol?;
            let (dp_sol, s_dp) = timed(|| super::cubis_dp(100, 1e-2).solve(&p));
            dp_sol?;
            let (pg_x, s_pg) = timed(|| {
                cubis_solvers::solve_nonconvex(
                    &game,
                    &model,
                    &cubis_solvers::NonconvexOptions {
                        starts: 12,
                        max_iters: 150,
                        seed,
                        parallel: false,
                        ..Default::default()
                    },
                )
            });
            t_milp.push(s_milp);
            t_dp.push(s_dp);
            t_pg.push(s_pg);
            gaps.push(robust_value(&game, &model, &pg_x) - milp_sol.worst_case);
        }
        r.row(vec![
            format!("{t}"),
            format!("{:.3}", median(&t_milp)),
            format!("{:.3}", median(&t_dp)),
            format!("{:.3}", median(&t_pg)),
            format!("{:+.3}", median(&gaps)),
        ]);
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_routes_agree_on_quality() {
        let (game, model) = workload(2, 5, 2.0, 0.5);
        let p = cubis_core::RobustProblem::new(&game, &model);
        let milp = super::super::cubis_milp(8, 1e-2).solve(&p).unwrap();
        let dp = super::super::cubis_dp(100, 1e-2).solve(&p).unwrap();
        assert!(
            (milp.worst_case - dp.worst_case).abs() < 0.2,
            "milp {} vs dp {}",
            milp.worst_case,
            dp.worst_case
        );
    }
}
