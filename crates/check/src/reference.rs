//! Executable-spec reference implementations for differential oracles.
//!
//! Each function here re-derives a production answer by the most
//! obviously-correct route available: the greedy spec replays the
//! documented selection rule float-op by float-op, and the brute-force
//! searches enumerate the entire coverage grid. None of this shares
//! control flow with the production solvers in `cubis-core`, which is
//! the point — a bug has to occur twice, identically, to slip past.

use cubis_behavior::IntervalChoiceModel;
use cubis_core::problem::RobustProblem;
use cubis_core::transform;

/// Result of the spec greedy: grid allocation plus achieved `G_c`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecGreedy {
    /// Units allocated per target (each ≤ `pp`).
    pub alloc: Vec<usize>,
    /// True `G_c` at the allocation.
    pub g_value: f64,
}

/// The documented greedy selection rule, replayed independently.
///
/// This mirrors `GreedyInner` in `cubis-core` *exactly* — same scan
/// order (targets outer, lookahead inner), same rate arithmetic
/// `(g_next − g_now) / l`, same strictly-greater replacement rule — so
/// the differential oracle can demand an **identical allocation
/// vector**, not just a close value. A "better" spec (e.g. one fixing
/// ties differently) would mask real divergences; see
/// `spec_greedy_impl` for the deliberately corrupted variant used to
/// prove the oracle has teeth.
pub fn spec_greedy<M: IntervalChoiceModel>(
    p: &RobustProblem<'_, M>,
    pp: usize,
    lookahead: usize,
    c: f64,
) -> SpecGreedy {
    spec_greedy_impl(p, pp, lookahead, c, false)
}

/// Spec greedy with an optional **deliberate corruption**: when `flip`
/// is set, the selection comparison is inverted (`rate < best` instead
/// of `rate > best`), emulating the "flipped comparison in greedy"
/// fault the harness must catch. Tests only — production callers use
/// [`spec_greedy`].
pub fn spec_greedy_impl<M: IntervalChoiceModel>(
    p: &RobustProblem<'_, M>,
    pp: usize,
    lookahead: usize,
    c: f64,
    flip: bool,
) -> SpecGreedy {
    assert!(pp > 0 && lookahead > 0, "spec_greedy: pp and lookahead must be positive");
    let t = p.num_targets();
    let step = 1.0 / pp as f64;
    let budget_units = (p.resources() * pp as f64).round() as usize;

    let mut alloc = vec![0usize; t];
    let mut g_now: Vec<f64> = (0..t).map(|i| transform::g(p, i, 0.0, c)).collect();
    for _ in 0..budget_units {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..t {
            for l in 1..=lookahead {
                let next_units = alloc[i] + l;
                if next_units > pp {
                    break;
                }
                let g_next = transform::g(p, i, next_units as f64 * step, c);
                let rate = (g_next - g_now[i]) / l as f64;
                let want = if flip { std::cmp::Ordering::Less } else { std::cmp::Ordering::Greater };
                let replaces = match best {
                    None => true,
                    Some((_, r)) => rate.total_cmp(&r) == want,
                };
                if replaces {
                    best = Some((i, rate));
                }
            }
        }
        let Some((i, _)) = best else { break };
        alloc[i] += 1;
        g_now[i] = transform::g(p, i, alloc[i] as f64 * step, c);
    }
    let x: Vec<f64> = alloc.iter().map(|&a| a as f64 * step).collect();
    SpecGreedy { alloc, g_value: transform::g_total(p, &x, c) }
}

/// Number of grid allocations `{a : Σ aᵢ ≤ budget, aᵢ ≤ pp}` — the
/// work estimate callers use to gate brute-force enumeration.
/// Saturates at `u64::MAX`.
pub fn grid_size(t: usize, pp: usize) -> u64 {
    let per_target = pp as u64 + 1;
    let mut acc: u64 = 1;
    for _ in 0..t {
        acc = match acc.checked_mul(per_target) {
            Some(v) => v,
            None => return u64::MAX,
        };
    }
    acc
}

/// Visit every allocation `a ∈ {0..=pp}^t` with `Σ aᵢ ≤ budget_units`,
/// in lexicographic order.
pub fn for_each_allocation(
    t: usize,
    pp: usize,
    budget_units: usize,
    mut visit: impl FnMut(&[usize]),
) {
    let mut a = vec![0usize; t];
    let mut used = 0usize;
    loop {
        visit(&a);
        // Odometer increment, skipping over-budget states wholesale by
        // carrying as soon as the budget is exceeded.
        let mut pos = t;
        loop {
            if pos == 0 {
                return;
            }
            pos -= 1;
            if a[pos] < pp && used < budget_units {
                a[pos] += 1;
                used += 1;
                break;
            }
            used -= a[pos];
            a[pos] = 0;
        }
    }
}

/// Brute-force maximum of `G_c` over the full coverage grid.
///
/// Exact on the same feasible set the DP searches (`Σ xᵢ ≤ R`, grid
/// step `1/pp`), so `DpInner` must match it to float tolerance.
pub fn brute_force_g_max<M: IntervalChoiceModel>(
    p: &RobustProblem<'_, M>,
    pp: usize,
    c: f64,
) -> (f64, Vec<f64>) {
    let t = p.num_targets();
    let step = 1.0 / pp as f64;
    let budget_units = (p.resources() * pp as f64).round() as usize;
    let mut best = f64::NEG_INFINITY;
    let mut best_x = vec![0.0; t];
    for_each_allocation(t, pp, budget_units, |a| {
        let x: Vec<f64> = a.iter().map(|&u| u as f64 * step).collect();
        let g = transform::g_total(p, &x, c);
        if g.total_cmp(&best).is_gt() {
            best = g;
            best_x = x;
        }
    });
    (best, best_x)
}

/// Brute-force robust defender value: maximize the exact worst-case
/// utility over the full coverage grid. The reference answer full CUBIS
/// must bracket within Theorem 1's `ε` tolerance (the grid resolutions
/// are matched by the caller, so no `1/K` term is needed).
pub fn brute_force_robust<M: IntervalChoiceModel>(
    p: &RobustProblem<'_, M>,
    pp: usize,
) -> (f64, Vec<f64>) {
    let t = p.num_targets();
    let step = 1.0 / pp as f64;
    let budget_units = (p.resources() * pp as f64).round() as usize;
    let mut best = f64::NEG_INFINITY;
    let mut best_x = vec![0.0; t];
    for_each_allocation(t, pp, budget_units, |a| {
        let x: Vec<f64> = a.iter().map(|&u| u as f64 * step).collect();
        let wc = p.worst_case(&x).utility;
        if wc.total_cmp(&best).is_gt() {
            best = wc;
            best_x = x;
        }
    });
    (best, best_x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::CheckInstance;

    #[test]
    fn grid_sizes() {
        assert_eq!(grid_size(3, 4), 125);
        assert_eq!(grid_size(0, 9), 1);
        assert_eq!(grid_size(64, usize::MAX.min(1 << 20)), u64::MAX);
    }

    #[test]
    fn enumeration_visits_exactly_the_feasible_set() {
        let mut seen = Vec::new();
        for_each_allocation(3, 2, 3, |a| seen.push(a.to_vec()));
        // All distinct, all feasible.
        for a in &seen {
            assert!(a.iter().all(|&v| v <= 2));
            assert!(a.iter().sum::<usize>() <= 3);
        }
        let mut sorted = seen.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), seen.len(), "duplicate allocation visited");
        // Count check: #{a ∈ {0,1,2}³ : Σa ≤ 3} = 27 − #{Σa ∈ {4,5,6}}.
        // Σ=4: 6, Σ=5: 3, Σ=6: 1 → 27 − 10 = 17.
        assert_eq!(seen.len(), 17);
    }

    #[test]
    fn brute_g_max_beats_every_feasible_point() {
        let inst = CheckInstance::generate(21);
        let game = inst.game();
        let model = inst.model(&game);
        let p = RobustProblem::new(&game, &model);
        let pp = 3;
        let c = 0.0;
        let (best, best_x) = brute_force_g_max(&p, pp, c);
        assert!((transform::g_total(&p, &best_x, c) - best).abs() < 1e-12);
        let budget = (p.resources() * pp as f64).round() as usize;
        for_each_allocation(p.num_targets(), pp, budget, |a| {
            let x: Vec<f64> = a.iter().map(|&u| u as f64 / pp as f64).collect();
            assert!(transform::g_total(&p, &x, c) <= best + 1e-12);
        });
    }

    #[test]
    fn flipped_spec_differs_from_straight_spec() {
        // The corruption used in the detection acceptance test must
        // actually change behavior on typical instances.
        let mut changed = 0;
        for seed in 0..8u64 {
            let inst = CheckInstance::generate(seed);
            let game = inst.game();
            let model = inst.model(&game);
            let p = RobustProblem::new(&game, &model);
            let straight = spec_greedy_impl(&p, inst.pp, 2, 0.0, false);
            let flipped = spec_greedy_impl(&p, inst.pp, 2, 0.0, true);
            if straight.alloc != flipped.alloc {
                changed += 1;
            }
        }
        assert!(changed >= 4, "flip changed only {changed}/8 instances");
    }
}
