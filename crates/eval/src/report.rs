//! Markdown and JSON report emission.

use serde::Serialize;
use std::fmt::Write as _;

/// A table destined for stdout / EXPERIMENTS.md.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Experiment id + title (e.g. "F1 — worst-case utility vs δ").
    pub title: String,
    /// Free-form context lines printed above the table.
    pub notes: Vec<String>,
    /// Column headers.
    pub header: Vec<String>,
    /// Table body.
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// Start a report.
    pub fn new(title: impl Into<String>, header: Vec<&str>) -> Self {
        Self {
            title: title.into(),
            notes: Vec::new(),
            header: header.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Add a context line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "report row width mismatch");
        self.rows.push(cells);
    }

    /// Render as column-aligned markdown.
    pub fn to_markdown(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut s = String::new();
        let _ = writeln!(s, "### {}\n", self.title);
        for n in &self.notes {
            let _ = writeln!(s, "{n}");
        }
        if !self.notes.is_empty() {
            let _ = writeln!(s);
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(&widths) {
                let _ = write!(line, " {c:<w$} |");
            }
            line
        };
        let _ = writeln!(s, "{}", fmt_row(&self.header));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(s, "{sep}");
        for row in &self.rows {
            let _ = writeln!(s, "{}", fmt_row(row));
        }
        let _ = s; // keep clippy calm about the last write!
        debug_assert_eq!(ncols, self.header.len());
        s
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.to_markdown());
    }

    /// Serialize as pretty JSON (machine-readable companion to the
    /// markdown; `run_all` writes all reports to `results.json`).
    pub fn to_json(&self) -> String {
        // cubis:allow(NUM02): Report is strings-only (no maps with
        // non-string keys, no NaN-rejecting types), so serde_json
        // serialization is infallible.
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }
}

/// Write a batch of reports as one JSON document.
pub fn write_json(reports: &[Report], path: &str) -> std::io::Result<()> {
    // cubis:allow(NUM02): same strings-only argument as Report::to_json.
    let doc = serde_json::to_string_pretty(reports).expect("serialization cannot fail");
    std::fs::write(path, doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut r = Report::new("T — demo", vec!["name", "value"]);
        r.note("context");
        r.row(vec!["alpha".into(), "1".into()]);
        r.row(vec!["b".into(), "12345".into()]);
        let md = r.to_markdown();
        assert!(md.contains("### T — demo"));
        assert!(md.contains("| alpha | 1     |"));
        assert!(md.contains("| b     | 12345 |"));
        assert!(md.contains("context"));
    }

    #[test]
    fn json_round_trips_titles_and_rows() {
        let mut r = Report::new("J — json", vec!["a"]);
        r.row(vec!["42".into()]);
        let j = r.to_json();
        assert!(j.contains("\"J — json\""));
        assert!(j.contains("\"42\""));
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["rows"][0][0], "42");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut r = Report::new("x", vec!["a", "b"]);
        r.row(vec!["only-one".into()]);
    }
}
