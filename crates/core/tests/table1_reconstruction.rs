//! Grid search that recovered the paper's unstated Table-I defender
//! payoffs (documented in DESIGN.md §2 and EXPERIMENTS.md): the best
//! fit is Rd = (5, 6), Pd = (−6, −9), reproducing the paper's robust
//! strategy (0.46, 0.54), midpoint strategy (0.34, 0.66) and the
//! worst-case utilities −0.90 / −2.26 to within ~0.1.
use cubis_behavior::{BoundConvention, Interval, IntervalChoiceModel, SuqrUncertainty, UncertainSuqr};
use cubis_core::{Cubis, DpInner, RobustProblem};
use cubis_game::{SecurityGame, TargetPayoffs};

struct MidParams<'a>(&'a UncertainSuqr);
impl IntervalChoiceModel for MidParams<'_> {
    fn log_bounds(&self, _g: &SecurityGame, i: usize, x: f64) -> (f64, f64) {
        let w = &self.0.weights;
        let (ra, pa) = self.0.payoffs[i];
        let e = w.w1.mid() * x + w.w2.mid() * ra.mid() + w.w3.mid() * pa.mid();
        (e, e)
    }
}

#[test]
#[ignore] // exploratory; run explicitly
fn grid_search_defender_payoffs() {
    let m = UncertainSuqr::new(
        SuqrUncertainty::paper_example(),
        vec![
            (Interval::new(1.0, 5.0), Interval::new(-7.0, -3.0)),
            (Interval::new(5.0, 9.0), Interval::new(-9.0, -5.0)),
        ],
        BoundConvention::CornerComponentwise,
    );
    let mut best: Vec<(f64, String)> = Vec::new();
    for rd1 in 1..=9 {
        for pd1 in -9..=-1i32 {
            for rd2 in 1..=9 {
                for pd2 in -9..=-1i32 {
                    let game = SecurityGame::new(
                        vec![
                            TargetPayoffs::new(rd1 as f64, pd1 as f64, 3.0, -5.0),
                            TargetPayoffs::new(rd2 as f64, pd2 as f64, 7.0, -7.0),
                        ],
                        1.0,
                    );
                    let p = RobustProblem::new(&game, &m);
                    let sol = Cubis::new(DpInner::new(100)).with_epsilon(1e-3).solve(&p).unwrap();
                    let midm = MidParams(&m);
                    let pm = RobustProblem::new(&game, &midm);
                    let xm = Cubis::new(DpInner::new(100)).with_epsilon(1e-3).solve(&pm).unwrap().x;
                    let wc_mid = p.worst_case(&xm).utility;
                    // Score distance to paper numbers.
                    let score = (sol.x[0] - 0.46).powi(2)
                        + (xm[0] - 0.34).powi(2)
                        + 0.05 * (sol.worst_case - -0.90).powi(2)
                        + 0.05 * (wc_mid - -2.26).powi(2);
                    best.push((
                        score,
                        format!(
                            "Rd=({rd1},{rd2}) Pd=({pd1},{pd2}): rob ({:.2},{:.2}) wc {:.2}; mid ({:.2},{:.2}) wc {:.2}",
                            sol.x[0], sol.x[1], sol.worst_case, xm[0], xm[1], wc_mid
                        ),
                    ));
                }
            }
        }
    }
    best.sort_by(|a, b| a.0.total_cmp(&b.0));
    for (s, line) in best.iter().take(12) {
        println!("{s:.4}  {line}");
    }
}
