//! The versioned wire codec for the solve service.
//!
//! Requests and responses are JSON on `cubis-trace`'s dependency-free
//! codec, each with a `version` number and a `kind` discriminator —
//! the same envelope discipline the check artifacts and bench reports
//! use. Instances travel in the canonical `cubis-check` encoding
//! ([`cubis_check::canon`]), which is also what the solution cache key
//! is hashed from, so "the bytes you sent" and "the bytes that keyed
//! the cache" are the same encoding by construction.
//!
//! Solution bodies are rendered once, from the solver output, through
//! the trace codec's shortest-repr `f64` printer: two renderings of the
//! same solution are *bit-identical*, which is what lets the cache
//! serve stored bytes and still honor the "cached ≡ fresh" oracle.

use cubis_check::instance::format_seed;
use cubis_check::CheckInstance;
use cubis_core::CubisSolution;
use cubis_trace::json::JsonValue;

/// Wire format version for every request/response kind below.
pub const WIRE_VERSION: f64 = 1.0;
/// `kind` of a single-solve request.
pub const KIND_SOLVE: &str = "cubis-serve-solve";
/// `kind` of a batch-solve request.
pub const KIND_SOLVE_BATCH: &str = "cubis-serve-solve-batch";
/// `kind` of a solution response.
pub const KIND_SOLUTION: &str = "cubis-serve-solution";
/// `kind` of a batch response.
pub const KIND_BATCH: &str = "cubis-serve-batch-solution";
/// `kind` of an error body.
pub const KIND_ERROR: &str = "cubis-serve-error";

/// Which inner engine a request asks the service to run.
///
/// `Auto` (the default, omitted on the wire) routes by instance size
/// exactly like [`cubis_core::InnerPolicy::Auto`]: small instances get
/// the exact DP backend, large ones the certified breakpoint-grid
/// (`scale`) backend. The other two variants force a backend; forced
/// requests are cached under a policy-qualified key so a `dp` body is
/// never served to a `scale` request or vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RequestPolicy {
    /// Route by target count (the service default).
    #[default]
    Auto,
    /// Force the exact dynamic-programming inner backend.
    Dp,
    /// Force the certified breakpoint-grid inner backend.
    Scale,
}

impl RequestPolicy {
    /// The wire spelling (`"auto"`, `"dp"`, `"scale"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Dp => "dp",
            Self::Scale => "scale",
        }
    }

    fn from_wire(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(Self::Auto),
            "dp" => Ok(Self::Dp),
            "scale" => Ok(Self::Scale),
            other => Err(format!("unknown policy `{other}` (want auto|dp|scale)")),
        }
    }
}

/// A single-solve request: one instance plus an optional deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// The instance to solve, in the canonical encoding.
    pub instance: CheckInstance,
    /// Per-request deadline budget in milliseconds (`None` = no limit).
    pub deadline_ms: Option<u64>,
    /// Inner-engine selection (`Auto` when omitted on the wire).
    pub policy: RequestPolicy,
}

/// A batch-solve request: the instances are fanned into
/// [`cubis_core::Cubis::solve_batch`]; the deadline applies to each
/// item independently.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRequest {
    /// The instances to solve, in request order.
    pub instances: Vec<CheckInstance>,
    /// Per-item deadline budget in milliseconds (`None` = no limit).
    pub deadline_ms: Option<u64>,
    /// Inner-engine selection, applied per item (`Auto` when omitted).
    pub policy: RequestPolicy,
}

fn envelope(kind: &str) -> Vec<(String, JsonValue)> {
    vec![
        ("version".to_string(), JsonValue::Num(WIRE_VERSION)),
        ("kind".to_string(), JsonValue::Str(kind.to_string())),
    ]
}

/// Check the `version`/`kind` envelope, returning the value itself.
fn expect_envelope<'v>(v: &'v JsonValue, kind: &str) -> Result<&'v JsonValue, String> {
    let got =
        v.get("kind").and_then(JsonValue::as_str).ok_or_else(|| "missing `kind`".to_string())?;
    if got != kind {
        return Err(format!("kind `{got}` is not `{kind}`"));
    }
    let version = v
        .get("version")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| "missing `version`".to_string())?;
    if version > WIRE_VERSION {
        return Err(format!("wire version {version} is newer than supported {WIRE_VERSION}"));
    }
    Ok(v)
}

fn deadline_field(v: &JsonValue) -> Result<Option<u64>, String> {
    match v.get("deadline_ms") {
        None | Some(JsonValue::Null) => Ok(None),
        Some(d) => {
            d.as_u64().map(Some).ok_or_else(|| "field `deadline_ms` is not a u64".to_string())
        }
    }
}

fn policy_field(v: &JsonValue) -> Result<RequestPolicy, String> {
    match v.get("policy") {
        None | Some(JsonValue::Null) => Ok(RequestPolicy::Auto),
        Some(p) => p
            .as_str()
            .ok_or_else(|| "field `policy` is not a string".to_string())
            .and_then(RequestPolicy::from_wire),
    }
}

impl SolveRequest {
    /// Encode as a JSON value.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = envelope(KIND_SOLVE);
        fields.push((
            "instance".to_string(),
            cubis_check::canon::encode_instance(&self.instance),
        ));
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), JsonValue::Num(ms as f64)));
        }
        if self.policy != RequestPolicy::Auto {
            fields.push(("policy".to_string(), JsonValue::Str(self.policy.as_str().to_string())));
        }
        JsonValue::Obj(fields)
    }

    /// Serialize to the request body text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json_string()
    }

    /// Decode a request body.
    pub fn from_json_str(src: &str) -> Result<Self, String> {
        let v = cubis_trace::json::parse(src).map_err(|e| format!("bad JSON: {e}"))?;
        let v = expect_envelope(&v, KIND_SOLVE)?;
        let inst = v.get("instance").ok_or_else(|| "missing `instance`".to_string())?;
        Ok(Self {
            instance: cubis_check::canon::decode_instance(inst)?,
            deadline_ms: deadline_field(v)?,
            policy: policy_field(v)?,
        })
    }
}

impl BatchRequest {
    /// Encode as a JSON value.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = envelope(KIND_SOLVE_BATCH);
        fields.push((
            "instances".to_string(),
            JsonValue::Arr(
                self.instances.iter().map(cubis_check::canon::encode_instance).collect(),
            ),
        ));
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), JsonValue::Num(ms as f64)));
        }
        if self.policy != RequestPolicy::Auto {
            fields.push(("policy".to_string(), JsonValue::Str(self.policy.as_str().to_string())));
        }
        JsonValue::Obj(fields)
    }

    /// Serialize to the request body text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json_string()
    }

    /// Decode a request body.
    pub fn from_json_str(src: &str) -> Result<Self, String> {
        let v = cubis_trace::json::parse(src).map_err(|e| format!("bad JSON: {e}"))?;
        let v = expect_envelope(&v, KIND_SOLVE_BATCH)?;
        let arr = v
            .get("instances")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| "missing `instances` array".to_string())?;
        let instances = arr
            .iter()
            .map(cubis_check::canon::decode_instance)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { instances, deadline_ms: deadline_field(v)?, policy: policy_field(v)? })
    }
}

/// Encode a solution body. `instance_hash` is the FNV-1a content hash
/// the cache is keyed by, echoed back so clients can correlate.
pub fn solution_to_json(instance_hash: u64, sol: &CubisSolution) -> JsonValue {
    let mut fields = envelope(KIND_SOLUTION);
    fields.push(("instance_hash".to_string(), JsonValue::Str(format_seed(instance_hash))));
    fields.push((
        "x".to_string(),
        JsonValue::Arr(sol.x.iter().map(|&v| JsonValue::Num(v)).collect()),
    ));
    fields.push(("lb".to_string(), JsonValue::Num(sol.lb)));
    fields.push(("ub".to_string(), JsonValue::Num(sol.ub)));
    fields.push(("worst_case".to_string(), JsonValue::Num(sol.worst_case)));
    fields.push(("binary_steps".to_string(), JsonValue::Num(sol.binary_steps as f64)));
    fields.push(("gap".to_string(), JsonValue::Num(sol.certificate().gap)));
    fields.push(("inner_gap".to_string(), JsonValue::Num(sol.inner_gap)));
    JsonValue::Obj(fields)
}

/// The decoded client view of a solution body.
#[derive(Debug, Clone, PartialEq)]
pub struct SolutionView {
    /// FNV-1a content hash of the solved instance.
    pub instance_hash: u64,
    /// The robust coverage vector.
    pub x: Vec<f64>,
    /// Binary-search lower bound.
    pub lb: f64,
    /// Binary-search upper bound.
    pub ub: f64,
    /// Exact worst-case utility of `x`.
    pub worst_case: f64,
    /// Binary-search steps performed.
    pub binary_steps: usize,
    /// Certificate gap `ub − lb`.
    pub gap: f64,
    /// Certified inner-maximization slack (0 for exact backends; see
    /// [`cubis_core::CubisSolution::inner_gap`]).
    pub inner_gap: f64,
}

impl SolutionView {
    /// Decode a solution body.
    pub fn from_json_str(src: &str) -> Result<Self, String> {
        let v = cubis_trace::json::parse(src).map_err(|e| format!("bad JSON: {e}"))?;
        let v = expect_envelope(&v, KIND_SOLUTION)?;
        let num = |name: &str| -> Result<f64, String> {
            v.get(name)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing numeric `{name}`"))
        };
        let hash_text = v
            .get("instance_hash")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing `instance_hash`".to_string())?;
        let x = v
            .get("x")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| "missing `x` array".to_string())?
            .iter()
            .map(|e| e.as_f64().ok_or_else(|| "non-numeric coverage entry".to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            instance_hash: cubis_check::parse_seed(hash_text)?,
            x,
            lb: num("lb")?,
            ub: num("ub")?,
            worst_case: num("worst_case")?,
            binary_steps: num("binary_steps")? as usize,
            gap: num("gap")?,
            inner_gap: num("inner_gap")?,
        })
    }
}

/// Encode an error body: a machine-readable `code` plus human detail.
/// 504 bodies additionally carry the incumbent bounds the solver had
/// reached when the deadline fired (see
/// [`cubis_core::SolveError::DeadlineExceeded`]).
pub fn error_body(code: &str, detail: &str, bounds: Option<(f64, f64, usize)>) -> String {
    let mut fields = envelope(KIND_ERROR);
    fields.push(("code".to_string(), JsonValue::Str(code.to_string())));
    fields.push(("detail".to_string(), JsonValue::Str(detail.to_string())));
    if let Some((lb, ub, steps)) = bounds {
        fields.push((
            "incumbent".to_string(),
            JsonValue::Obj(vec![
                ("lb".to_string(), JsonValue::Num(lb)),
                ("ub".to_string(), JsonValue::Num(ub)),
                ("binary_steps".to_string(), JsonValue::Num(steps as f64)),
            ]),
        ));
    }
    JsonValue::Obj(fields).to_json_string()
}

/// Extract the `code` of an error body, if it parses as one.
pub fn error_code(body: &str) -> Option<String> {
    let v = cubis_trace::json::parse(body).ok()?;
    if v.get("kind")?.as_str()? != KIND_ERROR {
        return None;
    }
    Some(v.get("code")?.as_str()?.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_request_round_trips() {
        let req = SolveRequest {
            instance: CheckInstance::generate(42),
            deadline_ms: Some(250),
            policy: RequestPolicy::Auto,
        };
        let back = SolveRequest::from_json_str(&req.to_json_string()).unwrap();
        assert_eq!(req, back);
        let req = SolveRequest {
            instance: CheckInstance::generate(7),
            deadline_ms: None,
            policy: RequestPolicy::Auto,
        };
        let back = SolveRequest::from_json_str(&req.to_json_string()).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn policy_round_trips_and_is_omitted_when_auto() {
        for policy in [RequestPolicy::Dp, RequestPolicy::Scale] {
            let req = SolveRequest {
                instance: CheckInstance::generate(5),
                deadline_ms: None,
                policy,
            };
            let text = req.to_json_string();
            assert!(text.contains("\"policy\""), "forced policy must travel: {text}");
            assert_eq!(SolveRequest::from_json_str(&text).unwrap(), req);
        }
        let auto = SolveRequest {
            instance: CheckInstance::generate(5),
            deadline_ms: None,
            policy: RequestPolicy::Auto,
        };
        let text = auto.to_json_string();
        assert!(!text.contains("\"policy\""), "auto is the wire default: {text}");
        assert!(
            SolveRequest::from_json_str(&text.replace("\"instance\"", "\"policy\":\"wat\",\"instance\""))
                .is_err(),
            "unknown policies must be rejected"
        );
    }

    #[test]
    fn batch_request_round_trips() {
        let req = BatchRequest {
            instances: vec![CheckInstance::generate(1), CheckInstance::generate(2)],
            deadline_ms: None,
            policy: RequestPolicy::Auto,
        };
        let back = BatchRequest::from_json_str(&req.to_json_string()).unwrap();
        assert_eq!(req, back);
        let req = BatchRequest { policy: RequestPolicy::Scale, ..req };
        let back = BatchRequest::from_json_str(&req.to_json_string()).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn wrong_kind_and_future_version_are_rejected() {
        let req = SolveRequest {
            instance: CheckInstance::generate(3),
            deadline_ms: None,
            policy: RequestPolicy::Auto,
        };
        let text = req.to_json_string();
        assert!(SolveRequest::from_json_str(&text.replace(KIND_SOLVE, "nope")).is_err());
        assert!(
            SolveRequest::from_json_str(&text.replace("\"version\":1", "\"version\":99")).is_err()
        );
        assert!(BatchRequest::from_json_str(&text).is_err(), "solve body is not a batch body");
    }

    #[test]
    fn error_body_carries_code_and_incumbent() {
        let body = error_body("deadline_exceeded", "ran out of time", Some((1.5, 2.5, 3)));
        assert_eq!(error_code(&body).as_deref(), Some("deadline_exceeded"));
        let v = cubis_trace::json::parse(&body).unwrap();
        let inc = v.get("incumbent").unwrap();
        assert_eq!(inc.get("lb").unwrap().as_f64().unwrap(), 1.5);
        assert_eq!(inc.get("binary_steps").unwrap().as_usize().unwrap(), 3);
        assert_eq!(error_code("{\"kind\":\"other\"}"), None);
    }
}
