//! The committed benchmark pins (`bench-pins.json` at the repo root).
//!
//! Two families of regression pins used to live as hard-coded constants
//! scattered between `tests/tests/bench.rs` and the harness:
//!
//! * the **pivot pin** — the `lp.pivots` ceiling the cold
//!   `large-t10-k16` solve must stay strictly below (the revised
//!   simplex's devex pricing beating the seed dense tableau), and
//! * the **step pins** — exact binary-search step counts per fixture
//!   seed, which the warm-start machinery promises never to change.
//!
//! Both now live in one reviewed JSON file read by `cubis-xtask bench
//! --smoke` *and* the tier-1 `bench.rs` gate, so a legitimate re-pin
//! (new fixtures, a deliberate ε change) is a single file edit with a
//! reviewable diff instead of a constants hunt. The file is parsed with
//! the trace JSON codec — same no-serde policy as `BENCH_solve.json`.

use cubis_trace::json::{self, JsonValue};
use std::path::{Path, PathBuf};

/// Version tag in `bench-pins.json`; bump on schema changes.
pub const PINS_FORMAT_VERSION: u64 = 1;

/// The cold-path simplex-pivot ceiling for one named shape.
#[derive(Debug, Clone, PartialEq)]
pub struct PivotPin {
    /// The `BENCH_solve.json` shape the ceiling applies to.
    pub shape: String,
    /// Committed cold `lp.pivots` must stay strictly below this.
    pub max_cold_lp_pivots: u64,
}

/// One pinned binary-search step count for a fixture workload.
#[derive(Debug, Clone, PartialEq)]
pub struct StepPin {
    /// Workload generator seed.
    pub seed: u64,
    /// Number of targets `T`.
    pub targets: usize,
    /// Defender resources `R`.
    pub resources: f64,
    /// Uncertainty width factor `δ`.
    pub delta: f64,
    /// Piecewise segments `K`.
    pub k: usize,
    /// Binary-search threshold `ε`.
    pub epsilon: f64,
    /// The exact step count (warm and cold agree by contract).
    pub steps: usize,
}

/// The whole pin file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPins {
    /// Schema version ([`PINS_FORMAT_VERSION`]).
    pub format_version: u64,
    /// The simplex-pivot ceiling.
    pub pivot_pin: PivotPin,
    /// The per-seed step pins.
    pub step_pins: Vec<StepPin>,
}

impl BenchPins {
    /// The committed location: `<repo-root>/bench-pins.json`, resolved
    /// relative to this crate's manifest directory.
    pub fn default_path() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench-pins.json")
    }

    /// Load and validate pins from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json_str(&src)
    }

    /// Parse (trace JSON codec) and structurally validate.
    pub fn from_json_str(src: &str) -> Result<Self, String> {
        let v = json::parse(src).map_err(|e| format!("bench pins: {e}"))?;
        let format_version = v
            .get("format_version")
            .and_then(JsonValue::as_u64)
            .ok_or("bench pins: missing `format_version`")?;
        if format_version != PINS_FORMAT_VERSION {
            return Err(format!(
                "bench pins: format_version {format_version} (expected {PINS_FORMAT_VERSION})"
            ));
        }
        let pp = v.get("pivot_pin").ok_or("bench pins: missing `pivot_pin`")?;
        let pivot_pin = PivotPin {
            shape: pp
                .get("shape")
                .and_then(JsonValue::as_str)
                .ok_or("pivot_pin: missing `shape`")?
                .to_string(),
            max_cold_lp_pivots: pp
                .get("max_cold_lp_pivots")
                .and_then(JsonValue::as_u64)
                .ok_or("pivot_pin: missing `max_cold_lp_pivots`")?,
        };
        let step_pins = v
            .get("step_pins")
            .and_then(JsonValue::as_arr)
            .ok_or("bench pins: missing `step_pins` array")?
            .iter()
            .map(StepPin::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if step_pins.is_empty() {
            return Err("bench pins: empty `step_pins`".into());
        }
        Ok(Self { format_version, pivot_pin, step_pins })
    }
}

impl StepPin {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("step pin: missing or non-integer `{key}`"))
        };
        let f = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("step pin: missing or non-numeric `{key}`"))
        };
        let pin = Self {
            seed: u("seed")?,
            targets: u("targets")? as usize,
            resources: f("resources")?,
            delta: f("delta")?,
            k: u("k")? as usize,
            epsilon: f("epsilon")?,
            steps: u("steps")? as usize,
        };
        if pin.targets == 0 || pin.k == 0 || pin.epsilon <= 0.0 || pin.steps == 0 {
            return Err(format!("step pin seed {}: degenerate parameters", pin.seed));
        }
        Ok(pin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_pins_load_and_cover_the_pivot_shape() {
        let pins = BenchPins::load(&BenchPins::default_path()).expect("committed bench-pins.json");
        assert_eq!(pins.format_version, PINS_FORMAT_VERSION);
        assert_eq!(pins.pivot_pin.shape, "large-t10-k16");
        assert!(pins.pivot_pin.max_cold_lp_pivots > 0);
        assert!(pins.step_pins.len() >= 4);
        // The smoke shape's seed must be pinned: the ci gate replays it.
        assert!(pins.step_pins.iter().any(|p| p.seed == 7));
    }

    #[test]
    fn malformed_pins_are_rejected() {
        assert!(BenchPins::from_json_str("").is_err());
        assert!(BenchPins::from_json_str("{}").is_err());
        assert!(BenchPins::from_json_str(
            r#"{"format_version": 99, "pivot_pin": {"shape": "x", "max_cold_lp_pivots": 1}, "step_pins": []}"#
        )
        .is_err());
        assert!(BenchPins::from_json_str(
            r#"{"format_version": 1, "pivot_pin": {"shape": "x", "max_cold_lp_pivots": 1}, "step_pins": []}"#
        )
        .is_err());
    }
}
