//! Seeded random game generators.
//!
//! The evaluation workloads in this paper family draw attacker rewards
//! uniformly from `[1, 10]` and penalties from `[−10, −1]`; defender
//! payoffs are either zero-sum mirrors or independently drawn
//! (general-sum). A `covariance` knob in `[-1, 0]` interpolates between
//! fully adversarial (zero-sum, −1) and uncorrelated payoffs (0),
//! mirroring the covariant-game generator of the GAMUT suite used across
//! the SSG literature.

use crate::payoff::TargetPayoffs;
use crate::SecurityGame;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Uniform payoff ranges for the generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PayoffRanges {
    /// Attacker reward range (positive).
    pub att_reward: (f64, f64),
    /// Attacker penalty range (negative).
    pub att_penalty: (f64, f64),
    /// Defender reward range (positive), used for general-sum draws.
    pub def_reward: (f64, f64),
    /// Defender penalty range (negative), used for general-sum draws.
    pub def_penalty: (f64, f64),
}

impl Default for PayoffRanges {
    /// Literature-standard ranges: rewards in `[1, 10]`, penalties in
    /// `[−10, −1]`.
    fn default() -> Self {
        Self {
            att_reward: (1.0, 10.0),
            att_penalty: (-10.0, -1.0),
            def_reward: (1.0, 10.0),
            def_penalty: (-10.0, -1.0),
        }
    }
}

/// Deterministic (seeded) random game generator.
#[derive(Debug, Clone)]
pub struct GameGenerator {
    rng: ChaCha8Rng,
    ranges: PayoffRanges,
    /// `0.0` = independent defender payoffs (general-sum);
    /// `-1.0` = exactly zero-sum. Values in between blend the two.
    covariance: f64,
}

impl GameGenerator {
    /// Create a generator with the default ranges and general-sum payoffs.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed),
            ranges: PayoffRanges::default(),
            covariance: 0.0,
        }
    }

    /// Override the payoff ranges.
    pub fn with_ranges(mut self, ranges: PayoffRanges) -> Self {
        assert!(ranges.att_reward.0 <= ranges.att_reward.1, "bad att_reward range");
        assert!(ranges.att_penalty.0 <= ranges.att_penalty.1, "bad att_penalty range");
        assert!(ranges.def_reward.0 <= ranges.def_reward.1, "bad def_reward range");
        assert!(ranges.def_penalty.0 <= ranges.def_penalty.1, "bad def_penalty range");
        self.ranges = ranges;
        self
    }

    /// Set payoff covariance in `[−1, 0]` (−1 = zero-sum, 0 = independent).
    ///
    /// # Panics
    /// Panics if `c` lies outside `[−1, 0]`.
    pub fn with_covariance(mut self, c: f64) -> Self {
        assert!((-1.0..=0.0).contains(&c), "covariance {c} outside [-1, 0]");
        self.covariance = c;
        self
    }

    /// Generate a game with `t` targets and `r` resources.
    ///
    /// # Panics
    /// Panics if `t == 0` or `r ∉ (0, t]`.
    pub fn generate(&mut self, t: usize, r: f64) -> SecurityGame {
        assert!(t > 0, "generate: no targets");
        let lambda = -self.covariance; // 0 = independent, 1 = zero-sum
        let targets: Vec<TargetPayoffs> = (0..t)
            .map(|_| {
                let ra = self.uniform(self.ranges.att_reward);
                let pa = self.uniform(self.ranges.att_penalty);
                let zs = TargetPayoffs::zero_sum(ra, pa);
                let rd_ind = self.uniform(self.ranges.def_reward);
                let pd_ind = self.uniform(self.ranges.def_penalty);
                TargetPayoffs::new(
                    lambda * zs.def_reward + (1.0 - lambda) * rd_ind,
                    lambda * zs.def_penalty + (1.0 - lambda) * pd_ind,
                    ra,
                    pa,
                )
            })
            .collect();
        SecurityGame::new(targets, r)
    }

    fn uniform(&mut self, (lo, hi): (f64, f64)) -> f64 {
        if lo == hi {
            lo
        } else {
            self.rng.gen_range(lo..hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let g1 = GameGenerator::new(99).generate(6, 2.0);
        let g2 = GameGenerator::new(99).generate(6, 2.0);
        assert_eq!(g1, g2);
        let g3 = GameGenerator::new(100).generate(6, 2.0);
        assert_ne!(g1, g3);
    }

    #[test]
    fn payoffs_respect_ranges() {
        let mut gen = GameGenerator::new(5);
        let game = gen.generate(50, 10.0);
        for t in game.targets() {
            assert!((1.0..=10.0).contains(&t.att_reward));
            assert!((-10.0..=-1.0).contains(&t.att_penalty));
            assert!(t.validate().is_ok());
        }
    }

    #[test]
    fn zero_sum_covariance() {
        let mut gen = GameGenerator::new(5).with_covariance(-1.0);
        let game = gen.generate(10, 3.0);
        for t in game.targets() {
            assert!((t.def_reward + t.att_penalty).abs() < 1e-12);
            assert!((t.def_penalty + t.att_reward).abs() < 1e-12);
        }
    }

    #[test]
    fn intermediate_covariance_blends() {
        let mut gen = GameGenerator::new(5).with_covariance(-0.5);
        let game = gen.generate(10, 3.0);
        // Blended payoffs remain valid and sit between the two extremes in
        // aggregate: defender rewards positive, penalties negative.
        for t in game.targets() {
            assert!(t.def_reward > 0.0);
            assert!(t.def_penalty < 0.0);
        }
    }

    #[test]
    fn successive_games_differ() {
        let mut gen = GameGenerator::new(1);
        let a = gen.generate(4, 1.0);
        let b = gen.generate(4, 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn degenerate_range_is_constant() {
        let ranges = PayoffRanges {
            att_reward: (5.0, 5.0),
            att_penalty: (-5.0, -5.0),
            def_reward: (2.0, 2.0),
            def_penalty: (-2.0, -2.0),
        };
        let mut gen = GameGenerator::new(0).with_ranges(ranges);
        let game = gen.generate(3, 1.0);
        for t in game.targets() {
            assert_eq!(t.att_reward, 5.0);
            assert_eq!(t.def_penalty, -2.0);
        }
    }
}
