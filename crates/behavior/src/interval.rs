//! Closed-interval arithmetic.
//!
//! Only the operations the uncertainty models need: addition, scalar
//! scaling, exact interval products (4-corner min/max), midpoint,
//! width scaling around the midpoint, and containment.

use serde::{Deserialize, Serialize};

/// A closed interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// Construct `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either endpoint is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "Interval: NaN endpoint");
        assert!(lo <= hi, "Interval: lo {lo} > hi {hi}");
        Self { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Self::new(v, v)
    }

    /// Midpoint `(lo + hi)/2`.
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Width `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// True if `v ∈ [lo, hi]`.
    pub fn contains(&self, v: f64) -> bool {
        (self.lo..=self.hi).contains(&v)
    }

    /// Interval sum.
    pub fn add(&self, other: Interval) -> Interval {
        Interval::new(self.lo + other.lo, self.hi + other.hi)
    }

    /// Scale by a scalar (flips endpoints when negative).
    pub fn scale(&self, s: f64) -> Interval {
        if s >= 0.0 {
            Interval::new(s * self.lo, s * self.hi)
        } else {
            Interval::new(s * self.hi, s * self.lo)
        }
    }

    /// Exact interval product: min/max over the four endpoint products.
    pub fn mul(&self, other: Interval) -> Interval {
        let c = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ];
        Interval::new(
            c.iter().cloned().fold(f64::INFINITY, f64::min),
            c.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        )
    }

    /// Shrink or grow the interval around its midpoint: width becomes
    /// `factor ×` the original (0 collapses to the midpoint, 1 is the
    /// identity).
    ///
    /// # Panics
    /// Panics if `factor < 0`.
    pub fn scale_width(&self, factor: f64) -> Interval {
        assert!(factor >= 0.0, "scale_width: negative factor {factor}");
        let m = self.mid();
        let h = 0.5 * self.width() * factor;
        Interval::new(m - h, m + h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let i = Interval::new(-2.0, 4.0);
        assert_eq!(i.mid(), 1.0);
        assert_eq!(i.width(), 6.0);
        assert!(i.contains(-2.0) && i.contains(4.0) && i.contains(0.0));
        assert!(!i.contains(4.1));
    }

    #[test]
    fn point_interval() {
        let p = Interval::point(3.0);
        assert_eq!(p.width(), 0.0);
        assert_eq!(p.mid(), 3.0);
    }

    #[test]
    #[should_panic(expected = "lo")]
    fn crossing_endpoints_rejected() {
        Interval::new(1.0, 0.0);
    }

    #[test]
    fn add_and_scale() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(-1.0, 3.0);
        assert_eq!(a.add(b), Interval::new(0.0, 5.0));
        assert_eq!(a.scale(2.0), Interval::new(2.0, 4.0));
        assert_eq!(a.scale(-1.0), Interval::new(-2.0, -1.0));
    }

    #[test]
    fn product_handles_sign_flips() {
        // [0.4, 0.9] × [−7, −3]: min = 0.9×(−7) = −6.3, max = 0.4×(−3) = −1.2.
        let w = Interval::new(0.4, 0.9);
        let p = Interval::new(-7.0, -3.0);
        let prod = w.mul(p);
        assert!((prod.lo - -6.3).abs() < 1e-12);
        assert!((prod.hi - -1.2).abs() < 1e-12);
        // Mixed-sign × mixed-sign.
        let m = Interval::new(-2.0, 3.0).mul(Interval::new(-5.0, 1.0));
        assert_eq!(m, Interval::new(-15.0, 10.0));
    }

    #[test]
    fn product_contains_all_sample_products() {
        let a = Interval::new(-1.5, 2.0);
        let b = Interval::new(-3.0, 0.5);
        let prod = a.mul(b);
        for i in 0..=10 {
            for j in 0..=10 {
                let av = a.lo + a.width() * i as f64 / 10.0;
                let bv = b.lo + b.width() * j as f64 / 10.0;
                assert!(prod.contains(av * bv) || (av * bv - prod.lo).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn width_scaling() {
        let i = Interval::new(2.0, 6.0);
        assert_eq!(i.scale_width(0.5), Interval::new(3.0, 5.0));
        assert_eq!(i.scale_width(0.0), Interval::new(4.0, 4.0));
        assert_eq!(i.scale_width(1.0), i);
        let grown = i.scale_width(2.0);
        assert_eq!(grown, Interval::new(0.0, 8.0));
    }
}
