//! **F1 bench** — solver cost across the uncertainty sweep δ, plus the
//! printed quality series (who wins at each δ).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cubis_bench::instance;
use cubis_core::{Cubis, DpInner, RobustProblem};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    cubis_eval::experiments::quality_delta::run(cubis_eval::experiments::Profile::Quick)
        .expect("experiment failed")
        .print();

    let mut g = c.benchmark_group("fig_quality_delta");
    for &delta in &[0.0, 0.5, 1.0] {
        let (game, model) = instance(0, 8, 3.0, delta);
        g.bench_with_input(BenchmarkId::new("cubis_dp60", format!("delta{delta}")), &delta, |b, _| {
            b.iter(|| {
                let p = RobustProblem::new(black_box(&game), black_box(&model));
                Cubis::new(DpInner::new(60)).with_epsilon(1e-3).solve(&p).unwrap()
            })
        });
        g.bench_with_input(
            BenchmarkId::new("midpoint", format!("delta{delta}")),
            &delta,
            |b, _| {
                b.iter(|| {
                    cubis_solvers::solve_midpoint_params(&game, &model, 60, 1e-3).unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench
}
criterion_main!(benches);
