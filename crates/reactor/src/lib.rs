//! `cubis-reactor`: a readiness-based, single-threaded event loop for
//! serving HTTP/1.1 with keep-alive, pipelining, backpressure, and
//! timeouts — built on raw `epoll(7)` (Linux) with a portable
//! level-triggered `poll(2)` fallback and zero heavy dependencies.
//!
//! | module    | contents |
//! |-----------|----------|
//! | `sys`     | The entire unsafe surface: `extern "C"` syscall shims and safe wrappers, each unsafe block carrying a `cubis:sys-audit` justification. |
//! | `poller`  | Backend-agnostic readiness API (`Poller`, `Interest`, `PollEvent`) over epoll/poll. |
//! | `http1`   | Incremental, resumable HTTP/1.1 request parser (`RequestParser`) and response encoder; grammar-identical to the one-shot parser in `cubis-serve`. |
//! | `reactor` | The event loop: accept, per-connection state machines, keep-alive, in-order pipelined replies, write backpressure, idle/read/write timeouts. |
//!
//! The workspace forbids `unsafe_code`; this crate is the single
//! audited exemption. The crate-level lint is `deny` (set in
//! Cargo.toml rather than inherited) so the allow below can scope the
//! exemption to exactly one module. The static analyzer's SAFE02 rule
//! enforces the same boundary from the outside.

#[allow(unsafe_code)]
pub(crate) mod sys;

pub mod http1;
pub mod poller;
pub mod reactor;

pub use http1::{
    encode_response, ParseError, ParseStep, ParsedRequest, RequestParser,
    DEFAULT_MAX_BODY_BYTES, DEFAULT_MAX_HEAD_BYTES,
};
pub use poller::{Interest, PollEvent, Poller};
pub use reactor::{
    start, Handler, ReactorConfig, ReactorHandle, Reply, Response, BACKPRESSURE_HIGH_WATER,
};
