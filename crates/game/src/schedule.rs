//! Turning a mixed strategy into implementable patrols.
//!
//! A coverage vector `x` (with `Σ x_i = R`) is a *marginal* — rangers
//! need concrete daily assignments of `R` units to targets whose
//! long-run frequencies match `x`. This module implements the classic
//! comb-sampling decomposition (a systematic-sampling variant of the
//! Birkhoff–von Neumann idea specialized to unit-capacity coverage):
//! every daily patrol protects exactly `⌈R⌉` or `⌊R⌋` distinct targets,
//! and the expected coverage of target `i` equals `x_i` exactly.

use rand::Rng;

/// A single day's patrol: the set of targets covered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Patrol {
    /// Covered target indices, ascending.
    pub targets: Vec<usize>,
}

/// Sample one patrol whose inclusion probabilities equal the coverage
/// vector, using systematic (comb) sampling.
///
/// Lay the `x_i` end-to-end on a circle of circumference `R = Σ x_i`
/// and drop `⌊R⌋`-or-so teeth spaced exactly 1 apart at a uniform random
/// offset; target `i` is covered once per tooth landing in its arc.
/// Since `x_i ≤ 1`, no target is hit twice, and
/// `P[i covered] = x_i` exactly.
///
/// # Panics
/// Panics if any `x_i ∉ [0, 1]` (beyond tolerance) or `x` is empty.
pub fn sample_patrol<R: Rng>(x: &[f64], rng: &mut R) -> Patrol {
    assert!(!x.is_empty(), "sample_patrol: empty coverage");
    for (i, &xi) in x.iter().enumerate() {
        assert!(
            (-1e-9..=1.0 + 1e-9).contains(&xi),
            "sample_patrol: x[{i}] = {xi} outside [0,1]"
        );
    }
    let total: f64 = x.iter().sum();
    let offset: f64 = rng.gen_range(0.0..1.0);
    let mut targets = Vec::with_capacity(total.ceil() as usize);
    // Teeth at offset, offset+1, offset+2, …; walk the arcs once.
    let mut acc = 0.0;
    for (i, &xi) in x.iter().enumerate() {
        let lo = acc;
        acc += xi.clamp(0.0, 1.0);
        // A tooth t + k lies in [lo, acc) for integer k iff
        // ⌈lo − offset⌉ < acc − offset + something; count directly:
        let first = (lo - offset).ceil();
        let tooth = offset + first;
        if tooth >= lo - 1e-12 && tooth < acc - 1e-12 {
            targets.push(i);
        }
    }
    Patrol { targets }
}

/// Empirical coverage of `n` sampled patrols (diagnostic / tests).
pub fn empirical_coverage<R: Rng>(x: &[f64], n: usize, rng: &mut R) -> Vec<f64> {
    let mut counts = vec![0usize; x.len()];
    for _ in 0..n {
        for t in sample_patrol(x, rng).targets {
            counts[t] += 1;
        }
    }
    counts.into_iter().map(|c| c as f64 / n as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn patrol_size_matches_budget() {
        let x = [0.5, 0.75, 0.25, 0.5]; // R = 2
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..200 {
            let p = sample_patrol(&x, &mut rng);
            assert_eq!(p.targets.len(), 2, "patrol {:?}", p.targets);
            // Distinct and sorted.
            assert!(p.targets.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn fractional_budget_gives_floor_or_ceil_sizes() {
        let x = [0.5, 0.7, 0.3]; // R = 1.5
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..200 {
            let n = sample_patrol(&x, &mut rng).targets.len();
            assert!(n == 1 || n == 2, "got {n}");
        }
    }

    #[test]
    fn empirical_coverage_matches_marginals() {
        let x = [0.9, 0.35, 0.45, 0.3];
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let emp = empirical_coverage(&x, 40_000, &mut rng);
        for (e, &xi) in emp.iter().zip(&x) {
            assert!((e - xi).abs() < 0.01, "empirical {e} vs marginal {xi}");
        }
    }

    #[test]
    fn full_coverage_targets_always_included() {
        let x = [1.0, 0.5, 0.5];
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..100 {
            let p = sample_patrol(&x, &mut rng);
            assert!(p.targets.contains(&0));
        }
    }

    #[test]
    fn zero_coverage_targets_never_included() {
        let x = [0.0, 1.0, 0.0];
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            let p = sample_patrol(&x, &mut rng);
            assert_eq!(p.targets, vec![1]);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        sample_patrol(&[1.5, 0.5], &mut rng);
    }
}
