//! Learning SUQR weights from attack data, with uncertainty intervals.
//!
//! Section III of the paper motivates the interval model by scarce
//! data: "the interval size indicates the uncertainty level when
//! modeling, which could be specified based on the available data for
//! learning". This module makes that operational:
//!
//! * [`AttackDataset`] — observed (coverage, attacked-target) pairs,
//!   with a synthetic generator for experiments;
//! * [`fit_suqr`] — maximum-likelihood estimation of the SUQR weights
//!   by projected gradient ascent on the (concave) log-likelihood;
//! * [`bootstrap_box`] — a nonparametric bootstrap producing the
//!   [`SuqrUncertainty`] weight box from per-weight percentile
//!   confidence intervals — the exact input CUBIS consumes.
//!
//! The end-to-end loop (generate data → fit → box → robust solve) is
//! exercised by experiment **F7** in `cubis-eval`.

use crate::choice::attack_distribution;
use crate::suqr::{Suqr, SuqrWeights};
use crate::uncertain::SuqrUncertainty;
use crate::Interval;
use cubis_game::SecurityGame;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// One observed attack: the coverage in force and the chosen target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Index of the coverage vector in the dataset's strategy list.
    pub strategy: usize,
    /// Attacked target.
    pub target: usize,
}

/// A dataset of attacks observed under known defender strategies.
#[derive(Debug, Clone)]
pub struct AttackDataset {
    /// Defender strategies in force during collection.
    pub strategies: Vec<Vec<f64>>,
    /// Observations referencing `strategies` by index.
    pub observations: Vec<Observation>,
}

impl AttackDataset {
    /// Generate `n` synthetic observations from a ground-truth SUQR
    /// attacker facing rotating defender strategies (deterministic under
    /// `seed`). The strategies are random feasible coverages — varied
    /// coverage is what makes `w1` identifiable.
    pub fn synthetic(
        game: &SecurityGame,
        truth: SuqrWeights,
        n: usize,
        seed: u64,
    ) -> AttackDataset {
        assert!(n > 0, "synthetic: need at least one observation");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let t = game.num_targets();
        let n_strategies = 8.min(n);
        let strategies: Vec<Vec<f64>> = (0..n_strategies)
            .map(|_| {
                let raw: Vec<f64> = (0..t).map(|_| rng.gen_range(-0.5..1.5)).collect();
                cubis_game::project_capped_simplex(&raw, game.resources())
            })
            .collect();
        let model = Suqr::new(truth);
        let observations = (0..n)
            .map(|i| {
                let s = i % n_strategies;
                let q = attack_distribution(&model, game, &strategies[s]);
                let u: f64 = rng.gen_range(0.0..1.0);
                let mut acc = 0.0;
                let mut target = t - 1;
                for (j, &qj) in q.iter().enumerate() {
                    acc += qj;
                    if u < acc {
                        target = j;
                        break;
                    }
                }
                Observation { strategy: s, target }
            })
            .collect();
        AttackDataset { strategies, observations }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True when the dataset holds no observations.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Average log-likelihood of the dataset under the given weights.
    pub fn log_likelihood(&self, game: &SecurityGame, w: SuqrWeights) -> f64 {
        let model = Suqr::new(w);
        // Attack distributions per distinct strategy (cached).
        let qs: Vec<Vec<f64>> = self
            .strategies
            .iter()
            .map(|x| attack_distribution(&model, game, x))
            .collect();
        self.observations
            .iter()
            .map(|o| qs[o.strategy][o.target].max(1e-300).ln())
            .sum::<f64>()
            / self.observations.len() as f64
    }
}

/// Options for [`fit_suqr`].
#[derive(Debug, Clone)]
pub struct FitOptions {
    /// Gradient-ascent iterations.
    pub max_iters: usize,
    /// Initial step size (Armijo-backtracked).
    pub step0: f64,
    /// Convergence threshold on the parameter step.
    pub tol: f64,
    /// Box limits keeping the estimate in the valid SUQR sign region.
    pub w1_range: (f64, f64),
    /// Limits for `w2`.
    pub w2_range: (f64, f64),
    /// Limits for `w3`.
    pub w3_range: (f64, f64),
}

impl Default for FitOptions {
    fn default() -> Self {
        Self {
            max_iters: 400,
            step0: 1.0,
            tol: 1e-9,
            w1_range: (-20.0, 0.0),
            w2_range: (0.0, 5.0),
            w3_range: (0.0, 5.0),
        }
    }
}

/// Maximum-likelihood SUQR weights for a dataset (projected gradient
/// ascent on the average log-likelihood; the conditional-logit
/// likelihood is concave in the weights, so this converges to the
/// global maximum within the box).
pub fn fit_suqr(game: &SecurityGame, data: &AttackDataset, opts: &FitOptions) -> SuqrWeights {
    assert!(!data.is_empty(), "fit_suqr: empty dataset");
    let clamp = |w: [f64; 3]| -> [f64; 3] {
        [
            w[0].clamp(opts.w1_range.0, opts.w1_range.1),
            w[1].clamp(opts.w2_range.0, opts.w2_range.1),
            w[2].clamp(opts.w3_range.0, opts.w3_range.1),
        ]
    };
    let ll = |w: [f64; 3]| -> f64 {
        data.log_likelihood(game, SuqrWeights::new(w[0], w[1], w[2]))
    };

    let mut w = clamp([-5.0, 0.5, 0.5]);
    let mut f = ll(w);
    let h = 1e-6;
    for _ in 0..opts.max_iters {
        // Central-difference gradient (3 params → 6 evals; each eval is
        // O(#strategies · T + n)).
        let mut grad = [0.0f64; 3];
        for d in 0..3 {
            let mut wp = w;
            let mut wm = w;
            wp[d] += h;
            wm[d] -= h;
            grad[d] = (ll(clamp(wp)) - ll(clamp(wm))) / (2.0 * h);
        }
        let mut step = opts.step0;
        let mut advanced = false;
        for _ in 0..40 {
            let cand = clamp([
                w[0] + step * grad[0],
                w[1] + step * grad[1],
                w[2] + step * grad[2],
            ]);
            let fc = ll(cand);
            if fc > f + 1e-12 {
                let delta: f64 =
                    cand.iter().zip(&w).map(|(a, b)| (a - b).abs()).sum();
                w = cand;
                f = fc;
                advanced = delta > opts.tol;
                break;
            }
            step *= 0.5;
        }
        if !advanced {
            break;
        }
    }
    SuqrWeights::new(w[0], w[1], w[2])
}

/// Nonparametric bootstrap: refit on `resamples` resampled datasets and
/// return the per-weight `[α/2, 1−α/2]` percentile box as a
/// [`SuqrUncertainty`] — the uncertainty input to the robust solver.
/// Deterministic under `seed`.
pub fn bootstrap_box(
    game: &SecurityGame,
    data: &AttackDataset,
    resamples: usize,
    alpha: f64,
    seed: u64,
    opts: &FitOptions,
) -> SuqrUncertainty {
    assert!(resamples >= 2, "bootstrap_box: need at least 2 resamples");
    assert!((0.0..1.0).contains(&alpha), "bootstrap_box: alpha {alpha} outside [0,1)");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = data.len();
    let mut w1s = Vec::with_capacity(resamples);
    let mut w2s = Vec::with_capacity(resamples);
    let mut w3s = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let observations: Vec<Observation> =
            (0..n).map(|_| data.observations[rng.gen_range(0..n)]).collect();
        let resampled = AttackDataset { strategies: data.strategies.clone(), observations };
        let w = fit_suqr(game, &resampled, opts);
        w1s.push(w.w1);
        w2s.push(w.w2);
        w3s.push(w.w3);
    }
    let pct_interval = |v: &mut Vec<f64>| -> Interval {
        v.sort_by(f64::total_cmp);
        let lo_idx = ((alpha / 2.0) * (v.len() - 1) as f64).round() as usize;
        let hi_idx = ((1.0 - alpha / 2.0) * (v.len() - 1) as f64).round() as usize;
        Interval::new(v[lo_idx], v[hi_idx])
    };
    let w1 = pct_interval(&mut w1s);
    let w2 = pct_interval(&mut w2s);
    let w3 = pct_interval(&mut w3s);
    SuqrUncertainty {
        w1: Interval::new(w1.lo, w1.hi.min(0.0)),
        w2: Interval::new(w2.lo.max(0.0), w2.hi),
        w3: Interval::new(w3.lo.max(0.0), w3.hi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubis_game::GameGenerator;

    fn setup() -> (SecurityGame, SuqrWeights) {
        let game = GameGenerator::new(100).generate(6, 2.0);
        (game, SuqrWeights::new(-6.0, 0.8, 0.4))
    }

    #[test]
    fn synthetic_data_is_deterministic_and_well_formed() {
        let (game, truth) = setup();
        let a = AttackDataset::synthetic(&game, truth, 100, 7);
        let b = AttackDataset::synthetic(&game, truth, 100, 7);
        assert_eq!(a.observations, b.observations);
        assert_eq!(a.len(), 100);
        for o in &a.observations {
            assert!(o.target < 6);
            assert!(o.strategy < a.strategies.len());
        }
    }

    #[test]
    fn mle_recovers_truth_with_plenty_of_data() {
        let (game, truth) = setup();
        let data = AttackDataset::synthetic(&game, truth, 8000, 3);
        let fit = fit_suqr(&game, &data, &FitOptions::default());
        assert!((fit.w1 - truth.w1).abs() < 1.0, "w1 {} vs {}", fit.w1, truth.w1);
        assert!((fit.w2 - truth.w2).abs() < 0.2, "w2 {} vs {}", fit.w2, truth.w2);
        assert!((fit.w3 - truth.w3).abs() < 0.3, "w3 {} vs {}", fit.w3, truth.w3);
    }

    #[test]
    fn mle_likelihood_at_least_truth_likelihood() {
        // The MLE must fit the sample at least as well as the truth.
        let (game, truth) = setup();
        let data = AttackDataset::synthetic(&game, truth, 400, 5);
        let fit = fit_suqr(&game, &data, &FitOptions::default());
        assert!(
            data.log_likelihood(&game, fit) >= data.log_likelihood(&game, truth) - 1e-9
        );
    }

    #[test]
    fn bootstrap_box_contains_point_estimate_and_shrinks() {
        let (game, truth) = setup();
        let small = AttackDataset::synthetic(&game, truth, 120, 11);
        let large = AttackDataset::synthetic(&game, truth, 2400, 11);
        let opts = FitOptions { max_iters: 120, ..Default::default() };
        let box_small = bootstrap_box(&game, &small, 12, 0.1, 1, &opts);
        let box_large = bootstrap_box(&game, &large, 12, 0.1, 1, &opts);
        // More data ⇒ tighter intervals (the 1/√n shrinkage the paper
        // gestures at), at least in aggregate.
        let width = |b: &SuqrUncertainty| b.w1.width() + b.w2.width() + b.w3.width();
        assert!(
            width(&box_large) < width(&box_small),
            "large {} vs small {}",
            width(&box_large),
            width(&box_small)
        );
        // The full-data point estimate lies in (or at the edge of) the box.
        let fit = fit_suqr(&game, &large, &opts);
        assert!(box_large.w1.lo - 0.5 <= fit.w1 && fit.w1 <= box_large.w1.hi + 0.5);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let (game, _) = setup();
        let data = AttackDataset { strategies: vec![], observations: vec![] };
        fit_suqr(&game, &data, &FitOptions::default());
    }
}
