//! A counters-only recorder for long-lived processes.
//!
//! [`JournalRecorder`](crate::JournalRecorder) keeps every event, which
//! is right for one solve and wrong for a server: a process that solves
//! millions of requests must not grow a journal per request. The
//! [`CounterSetRecorder`] here keeps **O(distinct names)** state — a
//! running total per counter name and a `(count, total_ns)` aggregate
//! per span name — and drops the structured per-solve events entirely.
//! `cubis-serve` attaches one to every solver it runs and dumps the
//! totals on `GET /metrics`.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use cubis_trace::{CounterSetRecorder, SharedRecorder};
//!
//! let counters = Arc::new(CounterSetRecorder::new());
//! let rec = SharedRecorder::new(counters.clone());
//! rec.counter("lp.pivots", 3);
//! rec.counter("lp.pivots", 4);
//! drop(rec.span("cubis.solve"));
//!
//! assert_eq!(counters.counter_totals()["lp.pivots"], 7);
//! assert_eq!(counters.span_aggregates()["cubis.solve"].count, 1);
//! ```

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

use crate::event::Event;
use crate::recorder::Recorder;

/// Aggregate for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Number of completed spans with this name.
    pub count: u64,
    /// Total nanoseconds across those spans.
    pub total_ns: u64,
}

/// Bounded-memory [`Recorder`]: counter totals and span aggregates
/// only; structured events are discarded (see the module docs).
#[derive(Debug, Default)]
pub struct CounterSetRecorder {
    counters: Mutex<BTreeMap<String, u64>>,
    spans: Mutex<BTreeMap<String, SpanAgg>>,
}

impl CounterSetRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of every counter's running total.
    pub fn counter_totals(&self) -> BTreeMap<String, u64> {
        self.counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Snapshot of every span name's `(count, total_ns)` aggregate.
    pub fn span_aggregates(&self) -> BTreeMap<String, SpanAgg> {
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

impl Recorder for CounterSetRecorder {
    fn record(&self, event: Event) {
        match event {
            Event::Counter { name, delta } => {
                let mut counters = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
                *counters.entry(name).or_insert(0) += delta;
            }
            Event::Span { name, dur_ns } => {
                let mut spans = self.spans.lock().unwrap_or_else(PoisonError::into_inner);
                let agg = spans.entry(name).or_default();
                agg.count += 1;
                agg.total_ns += dur_ns;
            }
            // Structured solve events are per-request detail; keeping
            // them would grow without bound in a serving process.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{BinaryStepEvent, Event};
    use crate::recorder::SharedRecorder;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate_and_spans_aggregate() {
        let rec = CounterSetRecorder::new();
        rec.record(Event::Counter {
            name: "bb.nodes".into(),
            delta: 5,
        });
        rec.record(Event::Counter {
            name: "bb.nodes".into(),
            delta: 2,
        });
        rec.record(Event::Span {
            name: "cubis.inner".into(),
            dur_ns: 10,
        });
        rec.record(Event::Span {
            name: "cubis.inner".into(),
            dur_ns: 30,
        });
        assert_eq!(rec.counter_totals()["bb.nodes"], 7);
        assert_eq!(
            rec.span_aggregates()["cubis.inner"],
            SpanAgg {
                count: 2,
                total_ns: 40
            }
        );
    }

    #[test]
    fn structured_events_are_dropped() {
        let rec = CounterSetRecorder::new();
        rec.record(Event::BinaryStep(BinaryStepEvent {
            step: 1,
            c: 0.0,
            g_value: 0.0,
            feasible: true,
            lb: 0.0,
            ub: 1.0,
        }));
        assert!(rec.counter_totals().is_empty());
        assert!(rec.span_aggregates().is_empty());
    }

    #[test]
    fn shared_across_threads() {
        let counters = Arc::new(CounterSetRecorder::new());
        let rec = SharedRecorder::new(counters.clone());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        rec.counter("lp.pivots", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker thread panicked");
        }
        assert_eq!(counters.counter_totals()["lp.pivots"], 400);
    }
}
