//! The canonical instance codec and its FNV-1a content hash.
//!
//! One [`CheckInstance`] encoding is shared by everything that needs to
//! agree byte-for-byte on what an instance *is*: the fuzz artifact
//! writer ([`crate::artifact`]) embeds it in failure artifacts, and the
//! `cubis-serve` solution cache hashes it to key cached solutions.
//! Canonicality comes from two properties of the encoder:
//!
//! * field order is fixed (an object literal, not a map), and
//! * `f64`s print in the trace codec's shortest round-trip form, so
//!   bitwise-equal numbers encode to identical bytes.
//!
//! Hence: equal instances ⇒ equal canonical bytes ⇒ equal
//! [`content_hash`]. The converse direction (hash collisions) is
//! guarded at the cache layer by comparing the canonical bytes before
//! serving a cached entry.
//!
//! The **content** encoding deliberately zeroes the `seed` field: the
//! seed is replay provenance (which fuzz case produced this instance),
//! not problem content, and two identical problems must share a cache
//! key no matter how they were generated. The artifact writer uses the
//! full encoding ([`encode_instance`]), which keeps the seed.

use crate::instance::CheckInstance;
use cubis_trace::json::JsonValue;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The FNV-1a 64-bit hash of `bytes`.
///
/// # Examples
///
/// ```
/// use cubis_check::canon::fnv1a;
///
/// // Published FNV-1a test vectors.
/// assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
/// assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
/// ```
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Encode an instance as the canonical JSON value (full form: keeps
/// the replay seed). This is the single encoder behind
/// [`CheckInstance::to_json`] and the artifact writer.
pub fn encode_instance(inst: &CheckInstance) -> JsonValue {
    use cubis_behavior::BoundConvention;
    let targets = inst
        .targets
        .iter()
        .map(|t| {
            JsonValue::Arr(vec![
                JsonValue::Num(t.def_reward),
                JsonValue::Num(t.def_penalty),
                JsonValue::Num(t.att_reward),
                JsonValue::Num(t.att_penalty),
            ])
        })
        .collect();
    let convention = match inst.convention {
        BoundConvention::ExactInterval => "exact",
        BoundConvention::CornerComponentwise => "corner",
    };
    JsonValue::Obj(vec![
        // Seeds are full 64-bit values; JSON numbers (f64) lose bits
        // above 2^53, so the seed travels as a hex string.
        ("seed".to_string(), JsonValue::Str(format!("{:#018x}", inst.seed))),
        ("targets".to_string(), JsonValue::Arr(targets)),
        ("resources".to_string(), JsonValue::Num(inst.resources)),
        ("payoff_delta".to_string(), JsonValue::Num(inst.payoff_delta)),
        ("width_factor".to_string(), JsonValue::Num(inst.width_factor)),
        ("convention".to_string(), JsonValue::Str(convention.to_string())),
        ("k".to_string(), JsonValue::Num(inst.k as f64)),
        ("pp".to_string(), JsonValue::Num(inst.pp as f64)),
        ("epsilon".to_string(), JsonValue::Num(inst.epsilon)),
    ])
}

/// Decode an instance from its [`encode_instance`] form. The single
/// decoder behind [`CheckInstance::from_json`].
pub fn decode_instance(v: &JsonValue) -> Result<CheckInstance, String> {
    use crate::instance::parse_seed;
    use cubis_behavior::BoundConvention;
    use cubis_game::TargetPayoffs;
    let field = |name: &str| v.get(name).ok_or_else(|| format!("missing field `{name}`"));
    let num =
        |name: &str| field(name)?.as_f64().ok_or_else(|| format!("field `{name}` is not a number"));
    let seed_str =
        field("seed")?.as_str().ok_or_else(|| "field `seed` is not a string".to_string())?;
    let seed = parse_seed(seed_str)?;
    let targets_json =
        field("targets")?.as_arr().ok_or_else(|| "field `targets` is not an array".to_string())?;
    let mut targets = Vec::with_capacity(targets_json.len());
    for t in targets_json {
        let tuple = t.as_arr().ok_or_else(|| "target is not an array".to_string())?;
        if tuple.len() != 4 {
            return Err(format!("target has {} entries, want 4", tuple.len()));
        }
        let mut vals = [0.0f64; 4];
        for (slot, item) in vals.iter_mut().zip(tuple) {
            *slot = item.as_f64().ok_or_else(|| "target entry not a number".to_string())?;
        }
        targets.push(TargetPayoffs::new(vals[0], vals[1], vals[2], vals[3]));
    }
    let convention = match field("convention")?.as_str() {
        Some("exact") => BoundConvention::ExactInterval,
        Some("corner") => BoundConvention::CornerComponentwise,
        other => return Err(format!("unknown convention {other:?}")),
    };
    let as_usize = |name: &str| -> Result<usize, String> {
        let raw = num(name)?;
        if raw < 0.0 || raw.fract().abs() > 1e-9 {
            return Err(format!("field `{name}` is not a nonnegative integer: {raw}"));
        }
        Ok(raw as usize)
    };
    Ok(CheckInstance {
        seed,
        targets,
        resources: num("resources")?,
        payoff_delta: num("payoff_delta")?,
        width_factor: num("width_factor")?,
        convention,
        k: as_usize("k")?,
        pp: as_usize("pp")?,
        epsilon: num("epsilon")?,
    })
}

/// The canonical **content** bytes of an instance: the canonical JSON
/// text with the replay seed zeroed (see the module docs).
pub fn content_bytes(inst: &CheckInstance) -> String {
    if inst.seed == 0 {
        return encode_instance(inst).to_json_string();
    }
    let unseeded = CheckInstance { seed: 0, ..inst.clone() };
    encode_instance(&unseeded).to_json_string()
}

/// The FNV-1a hash of [`content_bytes`] — the `cubis-serve` solution
/// cache key. Equal problems hash equally regardless of how they were
/// generated; the cache compares the content bytes on lookup, so a
/// collision degrades to a miss, never a wrong answer.
pub fn content_hash(inst: &CheckInstance) -> u64 {
    fnv1a(content_bytes(inst).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_published_vectors() {
        // From the reference FNV-1a test suite.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        for seed in [1u64, 42, 0xDEAD_BEEF_CAFE_F00D] {
            let inst = CheckInstance::generate(seed);
            let back = decode_instance(&encode_instance(&inst)).unwrap();
            assert_eq!(inst, back);
            // Through the actual codec text, and idempotently.
            let text = encode_instance(&inst).to_json_string();
            let reparsed = cubis_trace::json::parse(&text).unwrap();
            let back2 = decode_instance(&reparsed).unwrap();
            assert_eq!(back2, inst);
            assert_eq!(encode_instance(&back2).to_json_string(), text);
        }
    }

    #[test]
    fn content_hash_is_stable_across_versions() {
        // Pinned values: if these move, every deployed cache key and
        // recorded artifact hash changes — bump deliberately, never
        // accidentally. (The generator is seed-pure, so these pins also
        // witness generator stability.)
        assert_eq!(content_hash(&CheckInstance::generate(42)), 0x79933daffc67f8d2);
        assert_eq!(content_hash(&CheckInstance::generate(7)), 0xe0938680b985b5d5);
    }

    #[test]
    fn content_hash_ignores_the_replay_seed() {
        let a = CheckInstance::generate(42);
        let relabeled = CheckInstance { seed: 0x1234, ..a.clone() };
        assert_eq!(content_hash(&a), content_hash(&relabeled));
        assert_eq!(content_bytes(&a), content_bytes(&relabeled));
        // But actual content changes move the hash.
        let wider = CheckInstance { width_factor: a.width_factor + 0.25, ..a.clone() };
        assert_ne!(content_hash(&a), content_hash(&wider));
    }

    #[test]
    fn content_bytes_parse_back_to_the_same_problem() {
        let a = CheckInstance::generate(9);
        let v = cubis_trace::json::parse(&content_bytes(&a)).unwrap();
        let back = decode_instance(&v).unwrap();
        assert_eq!(back, CheckInstance { seed: 0, ..a });
    }
}
