//! **F4 bench** — MILP cost vs K, plus the printed O(1/K) error table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cubis_bench::instance;
use cubis_core::{Cubis, MilpInner, RobustProblem};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    cubis_eval::experiments::bound_k::run(cubis_eval::experiments::Profile::Quick)
        .expect("experiment failed")
        .print();

    let mut g = c.benchmark_group("fig_bound_k");
    let (game, model) = instance(0, 6, 2.0, 0.5);
    for &k in &[2usize, 4, 8, 16, 32] {
        g.bench_with_input(BenchmarkId::new("cubis_milp", k), &k, |b, &k| {
            b.iter(|| {
                let p = RobustProblem::new(black_box(&game), black_box(&model));
                Cubis::new(MilpInner::new(k)).with_epsilon(1e-3).solve(&p).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
