//! Linear-programming substrate for the CUBIS workspace.
//!
//! The paper solves its per-step feasibility MILPs with CPLEX; no such
//! solver is available here, so this crate implements the LP layer from
//! scratch:
//!
//! * [`LpProblem`] — a small modeling API (variables with bounds, linear
//!   constraints, max/min objective).
//! * [`solve`] — one-shot solve via a bounded-variable **revised
//!   simplex**: sparse column storage, an LU-factorized basis with
//!   product-form eta updates, devex pricing with a Bland anti-cycling
//!   fallback, and a two-phase cold start.
//! * [`SimplexEngine`] — the reusable form of the same solver. Build it
//!   once per problem, then call
//!   [`solve_with`](SimplexEngine::solve_with) repeatedly under
//!   tightened variable bounds; passing the parent's [`Basis`] back in
//!   warm-restarts via a **dual-simplex** repair phase instead of a
//!   from-scratch solve. This is the branch-and-bound hot path in
//!   `cubis-milp`.
//!
//! The solver is exact up to explicit floating-point tolerances (see
//! [`LpOptions`]) and is validated in the test suite against hand-solved
//! LPs, a brute-force vertex enumerator, and random problems. Internals
//! — canonical form, the basis/eta lifecycle, the refactorization
//! policy, the dual-restart protocol and the pricing rules — are
//! documented in `docs/SOLVER.md`.
//!
//! # Example
//!
//! ```
//! use cubis_lp::{LpProblem, Sense, Relation, solve, LpOptions, LpStatus};
//!
//! // max x + 2y  s.t. x + y <= 4, x <= 3, 0 <= x,y <= 10
//! let mut p = LpProblem::new(Sense::Maximize);
//! let x = p.add_var("x", 0.0, 10.0, 1.0);
//! let y = p.add_var("y", 0.0, 10.0, 2.0);
//! p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
//! p.add_constraint(vec![(x, 1.0)], Relation::Le, 3.0);
//! let sol = solve(&p, &LpOptions::default()).unwrap();
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert!((sol.objective - 8.0).abs() < 1e-9); // x=0, y=4
//! ```
//!
//! See [`SimplexEngine`] for the warm-restart example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod basis;
pub mod model;
pub mod parse;
pub mod simplex;
pub mod solution;
mod sparse;

pub use basis::Basis;
pub use model::{ConstraintId, LpProblem, Relation, Sense, VarId};
pub use parse::parse_dump;
pub use simplex::{solve, LpError, LpOptions, SimplexEngine, SolveOutcome};
pub use solution::{LpSolution, LpStatus};
