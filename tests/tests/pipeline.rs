//! End-to-end pipelines: game generation → uncertainty model → CUBIS →
//! exact oracle, cross-validated across inner backends and against every
//! baseline.

use cubis_behavior::{BoundConvention, SuqrUncertainty, UncertainSuqr};
use cubis_core::{Cubis, DpInner, MilpInner, RobustProblem};
use cubis_eval::fixtures::{table1_game, table1_model, workload};
use cubis_game::GameGenerator;

#[test]
fn table1_regression_all_numbers() {
    let game = table1_game();
    let model = table1_model();
    let p = RobustProblem::new(&game, &model);

    // Paper: robust strategy (0.46, 0.54), worst case ≈ −0.90.
    let sol = Cubis::new(MilpInner::new(20)).with_epsilon(1e-3).solve(&p).unwrap();
    assert!((sol.x[0] - 0.46).abs() < 0.02, "x1 = {}", sol.x[0]);
    assert!((sol.worst_case - -0.90).abs() < 0.15, "wc = {}", sol.worst_case);

    // Paper: midpoint strategy (0.34, 0.66), worst case ≈ −2.26.
    let mid = cubis_solvers::solve_midpoint_params(&game, &model, 200, 1e-3).unwrap();
    assert!((mid[0] - 0.34).abs() < 0.03, "mid x1 = {}", mid[0]);
    let wc_mid = p.worst_case(&mid).utility;
    assert!((wc_mid - -2.26).abs() < 0.25, "mid wc = {wc_mid}");

    // Lemma 2: exact worst case of the returned strategy is at least
    // lb − O(1/K) (K = 20 here, so allow a small slack).
    assert!(sol.worst_case >= sol.lb - 0.2);
    // Binary search converged.
    assert!(sol.ub - sol.lb <= 1e-3 + 1e-12);
}

#[test]
fn milp_and_dp_backends_agree_across_seeds() {
    for seed in 0..6 {
        let (game, model) = workload(seed, 5, 2.0, 0.6);
        let p = RobustProblem::new(&game, &model);
        let m = Cubis::new(MilpInner::new(10)).with_epsilon(1e-2).solve(&p).unwrap();
        let d = Cubis::new(DpInner::new(100)).with_epsilon(1e-2).solve(&p).unwrap();
        assert!(
            (m.worst_case - d.worst_case).abs() < 0.15,
            "seed {seed}: milp {} vs dp {}",
            m.worst_case,
            d.worst_case
        );
    }
}

#[test]
fn cubis_dominates_every_baseline_in_worst_case() {
    // CUBIS maximizes the worst case; with a fine grid its value must be
    // ≥ every baseline's worst case up to the approximation tolerance.
    for seed in 0..4 {
        let (game, model) = workload(seed, 6, 2.0, 0.8);
        let p = RobustProblem::new(&game, &model);
        let sol = Cubis::new(DpInner::new(150)).with_epsilon(1e-3).solve(&p).unwrap();
        let baselines: Vec<(&str, Vec<f64>)> = vec![
            ("uniform", cubis_solvers::solve_uniform(&game)),
            ("maximin", cubis_solvers::solve_maximin(&game)),
            ("origami", cubis_solvers::solve_origami(&game)),
            (
                "midpoint",
                cubis_solvers::solve_midpoint_params(&game, &model, 100, 1e-3).unwrap(),
            ),
        ];
        for (name, x) in baselines {
            let v = p.worst_case(&x).utility;
            assert!(
                sol.worst_case >= v - 0.05,
                "seed {seed}: {name} ({v}) beats CUBIS ({})",
                sol.worst_case
            );
        }
    }
}

#[test]
fn oracle_consistency_full_stack() {
    // The oracle's value must match the inner LP (6)–(8) on strategies
    // produced by the full solver, not just on synthetic points.
    for seed in 0..4 {
        let (game, model) = workload(seed, 7, 3.0, 0.5);
        let p = RobustProblem::new(&game, &model);
        let sol = Cubis::new(DpInner::new(80)).with_epsilon(1e-2).solve(&p).unwrap();
        let lp = cubis_core::worst_case_inner_lp(&p, &sol.x).expect("inner LP");
        assert!(
            (sol.worst_case - lp).abs() < 1e-5,
            "seed {seed}: oracle {} vs LP {lp}",
            sol.worst_case
        );
    }
}

#[test]
fn convention_pipelines_are_isolated() {
    // Same seed, different conventions: both run end-to-end and the
    // exact convention (wider intervals) reports a weakly lower value.
    let mut gen = GameGenerator::new(123);
    let game = gen.generate(5, 2.0);
    {
        let (wide, narrow) = (BoundConvention::ExactInterval, BoundConvention::CornerComponentwise);
        let m_wide = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            1.0,
            wide,
        );
        let m_narrow =
            UncertainSuqr::from_game(&game, SuqrUncertainty::paper_example(), 1.0, narrow);
        let pw = RobustProblem::new(&game, &m_wide);
        let pn = RobustProblem::new(&game, &m_narrow);
        let sw = Cubis::new(DpInner::new(80)).with_epsilon(1e-2).solve(&pw).unwrap();
        let sn = Cubis::new(DpInner::new(80)).with_epsilon(1e-2).solve(&pn).unwrap();
        assert!(
            sw.worst_case <= sn.worst_case + 1e-6,
            "wider intervals can't give a better worst case: {} vs {}",
            sw.worst_case,
            sn.worst_case
        );
    }
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let (game, model) = workload(5, 6, 2.0, 0.7);
        let p = RobustProblem::new(&game, &model);
        Cubis::new(MilpInner::new(8)).with_epsilon(1e-2).solve(&p).unwrap().x
    };
    assert_eq!(run(), run());
}

#[test]
fn parallel_milp_backend_matches_sequential() {
    let (game, model) = workload(9, 6, 2.0, 0.5);
    let p = RobustProblem::new(&game, &model);
    let seq = Cubis::new(MilpInner::new(8)).with_epsilon(1e-2).solve(&p).unwrap();
    let par = Cubis::new(MilpInner::new(8).with_threads(4))
        .with_epsilon(1e-2)
        .solve(&p)
        .unwrap();
    assert!(
        (seq.worst_case - par.worst_case).abs() < 1e-6,
        "seq {} vs par {}",
        seq.worst_case,
        par.worst_case
    );
}

#[test]
fn certificate_reflects_configuration() {
    let (game, model) = workload(2, 4, 1.0, 0.5);
    let p = RobustProblem::new(&game, &model);
    let sol = Cubis::new(MilpInner::new(12)).with_epsilon(0.05).solve(&p).unwrap();
    let cert = sol.certificate();
    assert!(cert.gap <= 0.05 + 1e-12);
    assert_eq!(cert.k, Some(12));
}
