//! **F1 — worst-case utility vs uncertainty level δ.**
//!
//! The core robustness claim: as the uncertainty grows, CUBIS degrades
//! gracefully while non-robust defenders collapse. δ scales every
//! interval width (weights and payoffs); δ = 0 is the point-estimate
//! game where all informed solvers should coincide.

use super::{robust_value, Baseline, Profile};
use crate::fixtures::workload;
use crate::metrics::Series;
use crate::report::Report;
use cubis_core::SolveError;
use rayon::prelude::*;

/// Targets in the F1 workload.
pub const T: usize = 8;
/// Resources in the F1 workload.
pub const R: f64 = 3.0;
/// The δ grid.
pub const DELTAS: [f64; 6] = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];

/// Run the experiment.
pub fn run(profile: Profile) -> Result<Report, SolveError> {
    let seeds: Vec<u64> = (0..profile.seeds()).collect();
    let zoo = Baseline::all();

    // One cell job per (δ, seed, baseline): embarrassingly parallel.
    let jobs: Vec<(usize, u64, Baseline)> = DELTAS
        .iter()
        .enumerate()
        .flat_map(|(di, _)| {
            seeds
                .iter()
                .flat_map(move |&s| Baseline::all().into_iter().map(move |b| (di, s, b)))
        })
        .collect();
    let cells: Vec<((usize, Baseline), f64)> = jobs
        .into_par_iter()
        .map(|(di, seed, b)| {
            let (game, model) = workload(seed, T, R, DELTAS[di]);
            let x = b.solve(&game, &model, seed)?;
            Ok(((di, b), robust_value(&game, &model, &x)))
        })
        .collect::<Result<_, SolveError>>()?;

    let mut series: std::collections::HashMap<(usize, Baseline), Series> =
        std::collections::HashMap::new();
    for ((di, b), v) in cells {
        series.entry((di, b)).or_default().push(v);
    }

    let mut header = vec!["delta".to_string()];
    header.extend(zoo.iter().map(|b| b.name().to_string()));
    let mut r = Report::new(
        "F1 — worst-case defender utility vs uncertainty level δ",
        header.iter().map(String::as_str).collect(),
    );
    r.note(format!(
        "T = {T}, R = {R}, {} seeded games per δ; cells are mean ± std of the \
         exact worst-case utility. Expected shape: CUBIS dominates at δ > 0 and \
         the gap widens with δ; all informed solvers coincide at δ = 0.",
        profile.seeds()
    ));
    for (di, d) in DELTAS.iter().enumerate() {
        let mut row = vec![format!("{d:.1}")];
        for b in zoo {
            row.push(series[&(di, b)].summary());
        }
        r.row(row);
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature version of F1's claim checked as a test: on a small
    /// workload, CUBIS's worst case is never beaten by the midpoint
    /// defender's by more than noise, and beats it clearly at δ = 1.
    #[test]
    fn cubis_dominates_midpoint_at_high_uncertainty() {
        let mut wins = 0;
        let n = 5;
        for seed in 0..n {
            let (game, model) = workload(seed, 5, 2.0, 1.0);
            let xc = Baseline::Cubis.solve(&game, &model, seed).unwrap();
            let xm = Baseline::Midpoint.solve(&game, &model, seed).unwrap();
            let vc = robust_value(&game, &model, &xc);
            let vm = robust_value(&game, &model, &xm);
            assert!(vc >= vm - 1e-6, "seed {seed}: CUBIS {vc} < midpoint {vm}");
            if vc > vm + 0.05 {
                wins += 1;
            }
        }
        assert!(
            wins >= 3,
            "CUBIS should clearly win most instances, won {wins}/{n}"
        );
    }

    #[test]
    fn informed_solvers_coincide_without_uncertainty() {
        let (game, model) = workload(3, 5, 2.0, 0.0);
        let xc = Baseline::Cubis.solve(&game, &model, 3).unwrap();
        let xm = Baseline::Midpoint.solve(&game, &model, 3).unwrap();
        let vc = robust_value(&game, &model, &xc);
        let vm = robust_value(&game, &model, &xm);
        assert!((vc - vm).abs() < 0.05, "δ=0: CUBIS {vc} vs midpoint {vm}");
    }
}
