//! **F4 — solution-quality error vs K (Theorem 1's `O(1/K)` term).**
//!
//! CUBIS(K)'s worst-case utility is compared against a high-resolution
//! reference (DP at 512 points); the gap should shrink roughly like
//! `1/K` as the piecewise approximation refines.

use super::Profile;
use crate::fixtures::workload;
use crate::metrics::Series;
use crate::report::Report;
use cubis_core::SolveError;
use rayon::prelude::*;

/// The K grid (Quick profile stops at 32).
pub const KS: [usize; 6] = [2, 4, 8, 16, 32, 64];
/// Workload shape.
pub const T: usize = 6;
/// Fixed uncertainty level.
pub const DELTA: f64 = 0.5;

/// Run the experiment.
pub fn run(profile: Profile) -> Result<Report, SolveError> {
    let (ks, seeds, eps): (&[usize], u64, f64) = match profile {
        Profile::Quick => (&KS[..5], 5, 1e-3),
        Profile::Full => (&KS, 10, 1e-4),
    };
    let seeds: Vec<u64> = (0..seeds).collect();

    // Reference value per seed (computed once, shared across K).
    let reference: Vec<f64> = seeds
        .par_iter()
        .map(|&seed| {
            let (game, model) = workload(seed, T, 2.0, DELTA);
            let p = cubis_core::RobustProblem::new(&game, &model);
            Ok(super::cubis_dp(512, eps).solve(&p)?.worst_case)
        })
        .collect::<Result<_, SolveError>>()?;

    let rows: Vec<(usize, Series)> = ks
        .par_iter()
        .map(|&k| {
            let mut errs = Series::new();
            for (si, &seed) in seeds.iter().enumerate() {
                let (game, model) = workload(seed, T, 2.0, DELTA);
                let p = cubis_core::RobustProblem::new(&game, &model);
                let approx = super::cubis_milp(k, eps).solve(&p)?.worst_case;
                errs.push((reference[si] - approx).abs());
            }
            Ok((k, errs))
        })
        .collect::<Result<_, SolveError>>()?;

    let mut r = Report::new(
        "F4 — |CUBIS(K) − reference| vs K (validates the O(1/K) bound)",
        vec![
            "K",
            "mean abs error",
            "max abs error",
            "1/K reference curve",
        ],
    );
    r.note(format!(
        "T = {T}, R = 2, δ = {DELTA}, {} seeds, ε = {eps:.0e}; reference = \
         CUBIS(DP, 512 pts). The last column scales the K = {} error by \
         {}/K — the Theorem-1 shape the measured error should track.",
        seeds.len(),
        ks[0],
        ks[0]
    ));
    let first_err = rows[0].1.mean();
    for (k, errs) in &rows {
        let max = errs.values().iter().cloned().fold(0.0f64, f64::max);
        r.row(vec![
            format!("{k}"),
            format!("{:.4}", errs.mean()),
            format!("{max:.4}"),
            format!("{:.4}", first_err * KS[0] as f64 / *k as f64),
        ]);
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_shrinks_with_k() {
        let (game, model) = workload(0, 4, 1.0, 0.5);
        let p = cubis_core::RobustProblem::new(&game, &model);
        let reference = super::super::cubis_dp(512, 1e-4)
            .solve(&p)
            .unwrap()
            .worst_case;
        let e = |k: usize| {
            (super::super::cubis_milp(k, 1e-4)
                .solve(&p)
                .unwrap()
                .worst_case
                - reference)
                .abs()
        };
        let e2 = e(2);
        let e16 = e(16);
        assert!(e16 <= e2 + 1e-9, "e2 = {e2}, e16 = {e16}");
    }
}
