//! Experiment harness for the CUBIS reproduction.
//!
//! Each module under [`experiments`] regenerates one table or figure of
//! the evaluation (see DESIGN.md §4 for the experiment index), printing
//! the same rows/series the paper reports. Binaries in `src/bin/` wrap
//! the modules one-to-one (`exp_table1`, `exp_quality_delta`, …) and
//! `run_all` executes the full suite, emitting the markdown consumed by
//! EXPERIMENTS.md.
//!
//! Conventions:
//! * every experiment is deterministic under its built-in seeds;
//! * solution quality is always the **exact** worst-case utility from
//!   the oracle (never a solver's own objective estimate);
//! * instance sweeps run in parallel (rayon) but aggregate
//!   deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fixtures;
pub mod metrics;
pub mod report;
pub mod trace;
