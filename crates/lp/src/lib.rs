//! Linear-programming substrate for the CUBIS workspace.
//!
//! The paper solves its per-step feasibility MILPs with CPLEX; no such
//! solver is available here, so this crate implements the LP layer from
//! scratch:
//!
//! * [`LpProblem`] — a small modeling API (variables with bounds, linear
//!   constraints, max/min objective).
//! * [`solve`] — a bounded-variable **two-phase primal simplex** with
//!   Dantzig pricing and a Bland anti-cycling fallback.
//!
//! The solver is exact up to explicit floating-point tolerances (see
//! [`LpOptions`]) and is validated in the test suite against hand-solved
//! LPs, a brute-force vertex enumerator, and random problems.
//!
//! # Example
//!
//! ```
//! use cubis_lp::{LpProblem, Sense, Relation, solve, LpOptions, LpStatus};
//!
//! // max x + 2y  s.t. x + y <= 4, x <= 3, 0 <= x,y <= 10
//! let mut p = LpProblem::new(Sense::Maximize);
//! let x = p.add_var("x", 0.0, 10.0, 1.0);
//! let y = p.add_var("y", 0.0, 10.0, 2.0);
//! p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
//! p.add_constraint(vec![(x, 1.0)], Relation::Le, 3.0);
//! let sol = solve(&p, &LpOptions::default()).unwrap();
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert!((sol.objective - 8.0).abs() < 1e-9); // x=0, y=4
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod parse;
pub mod simplex;
pub mod solution;

pub use model::{ConstraintId, LpProblem, Relation, Sense, VarId};
pub use parse::parse_dump;
pub use simplex::{solve, LpError, LpOptions};
pub use solution::{LpSolution, LpStatus};
