//! CUBIS — Competing Uncertainty in attacker Behaviors using
//! Interval-based maximin Solution.
//!
//! This crate is the paper's primary contribution: computing a defender
//! strategy that maximizes worst-case expected utility when the
//! attacker's quantal-response attractiveness `F_i(x_i)` is only known
//! to lie in intervals `[L_i(x_i), U_i(x_i)]`:
//!
//! ```text
//! max_{x∈X}  min_{F∈[L,U]}  Σ_i  (F_i(x_i)/Σ_j F_j(x_j)) · Ud_i(x_i)    (5)
//! ```
//!
//! Pipeline (Section IV of the paper):
//!
//! 1. [`transform`] — dualize the inner minimization into the single
//!    maximization (15–17) with objective `H(x, β)`; Proposition 3's
//!    extreme-point closure `β_i = max{0, c − Ud_i}` makes the
//!    per-step objective **separable**: `G_c(x) = Σ_i min(f1_i, f2_i)`.
//! 2. [`solver::Cubis`] — binary search on the utility value `c`
//!    (Propositions 1–2), each step solving `max_x G_c(x)` with a
//!    pluggable [`inner::InnerSolver`]:
//!    * [`inner::MilpInner`] — the paper's piecewise-linear MILP
//!      (33–40), solved by our branch-and-bound (CPLEX stand-in);
//!    * [`inner::DpInner`] — an exact-on-grid dynamic program used for
//!      cross-validation and as a fast reference.
//! 3. [`oracle`] — an *exact* worst-case evaluation of any strategy
//!    (the unique root of `φ(c) = Σ_i min(L_i(u_i−c), U_i(u_i−c))`),
//!    used to report true solution quality per Lemma 2, and backed by an
//!    independent LP formulation of the inner problem (6–8) in tests.
//!
//! Theorem 1's `O(ε + 1/K)` guarantee is surfaced through
//! [`solver::CubisSolution::certificate`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deadline;
pub mod inner;
pub mod oracle;
pub mod piecewise;
pub mod problem;
pub mod sensitivity;
pub mod solver;
pub mod transform;
pub mod warm;

pub use deadline::Deadline;
pub use inner::{
    DpInner, GreedyInner, InnerEngine, InnerPolicy, InnerResult, InnerSolver, MilpInner,
    RoutedInner, ScaleCertificate, ScaleInner, AUTO_SCALE_THRESHOLD,
};
pub use oracle::{worst_case_inner_lp, WorstCase};
pub use problem::RobustProblem;
pub use sensitivity::{rank_targets, value_of_information};
pub use inner::SolveError;
pub use solver::{BudgetMode, Cubis, CubisOptions, CubisSolution};
pub use warm::{WarmState, WarmStats};
