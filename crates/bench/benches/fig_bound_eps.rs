//! **F5 bench** — binary-search cost vs ε, plus the printed convergence
//! table (steps, gap, drift).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cubis_bench::instance;
use cubis_core::{Cubis, DpInner, RobustProblem};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    cubis_eval::experiments::bound_eps::run(cubis_eval::experiments::Profile::Quick)
        .expect("experiment failed")
        .print();

    let mut g = c.benchmark_group("fig_bound_eps");
    let (game, model) = instance(0, 6, 2.0, 0.5);
    for &eps in &[1.0f64, 0.1, 0.01, 1e-3, 1e-4] {
        g.bench_with_input(
            BenchmarkId::new("cubis_dp200", format!("{eps:.0e}")),
            &eps,
            |b, &eps| {
                b.iter(|| {
                    let p = RobustProblem::new(black_box(&game), black_box(&model));
                    Cubis::new(DpInner::new(200)).with_epsilon(eps).solve(&p).unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(12);
    targets = bench
}
criterion_main!(benches);
