//! Uncertainty-interval behavioral models (Section III of the paper).
//!
//! The defender does not know the attractiveness `F_i(x_i)` exactly —
//! only bounds `L_i(x_i) ≤ F_i(x_i) ≤ U_i(x_i)` derived from interval
//! estimates of the SUQR weights and the attacker payoffs.

use crate::choice::ChoiceModel;
use crate::interval::Interval;
use cubis_game::SecurityGame;
use serde::{Deserialize, Serialize};

/// How the exponent bounds are derived from the parameter box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoundConvention {
    /// The paper's worked example: evaluate the exponent at the
    /// all-lower corner `(w1ˡ, w2ˡ, w3ˡ, Raˡ, Paˡ)` and the all-upper
    /// corner, then sort. Simple, but not the true box minimum when a
    /// product like `w3·Pa` flips sign (the paper's own Table I example
    /// contains exactly this slip — see DESIGN.md §2).
    CornerComponentwise,
    /// Exact interval arithmetic: the true min/max of
    /// `w1·x + w2·Ra + w3·Pa` over the box (4-corner products per term).
    /// Produces the widest *valid* interval; never narrower than the
    /// truth.
    ExactInterval,
}

/// Interval-valued SUQR weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuqrUncertainty {
    /// Coverage weight interval (negative values).
    pub w1: Interval,
    /// Reward weight interval (nonnegative values).
    pub w2: Interval,
    /// Penalty weight interval (nonnegative values).
    pub w3: Interval,
}

impl SuqrUncertainty {
    /// The parameter box used in the paper's worked example:
    /// `w1 ∈ [−6, −2]`, `w2 ∈ [0.5, 1]`, `w3 ∈ [0.4, 0.9]`.
    pub fn paper_example() -> Self {
        Self {
            w1: Interval::new(-6.0, -2.0),
            w2: Interval::new(0.5, 1.0),
            w3: Interval::new(0.4, 0.9),
        }
    }

    /// A box of half-width `delta × |w|` (relative) around a point
    /// estimate, clipped to the SUQR sign conventions.
    pub fn around(point: crate::suqr::SuqrWeights, delta: f64) -> Self {
        assert!((0.0..=1.0).contains(&delta), "around: delta {delta} outside [0,1]");
        let spread = |w: f64| -> Interval {
            let h = delta * w.abs();
            Interval::new(w - h, w + h)
        };
        let mut b = Self { w1: spread(point.w1), w2: spread(point.w2), w3: spread(point.w3) };
        // Clip to sign conventions so every sample is a valid SUQR weight.
        b.w1 = Interval::new(b.w1.lo, b.w1.hi.min(0.0));
        b.w2 = Interval::new(b.w2.lo.max(0.0), b.w2.hi);
        b.w3 = Interval::new(b.w3.lo.max(0.0), b.w3.hi);
        b
    }

    /// Scale every interval's width by `factor` around its midpoint
    /// (the uncertainty-level sweep knob).
    pub fn scale_width(&self, factor: f64) -> Self {
        Self {
            w1: self.w1.scale_width(factor),
            w2: self.w2.scale_width(factor),
            w3: self.w3.scale_width(factor),
        }
    }

    /// Midpoint weights (as a point SUQR estimate).
    pub fn midpoint(&self) -> crate::suqr::SuqrWeights {
        crate::suqr::SuqrWeights::new(
            self.w1.mid().min(0.0),
            self.w2.mid().max(0.0),
            self.w3.mid().max(0.0),
        )
    }
}

/// An attacker model known only up to intervals:
/// `L_i(x_i) ≤ F_i(x_i) ≤ U_i(x_i)` with `0 < L_i ≤ U_i`.
pub trait IntervalChoiceModel {
    /// `(ln L_i(x_i), ln U_i(x_i))`, guaranteed ordered.
    fn log_bounds(&self, game: &SecurityGame, i: usize, x_i: f64) -> (f64, f64);

    /// `(L_i(x_i), U_i(x_i))` with the crate-wide exponent clamp applied
    /// (both values positive and finite).
    fn bounds(&self, game: &SecurityGame, i: usize, x_i: f64) -> (f64, f64) {
        let (lo, hi) = self.log_bounds(game, i, x_i);
        debug_assert!(lo <= hi + 1e-12, "log bounds out of order: {lo} > {hi}");
        (crate::clamp_exponent(lo).exp(), crate::clamp_exponent(hi).exp())
    }

    /// Midpoint attractiveness `(L+U)/2` — the non-robust point estimate
    /// the paper's "midpoint" defender uses.
    fn midpoint(&self, game: &SecurityGame, i: usize, x_i: f64) -> f64 {
        let (l, u) = self.bounds(game, i, x_i);
        0.5 * (l + u)
    }
}

/// SUQR with interval weights and interval attacker payoffs.
///
/// # Examples
///
/// Build the paper's interval adversary for a 2-target game and check
/// the defining invariant `L_i(x_i) ≤ U_i(x_i)`:
///
/// ```
/// use cubis_behavior::{
///     BoundConvention, IntervalChoiceModel, SuqrUncertainty, UncertainSuqr,
/// };
/// use cubis_game::{SecurityGame, TargetPayoffs};
///
/// let game = SecurityGame::new(vec![
///     TargetPayoffs::new(5.0, -6.0, 3.0, -5.0),
///     TargetPayoffs::new(6.0, -9.0, 7.0, -7.0),
/// ], 1.0);
/// let model = UncertainSuqr::from_game(
///     &game,
///     SuqrUncertainty::paper_example(), // w1∈[−6,−2], w2∈[.5,1], w3∈[.4,.9]
///     1.0,                              // attacker payoffs known ±1
///     BoundConvention::ExactInterval,
/// );
/// assert_eq!(model.num_targets(), 2);
/// let (lo, hi) = model.bounds(&game, 0, 0.5);
/// assert!(0.0 < lo && lo <= hi);
///
/// // Widening the box can only widen the attractiveness interval.
/// let wider = model.scale_width(2.0);
/// let (wlo, whi) = wider.bounds(&game, 0, 0.5);
/// assert!(wlo <= lo && hi <= whi);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UncertainSuqr {
    /// Weight box.
    pub weights: SuqrUncertainty,
    /// Per-target `(Ra_i, Pa_i)` intervals.
    pub payoffs: Vec<(Interval, Interval)>,
    /// Bound derivation convention.
    pub convention: BoundConvention,
}

impl UncertainSuqr {
    /// Construct from explicit payoff intervals.
    ///
    /// # Panics
    /// Panics if `payoffs` is empty.
    pub fn new(
        weights: SuqrUncertainty,
        payoffs: Vec<(Interval, Interval)>,
        convention: BoundConvention,
    ) -> Self {
        assert!(!payoffs.is_empty(), "UncertainSuqr: no targets");
        Self { weights, payoffs, convention }
    }

    /// Derive payoff intervals from a game's point payoffs with absolute
    /// half-width `payoff_delta`, and take the weight box as given.
    pub fn from_game(
        game: &SecurityGame,
        weights: SuqrUncertainty,
        payoff_delta: f64,
        convention: BoundConvention,
    ) -> Self {
        assert!(payoff_delta >= 0.0, "from_game: negative payoff_delta");
        let payoffs = game
            .targets()
            .iter()
            .map(|t| {
                (
                    Interval::new(t.att_reward - payoff_delta, t.att_reward + payoff_delta),
                    Interval::new(t.att_penalty - payoff_delta, t.att_penalty + payoff_delta),
                )
            })
            .collect();
        Self::new(weights, payoffs, convention)
    }

    /// Number of targets this model covers.
    pub fn num_targets(&self) -> usize {
        self.payoffs.len()
    }

    /// Scale all interval widths (weights and payoffs) by `factor`
    /// around their midpoints — the δ knob of the uncertainty sweeps.
    pub fn scale_width(&self, factor: f64) -> Self {
        Self {
            weights: self.weights.scale_width(factor),
            payoffs: self
                .payoffs
                .iter()
                .map(|(ra, pa)| (ra.scale_width(factor), pa.scale_width(factor)))
                .collect(),
            convention: self.convention,
        }
    }

    /// Reorder the per-target payoff intervals as
    /// `new[i] = old[perm[i]]` (the weight box is target-independent
    /// and unchanged). Pair with the same permutation of the game's
    /// targets: robust solve results must be invariant under such a
    /// joint relabeling, which the cubis-check metamorphic oracle
    /// exercises.
    ///
    /// # Panics
    /// Panics when `perm` is not a permutation of `0..num_targets()`.
    pub fn permute_targets(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.payoffs.len(), "permute_targets: length mismatch");
        let mut seen = vec![false; perm.len()];
        for &j in perm {
            assert!(j < self.payoffs.len(), "permute_targets: index {j} out of range");
            assert!(!seen[j], "permute_targets: index {j} repeated");
            seen[j] = true;
        }
        Self {
            weights: self.weights,
            payoffs: perm.iter().map(|&j| self.payoffs[j]).collect(),
            convention: self.convention,
        }
    }

    /// Exponent interval of `w1·x + w2·Ra + w3·Pa` at coverage `x_i`.
    fn exponent_interval(&self, i: usize, x_i: f64) -> (f64, f64) {
        let (ra, pa) = self.payoffs[i];
        let w = &self.weights;
        match self.convention {
            BoundConvention::CornerComponentwise => {
                let lo = w.w1.lo * x_i + w.w2.lo * ra.lo + w.w3.lo * pa.lo;
                let hi = w.w1.hi * x_i + w.w2.hi * ra.hi + w.w3.hi * pa.hi;
                (lo.min(hi), lo.max(hi))
            }
            BoundConvention::ExactInterval => {
                let e = w.w1.scale(x_i).add(w.w2.mul(ra)).add(w.w3.mul(pa));
                (e.lo, e.hi)
            }
        }
    }

    /// The point-SUQR model at the weight/payoff midpoints.
    pub fn midpoint_suqr(&self) -> crate::suqr::Suqr {
        crate::suqr::Suqr::new(self.weights.midpoint())
    }
}

impl IntervalChoiceModel for UncertainSuqr {
    fn log_bounds(&self, game: &SecurityGame, i: usize, x_i: f64) -> (f64, f64) {
        debug_assert_eq!(
            game.num_targets(),
            self.payoffs.len(),
            "UncertainSuqr used with a game of different size"
        );
        self.exponent_interval(i, x_i)
    }
}

/// Degenerate intervals around a point model: `L = F = U`.
///
/// Lets every CUBIS code path (which consumes interval models) run
/// unchanged on a point estimate — this is exactly how the midpoint /
/// PASAQ-style baselines are implemented.
#[derive(Debug, Clone, Copy)]
pub struct FixedChoice<M>(pub M);

impl<M: ChoiceModel> IntervalChoiceModel for FixedChoice<M> {
    fn log_bounds(&self, game: &SecurityGame, i: usize, x_i: f64) -> (f64, f64) {
        let l = self.0.log_attractiveness(game, i, x_i);
        (l, l)
    }
}

/// View an interval model's midpoint `(L+U)/2` as a point
/// [`ChoiceModel`] (the paper's non-robust baseline defender).
#[derive(Debug, Clone, Copy)]
pub struct IntervalMidpoint<'a, M>(pub &'a M);

impl<M: IntervalChoiceModel> ChoiceModel for IntervalMidpoint<'_, M> {
    fn log_attractiveness(&self, game: &SecurityGame, i: usize, x_i: f64) -> f64 {
        self.0.midpoint(game, i, x_i).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubis_game::TargetPayoffs;

    /// The Table I game: attacker rewards [1,5] / [5,9],
    /// penalties [−7,−3] / [−9,−5].
    fn table1_model(convention: BoundConvention) -> UncertainSuqr {
        UncertainSuqr::new(
            SuqrUncertainty::paper_example(),
            vec![
                (Interval::new(1.0, 5.0), Interval::new(-7.0, -3.0)),
                (Interval::new(5.0, 9.0), Interval::new(-9.0, -5.0)),
            ],
            convention,
        )
    }

    fn table1_game() -> SecurityGame {
        // Defender payoffs reconstructed zero-sum vs attacker midpoints
        // (see DESIGN.md §2).
        SecurityGame::new(
            vec![
                TargetPayoffs::new(5.0, -3.0, 3.0, -5.0),
                TargetPayoffs::new(7.0, -7.0, 7.0, -7.0),
            ],
            1.0,
        )
    }

    #[test]
    fn permute_targets_relabels_bounds() {
        let m = table1_model(BoundConvention::ExactInterval);
        let p = m.permute_targets(&[1, 0]);
        assert_eq!(p.payoffs[0], m.payoffs[1]);
        assert_eq!(p.payoffs[1], m.payoffs[0]);
        // Permuting game and model together relabels the bounds exactly.
        let g = table1_game();
        let pg = SecurityGame::new(
            vec![g.targets()[1], g.targets()[0]],
            g.resources(),
        );
        for x in [0.0, 0.3, 1.0] {
            assert_eq!(m.bounds(&g, 0, x), p.bounds(&pg, 1, x));
            assert_eq!(m.bounds(&g, 1, x), p.bounds(&pg, 0, x));
        }
        // Involution: applying the swap twice is the identity.
        assert_eq!(p.permute_targets(&[1, 0]), m);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn permute_targets_rejects_non_permutations() {
        let m = table1_model(BoundConvention::ExactInterval);
        let _ = m.permute_targets(&[0, 0]);
    }

    #[test]
    fn paper_example_bounds_reproduced() {
        // Paper: L1(0.3) = e^{−6·0.3 + 0.5·1 + 0.4·(−7)} = e^{−4.1},
        //        U1(0.3) = e^{−2·0.3 + 1·5 + 0.9·(−3)} = e^{1.7}.
        let m = table1_model(BoundConvention::CornerComponentwise);
        let g = table1_game();
        let (lo, hi) = m.log_bounds(&g, 0, 0.3);
        assert!((lo - -4.1).abs() < 1e-12, "lo = {lo}");
        assert!((hi - 1.7).abs() < 1e-12, "hi = {hi}");
    }

    #[test]
    fn exact_interval_is_wider_on_penalty_products() {
        // Exact min of w3·Pa over [0.4,0.9]×[−7,−3] is 0.9·(−7) = −6.3,
        // below the componentwise corner 0.4·(−7) = −2.8: exact lower
        // bound must be smaller.
        let g = table1_game();
        let corner = table1_model(BoundConvention::CornerComponentwise);
        let exact = table1_model(BoundConvention::ExactInterval);
        let (c_lo, c_hi) = corner.log_bounds(&g, 0, 0.3);
        let (e_lo, e_hi) = exact.log_bounds(&g, 0, 0.3);
        assert!(e_lo < c_lo);
        assert!(e_hi >= c_hi - 1e-12);
    }

    #[test]
    fn exact_bounds_contain_all_box_samples() {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let m = table1_model(BoundConvention::ExactInterval);
        let g = table1_game();
        for _ in 0..500 {
            let x = rng.gen_range(0.0..=1.0);
            let i = rng.gen_range(0..2usize);
            let w1 = rng.gen_range(-6.0..=-2.0);
            let w2 = rng.gen_range(0.5..=1.0);
            let w3 = rng.gen_range(0.4..=0.9);
            let (ra_iv, pa_iv) = m.payoffs[i];
            let ra = rng.gen_range(ra_iv.lo..=ra_iv.hi);
            let pa = rng.gen_range(pa_iv.lo..=pa_iv.hi);
            let exponent = w1 * x + w2 * ra + w3 * pa;
            let (lo, hi) = m.log_bounds(&g, i, x);
            assert!(
                lo - 1e-9 <= exponent && exponent <= hi + 1e-9,
                "sample {exponent} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn componentwise_bounds_always_ordered() {
        // A box where the naive corners invert; the implementation must
        // still return ordered bounds.
        let m = UncertainSuqr::new(
            SuqrUncertainty {
                w1: Interval::new(-1.0, -1.0),
                w2: Interval::new(0.0, 0.0),
                w3: Interval::new(0.4, 0.9),
            },
            vec![(Interval::point(1.0), Interval::new(-7.0, -6.0))],
            BoundConvention::CornerComponentwise,
        );
        let g = SecurityGame::new(vec![TargetPayoffs::new(1.0, -1.0, 1.0, -7.0)], 1.0);
        let (lo, hi) = m.log_bounds(&g, 0, 0.0);
        assert!(lo <= hi);
    }

    #[test]
    fn bounds_decrease_with_coverage() {
        let g = table1_game();
        for conv in [BoundConvention::CornerComponentwise, BoundConvention::ExactInterval] {
            let m = table1_model(conv);
            let (l0, u0) = m.bounds(&g, 0, 0.1);
            let (l1, u1) = m.bounds(&g, 0, 0.9);
            assert!(l1 < l0, "{conv:?}");
            assert!(u1 < u0, "{conv:?}");
        }
    }

    #[test]
    fn scale_width_zero_collapses_to_point() {
        let m = table1_model(BoundConvention::ExactInterval).scale_width(0.0);
        let g = table1_game();
        let (lo, hi) = m.log_bounds(&g, 0, 0.4);
        assert!((hi - lo).abs() < 1e-12);
    }

    #[test]
    fn scale_width_monotone_in_factor() {
        let g = table1_game();
        let base = table1_model(BoundConvention::ExactInterval);
        let narrow = base.scale_width(0.5);
        let (bl, bh) = base.log_bounds(&g, 1, 0.5);
        let (nl, nh) = narrow.log_bounds(&g, 1, 0.5);
        assert!(nh - nl < bh - bl);
        assert!(nl >= bl && nh <= bh);
    }

    #[test]
    fn fixed_choice_degenerate_interval() {
        let g = table1_game();
        let suqr = crate::suqr::Suqr::new(crate::suqr::SuqrWeights::LITERATURE);
        let f = FixedChoice(suqr);
        let (l, u) = f.bounds(&g, 0, 0.3);
        assert!((l - u).abs() < 1e-12);
        assert!((l - suqr.attractiveness(&g, 0, 0.3)).abs() < 1e-12);
    }

    #[test]
    fn interval_midpoint_matches_mean_of_bounds() {
        let g = table1_game();
        let m = table1_model(BoundConvention::CornerComponentwise);
        let mid = IntervalMidpoint(&m);
        let (l, u) = m.bounds(&g, 0, 0.3);
        let f = crate::choice::ChoiceModel::attractiveness(&mid, &g, 0, 0.3);
        assert!((f - 0.5 * (l + u)).abs() < 1e-9 * (l + u));
    }

    #[test]
    fn around_clips_sign_conventions() {
        let b = SuqrUncertainty::around(crate::suqr::SuqrWeights::new(-0.1, 0.05, 0.02), 1.0);
        assert!(b.w1.hi <= 0.0);
        assert!(b.w2.lo >= 0.0);
        assert!(b.w3.lo >= 0.0);
    }

    #[test]
    fn from_game_builds_payoff_intervals() {
        let g = table1_game();
        let m = UncertainSuqr::from_game(
            &g,
            SuqrUncertainty::paper_example(),
            0.5,
            BoundConvention::ExactInterval,
        );
        assert_eq!(m.num_targets(), 2);
        assert_eq!(m.payoffs[0].0, Interval::new(2.5, 3.5)); // Ra=3 ± 0.5
        assert_eq!(m.payoffs[1].1, Interval::new(-7.5, -6.5)); // Pa=−7 ± 0.5
    }
}
