//! **A3 bench** — rayon scaling of the experiment sweep and of the
//! parallel branch-and-bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cubis_bench::instance;
use cubis_core::{Cubis, MilpInner, RobustProblem};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    cubis_eval::experiments::parallel_scaling::run(cubis_eval::experiments::Profile::Quick)
        .expect("experiment failed")
        .print();

    let mut g = c.benchmark_group("fig_parallel_scaling");
    let (game, model) = instance(0, 10, 3.0, 0.5);
    for &threads in &[1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("milp_bnb_threads", threads), &threads, |b, &n| {
            b.iter(|| {
                let p = RobustProblem::new(black_box(&game), black_box(&model));
                Cubis::new(MilpInner::new(8).with_threads(n))
                    .with_epsilon(1e-2)
                    .solve(&p)
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
