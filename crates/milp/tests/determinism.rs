//! Determinism: the parallel branch-and-bound must reproduce the
//! sequential objective bit-for-bit, and repeated parallel runs of the
//! same problem must agree with each other.
//!
//! Bit-identity (not `< 1e-6`) is the contract worth testing here: the
//! shared-incumbent design accepts a candidate only on strict
//! improvement, every node LP is solved by the same deterministic
//! simplex, and with distinct random objective coefficients the optimal
//! vertex is unique — so any drift between runs means a real scheduling
//! leak into the arithmetic, exactly the bug this test exists to catch.

use cubis_lp::{LpProblem, Relation, Sense, VarId};
use cubis_milp::{solve_milp, MilpOptions, MilpProblem, MilpStatus};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn knapsack(values: &[f64], weights: &[f64], cap: f64) -> MilpProblem {
    let mut lp = LpProblem::new(Sense::Maximize);
    let vars: Vec<VarId> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| lp.add_var(format!("x{i}"), 0.0, 1.0, v))
        .collect();
    lp.add_constraint(
        vars.iter().zip(weights).map(|(&v, &w)| (v, w)).collect(),
        Relation::Le,
        cap,
    );
    MilpProblem { lp, integers: vars }
}

fn random_knapsack(rng: &mut ChaCha8Rng) -> MilpProblem {
    let n = rng.gen_range(6..=12usize);
    let values: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..10.0)).collect();
    let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..10.0)).collect();
    let cap = rng.gen_range(10.0..30.0);
    knapsack(&values, &weights, cap)
}

/// A mixed problem: binary selectors gating continuous flows, the shape
/// the CUBIS inner MILP has (indicators `h` gating segments `x`).
fn gated_flow(rng: &mut ChaCha8Rng) -> MilpProblem {
    let n = rng.gen_range(3..=5usize);
    let mut lp = LpProblem::new(Sense::Maximize);
    let mut gates = Vec::new();
    for i in 0..n {
        let profit = rng.gen_range(1.0..6.0);
        let open_cost = rng.gen_range(0.5..3.0);
        let flow = lp.add_var(format!("f{i}"), 0.0, 1.0, profit);
        let gate = lp.add_var(format!("h{i}"), 0.0, 1.0, -open_cost);
        // Flow only when the gate is open.
        lp.add_constraint(vec![(flow, 1.0), (gate, -1.0)], Relation::Le, 0.0);
        gates.push(gate);
    }
    // At most half the gates open (rounded up).
    lp.add_constraint(
        gates.iter().map(|&g| (g, 1.0)).collect(),
        Relation::Le,
        n.div_ceil(2) as f64,
    );
    MilpProblem { lp, integers: gates }
}

#[test]
fn parallel_objective_is_bit_identical_to_sequential() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_D0E5);
    for trial in 0..12 {
        let prob = if trial % 3 == 2 { gated_flow(&mut rng) } else { random_knapsack(&mut rng) };
        let seq = solve_milp(&prob, &MilpOptions { threads: 1, ..Default::default() }).unwrap();
        let par = solve_milp(&prob, &MilpOptions { threads: 4, ..Default::default() }).unwrap();
        assert_eq!(seq.status, MilpStatus::Optimal, "trial {trial}");
        assert_eq!(par.status, MilpStatus::Optimal, "trial {trial}");
        assert_eq!(
            seq.objective.to_bits(),
            par.objective.to_bits(),
            "trial {trial}: seq {} vs par {}",
            seq.objective,
            par.objective
        );
    }
}

#[test]
fn repeated_parallel_runs_agree() {
    let mut rng = ChaCha8Rng::seed_from_u64(97);
    for trial in 0..6 {
        let prob = if trial % 2 == 0 { random_knapsack(&mut rng) } else { gated_flow(&mut rng) };
        let opts = MilpOptions { threads: 3, ..Default::default() };
        let first = solve_milp(&prob, &opts).unwrap();
        for rerun in 1..4 {
            let again = solve_milp(&prob, &opts).unwrap();
            assert_eq!(first.status, again.status, "trial {trial} rerun {rerun}");
            assert_eq!(
                first.objective.to_bits(),
                again.objective.to_bits(),
                "trial {trial} rerun {rerun}: {} vs {}",
                first.objective,
                again.objective
            );
            assert_eq!(first.x, again.x, "trial {trial} rerun {rerun}: incumbent point drifted");
        }
    }
}

#[test]
fn warm_start_does_not_change_the_reported_optimum() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    for trial in 0..4 {
        let prob = random_knapsack(&mut rng);
        let cold = solve_milp(&prob, &MilpOptions::default()).unwrap();
        assert_eq!(cold.status, MilpStatus::Optimal, "trial {trial}");
        let warm = solve_milp(
            &prob,
            &MilpOptions { warm_start: Some(cold.x.clone()), ..Default::default() },
        )
        .unwrap();
        assert_eq!(warm.status, MilpStatus::Optimal, "trial {trial}");
        assert_eq!(
            cold.objective.to_bits(),
            warm.objective.to_bits(),
            "trial {trial}: cold {} vs warm {}",
            cold.objective,
            warm.objective
        );
    }
}
