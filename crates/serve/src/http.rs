//! A minimal HTTP/1.1 subset over blocking streams.
//!
//! Just enough of RFC 9112 for the solve service and its clients: a
//! request line, `\r\n`-terminated headers, and an optional
//! `Content-Length` body. No chunked encoding, no TLS — the service is
//! an internal tool, and the parser's job is to be small,
//! allocation-bounded, and impossible to wedge: header and body sizes
//! are capped, and malformed input maps to a typed [`HttpError`] the
//! caller turns into a 4xx.
//!
//! Two clients live here: [`roundtrip`] opens a fresh
//! `connection: close` stream per request (integration tests, one-off
//! probes), and [`ClientConn`] keeps one stream open across many
//! exchanges — the keep-alive client the scaled load generator drives
//! against the reactor server. The *server*-side incremental parser
//! lives in `cubis_reactor::http1`; its grammar deliberately mirrors
//! [`read_request`] here, and the `serve-parser-incremental-vs-oneshot`
//! oracle holds the two to byte-for-byte agreement.

use std::io::{BufRead, Write};

/// Cap on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Cap on the request body, in bytes.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path only; no query parsing).
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the (lowercased) header `name`, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed the connection before a full request arrived.
    ConnectionClosed,
    /// The request line or a header was malformed.
    Malformed(String),
    /// Head or body exceeded the configured caps.
    TooLarge(String),
    /// Underlying I/O failure (includes read timeouts).
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ConnectionClosed => write!(f, "connection closed mid-request"),
            Self::Malformed(d) => write!(f, "malformed request: {d}"),
            Self::TooLarge(d) => write!(f, "request too large: {d}"),
            Self::Io(d) => write!(f, "i/o error: {d}"),
        }
    }
}

/// Read one line terminated by `\n`, enforcing a byte budget shared
/// across the whole head.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(HttpError::ConnectionClosed);
                }
                return Err(HttpError::Malformed("head truncated".to_string()));
            }
            Ok(_) => {}
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
        if *budget == 0 {
            return Err(HttpError::TooLarge(format!("head exceeds {MAX_HEAD_BYTES} bytes")));
        }
        *budget -= 1;
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|_| HttpError::Malformed("non-UTF-8 head".to_string()));
        }
        line.push(byte[0]);
    }
}

/// Parse one request from `reader` (blocking until complete or error).
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = read_line(reader, &mut budget)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".to_string()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line missing target".to_string()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line missing version".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported version {version}")));
    }

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let line = read_line(reader, &mut budget)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without colon: {line:?}")))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {value:?}")))?;
        }
        headers.push((name, value));
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds {MAX_BODY_BYTES}"
        )));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader
            .read_exact(&mut body)
            .map_err(|e| match e.kind() {
                std::io::ErrorKind::UnexpectedEof => HttpError::ConnectionClosed,
                _ => HttpError::Io(e.to_string()),
            })?;
    }
    Ok(Request { method, path, headers, body })
}

/// The reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write a full response (status line, headers, `Content-Length`,
/// `Connection: close`, body) and flush.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, &str)],
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {status} {}\r\n", reason(status));
    head.push_str(&format!("content-type: {content_type}\r\n"));
    head.push_str(&format!("content-length: {}\r\n", body.len()));
    head.push_str("connection: close\r\n");
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A parsed response, as the load generator and tests see it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// First value of the (lowercased) header `name`, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy — bodies the service writes are JSON/text).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Parse one response from `reader` (client side; blocking).
pub fn read_response(reader: &mut impl BufRead) -> Result<Response, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let status_line = read_line(reader, &mut budget)?;
    let mut parts = status_line.split_whitespace();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty status line".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported version {version}")));
    }
    let status = parts
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| HttpError::Malformed("status line missing code".to_string()))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let line = read_line(reader, &mut budget)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without colon: {line:?}")))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {value:?}")))?;
        }
        headers.push((name, value));
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(format!("body of {content_length} bytes")));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader
            .read_exact(&mut body)
            .map_err(|e| HttpError::Io(e.to_string()))?;
    }
    Ok(Response { status, headers, body })
}

/// A keep-alive HTTP/1.1 client connection: one TCP stream reused for
/// many request/response exchanges. The load generator's workhorse —
/// reuse is what lets thousands of clients hammer the reactor without
/// a connect/close storm. Exchanges run strictly in sequence; after a
/// response carrying `connection: close` (or any transport error) the
/// connection is dead and the caller reconnects.
pub struct ClientConn {
    writer: std::net::TcpStream,
    reader: std::io::BufReader<std::net::TcpStream>,
    /// Completed exchanges on this connection.
    exchanges: u64,
    /// The server announced it will close after the last response.
    server_closing: bool,
}

impl ClientConn {
    /// Connect with `timeout` applying to the connect and every
    /// subsequent read/write.
    pub fn connect(
        addr: std::net::SocketAddr,
        timeout: std::time::Duration,
    ) -> Result<Self, HttpError> {
        let stream = std::net::TcpStream::connect_timeout(&addr, timeout)
            .map_err(|e| HttpError::Io(format!("connect: {e}")))?;
        stream.set_read_timeout(Some(timeout)).map_err(|e| HttpError::Io(e.to_string()))?;
        stream.set_write_timeout(Some(timeout)).map_err(|e| HttpError::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone().map_err(|e| HttpError::Io(e.to_string()))?;
        Ok(Self {
            writer,
            reader: std::io::BufReader::new(stream),
            exchanges: 0,
            server_closing: false,
        })
    }

    /// Exchanges completed on this connection so far (for keep-alive
    /// reuse accounting: reuse = exchanges beyond the first).
    pub fn exchanges(&self) -> u64 {
        self.exchanges
    }

    /// Whether the connection can carry another request.
    pub fn reusable(&self) -> bool {
        !self.server_closing
    }

    /// Send one request and read its response, leaving the connection
    /// open for the next exchange (unless the server says close).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<Response, HttpError> {
        if self.server_closing {
            return Err(HttpError::ConnectionClosed);
        }
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: cubis\r\n");
        head.push_str(&format!("content-length: {}\r\n", body.len()));
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes()).map_err(|e| HttpError::Io(e.to_string()))?;
        self.writer.write_all(body).map_err(|e| HttpError::Io(e.to_string()))?;
        self.writer.flush().map_err(|e| HttpError::Io(e.to_string()))?;
        let response = read_response(&mut self.reader)?;
        self.exchanges += 1;
        if response.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close")) {
            self.server_closing = true;
        }
        Ok(response)
    }
}

/// Send `request` over a fresh client connection and return the parsed
/// response (the one-request-per-connection client the load generator
/// and integration tests share).
pub fn roundtrip(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    timeout: std::time::Duration,
) -> Result<Response, HttpError> {
    let stream = std::net::TcpStream::connect_timeout(&addr, timeout)
        .map_err(|e| HttpError::Io(format!("connect: {e}")))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| HttpError::Io(e.to_string()))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| HttpError::Io(e.to_string()))?;
    let mut writer = stream.try_clone().map_err(|e| HttpError::Io(e.to_string()))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: cubis\r\n");
    head.push_str(&format!("content-length: {}\r\n", body.len()));
    head.push_str("connection: close\r\n");
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes()).map_err(|e| HttpError::Io(e.to_string()))?;
    writer.write_all(body).map_err(|e| HttpError::Io(e.to_string()))?;
    writer.flush().map_err(|e| HttpError::Io(e.to_string()))?;
    let mut reader = std::io::BufReader::new(stream);
    read_response(&mut reader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /v1/solve HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/solve");
        assert_eq!(req.body, b"hello");
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn parses_get_without_body() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_and_truncated() {
        let raw = b"NOT-HTTP\r\n\r\n";
        assert!(matches!(
            read_request(&mut BufReader::new(&raw[..])),
            Err(HttpError::Malformed(_))
        ));
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort";
        assert!(matches!(
            read_request(&mut BufReader::new(&raw[..])),
            Err(HttpError::ConnectionClosed)
        ));
        let raw = b"";
        assert!(matches!(
            read_request(&mut BufReader::new(&raw[..])),
            Err(HttpError::ConnectionClosed)
        ));
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(
            read_request(&mut BufReader::new(raw.as_bytes())),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn response_round_trips_through_writer_and_parser() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, &[("x-cubis-cache", "hit")], "application/json", b"{}")
            .unwrap();
        let resp = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-cubis-cache"), Some("hit"));
        assert_eq!(resp.header("connection"), Some("close"));
        assert_eq!(resp.body, b"{}");
    }
}
