//! The paper's MILP inner maximizer (equations 33–40).
//!
//! For a utility value `c`, piecewise-linearize
//! `f1_i = L_i·(Ud_i − c)` and `f2_i = U_i·(Ud_i − c)` with `K` equal
//! segments and solve
//!
//! ```text
//! max  Σ_i [f1_i(0) + Σ_k s1_{i,k}·x_{i,k}] − Σ_i v_i
//! s.t. 0 ≤ v_i ≤ M_i·q_i                               (34)
//!      f̄1_i − f̄2_i ≤ v_i                               (35)
//!      v_i ≤ f̄1_i − f̄2_i + M_i·(1 − q_i)               (36)
//!      Σ_{i,k} x_{i,k} ≤ R,  0 ≤ x_{i,k} ≤ 1/K          (37)
//!      h_{i,k}/K ≤ x_{i,k},  x_{i,k+1} ≤ h_{i,k}        (38–39)
//!      q_i, h_{i,k} ∈ {0, 1}                            (40)
//! ```
//!
//! The big-M constants are data-driven: `M_i` bounds `|f̄1_i − f̄2_i|`
//! over the breakpoints (the piecewise functions are linear between
//! them, so the breakpoint maximum is the true maximum).
//!
//! The MILP is handed to [`cubis_milp`] (our CPLEX stand-in), warm
//! started with a dynamic-programming incumbent on the breakpoint grid —
//! the DP point is feasible for the MILP and usually optimal or
//! near-optimal, which turns branch-and-bound into a verification pass.

use super::{BudgetMode, DpInner, InnerResult, InnerSolver, InnerStats, SolveError};
use crate::piecewise::PiecewiseLinear;
use crate::problem::RobustProblem;
use crate::transform;
use crate::warm::{BreakpointTables, WarmState};
use cubis_behavior::IntervalChoiceModel;
use cubis_lp::{LpProblem, Relation, Sense, VarId};
use cubis_milp::{solve_milp, MilpOptions, MilpProblem, MilpStatus};

/// MILP inner maximizer.
#[derive(Debug, Clone)]
pub struct MilpInner {
    /// Number of piecewise segments `K`.
    pub k: usize,
    /// Budget handling for constraint (37).
    pub budget: BudgetMode,
    /// Branch-and-bound options.
    pub milp: MilpOptions,
    /// Seed branch-and-bound with a DP incumbent on the breakpoint grid.
    pub warm_start: bool,
    /// Include the paper's `q_i` indicator binaries and big-M rows
    /// (34)/(36) verbatim. They are redundant at the optimum — with
    /// `v_i ≥ 0` and `v_i ≥ f̄1_i − f̄2_i` (35), maximizing `−Σv_i`
    /// already drives `v_i` to `max(0, f̄1_i − f̄2_i)` — so the default
    /// omits them, halving the binaries and removing every big-M
    /// coefficient. Enable for a formulation-faithful ablation (A1).
    pub paper_indicators: bool,
}

impl MilpInner {
    /// MILP backend with `K = k` segments and default solver options.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "MilpInner: K must be positive");
        Self {
            k,
            budget: BudgetMode::AtMost,
            milp: MilpOptions::default(),
            warm_start: true,
            paper_indicators: false,
        }
    }

    /// Use the paper's verbatim MILP (33–40), including the redundant
    /// `q_i` indicator binaries (see the field docs).
    pub fn paper_formulation(mut self) -> Self {
        self.paper_indicators = true;
        self
    }

    /// Use exact budget `Σ x = R`.
    pub fn exact_budget(mut self) -> Self {
        self.budget = BudgetMode::Exact;
        self
    }

    /// Disable the DP warm start (ablation knob).
    pub fn without_warm_start(mut self) -> Self {
        self.warm_start = false;
        self
    }

    /// Use `threads` rayon workers inside branch-and-bound.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.milp.threads = threads;
        self
    }

    /// Route branch-and-bound (and, transitively, simplex) events to
    /// `recorder`. Equivalent to what [`Cubis::with_recorder`] does
    /// through [`InnerSolver::attach_recorder`].
    ///
    /// [`Cubis::with_recorder`]: crate::Cubis::with_recorder
    pub fn with_recorder(mut self, recorder: cubis_trace::SharedRecorder) -> Self {
        self.milp.recorder = recorder;
        self
    }
}

/// Variable layout of one assembled MILP.
struct Layout {
    /// `x_{i,k}`: `t × k` coverage portions.
    x: Vec<Vec<VarId>>,
    /// `v_i`.
    v: Vec<VarId>,
    /// `q_i`.
    q: Vec<VarId>,
    /// `h_{i,k}`: `t × (k−1)` fill-order indicators.
    h: Vec<Vec<VarId>>,
    /// Objective constant `Σ_i f1_i(0)` excluded from the LP objective.
    offset: f64,
    /// Global scaling `γ` applied to f1/f2 (see `build`); divide the LP
    /// objective by this to recover the unscaled `Ḡ`.
    scale: f64,
    /// Piecewise data per target (for warm starts and extraction).
    pw1: Vec<PiecewiseLinear>,
    pw2: Vec<PiecewiseLinear>,
}

impl MilpInner {
    /// Sample `f1/f2` at the `K+1` breakpoints — the cold path's model
    /// evaluations. The warm path reassembles bitwise-identical tables
    /// from the cached `(L, U, Ud)` grid instead (see
    /// [`crate::warm::GridSamples`]).
    fn fresh_tables<M: IntervalChoiceModel>(
        &self,
        p: &RobustProblem<'_, M>,
        c: f64,
    ) -> BreakpointTables {
        let t = p.num_targets();
        let k = self.k;
        let mut f1 = vec![vec![0.0f64; k + 1]; t];
        let mut f2 = vec![vec![0.0f64; k + 1]; t];
        for i in 0..t {
            for j in 0..=k {
                let xbp = j as f64 / k as f64;
                f1[i][j] = transform::f1(p, i, xbp, c);
                f2[i][j] = transform::f2(p, i, xbp, c);
            }
        }
        BreakpointTables { f1, f2 }
    }

    /// Assemble the MILP (33–40) from breakpoint tables. Everything the
    /// formulation needs (γ, slopes, big-Ms) derives from the `f1/f2`
    /// breakpoint values, so identical tables — fresh or cache-assembled
    /// — give an identical MILP.
    fn build_from_tables(
        &self,
        t: usize,
        resources: f64,
        tables: &BreakpointTables,
    ) -> (MilpProblem, Layout) {
        let k = self.k;
        let mut lp = LpProblem::new(Sense::Maximize);

        // The attack distribution (4) — and hence problem (5) and the
        // sign of G — is invariant to scaling every L_i/U_i by a common
        // positive constant. Normalize so the largest |f1|/|f2|
        // breakpoint value is ~1: SUQR attractiveness spans several
        // orders of magnitude (it is an exponential), and unscaled
        // coefficients destroy the simplex's conditioning.
        // Folded with the shared `improves` rule rather than `f64::max`:
        // `max` quietly discards a NaN operand, which would hide a
        // broken f1/f2 inside a plausible-looking scale factor. Under
        // `improves` a NaN breakpoint value poisons γ and fails loudly —
        // the same NaN semantics the DP and greedy scans use.
        let mut raw_max = 0.0f64;
        for i in 0..t {
            for j in 0..=k {
                for cand in [tables.f1[i][j].abs(), tables.f2[i][j].abs()] {
                    if super::improves(cand, raw_max) {
                        raw_max = cand;
                    }
                }
            }
        }
        let gamma = if raw_max > 0.0 { 1.0 / raw_max } else { 1.0 };

        let mut pw1 = Vec::with_capacity(t);
        let mut pw2 = Vec::with_capacity(t);
        let mut big_m = Vec::with_capacity(t);
        for i in 0..t {
            let s1: Vec<f64> = (0..=k).map(|j| gamma * tables.f1[i][j]).collect();
            let s2: Vec<f64> = (0..=k).map(|j| gamma * tables.f2[i][j]).collect();
            let a = PiecewiseLinear::from_samples(&s1);
            let b = PiecewiseLinear::from_samples(&s2);
            // |f̄1 − f̄2| is piecewise linear ⇒ maximal at a breakpoint.
            let mut m = 0.0f64;
            for j in 0..=k {
                let xbp = j as f64 / k as f64;
                let cand = (a.eval(xbp) - b.eval(xbp)).abs();
                if super::improves(cand, m) {
                    m = cand;
                }
            }
            big_m.push(m + 1.0);
            pw1.push(a);
            pw2.push(b);
        }

        let offset: f64 = pw1.iter().map(|w| w.f0).sum();
        let kf = k as f64;

        // Segment variables are expressed in *segment units*,
        // z_{i,k} = K·x_{i,k} ∈ [0, 1]: this makes every fill-order
        // coefficient ±1 (instead of 1/K vs 1), so the long ordering
        // chains stay perfectly conditioned in the simplex basis —
        // with raw x variables the basis condition grows like K^depth
        // and destroys the LP numerically for K ≳ 16.
        let x: Vec<Vec<VarId>> = (0..t)
            .map(|i| {
                (0..k)
                    .map(|j| {
                        lp.add_var(format!("z_{i}_{j}"), 0.0, 1.0, pw1[i].slopes[j] / kf)
                    })
                    .collect()
            })
            .collect();
        let v: Vec<VarId> =
            (0..t).map(|i| lp.add_var(format!("v_{i}"), 0.0, big_m[i], -1.0)).collect();
        let q: Vec<VarId> = if self.paper_indicators {
            (0..t).map(|i| lp.add_var(format!("q_{i}"), 0.0, 1.0, 0.0)).collect()
        } else {
            Vec::new()
        };
        let h: Vec<Vec<VarId>> = (0..t)
            .map(|i| {
                (0..k.saturating_sub(1))
                    .map(|j| lp.add_var(format!("h_{i}_{j}"), 0.0, 1.0, 0.0))
                    .collect()
            })
            .collect();

        for i in 0..t {
            // d̄_i := f̄1_i − f̄2_i = (f1_0 − f2_0) + Σ_k (s1−s2)·x_{i,k}.
            let d0 = pw1[i].f0 - pw2[i].f0;
            let dslopes: Vec<f64> = (0..k)
                .map(|j| (pw1[i].slopes[j] - pw2[i].slopes[j]) / kf)
                .collect();
            // (35): d̄_i ≤ v_i  ⇔  Σ ds·x − v ≤ −d0.
            let mut terms: Vec<(VarId, f64)> =
                (0..k).map(|j| (x[i][j], dslopes[j])).collect();
            terms.push((v[i], -1.0));
            lp.add_constraint(terms, Relation::Le, -d0);
            if self.paper_indicators {
                // (34): v_i − M_i·q_i ≤ 0.
                lp.add_constraint(vec![(v[i], 1.0), (q[i], -big_m[i])], Relation::Le, 0.0);
                // (36): v_i ≤ d̄_i + M_i(1−q_i) ⇔ v − Σ ds·x + M·q ≤ d0 + M.
                let mut terms: Vec<(VarId, f64)> =
                    (0..k).map(|j| (x[i][j], -dslopes[j])).collect();
                terms.push((v[i], 1.0));
                terms.push((q[i], big_m[i]));
                lp.add_constraint(terms, Relation::Le, d0 + big_m[i]);
            }
            // (38)–(39): fill order.
            for j in 0..k.saturating_sub(1) {
                // (38): h_{i,k} ≤ z_{i,k}   (39): z_{i,k+1} ≤ h_{i,k}.
                lp.add_constraint(
                    vec![(h[i][j], 1.0), (x[i][j], -1.0)],
                    Relation::Le,
                    0.0,
                );
                lp.add_constraint(
                    vec![(x[i][j + 1], 1.0), (h[i][j], -1.0)],
                    Relation::Le,
                    0.0,
                );
            }
        }
        // (37): budget.
        let budget_terms: Vec<(VarId, f64)> =
            x.iter().flatten().map(|&xv| (xv, 1.0)).collect();
        let rel = match self.budget {
            BudgetMode::AtMost => Relation::Le,
            BudgetMode::Exact => Relation::Eq,
        };
        lp.add_constraint(budget_terms, rel, kf * resources);

        let mut integers: Vec<VarId> = q.clone();
        integers.extend(h.iter().flatten().copied());
        let layout = Layout { x, v, q, h, offset, scale: gamma, pw1, pw2 };
        (MilpProblem { lp, integers }, layout)
    }

    /// Translate a breakpoint-grid coverage vector into a full MILP
    /// assignment (used as the warm-start incumbent).
    fn warm_assignment(&self, layout: &Layout, prob: &MilpProblem, xg: &[f64]) -> Vec<f64> {
        let k = self.k;
        let mut full = vec![0.0; prob.lp.num_vars()];
        for (i, &xi) in xg.iter().enumerate() {
            let portions = PiecewiseLinear::segment_portions(k, xi);
            let seg_cap = 1.0 / k as f64;
            for (j, &pj) in portions.iter().enumerate() {
                full[layout.x[i][j].index()] = pj * k as f64;
            }
            // d̄_i and the induced v_i, q_i.
            let d = layout.pw1[i].eval(xi) - layout.pw2[i].eval(xi);
            if d > 0.0 {
                full[layout.v[i].index()] = d;
                if let Some(qi) = layout.q.get(i) {
                    full[qi.index()] = 1.0;
                }
            }
            for (j, h) in layout.h[i].iter().enumerate() {
                full[h.index()] = if portions[j] >= seg_cap - 1e-12 { 1.0 } else { 0.0 };
            }
        }
        full
    }
}

impl MilpInner {
    fn solve_built<M: IntervalChoiceModel>(
        &self,
        p: &RobustProblem<'_, M>,
        c: f64,
        target: Option<f64>,
        mut warm: Option<&mut WarmState>,
    ) -> Result<InnerResult, SolveError> {
        let t = p.num_targets();
        // Breakpoint tables: fresh on the cold path, reassembled from the
        // cached (L, U, Ud) grid on the warm path. The grid serves both
        // f1 and f2, so a cold grid build is charged the same
        // 2·(K+1)·T f-evaluations as fresh sampling.
        let mut evaluations = 2 * (self.k + 1) * t;
        let tables = match warm.as_deref_mut() {
            Some(w) => {
                let fresh = w.ensure_grid(p, self.k);
                match w.breakpoint_tables(self.k, c) {
                    Some(tb) => {
                        evaluations = 2 * fresh;
                        tb
                    }
                    None => self.fresh_tables(p, c),
                }
            }
            None => self.fresh_tables(p, c),
        };
        let (prob, layout) = self.build_from_tables(t, p.resources(), &tables);
        let mut opts = self.milp.clone();
        // Early sign termination: translate the caller's threshold on the
        // *unscaled* Ḡ into the LP objective space (scaled by γ, shifted
        // by the constant Σ f1_i(0)).
        opts.target = target.map(|t| t * layout.scale - layout.offset);
        // A bound certificate transferred from a previous probe prunes
        // branch-and-bound from node zero (same γ/offset translation;
        // γ > 0 preserves the bound's direction). The hint is applied
        // only when it already proves *this* probe infeasible: a hint
        // merely near the target could end the search inside the
        // optimality gap and flip the feasibility sign relative to a
        // cold solve, which would break the bit-identity guarantee.
        if let (Some(w), Some(tgt)) = (warm.as_deref_mut(), opts.target) {
            if let Some(hint) = w.transfer_hint(self.k, c) {
                let hint_lp = hint * layout.scale - layout.offset;
                if hint_lp < tgt {
                    opts.bound_hint = Some(hint_lp);
                    w.stats.bound_hints += 1;
                }
            }
        }
        if self.warm_start {
            // DP on the breakpoint grid; its solution is MILP-feasible
            // (grid points are exact for the linearization). On the warm
            // path the DP values come from the cache (zero fresh model
            // evaluations, bitwise the cold seed).
            let dp = DpInner { points_per_unit: self.k, budget: self.budget };
            let seed = match warm.as_deref_mut().and_then(|w| w.g_values(self.k, c)) {
                Some(values) => dp.solve_on_values(p, c, &values, 0),
                None => {
                    let s = dp.maximize_g(p, c);
                    if let Ok(r) = &s {
                        evaluations += r.stats.evaluations;
                    }
                    s
                }
            };
            if let Ok(seed) = seed {
                // Carry the previous probe's incumbent when it beats the
                // DP seed on the *linearized* objective (an off-grid MILP
                // optimum can outscore every grid point); ties keep the
                // DP seed so the default trajectory matches the cold one.
                let lin = |x: &[f64]| -> f64 {
                    x.iter()
                        .enumerate()
                        .map(|(i, &xi)| layout.pw1[i].eval(xi).min(layout.pw2[i].eval(xi)))
                        .sum()
                };
                let mut chosen = seed.x;
                if let Some(w) = warm.as_deref_mut() {
                    if let Some(prev) = &w.incumbent {
                        if prev.len() == t && super::improves(lin(prev), lin(&chosen)) {
                            chosen = prev.clone();
                            w.stats.warm_seeds += 1;
                        }
                    }
                }
                opts.warm_start = Some(self.warm_assignment(&layout, &prob, &chosen));
            }
        }
        let sol = solve_milp(&prob, &opts).map_err(|e| SolveError::Milp(e.to_string()))?;
        match sol.status {
            MilpStatus::Optimal => {}
            MilpStatus::TargetUnreachable => {
                // Early certificate: max Ḡ < target. Report the proven
                // bound (negative relative to the target) with a dummy
                // zero strategy — the binary search discards x on
                // infeasible steps. The bound is a certificate worth
                // carrying: later probes transfer it via the Lipschitz
                // argument in [`WarmState::transfer_hint`].
                let g_value = (sol.bound + layout.offset) / layout.scale;
                if let Some(w) = warm.as_deref_mut() {
                    let gap = opts.gap_abs + opts.gap_rel * sol.bound.abs();
                    w.record_bound(self.k, c, (sol.bound + gap + layout.offset) / layout.scale);
                }
                return Ok(InnerResult {
                    g_value,
                    x: vec![0.0; p.num_targets()],
                    gap: 0.0,
                    stats: InnerStats {
                        milp_nodes: sol.nodes,
                        lp_iterations: sol.lp_iterations,
                        evaluations,
                    },
                });
            }
            MilpStatus::NodeLimit => {
                return Err(SolveError::Milp(format!(
                    "node limit {} hit at c = {c}",
                    opts.max_nodes
                )))
            }
            MilpStatus::Infeasible => return Err(SolveError::UnexpectedInfeasible { c }),
            MilpStatus::Unbounded => {
                return Err(SolveError::Milp(format!("unbounded MILP at c = {c}")))
            }
        }
        let kf = self.k as f64;
        let x: Vec<f64> = layout
            .x
            .iter()
            .map(|row| {
                (row.iter().map(|&v| sol.x[v.index()]).sum::<f64>() / kf).clamp(0.0, 1.0)
            })
            .collect();
        if let Some(w) = warm.as_deref_mut() {
            // The maximizer becomes the next probe's incumbent candidate.
            w.incumbent = Some(x.clone());
            if let Some(tgt) = opts.target {
                if sol.objective < tgt {
                    // Infeasible probe that still carries an incumbent
                    // (the DP seed guarantees one): `sol.bound` is a
                    // proven upper bound on max Ḡ_c up to the optimality
                    // gap, so inflate by the gap before certifying.
                    let gap = opts.gap_abs + opts.gap_rel * sol.bound.abs();
                    w.record_bound(self.k, c, (sol.bound + gap + layout.offset) / layout.scale);
                }
            }
        }
        Ok(InnerResult {
            g_value: (sol.objective + layout.offset) / layout.scale,
            x,
            gap: 0.0,
            stats: InnerStats {
                milp_nodes: sol.nodes,
                lp_iterations: sol.lp_iterations,
                evaluations,
            },
        })
    }
}

impl InnerSolver for MilpInner {
    fn maximize_g<M: IntervalChoiceModel>(
        &self,
        p: &RobustProblem<'_, M>,
        c: f64,
    ) -> Result<InnerResult, SolveError> {
        self.solve_built(p, c, None, None)
    }

    fn feasibility_g<M: IntervalChoiceModel>(
        &self,
        p: &RobustProblem<'_, M>,
        c: f64,
        tol: f64,
    ) -> Result<InnerResult, SolveError> {
        // Stop branch-and-bound as soon as the sign of max Ḡ relative to
        // −tol is certified (Proposition 2 only consumes that sign).
        self.solve_built(p, c, Some(-tol), None)
    }

    /// Warm probe: breakpoint tables come from the cached grid, the DP
    /// seed from cached values, the previous incumbent competes for the
    /// warm start, and a transferred bound certificate prunes from node
    /// zero. Feasibility *decisions* are bitwise identical to the cold
    /// path — hints and incumbents only prune; target-mode
    /// branch-and-bound still decides the sign exactly.
    fn feasibility_g_warm<M: IntervalChoiceModel>(
        &self,
        p: &RobustProblem<'_, M>,
        c: f64,
        tol: f64,
        warm: &mut WarmState,
    ) -> Result<InnerResult, SolveError> {
        self.solve_built(p, c, Some(-tol), Some(warm))
    }

    fn resolution(&self) -> Option<usize> {
        Some(self.k)
    }

    fn name(&self) -> &'static str {
        "milp"
    }

    fn attach_recorder(&mut self, recorder: &cubis_trace::SharedRecorder) {
        self.milp.recorder = recorder.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubis_behavior::{BoundConvention, SuqrUncertainty, UncertainSuqr};
    use cubis_game::{GameGenerator, SecurityGame, TargetPayoffs};

    fn small() -> (SecurityGame, UncertainSuqr) {
        let game = SecurityGame::new(
            vec![
                TargetPayoffs::new(5.0, -3.0, 3.0, -5.0),
                TargetPayoffs::new(7.0, -7.0, 7.0, -7.0),
                TargetPayoffs::new(2.0, -4.0, 4.0, -2.0),
            ],
            1.0,
        );
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            0.5,
            BoundConvention::ExactInterval,
        );
        (game, model)
    }

    /// The MILP maximizes the *linearized* objective; on the breakpoint
    /// grid the linearization is exact, so the MILP optimum must match
    /// the DP optimum with `points_per_unit = K` exactly whenever the
    /// MILP lands on breakpoints, and must never be worse.
    #[test]
    fn milp_at_least_matches_breakpoint_dp() {
        let (game, model) = small();
        let p = RobustProblem::new(&game, &model);
        let k = 5;
        let milp = MilpInner::new(k);
        let dp = DpInner::new(k);
        for &c in &[-4.0, -1.0, 0.5, 2.0] {
            let m = milp.maximize_g(&p, c).unwrap();
            let d = dp.maximize_g(&p, c).unwrap();
            assert!(
                m.g_value >= d.g_value - 1e-7,
                "c={c}: milp {} < dp {}",
                m.g_value,
                d.g_value
            );
        }
    }

    #[test]
    fn milp_objective_matches_linearized_evaluation() {
        let (game, model) = small();
        let p = RobustProblem::new(&game, &model);
        let k = 4;
        let inner = MilpInner::new(k);
        let c = 0.0;
        let res = inner.maximize_g(&p, c).unwrap();
        // Recompute Ḡ at the returned x from the piecewise functions.
        let mut g = 0.0;
        for i in 0..3 {
            let pw1 = PiecewiseLinear::build(k, |x| transform::f1(&p, i, x, c));
            let pw2 = PiecewiseLinear::build(k, |x| transform::f2(&p, i, x, c));
            let a = pw1.eval(res.x[i]);
            let b = pw2.eval(res.x[i]);
            g += a.min(b);
        }
        assert!(
            (g - res.g_value).abs() < 1e-6,
            "re-eval {g} vs reported {}",
            res.g_value
        );
    }

    #[test]
    fn milp_solution_is_budget_feasible() {
        let (game, model) = small();
        let p = RobustProblem::new(&game, &model);
        let res = MilpInner::new(5).maximize_g(&p, -0.5).unwrap();
        let total: f64 = res.x.iter().sum();
        assert!(total <= game.resources() + 1e-6);
    }

    #[test]
    fn warm_start_does_not_change_result() {
        let (game, model) = small();
        let p = RobustProblem::new(&game, &model);
        for &c in &[-2.0, 0.5] {
            let with = MilpInner::new(4).maximize_g(&p, c).unwrap();
            let without = MilpInner::new(4).without_warm_start().maximize_g(&p, c).unwrap();
            assert!(
                (with.g_value - without.g_value).abs() < 1e-6,
                "c={c}: {} vs {}",
                with.g_value,
                without.g_value
            );
        }
    }

    #[test]
    fn higher_k_tracks_true_g_better() {
        // True optimum via a fine DP; linearized optima should approach it.
        let mut gen = GameGenerator::new(12);
        let game = gen.generate(4, 2.0);
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            0.5,
            BoundConvention::ExactInterval,
        );
        let p = RobustProblem::new(&game, &model);
        let c = 0.0;
        let reference = DpInner::new(240).maximize_g(&p, c).unwrap().g_value;
        let err = |k: usize| {
            let g = MilpInner::new(k).maximize_g(&p, c).unwrap().g_value;
            (g - reference).abs()
        };
        let e2 = err(2);
        let e8 = err(8);
        let e16 = err(16);
        assert!(e8 <= e2 + 1e-9, "e2={e2} e8={e8}");
        assert!(e16 <= e8 + 1e-9, "e8={e8} e16={e16}");
    }

    #[test]
    fn exact_budget_mode_hits_budget() {
        let (game, model) = small();
        let p = RobustProblem::new(&game, &model);
        let res = MilpInner::new(5).exact_budget().maximize_g(&p, -1.0).unwrap();
        let total: f64 = res.x.iter().sum();
        assert!((total - game.resources()).abs() < 1e-6, "total {total}");
    }
}

#[cfg(test)]
mod formulation_tests {
    use super::*;
    use crate::inner::InnerSolver;
    use cubis_behavior::{BoundConvention, SuqrUncertainty, UncertainSuqr};
    use cubis_game::GameGenerator;

    /// The reduced formulation (no q binaries) and the paper's verbatim
    /// MILP (33–40) must agree: the indicators are redundant at optimum.
    #[test]
    fn reduced_and_paper_formulations_agree() {
        let mut gen = GameGenerator::new(77);
        for trial in 0..4 {
            let game = gen.generate(4 + trial, 2.0);
            let model = UncertainSuqr::from_game(
                &game,
                SuqrUncertainty::paper_example(),
                0.5,
                BoundConvention::ExactInterval,
            );
            let p = RobustProblem::new(&game, &model);
            for &c in &[-3.0, 0.0, 1.5] {
                let reduced = MilpInner::new(6).maximize_g(&p, c).unwrap();
                let paper = MilpInner::new(6).paper_formulation().maximize_g(&p, c).unwrap();
                assert!(
                    (reduced.g_value - paper.g_value).abs() < 1e-6,
                    "trial {trial} c={c}: reduced {} vs paper {}",
                    reduced.g_value,
                    paper.g_value
                );
            }
        }
    }

    /// The reduced formulation must never explore more B&B nodes than
    /// the paper one on the same instance (it has strictly fewer
    /// binaries and rows).
    #[test]
    fn reduced_formulation_is_no_larger() {
        let mut gen = GameGenerator::new(78);
        let game = gen.generate(6, 2.0);
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            0.5,
            BoundConvention::ExactInterval,
        );
        let p = RobustProblem::new(&game, &model);
        let reduced = MilpInner::new(8).maximize_g(&p, 0.0).unwrap();
        let paper = MilpInner::new(8).paper_formulation().maximize_g(&p, 0.0).unwrap();
        // Not a strict guarantee node-for-node, but a large regression
        // here would signal the reduction stopped working.
        assert!(
            reduced.stats.milp_nodes <= paper.stats.milp_nodes.max(1) * 4,
            "reduced {} nodes vs paper {}",
            reduced.stats.milp_nodes,
            paper.stats.milp_nodes
        );
    }
}
