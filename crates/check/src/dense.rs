//! Dense reference LP solve by exhaustive vertex enumeration.
//!
//! The simplex in `cubis-lp` is the production solver; this module is
//! its oracle. For a small LP whose feasible region is bounded, every
//! optimum is attained at a vertex, and every vertex is the unique
//! solution of `n` active hyperplanes (constraint rows held at
//! equality, or variable bounds held at their limit). So: enumerate all
//! `n`-subsets of hyperplanes that include every `Eq` row, solve each
//! dense `n×n` system with [`cubis_linalg::Lu`], keep the feasible
//! solutions and take the best objective. Exponential — which is
//! exactly why it makes a trustworthy oracle for tiny instances and
//! nothing else.

use cubis_linalg::{Lu, Matrix};
use cubis_lp::{LpProblem, Relation, Sense};

/// Feasibility tolerance for accepting an enumerated vertex.
pub const FEAS_TOL: f64 = 1e-7;

/// Outcome of the dense reference solve.
#[derive(Debug, Clone, PartialEq)]
pub enum DenseOutcome {
    /// Best vertex found: optimal objective value and the point.
    Optimal {
        /// Objective value in the problem's own sense.
        objective: f64,
        /// Primal values in variable order.
        x: Vec<f64>,
    },
    /// No feasible vertex among the enumerated intersections.
    Infeasible,
    /// The instance exceeds the enumeration work cap and was skipped.
    TooLarge,
}

/// One hyperplane of the arrangement: `Σ coeffs·x = rhs`.
struct Hyperplane {
    coeffs: Vec<f64>,
    rhs: f64,
    /// `Eq` rows must be active at every vertex we test.
    mandatory: bool,
}

/// Solve `p` by vertex enumeration.
///
/// Requires a bounded feasible region (every optimum at a vertex);
/// unbounded problems are reported as whatever vertex is best, so only
/// use this on LPs known to be bounded — e.g. the worst-case attacker
/// LP, whose variables all live in `[0, 1]` except a `z` that is pinned
/// by the mandatory simplex row. Instances needing more than
/// `work_cap` candidate subsets return [`DenseOutcome::TooLarge`].
pub fn solve_dense(p: &LpProblem, work_cap: u64) -> DenseOutcome {
    let n = p.num_vars();
    if n == 0 {
        return DenseOutcome::Infeasible;
    }
    let mut planes: Vec<Hyperplane> = Vec::new();
    for ci in 0..p.num_constraints() {
        let (terms, rel, rhs) = p.constraint(ci);
        let mut coeffs = vec![0.0; n];
        for (v, c) in terms {
            coeffs[v.index()] += c;
        }
        planes.push(Hyperplane { coeffs, rhs, mandatory: rel == Relation::Eq });
    }
    for (idx, v) in p.var_ids().enumerate() {
        let (lo, hi) = p.var_bounds(v);
        for bound in [lo, hi] {
            if bound.is_finite() {
                let mut coeffs = vec![0.0; n];
                coeffs[idx] = 1.0;
                planes.push(Hyperplane { coeffs, rhs: bound, mandatory: false });
            }
        }
    }
    let mandatory: Vec<usize> =
        (0..planes.len()).filter(|&i| planes[i].mandatory).collect();
    if mandatory.len() > n {
        // More equalities than dimensions: still fine if consistent, but
        // a vertex needs exactly n active planes — treat the first n as
        // the frame and let feasibility checking reject inconsistency.
        // In practice our LPs never hit this; bail out conservatively.
        return DenseOutcome::TooLarge;
    }
    let optional: Vec<usize> =
        (0..planes.len()).filter(|&i| !planes[i].mandatory).collect();
    let pick = n - mandatory.len();
    if n_choose_k(optional.len() as u64, pick as u64) > work_cap {
        return DenseOutcome::TooLarge;
    }

    let mut best: Option<(f64, Vec<f64>)> = None;
    let mut subset = vec![0usize; pick];
    let consider = |active: &[usize], best: &mut Option<(f64, Vec<f64>)>| {
        let mut a = Matrix::zeros(n, n);
        let mut b = vec![0.0; n];
        for (r, &pi) in mandatory.iter().chain(active).enumerate() {
            for c in 0..n {
                a[(r, c)] = planes[pi].coeffs[c];
            }
            b[r] = planes[pi].rhs;
        }
        let Ok(lu) = Lu::factor(&a) else {
            return; // Degenerate subset: planes don't meet at a point.
        };
        let x = lu.solve(&b);
        if p.max_violation(&x) > FEAS_TOL {
            return;
        }
        let obj = p.objective_value(&x);
        let better = match (p.sense(), &*best) {
            (_, None) => true,
            (Sense::Maximize, Some((cur, _))) => obj.total_cmp(cur).is_gt(),
            (Sense::Minimize, Some((cur, _))) => obj.total_cmp(cur).is_lt(),
        };
        if better {
            *best = Some((obj, x));
        }
    };
    // Iterative k-subset enumeration over `optional` (no recursion, no
    // external combinatorics dep).
    if pick == 0 {
        consider(&[], &mut best);
    } else {
        for (slot, s) in subset.iter_mut().enumerate() {
            *s = slot;
        }
        loop {
            let active: Vec<usize> = subset.iter().map(|&j| optional[j]).collect();
            consider(&active, &mut best);
            // Advance to the next combination in lexicographic order.
            let mut i = pick;
            loop {
                if i == 0 {
                    // All combinations exhausted.
                    match best {
                        Some((objective, x)) => {
                            return DenseOutcome::Optimal { objective, x }
                        }
                        None => return DenseOutcome::Infeasible,
                    }
                }
                i -= 1;
                if subset[i] < optional.len() - (pick - i) {
                    subset[i] += 1;
                    for j in i + 1..pick {
                        subset[j] = subset[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }
    match best {
        Some((objective, x)) => DenseOutcome::Optimal { objective, x },
        None => DenseOutcome::Infeasible,
    }
}

/// Binomial coefficient, saturating at `u64::MAX` (only used to decide
/// "too large", so saturation is the right overflow behavior).
fn n_choose_k(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = match acc.checked_mul(n - i) {
            Some(v) => v / (i + 1),
            None => return u64::MAX,
        };
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubis_lp::{LpOptions, LpProblem, Relation, Sense};

    #[test]
    fn binomials_are_right() {
        assert_eq!(n_choose_k(5, 2), 10);
        assert_eq!(n_choose_k(10, 0), 1);
        assert_eq!(n_choose_k(4, 5), 0);
        assert_eq!(n_choose_k(200, 100), u64::MAX); // saturates
    }

    #[test]
    fn matches_simplex_on_textbook_lp() {
        // max 3x + 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0
        // Optimum 36 at (2, 6).
        let mut p = LpProblem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 5.0);
        p.add_constraint(vec![(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint(vec![(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint(vec![(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let DenseOutcome::Optimal { objective, x: pt } = solve_dense(&p, 1_000_000) else {
            panic!("dense solve failed");
        };
        assert!((objective - 36.0).abs() < 1e-9);
        assert!((pt[0] - 2.0).abs() < 1e-9 && (pt[1] - 6.0).abs() < 1e-9);
        let s = cubis_lp::solve(&p, &LpOptions::default()).unwrap();
        assert!((s.objective - objective).abs() < 1e-9);
    }

    #[test]
    fn handles_equality_rows() {
        // min x + y  s.t.  x + y = 1, x,y ∈ [0,1] → objective 1 anywhere
        // on the segment; vertices are (0,1) and (1,0).
        let mut p = LpProblem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        let y = p.add_var("y", 0.0, 1.0, 1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 1.0);
        let DenseOutcome::Optimal { objective, .. } = solve_dense(&p, 1_000) else {
            panic!("dense solve failed");
        };
        assert!((objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = LpProblem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        p.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(solve_dense(&p, 1_000), DenseOutcome::Infeasible);
    }

    #[test]
    fn respects_work_cap() {
        let mut p = LpProblem::new(Sense::Maximize);
        let vars: Vec<_> = (0..10).map(|i| p.add_var(format!("v{i}"), 0.0, 1.0, 1.0)).collect();
        p.add_constraint(vars.iter().map(|&v| (v, 1.0)).collect(), Relation::Le, 5.0);
        assert_eq!(solve_dense(&p, 3), DenseOutcome::TooLarge);
    }
}
