//! Counterexample shrinking.
//!
//! Given a failing instance and a "still fails?" predicate, greedily
//! apply simplification passes — drop targets, shrink resources,
//! coarsen `K`/`pp`, collapse the uncertainty knobs, snap payoffs to
//! small integers — keeping a candidate only when it remains valid
//! *and* still trips the same oracle. Passes loop to a fixpoint (or an
//! attempt cap), so the reported counterexample is minimal with
//! respect to every pass: no single simplification can be applied to
//! it without losing the failure.

use crate::instance::CheckInstance;
use crate::oracles;

/// Result of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimal failing instance found.
    pub instance: CheckInstance,
    /// Predicate evaluations spent.
    pub attempts: usize,
    /// Simplification steps that were accepted.
    pub accepted: usize,
}

/// Default cap on predicate evaluations (each one may be a full oracle
/// run, so this bounds shrink time).
pub const DEFAULT_MAX_ATTEMPTS: usize = 400;

/// All one-step simplifications of `inst`, most aggressive first.
fn candidates(inst: &CheckInstance) -> Vec<CheckInstance> {
    let mut out = Vec::new();
    // Structural: fewer targets beats everything else.
    for i in 0..inst.num_targets() {
        if let Some(c) = inst.without_target(i) {
            out.push(c);
        }
    }
    if inst.resources > 1.0 {
        out.push(CheckInstance { resources: inst.resources - 1.0, ..inst.clone() });
    }
    for k in [1usize, inst.k / 2, inst.k.saturating_sub(1)] {
        if k >= 1 && k < inst.k {
            out.push(CheckInstance { k, ..inst.clone() });
        }
    }
    for pp in [1usize, inst.pp / 2, inst.pp.saturating_sub(1)] {
        if pp >= 1 && pp < inst.pp {
            out.push(CheckInstance { pp, ..inst.clone() });
        }
    }
    let round2 = |v: f64| (v * 100.0).round() / 100.0;
    for delta in [0.0, round2(inst.payoff_delta / 2.0)] {
        if delta < inst.payoff_delta {
            out.push(CheckInstance { payoff_delta: delta, ..inst.clone() });
        }
    }
    for w in [0.0, round2(inst.width_factor / 2.0)] {
        if w < inst.width_factor {
            out.push(CheckInstance { width_factor: w, ..inst.clone() });
        }
    }
    // Data: snap payoffs to whole numbers, then toward the unit game.
    for (i, t) in inst.targets.iter().enumerate() {
        let snapped = cubis_game::TargetPayoffs::new(
            t.def_reward.round(),
            t.def_penalty.round(),
            t.att_reward.round(),
            t.att_penalty.round(),
        );
        if snapped != *t {
            let mut targets = inst.targets.clone();
            targets[i] = snapped;
            out.push(CheckInstance { targets, ..inst.clone() });
        }
        let unit = cubis_game::TargetPayoffs::new(1.0, -1.0, 1.0, -1.0);
        if unit != *t {
            let mut targets = inst.targets.clone();
            targets[i] = unit;
            out.push(CheckInstance { targets, ..inst.clone() });
        }
    }
    out
}

/// Shrink `original` while `still_fails` holds, spending at most
/// `max_attempts` predicate evaluations.
///
/// The predicate is only ever called on [`CheckInstance::is_valid`]
/// candidates, so it may build games without panicking.
pub fn shrink(
    original: &CheckInstance,
    mut still_fails: impl FnMut(&CheckInstance) -> bool,
    max_attempts: usize,
) -> ShrinkOutcome {
    let mut current = original.clone();
    let mut attempts = 0usize;
    let mut accepted = 0usize;
    'outer: loop {
        for cand in candidates(&current) {
            if !cand.is_valid() {
                continue;
            }
            if attempts >= max_attempts {
                break 'outer;
            }
            attempts += 1;
            if still_fails(&cand) {
                current = cand;
                accepted += 1;
                continue 'outer; // Restart passes from the smaller instance.
            }
        }
        break; // Fixpoint: no candidate keeps the failure.
    }
    ShrinkOutcome { instance: current, attempts, accepted }
}

/// Shrink with the named oracle as the predicate: a candidate keeps
/// the failure when the oracle *checks* it and reports a violation
/// (skipped instances don't count as failing).
pub fn shrink_for_oracle(original: &CheckInstance, oracle: &str) -> ShrinkOutcome {
    shrink_for_oracle_with(original, oracle, &[])
}

/// [`shrink_for_oracle`] resolving the name against the built-in
/// registry plus `extra` oracles (needed when the violated oracle was
/// itself registered through the extension point).
pub fn shrink_for_oracle_with(
    original: &CheckInstance,
    oracle: &str,
    extra: &[oracles::Oracle],
) -> ShrinkOutcome {
    shrink(
        original,
        |cand| oracles::run_named_with(oracle, cand, extra).is_err(),
        DEFAULT_MAX_ATTEMPTS,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_synthetic_predicate_to_exact_minimum() {
        // Predicate: fails whenever there are ≥ 2 targets and k ≥ 2.
        // The minimum under our passes is (2 targets, k = 2, everything
        // else collapsed).
        let start = CheckInstance::generate(77);
        assert!(start.num_targets() >= 2 && start.k >= 2);
        let out = shrink(
            &start,
            |c| c.num_targets() >= 2 && c.k >= 2,
            DEFAULT_MAX_ATTEMPTS,
        );
        let m = &out.instance;
        assert_eq!(m.num_targets(), 2, "targets not minimal: {m:?}");
        assert_eq!(m.k, 2, "k not minimal: {m:?}");
        // Every other knob collapsed to its floor.
        assert_eq!(m.pp, 1);
        assert!((m.resources - 1.0).abs() < 1e-12);
        assert_eq!(m.payoff_delta, 0.0);
        assert_eq!(m.width_factor, 0.0);
        for t in &m.targets {
            assert_eq!(
                *t,
                cubis_game::TargetPayoffs::new(1.0, -1.0, 1.0, -1.0),
                "payoffs not collapsed: {m:?}"
            );
        }
        assert!(out.accepted > 0);
    }

    #[test]
    fn never_returns_invalid_or_passing_instance() {
        let start = CheckInstance::generate(123);
        let out = shrink(&start, |c| c.num_targets() >= 3, 50);
        assert!(out.instance.is_valid());
        assert!(out.instance.num_targets() >= 3);
    }

    #[test]
    fn fixpoint_is_one_step_minimal() {
        let start = CheckInstance::generate(9);
        let pred = |c: &CheckInstance| c.num_targets() >= 2;
        let out = shrink(&start, pred, DEFAULT_MAX_ATTEMPTS);
        // No single further pass keeps the failure.
        for cand in candidates(&out.instance) {
            if cand.is_valid() {
                assert!(!pred(&cand), "not minimal: {cand:?}");
            }
        }
    }

    #[test]
    fn attempt_cap_is_respected() {
        let start = CheckInstance::generate(5);
        let out = shrink(&start, |_| true, 7);
        assert!(out.attempts <= 7);
    }
}
