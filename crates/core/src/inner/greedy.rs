//! Greedy inner maximizer (heuristic ablation backend).
//!
//! Allocates the budget in `1/P` increments, each to the target with
//! the best marginal gain in `g_i` (with one step of lookahead to cope
//! with local flatness). Runs in `O(R·P·T·lookahead)` — much faster than
//! the MILP and simpler than the DP — but `g_i` is non-concave, so the
//! greedy allocation is *not* always optimal; the A-series ablations
//! quantify the gap. Useful as an incumbent generator and as a
//! demonstration of what the paper's exact machinery buys.

use super::{InnerResult, InnerSolver, InnerStats, SolveError};
use crate::problem::RobustProblem;
use crate::transform;
use cubis_behavior::IntervalChoiceModel;

/// Greedy inner maximizer.
#[derive(Debug, Clone, Copy)]
pub struct GreedyInner {
    /// Grid points per unit coverage.
    pub points_per_unit: usize,
    /// Lookahead depth (how many consecutive increments on one target
    /// are evaluated when scoring it); ≥ 1.
    pub lookahead: usize,
}

impl GreedyInner {
    /// Greedy backend with the given resolution and 2-step lookahead.
    pub fn new(points_per_unit: usize) -> Self {
        assert!(points_per_unit > 0, "GreedyInner: points_per_unit must be positive");
        Self { points_per_unit, lookahead: 2 }
    }
}

impl InnerSolver for GreedyInner {
    fn maximize_g<M: IntervalChoiceModel>(
        &self,
        p: &RobustProblem<'_, M>,
        c: f64,
    ) -> Result<InnerResult, SolveError> {
        let t = p.num_targets();
        let pp = self.points_per_unit;
        let step = 1.0 / pp as f64;
        let budget_units = (p.resources() * pp as f64).round() as usize;

        let mut alloc = vec![0usize; t];
        let mut g_now: Vec<f64> = (0..t).map(|i| transform::g(p, i, 0.0, c)).collect();
        let mut evaluations = t;
        for _ in 0..budget_units {
            // Score each target by the best average gain over 1..=L
            // further increments (lookahead escapes shallow plateaus).
            let mut best: Option<(usize, usize, f64)> = None; // (target, steps, gain/step)
            for i in 0..t {
                for l in 1..=self.lookahead {
                    let next_units = alloc[i] + l;
                    if next_units > pp {
                        break;
                    }
                    let g_next = transform::g(p, i, next_units as f64 * step, c);
                    evaluations += 1;
                    let rate = (g_next - g_now[i]) / l as f64;
                    if best.is_none_or(|(_, _, r)| super::improves(rate, r)) {
                        best = Some((i, l, rate));
                    }
                }
            }
            let Some((i, _, _)) = best else { break };
            // Commit a single increment to the winner (re-scoring each
            // round keeps the allocation adaptive).
            alloc[i] += 1;
            g_now[i] = transform::g(p, i, alloc[i] as f64 * step, c);
            evaluations += 1;
        }

        let x: Vec<f64> = alloc.iter().map(|&a| a as f64 * step).collect();
        // A greedy run may overshoot downhill regions; the value it
        // reports is the true G at its allocation.
        let g_value = transform::g_total(p, &x, c);
        Ok(InnerResult {
            g_value,
            x,
            gap: 0.0,
            stats: InnerStats { milp_nodes: 0, lp_iterations: 0, evaluations },
        })
    }

    fn resolution(&self) -> Option<usize> {
        Some(self.points_per_unit)
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inner::DpInner;
    use cubis_behavior::{BoundConvention, SuqrUncertainty, UncertainSuqr};
    use cubis_game::GameGenerator;

    fn fixture(seed: u64) -> (cubis_game::SecurityGame, UncertainSuqr) {
        let game = GameGenerator::new(seed).generate(5, 2.0);
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            0.5,
            BoundConvention::ExactInterval,
        );
        (game, model)
    }

    #[test]
    fn greedy_is_budget_feasible() {
        let (game, model) = fixture(1);
        let p = RobustProblem::new(&game, &model);
        let res = GreedyInner::new(20).maximize_g(&p, 0.0).unwrap();
        assert!(res.x.iter().sum::<f64>() <= game.resources() + 1e-9);
        assert!(res.x.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn greedy_never_beats_dp_and_is_usually_close() {
        let mut total_gap = 0.0;
        for seed in 0..6 {
            let (game, model) = fixture(seed);
            let p = RobustProblem::new(&game, &model);
            for &c in &[-3.0, 0.0, 2.0] {
                let dp = DpInner::new(20).maximize_g(&p, c).unwrap();
                let gr = GreedyInner::new(20).maximize_g(&p, c).unwrap();
                assert!(
                    gr.g_value <= dp.g_value + 1e-9,
                    "greedy beat the exact DP?! seed {seed} c {c}"
                );
                total_gap += dp.g_value - gr.g_value;
            }
        }
        // Heuristic quality: small average gap on these instances.
        assert!(total_gap / 18.0 < 0.5, "mean gap {}", total_gap / 18.0);
    }

    #[test]
    fn greedy_reports_true_g_at_its_point() {
        let (game, model) = fixture(3);
        let p = RobustProblem::new(&game, &model);
        let res = GreedyInner::new(15).maximize_g(&p, -1.0).unwrap();
        assert!((transform::g_total(&p, &res.x, -1.0) - res.g_value).abs() < 1e-12);
    }
}
