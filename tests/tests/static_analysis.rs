//! Tier-1 gate: the `cubis-xtask analyze` static-analysis pass must be
//! clean over the whole workspace, measured against the committed
//! `analyze-baseline.json`.
//!
//! This is the enforcement half of the analyzer (its rule unit tests
//! live in `cubis-xtask` itself): any new deny-severity finding — raw
//! float `==`, library `unwrap`, NaN-hazardous comparator, weakened
//! atomic ordering, unseeded RNG, hash-order output, a lock held
//! across a blocking call, trace-name drift, a crate root without
//! `#![forbid(unsafe_code)]`, an `unsafe` block outside the reactor's
//! audited syscall module — fails `cargo test -q` with the exact
//! `path:line: [RULE]` list, unless the site carries a justified
//! `// cubis:allow(RULE): why`. Warn-severity findings (NUM04,
//! PANIC01) fail unless their fingerprint is in the baseline.
//!
//! The drills below seed one violation per v2 rule (and one silent
//! twin) so the gate cannot rot without this file noticing, and the
//! lexer edge-case tests pin the constructs most likely to desync a
//! hand-rolled scanner: raw strings, nested block comments, char/byte
//! literals carrying `"` or `{`, and suppressions inside macro bodies.

use cubis_xtask::baseline::{gate, Baseline, BASELINE_FILE};
use cubis_xtask::{
    analyze_source, analyze_workspace_full, lexer, report, rules, FileClass, Severity,
    WorkspaceAnalysis,
};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // tests/ sits directly under the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests crate must live inside the workspace")
}

/// Shorthand: analyze a snippet as library code at `rel`.
fn lib_at(rel: &str, src: &str) -> Vec<cubis_xtask::Finding> {
    analyze_source(Path::new(rel), FileClass::Library, src)
}

/// The rule ids of `findings`, in order.
fn rule_ids(findings: &[cubis_xtask::Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------------
// the workspace gate
// ---------------------------------------------------------------------

#[test]
fn workspace_gate_passes_against_committed_baseline() {
    let root = workspace_root();
    let analysis = analyze_workspace_full(root).expect("analyzer walked the workspace");
    let baseline = Baseline::load(root)
        .expect("analyze-baseline.json must parse")
        .expect("analyze-baseline.json must be committed at the workspace root");
    let outcome = gate(analysis.findings, &baseline);
    assert!(
        outcome.passes(),
        "cubis-xtask analyze gate failed: {} deny, {} new warn finding(s):\n{}{}",
        outcome.deny.len(),
        outcome.new_warn.len(),
        outcome
            .deny
            .iter()
            .map(|f| format!("  [deny] {f}\n"))
            .collect::<String>(),
        outcome
            .new_warn
            .iter()
            .map(|f| format!("  [warn] {f}\n"))
            .collect::<String>()
    );
}

#[test]
fn workspace_has_no_deny_findings_at_all() {
    // The baseline only ever absorbs warn-severity findings; deny
    // findings must be absent even before gating.
    let analysis = analyze_workspace_full(workspace_root()).expect("analysis");
    let deny: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .collect();
    assert!(
        deny.is_empty(),
        "deny-severity finding(s) in the workspace:\n{}",
        deny.iter().map(|f| format!("  {f}\n")).collect::<String>()
    );
}

#[test]
fn analyzer_sees_the_solver_crates() {
    // Guard against the gate silently passing because the directory walk
    // broke or the root was mislocated.
    let root = workspace_root();
    assert!(
        root.join("crates/lp/src/simplex.rs").exists(),
        "root mislocated: {root:?}"
    );
    assert!(root.join("crates/xtask/src/lib.rs").exists());
    let analysis = analyze_workspace_full(root).expect("analysis");
    assert!(
        analysis.files_scanned > 50,
        "suspiciously few files scanned: {}",
        analysis.files_scanned
    );
}

#[test]
fn gate_is_live() {
    // The clean-workspace assertion above is only meaningful if the
    // analyzer still fires on bad code; feed it a known-bad snippet.
    let findings = lib_at(
        "crates/demo/src/lib.rs",
        "pub fn f(a: f64) -> f64 { if a == 0.25 { a } else { g().unwrap() } }",
    );
    assert_eq!(rule_ids(&findings), ["NUM01", "NUM02"], "{findings:?}");
}

#[test]
fn machine_readable_reports_render_for_the_real_gate() {
    let root = workspace_root();
    let analysis = analyze_workspace_full(root).expect("analysis");
    let files_scanned = analysis.files_scanned;
    let baseline = Baseline::load(root).expect("parse").expect("committed");
    let outcome = gate(analysis.findings, &baseline);

    let json = report::json_report(&outcome, files_scanned);
    assert_eq!(
        json.get("version").and_then(|v| v.as_u64()),
        Some(report::REPORT_VERSION)
    );
    assert_eq!(json.get("passes").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(
        json.get("files_scanned").and_then(|v| v.as_usize()),
        Some(files_scanned)
    );

    let sarif = report::sarif_report(&outcome);
    assert_eq!(sarif.get("version").and_then(|v| v.as_str()), Some("2.1.0"));
    let runs = sarif
        .get("runs")
        .and_then(|v| v.as_arr())
        .expect("runs array");
    assert_eq!(runs.len(), 1);
}

// ---------------------------------------------------------------------
// seeded-violation drills: each v2 rule fires, and its silent twin
// stays silent
// ---------------------------------------------------------------------

#[test]
fn det02_fires_on_hash_iteration_feeding_output() {
    let findings = lib_at(
        "crates/demo/src/lib.rs",
        "use std::collections::HashMap;\n\
         pub fn dump(m: &HashMap<String, f64>) -> String {\n\
             let mut out = String::new();\n\
             for (k, v) in m.iter() {\n\
                 out.push_str(&format!(\"{k}={v};\"));\n\
             }\n\
             out\n\
         }\n",
    );
    assert_eq!(rule_ids(&findings), ["DET02"], "{findings:?}");
    assert_eq!(findings[0].severity, Severity::Deny);
    assert_eq!(findings[0].scope, "fn dump");
}

#[test]
fn det02_silent_with_btree_recollection_or_no_sink() {
    // Re-collecting through a BTreeMap is the documented mitigation.
    let mitigated = lib_at(
        "crates/demo/src/lib.rs",
        "use std::collections::{BTreeMap, HashMap};\n\
         pub fn dump(m: &HashMap<String, f64>) -> String {\n\
             let sorted: BTreeMap<_, _> = m.iter().collect();\n\
             let mut out = String::new();\n\
             for (k, v) in sorted {\n\
                 out.push_str(&format!(\"{k}={v};\"));\n\
             }\n\
             out\n\
         }\n",
    );
    assert!(mitigated.is_empty(), "{mitigated:?}");
    // Iteration without any formatting/serialization sink is fine too.
    let no_sink = lib_at(
        "crates/demo/src/lib.rs",
        "use std::collections::HashMap;\n\
         pub fn total(m: &HashMap<String, f64>) -> f64 {\n\
             let mut s = 0.0;\n\
             for v in m.values() {\n\
                 s += v;\n\
             }\n\
             s\n\
         }\n",
    );
    assert!(no_sink.is_empty(), "{no_sink:?}");
}

#[test]
fn conc02_fires_on_blocking_call_under_live_guard() {
    let findings = lib_at(
        "crates/demo/src/lib.rs",
        "use std::sync::Mutex;\n\
         pub fn drain(mu: &Mutex<Vec<u8>>, tx: &std::sync::mpsc::Sender<u8>) {\n\
             let g = mu.lock().unwrap_or_else(|e| e.into_inner());\n\
             tx.send(g[0]).ok();\n\
         }\n",
    );
    assert!(
        rule_ids(&findings).contains(&"CONC02"),
        "expected CONC02 in {findings:?}"
    );
}

#[test]
fn conc02_silent_after_explicit_drop() {
    let findings = lib_at(
        "crates/demo/src/lib.rs",
        "use std::sync::Mutex;\n\
         pub fn drain(mu: &Mutex<Vec<u8>>, tx: &std::sync::mpsc::Sender<u8>) {\n\
             let g = mu.lock().unwrap_or_else(|e| e.into_inner());\n\
             let first = g.first().copied().unwrap_or(0);\n\
             drop(g);\n\
             tx.send(first).ok();\n\
         }\n",
    );
    assert!(
        !rule_ids(&findings).contains(&"CONC02"),
        "CONC02 after drop(g): {findings:?}"
    );
}

#[test]
fn num04_fires_in_hot_crates_only() {
    let src = "pub fn quantize(x: f64) -> usize {\n    x.floor() as usize\n}\n";
    let hot = lib_at("crates/lp/src/quant.rs", src);
    assert_eq!(rule_ids(&hot), ["NUM04"], "{hot:?}");
    assert_eq!(hot[0].severity, Severity::Warn);
    // The same cast outside lp/milp/core is not on a solver hot path.
    let cold = lib_at("crates/serve/src/quant.rs", src);
    assert!(cold.is_empty(), "{cold:?}");
    // And a widening cast in a hot crate stays silent.
    let widening = lib_at(
        "crates/lp/src/quant.rs",
        "pub fn widen(n: usize) -> f64 {\n    n as f64\n}\n",
    );
    assert!(widening.is_empty(), "{widening:?}");
}

#[test]
fn panic01_fires_on_variable_indexing_in_loops() {
    let findings = lib_at(
        "crates/milp/src/sum.rs",
        "pub fn total(v: &[f64], n: usize) -> f64 {\n\
             let mut s = 0.0;\n\
             for i in 0..n {\n\
                 s += v[i];\n\
             }\n\
             s\n\
         }\n",
    );
    assert_eq!(rule_ids(&findings), ["PANIC01"], "{findings:?}");
    assert_eq!(findings[0].severity, Severity::Warn);
    assert!(
        findings[0].message.contains("fn `total`") && findings[0].message.contains("`v[…]`"),
        "{}",
        findings[0].message
    );
}

#[test]
fn panic01_silent_on_constant_index_or_outside_loops() {
    let constant = lib_at(
        "crates/milp/src/sum.rs",
        "pub fn first_n(v: &[f64], n: usize) -> f64 {\n\
             let mut s = 0.0;\n\
             for _ in 0..n {\n\
                 s += v[0];\n\
             }\n\
             s\n\
         }\n",
    );
    assert!(constant.is_empty(), "{constant:?}");
    let straight_line = lib_at(
        "crates/milp/src/sum.rs",
        "pub fn pick(v: &[f64], i: usize) -> f64 {\n    v[i]\n}\n",
    );
    assert!(straight_line.is_empty(), "{straight_line:?}");
}

#[test]
fn lint01_fires_on_stale_allow_and_stays_quiet_on_a_live_one() {
    let stale = lib_at(
        "crates/demo/src/lib.rs",
        "// cubis:allow(NUM01): nothing on the next line compares floats\n\
         pub fn f() -> u32 {\n    1\n}\n",
    );
    assert_eq!(rule_ids(&stale), ["LINT01"], "{stale:?}");
    let live = lib_at(
        "crates/demo/src/lib.rs",
        "pub fn f(x: f64) -> bool {\n\
             x == 0.5 // cubis:allow(NUM01): exact sentinel written by this module\n\
         }\n",
    );
    assert!(live.is_empty(), "{live:?}");
}

// ---------------------------------------------------------------------
// cross-file drills: TRC01 and SAFE01 need a whole (fixture) workspace
// ---------------------------------------------------------------------

/// Materialize `files` under a scratch root, analyze, clean up.
fn analyze_fixture(name: &str, files: &[(&str, &str)]) -> WorkspaceAnalysis {
    let root = std::env::temp_dir().join(format!("cubis-sa-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    for (rel, src) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("fixture paths have parents"))
            .expect("mkdir fixture");
        std::fs::write(path, src).expect("write fixture");
    }
    let analysis = analyze_workspace_full(&root).expect("analyze fixture");
    let _ = std::fs::remove_dir_all(&root);
    analysis
}

const FIXTURE_REGISTRY: &str = "//! names\n\
     /// Registered counters.\n\
     pub const COUNTERS: &[(&str, &str)] = &[(\"lp.pivots\", \"pivot steps\")];\n\
     /// Registered spans.\n\
     pub const SPANS: &[(&str, &str)] = &[(\"lp.solve\", \"one LP solve\")];\n";

#[test]
fn trc01_fires_both_directions_on_name_drift() {
    let analysis = analyze_fixture(
        "trc01-drift",
        &[
            ("crates/trace/src/names.rs", FIXTURE_REGISTRY),
            (
                "crates/demo/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 //! demo\n\
                 /// Emit telemetry: `lp.mystery` is not registered, and the\n\
                 /// registered `lp.pivots`/`lp.solve` are never emitted.\n\
                 pub fn run(t: &impl Recorder) {\n\
                     t.counter(\"lp.mystery\", 1);\n\
                 }\n",
            ),
        ],
    );
    let trc: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "TRC01")
        .collect();
    let messages: Vec<&str> = trc.iter().map(|f| f.message.as_str()).collect();
    assert!(
        messages
            .iter()
            .any(|m| m.contains("`lp.mystery`") && m.contains("not registered")),
        "missing unregistered-emission finding: {messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("`lp.pivots`") && m.contains("no library emission")),
        "missing dead-counter finding: {messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("`lp.solve`") && m.contains("no library emission")),
        "missing dead-span finding: {messages:?}"
    );
}

#[test]
fn trc01_silent_when_registry_and_emissions_agree() {
    let analysis = analyze_fixture(
        "trc01-clean",
        &[
            ("crates/trace/src/names.rs", FIXTURE_REGISTRY),
            (
                "crates/demo/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 //! demo\n\
                 /// Emit exactly the registered names.\n\
                 pub fn run(t: &impl Recorder) {\n\
                     t.counter(\"lp.pivots\", 1);\n\
                     t.span(\"lp.solve\");\n\
                 }\n",
            ),
        ],
    );
    let trc: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "TRC01")
        .collect();
    assert!(trc.is_empty(), "{trc:?}");
}

#[test]
fn safe01_fires_on_crate_root_without_forbid() {
    let analysis = analyze_fixture(
        "safe01",
        &[
            (
                "crates/unsound/src/lib.rs",
                "//! no forbid attribute here\npub fn f() -> u32 {\n    1\n}\n",
            ),
            (
                "crates/sound/src/lib.rs",
                "#![forbid(unsafe_code)]\n//! sound\npub fn f() -> u32 {\n    1\n}\n",
            ),
        ],
    );
    let safe: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "SAFE01")
        .collect();
    assert_eq!(safe.len(), 1, "{safe:?}");
    assert_eq!(safe[0].path, Path::new("crates/unsound/src/lib.rs"));
    assert_eq!(safe[0].severity, Severity::Deny);
}

#[test]
fn safe01_exempts_the_reactor_root_which_scopes_unsafe_itself() {
    // The reactor crate root cannot carry `#![forbid(unsafe_code)]` —
    // it must re-allow the keyword for its audited sys module — so
    // SAFE01 skips exactly that one path and SAFE02 takes over.
    let analysis = analyze_fixture(
        "safe01-reactor",
        &[(
            "crates/reactor/src/lib.rs",
            "#![deny(unsafe_code)]\n//! reactor\npub fn f() -> u32 {\n    1\n}\n",
        )],
    );
    let safe: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "SAFE01")
        .collect();
    assert!(safe.is_empty(), "{safe:?}");
}

#[test]
fn safe02_confines_unsafe_to_the_audited_sys_module() {
    // An `unsafe` block in an ordinary library file fires; the same
    // construct inside the syscall module with a nearby
    // `// cubis:sys-audit` marker is the one sanctioned home.
    let analysis = analyze_fixture(
        "safe02",
        &[
            (
                "crates/demo/src/worker.rs",
                "//! demo worker\n\
                 pub fn peek(p: *const u32) -> u32 {\n\
                     unsafe { *p }\n\
                 }\n",
            ),
            (
                "crates/reactor/src/sys.rs",
                "//! syscall shim\n\
                 // cubis:sys-audit: fd is owned by the caller and stays open\n\
                 pub fn close(fd: i32) -> i32 {\n\
                     unsafe { libc_close(fd) }\n\
                 }\n",
            ),
        ],
    );
    let safe: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "SAFE02")
        .collect();
    assert_eq!(safe.len(), 1, "{safe:?}");
    assert_eq!(safe[0].path, Path::new("crates/demo/src/worker.rs"));
    assert_eq!(safe[0].line, 3);
    assert_eq!(safe[0].severity, Severity::Deny);
    assert!(safe[0].message.contains("audited syscall module"));
}

#[test]
fn safe02_requires_a_nearby_audit_marker_inside_the_sys_module() {
    // Even the sanctioned module must justify each site: a marker
    // further above than the window does not count.
    let padding = "\n".repeat(rules::SYS_AUDIT_WINDOW as usize + 1);
    let src = format!(
        "//! syscall shim\n\
         // cubis:sys-audit: too far away to cover the site below\n\
         {padding}pub fn poke(p: *mut u32) {{\n\
             unsafe {{ *p = 0 }}\n\
         }}\n"
    );
    let analysis = analyze_fixture("safe02-marker", &[("crates/reactor/src/sys.rs", src.as_str())]);
    let safe: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "SAFE02")
        .collect();
    assert_eq!(safe.len(), 1, "{safe:?}");
    assert!(safe[0].message.contains("cubis:sys-audit"), "{safe:?}");
}

// ---------------------------------------------------------------------
// lexer edge cases
// ---------------------------------------------------------------------

#[test]
fn raw_strings_neither_hide_code_nor_smuggle_allows() {
    // The allow-shaped text lives inside a raw string: it must not
    // suppress the real finding two lines down.
    let findings = lib_at(
        "crates/demo/src/lib.rs",
        "pub fn f(y: f64) -> bool {\n\
             let _doc = r#\"x == 0.5 // cubis:allow(NUM01): not a comment\"#;\n\
             y == 0.5\n\
         }\n",
    );
    assert_eq!(rule_ids(&findings), ["NUM01"], "{findings:?}");
    assert_eq!(findings[0].line, 3);
}

#[test]
fn nested_block_comments_terminate_correctly() {
    // Rust block comments nest; a scanner that stops at the first `*/`
    // would treat the real comparison below as commented out — or the
    // commented one as live.
    let findings = lib_at(
        "crates/demo/src/lib.rs",
        "/* outer /* inner */ still comment: x == 0.5 */\n\
         pub fn f(y: f64) -> bool {\n\
             y == 0.5\n\
         }\n",
    );
    assert_eq!(rule_ids(&findings), ["NUM01"], "{findings:?}");
    assert_eq!(findings[0].line, 3);
}

#[test]
fn char_and_byte_literals_with_quote_and_brace_do_not_desync() {
    // A `'"'` misread as opening a string (or `'{'` as a scope brace)
    // would both corrupt the token stream and skew the scope tree.
    let findings = lib_at(
        "crates/demo/src/lib.rs",
        "pub fn f(y: f64) -> bool {\n\
             let _q = '\"';\n\
             let _open = '{';\n\
             let _byte = b'{';\n\
             y == 0.5\n\
         }\n",
    );
    assert_eq!(rule_ids(&findings), ["NUM01"], "{findings:?}");
    assert_eq!(
        findings[0].scope, "fn f",
        "scope tree desynced: {findings:?}"
    );
}

#[test]
fn allows_inside_macro_bodies_still_suppress() {
    // macro_rules! bodies are just tokens to the lexer; a suppression
    // comment inside one must behave exactly like ordinary code.
    let suppressed = lib_at(
        "crates/demo/src/lib.rs",
        "macro_rules! exact {\n\
             ($x:expr) => {\n\
                 // cubis:allow(NUM01): macro expands an exact sentinel compare\n\
                 $x == 0.5\n\
             };\n\
         }\n",
    );
    assert!(suppressed.is_empty(), "{suppressed:?}");
    let unsuppressed = lib_at(
        "crates/demo/src/lib.rs",
        "macro_rules! exact {\n\
             ($x:expr) => {\n\
                 $x == 0.5\n\
             };\n\
         }\n",
    );
    assert_eq!(rule_ids(&unsuppressed), ["NUM01"], "{unsuppressed:?}");
}

#[test]
fn lexer_reports_allow_rule_lists_verbatim() {
    let lexed =
        lexer::lex("// cubis:allow(NUM01, CONC02): two rules, one justification\nlet x = 1;\n");
    assert_eq!(lexed.allows.len(), 1);
    assert_eq!(lexed.allows[0].rules, ["NUM01", "CONC02"]);
    assert_eq!(lexed.allows[0].applies_to, 2);
    assert!(!lexed.allows[0].justification.is_empty());
}

// ---------------------------------------------------------------------
// fingerprints and the baseline format
// ---------------------------------------------------------------------

#[test]
fn fingerprints_survive_line_shifts_but_not_scope_changes() {
    let src = "pub fn quantize(x: f64) -> usize {\n    x.floor() as usize\n}\n";
    let orig = lib_at("crates/lp/src/quant.rs", src);
    let shifted = lib_at(
        "crates/lp/src/quant.rs",
        &format!("//! padded with a leading doc comment\n\n\n{src}"),
    );
    assert_eq!(orig.len(), 1);
    assert_eq!(shifted.len(), 1);
    assert_ne!(orig[0].line, shifted[0].line, "the site did move");
    assert_eq!(
        orig[0].fingerprint, shifted[0].fingerprint,
        "fingerprints must be line-number independent"
    );
    // Moving the site into a different function is a different finding.
    let renamed = lib_at(
        "crates/lp/src/quant.rs",
        "pub fn requantize(x: f64) -> usize {\n    x.floor() as usize\n}\n",
    );
    assert_ne!(orig[0].fingerprint, renamed[0].fingerprint);
}

#[test]
fn committed_baseline_round_trips_and_contains_only_warn_rules() {
    let text = std::fs::read_to_string(workspace_root().join(BASELINE_FILE))
        .expect("analyze-baseline.json is committed");
    let baseline = Baseline::parse(&text).expect("baseline parses");
    assert!(
        !baseline.entries.is_empty(),
        "baseline should carry the known debt"
    );
    for entry in baseline.entries.values() {
        assert_eq!(
            rules::severity(&entry.rule),
            Severity::Warn,
            "deny-severity rule {} must never be baselined",
            entry.rule
        );
    }
    // Round-trip: parse(to_json) is the identity on the entry set.
    let reparsed = Baseline::parse(&baseline.to_json()).expect("re-parse");
    assert_eq!(reparsed.entries.len(), baseline.entries.len());
}

// ---------------------------------------------------------------------
// docs and registry stay in lockstep
// ---------------------------------------------------------------------

#[test]
fn design_doc_rule_table_matches_rule_docs() {
    let design = std::fs::read_to_string(workspace_root().join("DESIGN.md"))
        .expect("DESIGN.md is committed");
    // Every rule the engine knows appears as a table row...
    for (rule, _) in rules::RULE_DOCS {
        assert!(
            design.contains(&format!("| {rule} |")),
            "rule {rule} missing from the DESIGN.md rule table"
        );
    }
    // ...and every rule-shaped table row names a rule the engine knows
    // (an id is 3+ uppercase letters followed by two digits).
    for line in design.lines() {
        let Some(cell) = line.strip_prefix("| ") else {
            continue;
        };
        let Some((id, _)) = cell.split_once(' ') else {
            continue;
        };
        let looks_like_rule = id.len() >= 5
            && id.ends_with(|c: char| c.is_ascii_digit())
            && id
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit());
        if looks_like_rule {
            assert!(
                rules::RULE_DOCS.iter().any(|(rule, _)| *rule == id),
                "DESIGN.md documents unknown rule {id}"
            );
        }
    }
}

#[test]
fn static_registry_parse_matches_cubis_trace_names() {
    // TRC01's statically-parsed view of crates/trace/src/names.rs must
    // agree with what the compiled crate actually exports — otherwise
    // the analyzer checks a phantom registry.
    let src = std::fs::read_to_string(workspace_root().join(cubis_xtask::REGISTRY_PATH))
        .expect("registry source readable");
    let lexed = lexer::lex(&src);
    let (counters, spans) =
        rules::parse_name_registry(&lexed.tokens).expect("registry tables parse");
    let parsed_counters: Vec<&str> = counters.iter().map(|(n, _)| n.as_str()).collect();
    let parsed_spans: Vec<&str> = spans.iter().map(|(n, _)| n.as_str()).collect();
    let real_counters: Vec<&str> = cubis_trace::names::COUNTERS
        .iter()
        .map(|&(n, _)| n)
        .collect();
    let real_spans: Vec<&str> = cubis_trace::names::SPANS.iter().map(|&(n, _)| n).collect();
    assert_eq!(parsed_counters, real_counters);
    assert_eq!(parsed_spans, real_spans);
}
