//! Inner maximizers for the per-binary-search-step problem
//!
//! ```text
//! max_{x ∈ X}  G_c(x) = Σ_i min(f1_i(x_i), f2_i(x_i))
//! ```
//!
//! (equations 19–21 after the Proposition-3 substitution). Two
//! interchangeable backends:
//!
//! * [`MilpInner`] — the paper's route: piecewise-linearize `f1, f2`
//!   with `K` segments and solve the MILP (33–40);
//! * [`DpInner`] — a dynamic program exact on a coverage grid,
//!   evaluating the *true* `f1, f2` (no linearization); used for
//!   cross-validation, warm starts, and the high-resolution reference
//!   in the bound experiments.

mod dp;
mod greedy;
mod milp;
mod route;
mod scale;

pub use dp::DpInner;
pub use greedy::GreedyInner;
pub use milp::MilpInner;
pub use route::{InnerEngine, InnerPolicy, RoutedInner, AUTO_SCALE_THRESHOLD};
pub use scale::{ScaleCertificate, ScaleInner};

use crate::problem::RobustProblem;
use cubis_behavior::IntervalChoiceModel;

/// Shared incumbent-update rule for the inner maximizers: `candidate`
/// replaces `incumbent` only when strictly greater under IEEE-754
/// `total_cmp`. Every backend (DP budget/allocation scans, greedy
/// rate selection) routes its comparisons through this so tie-breaking
/// is bitwise identical across solvers — including the NaN cases,
/// where the backends used to disagree: `v > best` silently skipped a
/// NaN candidate while greedy's first-candidate path accepted one.
/// Under `total_cmp`, a positive NaN outranks `+∞` and deterministically
/// poisons the result (a loud failure the cubis-check oracles can
/// catch), and a negative NaN never replaces anything.
pub(crate) fn improves(candidate: f64, incumbent: f64) -> bool {
    candidate.total_cmp(&incumbent) == std::cmp::Ordering::Greater
}

/// How the resource budget enters the inner problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetMode {
    /// `Σ x_i ≤ R` — the paper's constraint (37).
    #[default]
    AtMost,
    /// `Σ x_i = R` — the strategy-set definition of Section II.
    Exact,
}

/// Result of one inner maximization.
#[derive(Debug, Clone)]
pub struct InnerResult {
    /// The achieved objective value. For [`MilpInner`] this is the
    /// *approximated* `Ḡ_c(x)` (what the paper's feasibility check
    /// uses); for [`DpInner`] it is the true `G_c(x)` on the grid.
    pub g_value: f64,
    /// The maximizing coverage vector.
    pub x: Vec<f64>,
    /// Certified optimality slack of this probe in utility (`c`)
    /// units: the true grid-restricted optimum shifts the feasibility
    /// threshold by at most this much. Exact backends ([`MilpInner`],
    /// [`DpInner`], [`GreedyInner`]) report `0.0`; [`ScaleInner`]
    /// derives it from its concave-envelope certificate.
    pub gap: f64,
    /// Backend effort counters.
    pub stats: InnerStats,
}

/// Effort counters accumulated by the CUBIS driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct InnerStats {
    /// Branch-and-bound nodes (0 for DP).
    pub milp_nodes: usize,
    /// Simplex iterations (0 for DP).
    pub lp_iterations: usize,
    /// Function (f1/f2) evaluations.
    pub evaluations: usize,
}

impl InnerStats {
    /// Accumulate another step's counters.
    pub fn add(&mut self, other: InnerStats) {
        self.milp_nodes += other.milp_nodes;
        self.lp_iterations += other.lp_iterations;
        self.evaluations += other.evaluations;
    }
}

/// Errors from an inner solve.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The MILP backend failed (numerics or node budget).
    Milp(String),
    /// The per-step problem was reported infeasible, which contradicts
    /// the theory (G is always finite over X) — indicates a bug or
    /// numerical breakdown.
    UnexpectedInfeasible {
        /// The utility value at which it happened.
        c: f64,
    },
    /// The cooperative [`crate::Deadline`] expired between
    /// binary-search probes. The solve stopped cleanly: the carried
    /// bounds are the incumbent interval at expiry (every completed
    /// probe is still exact), so callers can report partial progress
    /// instead of spinning past their budget.
    DeadlineExceeded {
        /// Last feasible utility value reached before expiry (the
        /// search-range low when the anchor probe never ran).
        lb: f64,
        /// First infeasible utility value (the search-range high until
        /// some midpoint probe fails).
        ub: f64,
        /// Binary-search steps completed before expiry.
        binary_steps: usize,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Milp(m) => write!(f, "MILP backend failure: {m}"),
            SolveError::UnexpectedInfeasible { c } => {
                write!(f, "inner problem unexpectedly infeasible at c = {c}")
            }
            SolveError::DeadlineExceeded { lb, ub, binary_steps } => {
                write!(
                    f,
                    "deadline exceeded after {binary_steps} binary-search step(s); \
                     incumbent bounds [{lb}, {ub}]"
                )
            }
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod improves_tests {
    use super::improves;

    #[test]
    fn strictly_greater_replaces() {
        assert!(improves(2.0, 1.0));
        assert!(!improves(1.0, 1.0));
        assert!(!improves(1.0, 2.0));
        assert!(improves(0.0, f64::NEG_INFINITY));
    }

    #[test]
    fn nan_ordering_is_deterministic() {
        // A positive NaN outranks everything (loud poisoning)…
        assert!(improves(f64::NAN, f64::INFINITY));
        // …and once the incumbent is NaN, nothing finite dislodges it.
        assert!(!improves(f64::INFINITY, f64::NAN));
        assert!(!improves(f64::NAN, f64::NAN));
        // A negative NaN never replaces anything.
        assert!(!improves(-f64::NAN, f64::NEG_INFINITY));
    }

    #[test]
    fn signed_zero_tie_break_is_fixed() {
        // total_cmp orders −0.0 < +0.0, so the rule is deterministic
        // even on signed-zero ties (where `>` would see equality).
        assert!(improves(0.0, -0.0));
        assert!(!improves(-0.0, 0.0));
    }
}

/// A backend that maximizes `G_c` over the coverage polytope.
pub trait InnerSolver {
    /// Solve `max_x G_c(x)` for the given utility value `c`.
    fn maximize_g<M: IntervalChoiceModel>(
        &self,
        p: &RobustProblem<'_, M>,
        c: f64,
    ) -> Result<InnerResult, SolveError>;

    /// Decide the sign of `max_x G_c(x)` (Proposition 2's feasibility
    /// test). The default fully maximizes; backends may terminate as
    /// soon as the sign is certified — the returned `g_value` is then a
    /// witness value (`≥ 0` iff feasible), not necessarily the optimum.
    /// `tol` is the driver's feasibility slack around zero.
    fn feasibility_g<M: IntervalChoiceModel>(
        &self,
        p: &RobustProblem<'_, M>,
        c: f64,
        _tol: f64,
    ) -> Result<InnerResult, SolveError> {
        self.maximize_g(p, c)
    }

    /// [`InnerSolver::feasibility_g`] with a cross-probe warm state.
    ///
    /// Backends that can exploit the state (cached breakpoint grids,
    /// the previous probe's incumbent, a transferred bound certificate)
    /// override this; the warm result must be **bitwise identical** to
    /// the cold [`InnerSolver::feasibility_g`] on the probe's decisive
    /// outputs — a `cubis-check` oracle enforces this, so warm state may
    /// only skip redundant model evaluations and prune search, never
    /// change arithmetic. The default ignores the state.
    fn feasibility_g_warm<M: IntervalChoiceModel>(
        &self,
        p: &RobustProblem<'_, M>,
        c: f64,
        tol: f64,
        _warm: &mut crate::warm::WarmState,
    ) -> Result<InnerResult, SolveError> {
        self.feasibility_g(p, c, tol)
    }

    /// The approximation resolution (the paper's `K`), if applicable.
    fn resolution(&self) -> Option<usize> {
        None
    }

    /// Short stable backend name used in recorded inner-solve events
    /// (see [`cubis_trace::InnerSolveEvent`]).
    fn name(&self) -> &'static str {
        "inner"
    }

    /// Attach an observability recorder to any sub-solvers this backend
    /// owns. The driver records its own binary-step and inner-solve
    /// events separately, so the default (for backends without
    /// sub-solvers, like the DP and greedy routes) does nothing.
    fn attach_recorder(&mut self, _recorder: &cubis_trace::SharedRecorder) {}
}
