//! Multi-start projected gradient ascent over the coverage polytope —
//! the stand-in for the "generic non-convex solver (e.g. Fmincon)" the
//! paper compares against.
//!
//! The objective is any black-box function of the coverage vector; for
//! the robust problem we plug in the *exact* worst-case oracle, so this
//! baseline optimizes the true maximin objective directly (no
//! dualization, no linearization) — just slowly and only to a local
//! optimum per start. Gradients are forward differences; steps use
//! Armijo backtracking; each start runs independently (rayon).

use cubis_behavior::IntervalChoiceModel;
use cubis_core::RobustProblem;
use cubis_game::{project_capped_simplex, SecurityGame};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Options for the projected-gradient solver.
#[derive(Debug, Clone)]
pub struct NonconvexOptions {
    /// Number of random restarts.
    pub starts: usize,
    /// Gradient iterations per start.
    pub max_iters: usize,
    /// Initial step size.
    pub step0: f64,
    /// Finite-difference step.
    pub fd_step: f64,
    /// Stop when the iterate moves less than this.
    pub tol: f64,
    /// RNG seed for the restarts.
    pub seed: u64,
    /// Run restarts on the rayon pool.
    pub parallel: bool,
    /// Observability sink. Disabled by default; when enabled,
    /// [`maximize_over_coverage`] emits a `pg.solve` span plus
    /// `pg.starts` and `pg.iterations` counters per call.
    pub recorder: cubis_trace::SharedRecorder,
}

impl Default for NonconvexOptions {
    fn default() -> Self {
        Self {
            starts: 16,
            max_iters: 200,
            step0: 0.5,
            fd_step: 1e-6,
            tol: 1e-8,
            seed: 0,
            parallel: true,
            recorder: cubis_trace::SharedRecorder::null(),
        }
    }
}

/// Maximize an arbitrary objective over
/// `{0 ≤ x ≤ 1, Σ x = R}` by multi-start projected gradient ascent.
/// Returns the best `(x, value)` across starts.
pub fn maximize_over_coverage<F>(
    t: usize,
    resources: f64,
    objective: F,
    opts: &NonconvexOptions,
) -> (Vec<f64>, f64)
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    assert!(t > 0 && opts.starts > 0, "maximize_over_coverage: empty search");
    let _span = opts.recorder.span("pg.solve");
    let run_start = |s: usize| -> (Vec<f64>, f64, usize) {
        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed.wrapping_add(s as u64));
        let x0: Vec<f64> = if s == 0 {
            // First start from the uniform strategy (good neutral seed).
            cubis_game::uniform_coverage(t, resources)
        } else {
            let raw: Vec<f64> = (0..t).map(|_| rng.gen_range(-0.5..1.5)).collect();
            project_capped_simplex(&raw, resources)
        };
        ascend(x0, resources, &objective, opts)
    };
    let results: Vec<(Vec<f64>, f64, usize)> = if opts.parallel {
        (0..opts.starts).into_par_iter().map(run_start).collect()
    } else {
        (0..opts.starts).map(run_start).collect()
    };
    if opts.recorder.enabled() {
        opts.recorder.counter("pg.starts", opts.starts as u64);
        let iters: usize = results.iter().map(|r| r.2).sum();
        opts.recorder.counter("pg.iterations", iters as u64);
    }
    results
        .into_iter()
        .map(|(x, v, _)| (x, v))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        // cubis:allow(NUM02): non-empty by the `opts.starts > 0` assert
        // at the top of this function.
        .expect("at least one start")
}

/// One projected-gradient start; returns `(x, f(x), iterations used)`.
fn ascend<F: Fn(&[f64]) -> f64>(
    mut x: Vec<f64>,
    resources: f64,
    objective: &F,
    opts: &NonconvexOptions,
) -> (Vec<f64>, f64, usize) {
    let t = x.len();
    let mut fx = objective(&x);
    let mut iters = 0usize;
    for _ in 0..opts.max_iters {
        iters += 1;
        // Forward-difference gradient (projected afterwards, so the raw
        // coordinate gradient is fine).
        let mut grad = vec![0.0; t];
        for i in 0..t {
            let mut xp = x.clone();
            xp[i] = (xp[i] + opts.fd_step).min(1.0);
            let h = xp[i] - x[i];
            if h > 0.0 {
                grad[i] = (objective(&xp) - fx) / h;
            } else {
                // At the cap: probe downward.
                let mut xm = x.clone();
                xm[i] -= opts.fd_step;
                grad[i] = (fx - objective(&xm)) / opts.fd_step;
            }
        }
        // Armijo backtracking on the projected step.
        let mut step = opts.step0;
        let mut moved = false;
        for _ in 0..30 {
            let cand: Vec<f64> =
                x.iter().zip(&grad).map(|(xi, gi)| xi + step * gi).collect();
            let cand = project_capped_simplex(&cand, resources);
            let fc = objective(&cand);
            if fc > fx + 1e-12 {
                let delta: f64 =
                    cand.iter().zip(&x).map(|(a, b)| (a - b).abs()).sum();
                x = cand;
                fx = fc;
                moved = delta > opts.tol;
                break;
            }
            step *= 0.5;
        }
        if !moved {
            break;
        }
    }
    (x, fx, iters)
}

/// Maximize the exact worst-case utility of the robust problem by
/// multi-start projected gradient — the Fmincon-style comparator.
pub fn solve_nonconvex<M: IntervalChoiceModel + Sync>(
    game: &SecurityGame,
    model: &M,
    opts: &NonconvexOptions,
) -> Vec<f64> {
    let prob = RobustProblem::new(game, model);
    let (x, _) = maximize_over_coverage(
        game.num_targets(),
        game.resources(),
        |xs| prob.worst_case(xs).utility,
        opts,
    );
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubis_behavior::{BoundConvention, SuqrUncertainty, UncertainSuqr};
    use cubis_game::GameGenerator;

    #[test]
    fn recovers_quadratic_optimum() {
        // max −Σ (x_i − a_i)² over the simplex with a feasible a: optimum a.
        let a = [0.3, 0.5, 0.2];
        let obj = |x: &[f64]| -> f64 {
            -x.iter().zip(&a).map(|(xi, ai)| (xi - ai) * (xi - ai)).sum::<f64>()
        };
        let opts = NonconvexOptions { starts: 4, ..Default::default() };
        let (x, v) = maximize_over_coverage(3, 1.0, obj, &opts);
        assert!(v > -1e-6, "value {v}, x {x:?}");
        for (xi, ai) in x.iter().zip(&a) {
            assert!((xi - ai).abs() < 1e-3);
        }
    }

    #[test]
    fn respects_caps() {
        // Optimum wants everything on coordinate 0 but x ≤ 1 caps it.
        let obj = |x: &[f64]| x[0];
        let opts = NonconvexOptions { starts: 2, ..Default::default() };
        let (x, _) = maximize_over_coverage(3, 2.0, obj, &opts);
        assert!((x[0] - 1.0).abs() < 1e-6);
        assert!((x.iter().sum::<f64>() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn deterministic_given_seed_when_sequential() {
        let game = GameGenerator::new(60).generate(4, 1.0);
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            0.3,
            BoundConvention::ExactInterval,
        );
        let opts = NonconvexOptions {
            starts: 3,
            max_iters: 40,
            parallel: false,
            ..Default::default()
        };
        let a = solve_nonconvex(&game, &model, &opts);
        let b = solve_nonconvex(&game, &model, &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn improves_on_uniform_worst_case() {
        let game = GameGenerator::new(61).generate(5, 2.0);
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            0.5,
            BoundConvention::ExactInterval,
        );
        let prob = cubis_core::RobustProblem::new(&game, &model);
        let uniform = cubis_game::uniform_coverage(5, 2.0);
        let opts = NonconvexOptions { starts: 8, max_iters: 120, ..Default::default() };
        let x = solve_nonconvex(&game, &model, &opts);
        assert!(
            prob.worst_case(&x).utility >= prob.worst_case(&uniform).utility - 1e-9
        );
    }
}
