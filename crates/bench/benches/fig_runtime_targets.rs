//! **F3 bench** — the efficiency claim: CUBIS (MILP/DP) vs the
//! multi-start projected-gradient comparator, across game sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cubis_bench::instance;
use cubis_core::{Cubis, DpInner, MilpInner, RobustProblem};
use cubis_solvers::{solve_nonconvex, NonconvexOptions};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    cubis_eval::experiments::runtime_targets::run(cubis_eval::experiments::Profile::Quick)
        .expect("experiment failed")
        .print();

    let mut g = c.benchmark_group("fig_runtime_targets");
    for &t in &[2usize, 5, 10, 20] {
        let r = (t as f64 / 4.0).ceil();
        let (game, model) = instance(0, t, r, 0.5);
        g.bench_with_input(BenchmarkId::new("cubis_milp_k5", t), &t, |b, _| {
            b.iter(|| {
                let p = RobustProblem::new(black_box(&game), black_box(&model));
                Cubis::new(MilpInner::new(5)).with_epsilon(1e-2).solve(&p).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("cubis_dp100", t), &t, |b, _| {
            b.iter(|| {
                let p = RobustProblem::new(black_box(&game), black_box(&model));
                Cubis::new(DpInner::new(100)).with_epsilon(1e-2).solve(&p).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("multistart_pg", t), &t, |b, _| {
            let opts = NonconvexOptions {
                starts: 12,
                max_iters: 150,
                parallel: false,
                ..Default::default()
            };
            b.iter(|| solve_nonconvex(black_box(&game), black_box(&model), &opts))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
