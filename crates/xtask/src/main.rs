//! Command-line entry point: `cargo run -p cubis-xtask -- <command>`.
//!
//! * `analyze [--root <dir>]` — run the numeric-safety pass over the
//!   workspace; exit 1 if any unsuppressed finding remains.
//! * `rules` — print the rule table.
//! * `trace-report <journal.json>` — render a recorded solve journal
//!   (see the `cubis-trace` crate) as a per-phase time/count digest.
//! * `ci [--root <dir>]` — the single local pre-merge gate: chains
//!   `cargo fmt --check`, the analyze pass, `cargo test -q`,
//!   `cargo doc --no-deps` with warnings denied, and `cargo test --doc`.

use cubis_xtask::{analyze_workspace, find_workspace_root, rules::RULE_DOCS};
use std::path::PathBuf;
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match cmd {
        "analyze" => match resolve_root(&args) {
            Ok(root) => analyze(&root),
            Err(e) => usage(&e),
        },
        "ci" => match resolve_root(&args) {
            Ok(root) => ci(&root),
            Err(e) => usage(&e),
        },
        "rules" => {
            for (id, doc) in RULE_DOCS {
                println!("{id:7} {doc}");
            }
            ExitCode::SUCCESS
        }
        "trace-report" => match args.get(1) {
            Some(path) => trace_report(path),
            None => usage("trace-report requires a journal path"),
        },
        _ => usage("expected a subcommand: analyze | rules | trace-report | ci"),
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("cubis-xtask: {err}");
    eprintln!(
        "usage: cubis-xtask <analyze|rules|ci> [--root <workspace-dir>]\n       \
         cubis-xtask trace-report <journal.json>"
    );
    ExitCode::from(2)
}

fn trace_report(path: &str) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("cubis-xtask trace-report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let journal = match cubis_trace::Journal::from_json(&src) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cubis-xtask trace-report: {path} is not a journal: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", cubis_xtask::trace_report::render_report(&journal));
    if cubis_xtask::trace_report::check_trajectory(&journal).ok() {
        ExitCode::SUCCESS
    } else {
        eprintln!("cubis-xtask trace-report: trajectory checks VIOLATED");
        ExitCode::FAILURE
    }
}

/// `--root <dir>` if given, else the enclosing workspace of the current
/// directory (falling back to this crate's own workspace when invoked
/// via `cargo run` from elsewhere).
fn resolve_root(args: &[String]) -> Result<PathBuf, String> {
    if let Some(pos) = args.iter().position(|a| a == "--root") {
        let dir = args
            .get(pos + 1)
            .ok_or_else(|| "--root requires a directory argument".to_string())?;
        return Ok(PathBuf::from(dir));
    }
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    find_workspace_root(&cwd)
        .or_else(|| {
            // When run via `cargo run` from outside the tree, fall back to
            // the workspace this binary was built from.
            option_env!("CARGO_MANIFEST_DIR")
                .and_then(|dir| find_workspace_root(&PathBuf::from(dir)))
        })
        .ok_or_else(|| "no enclosing Cargo workspace found; pass --root".to_string())
}

fn analyze(root: &PathBuf) -> ExitCode {
    if analyze_gate(root) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Run the pass and report; true when the workspace is clean.
fn analyze_gate(root: &PathBuf) -> bool {
    match analyze_workspace(root) {
        Ok(findings) if findings.is_empty() => {
            println!("cubis-xtask analyze: workspace clean");
            true
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("cubis-xtask analyze: {} finding(s)", findings.len());
            false
        }
        Err(e) => {
            eprintln!("cubis-xtask analyze: io error: {e}");
            false
        }
    }
}

fn ci(root: &PathBuf) -> ExitCode {
    println!("[1/5] cargo fmt --check");
    if !run_cargo(root, &["fmt", "--", "--check"], &[]) {
        return ExitCode::FAILURE;
    }
    println!("[2/5] cubis-xtask analyze");
    if !analyze_gate(root) {
        return ExitCode::FAILURE;
    }
    println!("[3/5] cargo test -q");
    if !run_cargo(root, &["test", "-q"], &[]) {
        return ExitCode::FAILURE;
    }
    println!("[4/5] cargo doc --no-deps (warnings denied)");
    if !run_cargo(root, &["doc", "--no-deps"], &[("RUSTDOCFLAGS", "-D warnings")]) {
        return ExitCode::FAILURE;
    }
    println!("[5/5] cargo test --doc");
    if !run_cargo(root, &["test", "--doc", "-q"], &[]) {
        return ExitCode::FAILURE;
    }
    println!("ci: all gates passed");
    ExitCode::SUCCESS
}

fn run_cargo(root: &PathBuf, args: &[&str], envs: &[(&str, &str)]) -> bool {
    match Command::new("cargo").args(args).envs(envs.iter().copied()).current_dir(root).status() {
        Ok(status) if status.success() => true,
        Ok(status) => {
            eprintln!("ci: `cargo {}` failed with {status}", args.join(" "));
            false
        }
        Err(e) => {
            eprintln!("ci: could not spawn cargo: {e}");
            false
        }
    }
}
