//! The `cubis-xtask loadgen` report: `BENCH_serve.json`.
//!
//! Same discipline as the solve harness ([`crate::harness`]): a
//! versioned document at the repo root, serialized with `cubis-trace`'s
//! dependency-free JSON codec, with a [`validate`](ServeBenchReport::validate)
//! gate the xtask runs after writing *and* the CI/tests run after
//! reading — a report that parses but violates its own invariants
//! (zero requests, a duplicate-heavy mix with no cache hits, missing
//! quantiles) fails loudly rather than silently pinning garbage.
//!
//! Comparisons across commits read the same file from two checkouts:
//! `throughput_rps` is the headline number; `hit_rate` and the
//! latency quantiles explain *why* it moved (cache efficacy vs. raw
//! solve latency).

use cubis_trace::json::{self, JsonValue};

/// Version tag in `BENCH_serve.json`; bump on schema changes.
///
/// v2 (the reactor serve layer): splits `cache_hits` by tier
/// (`tier1_hits` hot LRU, `tier2_hits` persistent log), and records the
/// transport's keep-alive efficacy (`keepalive_reused`,
/// `retries_429`). A v1 document no longer parses — the per-tier split
/// is what the regression gates pin, so silently defaulting it to zero
/// would let a dead persistent tier look healthy.
pub const SERVE_FORMAT_VERSION: u64 = 2;

/// The full `BENCH_serve.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchReport {
    /// Schema version ([`SERVE_FORMAT_VERSION`]).
    pub format_version: u64,
    /// Closed-loop client threads the run used.
    pub clients: u64,
    /// Requests issued per client.
    pub requests_per_client: u64,
    /// Configured probability of re-sending a pooled instance.
    pub duplicate_rate: f64,
    /// Master seed of the instance mix.
    pub seed: u64,
    /// Requests attempted in total.
    pub requests: u64,
    /// 200s served from the cache (either tier).
    pub cache_hits: u64,
    /// Cache hits answered by the hot in-memory LRU tier.
    pub tier1_hits: u64,
    /// Cache hits answered by the persistent append-only tier.
    pub tier2_hits: u64,
    /// 200s solved fresh.
    pub cache_misses: u64,
    /// Non-200 responses (backpressure, deadlines).
    pub rejected: u64,
    /// Transport-level failures.
    pub transport_errors: u64,
    /// 429 responses that were retried after a jittered backoff.
    pub retries_429: u64,
    /// Requests that reused an already-established connection.
    pub keepalive_reused: u64,
    /// Cache hit rate over successful requests.
    pub hit_rate: f64,
    /// Successful requests per wall-clock second.
    pub throughput_rps: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile request latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
}

impl ServeBenchReport {
    /// Serialize with the trace JSON codec.
    pub fn to_json_string(&self) -> String {
        JsonValue::Obj(vec![
            ("format_version".into(), JsonValue::Num(self.format_version as f64)),
            ("clients".into(), JsonValue::Num(self.clients as f64)),
            (
                "requests_per_client".into(),
                JsonValue::Num(self.requests_per_client as f64),
            ),
            ("duplicate_rate".into(), JsonValue::Num(self.duplicate_rate)),
            ("seed".into(), JsonValue::Num(self.seed as f64)),
            ("requests".into(), JsonValue::Num(self.requests as f64)),
            ("cache_hits".into(), JsonValue::Num(self.cache_hits as f64)),
            ("tier1_hits".into(), JsonValue::Num(self.tier1_hits as f64)),
            ("tier2_hits".into(), JsonValue::Num(self.tier2_hits as f64)),
            ("cache_misses".into(), JsonValue::Num(self.cache_misses as f64)),
            ("rejected".into(), JsonValue::Num(self.rejected as f64)),
            ("transport_errors".into(), JsonValue::Num(self.transport_errors as f64)),
            ("retries_429".into(), JsonValue::Num(self.retries_429 as f64)),
            ("keepalive_reused".into(), JsonValue::Num(self.keepalive_reused as f64)),
            ("hit_rate".into(), JsonValue::Num(self.hit_rate)),
            ("throughput_rps".into(), JsonValue::Num(self.throughput_rps)),
            ("p50_us".into(), JsonValue::Num(self.p50_us as f64)),
            ("p95_us".into(), JsonValue::Num(self.p95_us as f64)),
            ("p99_us".into(), JsonValue::Num(self.p99_us as f64)),
        ])
        .to_json_string()
    }

    /// Parse (with the trace JSON codec) and structurally validate.
    pub fn from_json_str(src: &str) -> Result<Self, String> {
        let v = json::parse(src).map_err(|e| format!("serve report: {e}"))?;
        let u = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("serve report: missing `{name}`"))
        };
        let f = |name: &str| -> Result<f64, String> {
            v.get(name)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("serve report: missing `{name}`"))
        };
        let report = Self {
            format_version: u("format_version")?,
            clients: u("clients")?,
            requests_per_client: u("requests_per_client")?,
            duplicate_rate: f("duplicate_rate")?,
            seed: u("seed")?,
            requests: u("requests")?,
            cache_hits: u("cache_hits")?,
            tier1_hits: u("tier1_hits")?,
            tier2_hits: u("tier2_hits")?,
            cache_misses: u("cache_misses")?,
            rejected: u("rejected")?,
            transport_errors: u("transport_errors")?,
            retries_429: u("retries_429")?,
            keepalive_reused: u("keepalive_reused")?,
            hit_rate: f("hit_rate")?,
            throughput_rps: f("throughput_rps")?,
            p50_us: u("p50_us")?,
            p95_us: u("p95_us")?,
            p99_us: u("p99_us")?,
        };
        report.validate()?;
        Ok(report)
    }

    /// The invariants `cubis-xtask ci` and the tests gate on: known
    /// version, traffic actually flowed (requests > 0, every request
    /// accounted for), a duplicate-heavy mix produced cache hits,
    /// positive throughput, and monotone quantiles (p50 ≤ p95 ≤ p99).
    pub fn validate(&self) -> Result<(), String> {
        if self.format_version != SERVE_FORMAT_VERSION {
            return Err(format!(
                "serve report: format_version {} (expected {SERVE_FORMAT_VERSION})",
                self.format_version
            ));
        }
        if self.requests == 0 {
            return Err("serve report: zero requests".into());
        }
        let accounted =
            self.cache_hits + self.cache_misses + self.rejected + self.transport_errors;
        if accounted != self.requests {
            return Err(format!(
                "serve report: {} requests but {accounted} accounted for",
                self.requests
            ));
        }
        if !(0.0..=1.0).contains(&self.duplicate_rate) {
            return Err(format!("serve report: duplicate_rate {} out of [0,1]", self.duplicate_rate));
        }
        if !(0.0..=1.0).contains(&self.hit_rate) {
            return Err(format!("serve report: hit_rate {} out of [0,1]", self.hit_rate));
        }
        if self.duplicate_rate >= 0.3 && self.cache_hits == 0 {
            return Err(format!(
                "serve report: duplicate_rate {} but zero cache hits — the cache never fired",
                self.duplicate_rate
            ));
        }
        if self.tier1_hits + self.tier2_hits != self.cache_hits {
            return Err(format!(
                "serve report: cache_hits {} but tiers account for {} (tier1 {} + tier2 {})",
                self.cache_hits,
                self.tier1_hits + self.tier2_hits,
                self.tier1_hits,
                self.tier2_hits
            ));
        }
        if self.keepalive_reused > self.requests {
            return Err(format!(
                "serve report: keepalive_reused {} exceeds {} requests",
                self.keepalive_reused, self.requests
            ));
        }
        if self.clients > 1 && self.requests_per_client > 1 && self.keepalive_reused == 0 {
            return Err(
                "serve report: a multi-request run never reused a connection — keep-alive is dead"
                    .into(),
            );
        }
        if self.cache_hits + self.cache_misses > 0 && self.throughput_rps <= 0.0 {
            return Err("serve report: successes but non-positive throughput".into());
        }
        if self.p50_us > self.p95_us || self.p95_us > self.p99_us {
            return Err(format!(
                "serve report: quantiles not monotone: p50 {} p95 {} p99 {}",
                self.p50_us, self.p95_us, self.p99_us
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeBenchReport {
        ServeBenchReport {
            format_version: SERVE_FORMAT_VERSION,
            clients: 4,
            requests_per_client: 25,
            duplicate_rate: 0.5,
            seed: 42,
            requests: 100,
            cache_hits: 40,
            tier1_hits: 35,
            tier2_hits: 5,
            cache_misses: 55,
            rejected: 3,
            transport_errors: 2,
            retries_429: 3,
            keepalive_reused: 90,
            hit_rate: 40.0 / 95.0,
            throughput_rps: 123.4,
            p50_us: 800,
            p95_us: 2_000,
            p99_us: 5_000,
        }
    }

    #[test]
    fn round_trips_and_validates() {
        let report = sample();
        report.validate().unwrap();
        let back = ServeBenchReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn rejects_unaccounted_requests_and_zero_traffic() {
        let mut report = sample();
        report.requests = 0;
        assert!(report.validate().is_err());
        let mut report = sample();
        report.rejected = 0; // 40 + 55 + 0 + 2 != 100
        assert!(report.validate().is_err());
    }

    #[test]
    fn rejects_cold_cache_under_duplicate_mix() {
        let mut report = sample();
        report.cache_hits = 0;
        report.tier1_hits = 0;
        report.tier2_hits = 0;
        report.cache_misses = 95;
        report.hit_rate = 0.0;
        assert!(report.validate().unwrap_err().contains("cache never fired"));
        // But a no-duplicate mix with zero hits is fine.
        report.duplicate_rate = 0.0;
        report.validate().unwrap();
    }

    #[test]
    fn rejects_tier_splits_that_do_not_sum_and_dead_keepalive() {
        let mut report = sample();
        report.tier2_hits = 0; // 35 + 0 != 40
        assert!(report.validate().unwrap_err().contains("tiers account for"));
        let mut report = sample();
        report.keepalive_reused = 0;
        assert!(report.validate().unwrap_err().contains("keep-alive is dead"));
        let mut report = sample();
        report.keepalive_reused = report.requests + 1;
        assert!(report.validate().is_err());
    }

    #[test]
    fn rejects_non_monotone_quantiles_and_bad_version() {
        let mut report = sample();
        report.p95_us = 10_000;
        assert!(report.validate().is_err());
        let mut report = sample();
        report.format_version = 99;
        assert!(report.validate().is_err());
        assert!(ServeBenchReport::from_json_str("{}").is_err());
    }
}
