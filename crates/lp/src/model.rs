//! LP modeling API.
//!
//! A [`LpProblem`] is a bag of bounded variables, a linear objective and
//! a list of linear constraints. The builder methods validate shapes
//! eagerly so solver code can assume a well-formed problem.

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// Opaque handle to a variable of a particular [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in the problem's variable order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Opaque handle to a constraint of a particular [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstraintId(pub(crate) usize);

impl ConstraintId {
    /// Index of the constraint in the problem's row order.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub name: String,
    pub lower: f64,
    pub upper: f64,
    pub obj: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    /// Sparse row: (variable, coefficient), at most one entry per variable.
    pub terms: Vec<(VarId, f64)>,
    pub relation: Relation,
    pub rhs: f64,
}

/// A linear program.
#[derive(Debug, Clone)]
pub struct LpProblem {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
}

impl LpProblem {
    /// Create an empty problem with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Self { sense, vars: Vec::new(), constraints: Vec::new() }
    }

    /// Optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Add a variable with bounds `[lower, upper]` and objective
    /// coefficient `obj`. Use `f64::NEG_INFINITY` / `f64::INFINITY` for
    /// unbounded sides.
    ///
    /// # Panics
    /// Panics if `lower > upper` or either bound is NaN.
    pub fn add_var(&mut self, name: impl Into<String>, lower: f64, upper: f64, obj: f64) -> VarId {
        assert!(!lower.is_nan() && !upper.is_nan(), "add_var: NaN bound");
        assert!(lower <= upper, "add_var: lower {lower} > upper {upper}");
        assert!(obj.is_finite(), "add_var: non-finite objective coefficient");
        let id = VarId(self.vars.len());
        self.vars.push(Variable { name: name.into(), lower, upper, obj });
        id
    }

    /// Add the linear constraint `Σ coeff·var (relation) rhs`.
    ///
    /// Duplicate variable entries in `terms` are summed.
    ///
    /// # Panics
    /// Panics on out-of-range variables or non-finite data.
    pub fn add_constraint(
        &mut self,
        terms: Vec<(VarId, f64)>,
        relation: Relation,
        rhs: f64,
    ) -> ConstraintId {
        assert!(rhs.is_finite(), "add_constraint: non-finite rhs");
        let mut merged: Vec<(VarId, f64)> = Vec::with_capacity(terms.len());
        for (v, c) in terms {
            assert!(v.0 < self.vars.len(), "add_constraint: unknown variable");
            assert!(c.is_finite(), "add_constraint: non-finite coefficient");
            match merged.iter_mut().find(|(mv, _)| *mv == v) {
                Some((_, mc)) => *mc += c,
                None => merged.push((v, c)),
            }
        }
        let id = ConstraintId(self.constraints.len());
        self.constraints.push(Constraint { terms: merged, relation, rhs });
        id
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable name.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0].name
    }

    /// Variable bounds `(lower, upper)`.
    pub fn var_bounds(&self, v: VarId) -> (f64, f64) {
        (self.vars[v.0].lower, self.vars[v.0].upper)
    }

    /// Objective coefficient of a variable.
    pub fn var_obj(&self, v: VarId) -> f64 {
        self.vars[v.0].obj
    }

    /// Tighten (replace) the bounds of a variable. Used by branch-and-bound.
    ///
    /// # Panics
    /// Panics if `lower > upper` after the update.
    pub fn set_var_bounds(&mut self, v: VarId, lower: f64, upper: f64) {
        assert!(lower <= upper, "set_var_bounds: crossing bounds {lower} > {upper}");
        self.vars[v.0].lower = lower;
        self.vars[v.0].upper = upper;
    }

    /// Replace the objective coefficient of a variable.
    pub fn set_var_obj(&mut self, v: VarId, obj: f64) {
        assert!(obj.is_finite(), "set_var_obj: non-finite coefficient");
        self.vars[v.0].obj = obj;
    }

    /// Iterate over all variable ids in index order.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len()).map(VarId)
    }

    /// Handle for the variable at `index` (they are issued densely).
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn var_id(&self, index: usize) -> VarId {
        assert!(index < self.vars.len(), "var_id: out of range");
        VarId(index)
    }

    /// Sparse terms, relation and rhs of constraint `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn constraint(&self, index: usize) -> (&[(VarId, f64)], Relation, f64) {
        let c = &self.constraints[index];
        (&c.terms, c.relation, c.rhs)
    }

    /// Evaluate the objective at a point given in variable order.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len(), "objective_value: length mismatch");
        self.vars.iter().zip(x).map(|(v, xi)| v.obj * xi).sum()
    }

    /// Maximum violation of constraints and bounds at `x` (0 means feasible).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len(), "max_violation: length mismatch");
        let mut worst = 0.0f64;
        for (v, &xi) in self.vars.iter().zip(x) {
            worst = worst.max(v.lower - xi).max(xi - v.upper);
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|(v, co)| co * x[v.0]).sum();
            let viol = match c.relation {
                Relation::Le => lhs - c.rhs,
                Relation::Ge => c.rhs - lhs,
                Relation::Eq => (lhs - c.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        worst
    }

    /// A human-readable dump in an LP-like format, for debugging.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{}",
            match self.sense {
                Sense::Maximize => "Maximize",
                Sense::Minimize => "Minimize",
            }
        );
        let _ = write!(s, "  obj:");
        for (i, v) in self.vars.iter().enumerate() {
            // cubis:allow(NUM01): pretty-printer omits exactly-zero
            // objective terms; display-only, no numeric consequence.
            if v.obj != 0.0 {
                let _ = write!(s, " {:+}·{}", v.obj, nm(&v.name, i));
            }
        }
        let _ = writeln!(s, "\nSubject To");
        for (ci, c) in self.constraints.iter().enumerate() {
            let _ = write!(s, "  c{ci}:");
            for (v, co) in &c.terms {
                let _ = write!(s, " {:+}·{}", co, nm(&self.vars[v.0].name, v.0));
            }
            let rel = match c.relation {
                Relation::Le => "<=",
                Relation::Ge => ">=",
                Relation::Eq => "=",
            };
            let _ = writeln!(s, " {} {}", rel, c.rhs);
        }
        let _ = writeln!(s, "Bounds");
        for (i, v) in self.vars.iter().enumerate() {
            let _ = writeln!(s, "  {} <= {} <= {}", v.lower, nm(&v.name, i), v.upper);
        }
        s
    }
}

fn nm(name: &str, idx: usize) -> String {
    if name.is_empty() {
        format!("v{idx}")
    } else {
        name.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_shapes() {
        let mut p = LpProblem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 1.0, 2.0);
        let y = p.add_var("y", -1.0, f64::INFINITY, -1.0);
        p.add_constraint(vec![(x, 1.0), (y, 2.0)], Relation::Le, 3.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.var_bounds(y), (-1.0, f64::INFINITY));
        assert_eq!(p.var_obj(x), 2.0);
        assert_eq!(p.var_name(x), "x");
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let mut p = LpProblem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        p.add_constraint(vec![(x, 1.0), (x, 2.0)], Relation::Eq, 3.0);
        assert_eq!(p.constraints[0].terms, vec![(x, 3.0)]);
    }

    #[test]
    #[should_panic(expected = "lower")]
    fn crossing_bounds_panic() {
        let mut p = LpProblem::new(Sense::Maximize);
        p.add_var("x", 1.0, 0.0, 0.0);
    }

    #[test]
    fn violation_measures_bounds_and_rows() {
        let mut p = LpProblem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        let y = p.add_var("y", 0.0, 1.0, 1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
        assert_eq!(p.max_violation(&[0.5, 0.5]), 0.0);
        assert!((p.max_violation(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((p.max_violation(&[-0.25, 0.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn objective_value_respects_sense_agnostic_coeffs() {
        let mut p = LpProblem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0, 3.0);
        let _y = p.add_var("y", 0.0, 1.0, -1.0);
        assert_eq!(p.objective_value(&[2.0, 4.0]), 2.0);
        p.set_var_obj(x, 0.0);
        assert_eq!(p.objective_value(&[2.0, 4.0]), -4.0);
    }

    #[test]
    fn dump_is_stable_enough_for_debugging() {
        let mut p = LpProblem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        p.add_constraint(vec![(x, 2.0)], Relation::Ge, 1.0);
        let d = p.dump();
        assert!(d.contains("Maximize"));
        assert!(d.contains(">= 1"));
    }
}
