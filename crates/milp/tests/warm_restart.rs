//! Basis reuse across branch-and-bound nodes: child nodes must actually
//! warm-restart from the parent basis (the `lp.dual_restarts` counter
//! fires), and reusing bases must not change the answer — warm and cold
//! searches return bit-identical incumbents.

use std::sync::Arc;

use cubis_lp::{LpProblem, Relation, Sense, VarId};
use cubis_milp::{solve_milp, MilpOptions, MilpProblem, MilpStatus};
use cubis_trace::{CounterSetRecorder, SharedRecorder};

/// A knapsack with clashing value/weight ratios so the LP relaxation is
/// fractional at the root and the search branches several levels deep.
fn branching_knapsack() -> MilpProblem {
    let values = [9.0, 8.5, 7.0, 6.5, 5.0, 4.5, 3.0, 2.5, 2.0, 1.5];
    let weights = [7.0, 6.5, 5.5, 5.0, 4.0, 3.5, 2.5, 2.0, 1.5, 1.0];
    let mut lp = LpProblem::new(Sense::Maximize);
    let vars: Vec<VarId> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| lp.add_var(format!("x{i}"), 0.0, 1.0, v))
        .collect();
    lp.add_constraint(
        vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect(),
        Relation::Le,
        16.0,
    );
    MilpProblem { lp, integers: vars }
}

#[test]
fn child_nodes_warm_restart_from_parent_basis() {
    let prob = branching_knapsack();
    let counters = Arc::new(CounterSetRecorder::new());
    let opts = MilpOptions {
        recorder: SharedRecorder::new(counters.clone()),
        ..Default::default()
    };
    assert!(opts.reuse_basis, "basis reuse must be the default");
    let sol = solve_milp(&prob, &opts).unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    assert!(sol.nodes > 1, "instance must branch, got {} nodes", sol.nodes);

    let totals = counters.counter_totals();
    let restarts = totals.get("lp.dual_restarts").copied().unwrap_or(0);
    assert!(
        restarts > 0,
        "expected at least one dual-simplex warm restart, counters: {totals:?}"
    );
}

#[test]
fn warm_and_cold_searches_agree_bit_for_bit() {
    let prob = branching_knapsack();
    let warm = solve_milp(&prob, &MilpOptions::default()).unwrap();
    let cold = solve_milp(
        &prob,
        &MilpOptions { reuse_basis: false, ..Default::default() },
    )
    .unwrap();

    assert_eq!(warm.status, MilpStatus::Optimal);
    assert_eq!(cold.status, MilpStatus::Optimal);
    assert_eq!(
        warm.objective.to_bits(),
        cold.objective.to_bits(),
        "objectives differ: warm {} vs cold {}",
        warm.objective,
        cold.objective
    );
    assert_eq!(warm.x.len(), cold.x.len());
    for (i, (w, c)) in warm.x.iter().zip(&cold.x).enumerate() {
        assert_eq!(
            w.to_bits(),
            c.to_bits(),
            "x[{i}] differs: warm {w} vs cold {c}"
        );
    }
}
