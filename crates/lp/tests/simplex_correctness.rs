//! Correctness tests for the simplex solver: hand-solved LPs, classic
//! pathological cases, duals, and randomized cross-validation against a
//! brute-force vertex enumerator.

use cubis_lp::{solve, LpOptions, LpProblem, LpStatus, Relation, Sense, VarId};

fn opts() -> LpOptions {
    LpOptions::default()
}

fn assert_opt(p: &LpProblem, expect_obj: f64, expect_x: Option<&[f64]>) {
    let sol = solve(p, &opts()).expect("solve");
    assert_eq!(sol.status, LpStatus::Optimal, "problem:\n{}", p.dump());
    assert!(
        (sol.objective - expect_obj).abs() < 1e-7,
        "objective {} != expected {}\n{}",
        sol.objective,
        expect_obj,
        p.dump()
    );
    if let Some(xs) = expect_x {
        for (i, (&got, &want)) in sol.x.iter().zip(xs).enumerate() {
            assert!((got - want).abs() < 1e-7, "x[{i}] = {got}, want {want}");
        }
    }
}

#[test]
fn textbook_max_2d() {
    // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (x,y >= 0)
    // Optimum (2, 6) with objective 36.
    let mut p = LpProblem::new(Sense::Maximize);
    let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
    let y = p.add_var("y", 0.0, f64::INFINITY, 5.0);
    p.add_constraint(vec![(x, 1.0)], Relation::Le, 4.0);
    p.add_constraint(vec![(y, 2.0)], Relation::Le, 12.0);
    p.add_constraint(vec![(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
    assert_opt(&p, 36.0, Some(&[2.0, 6.0]));
}

#[test]
fn textbook_min_with_ge_rows_needs_phase1() {
    // min 0.12x + 0.15y s.t. 60x + 60y >= 300, 12x + 6y >= 36, 10x + 30y >= 90
    // Classic diet problem; optimum at x=3, y=2, objective 0.66.
    let mut p = LpProblem::new(Sense::Minimize);
    let x = p.add_var("x", 0.0, f64::INFINITY, 0.12);
    let y = p.add_var("y", 0.0, f64::INFINITY, 0.15);
    p.add_constraint(vec![(x, 60.0), (y, 60.0)], Relation::Ge, 300.0);
    p.add_constraint(vec![(x, 12.0), (y, 6.0)], Relation::Ge, 36.0);
    p.add_constraint(vec![(x, 10.0), (y, 30.0)], Relation::Ge, 90.0);
    assert_opt(&p, 0.66, Some(&[3.0, 2.0]));
}

#[test]
fn equality_constraints() {
    // max x + y s.t. x + y = 1, x - y = 0 → x = y = 0.5.
    let mut p = LpProblem::new(Sense::Maximize);
    let x = p.add_var("x", 0.0, 1.0, 1.0);
    let y = p.add_var("y", 0.0, 1.0, 1.0);
    p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 1.0);
    p.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Eq, 0.0);
    assert_opt(&p, 1.0, Some(&[0.5, 0.5]));
}

#[test]
fn infeasible_detected() {
    let mut p = LpProblem::new(Sense::Maximize);
    let x = p.add_var("x", 0.0, 1.0, 1.0);
    p.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
    let sol = solve(&p, &opts()).unwrap();
    assert_eq!(sol.status, LpStatus::Infeasible);
}

#[test]
fn infeasible_system_of_rows() {
    let mut p = LpProblem::new(Sense::Minimize);
    let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
    let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
    p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
    p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 3.0);
    let sol = solve(&p, &opts()).unwrap();
    assert_eq!(sol.status, LpStatus::Infeasible);
}

#[test]
fn unbounded_detected() {
    let mut p = LpProblem::new(Sense::Maximize);
    let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
    let y = p.add_var("y", 0.0, f64::INFINITY, 0.0);
    p.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Le, 1.0);
    let sol = solve(&p, &opts()).unwrap();
    assert_eq!(sol.status, LpStatus::Unbounded);
}

#[test]
fn bounded_by_variable_bounds_only() {
    // No constraints at all: optimum at the bound.
    let mut p = LpProblem::new(Sense::Maximize);
    p.add_var("x", -2.0, 5.0, 2.0);
    p.add_var("y", -3.0, 4.0, -1.0);
    assert_opt(&p, 13.0, Some(&[5.0, -3.0]));
}

#[test]
fn unbounded_via_free_variable() {
    let mut p = LpProblem::new(Sense::Minimize);
    p.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
    let sol = solve(&p, &opts()).unwrap();
    assert_eq!(sol.status, LpStatus::Unbounded);
}

#[test]
fn free_variable_lands_on_interior_value() {
    // min (x - nothing): x free, x + y = 2, y in [0,1], min x → y = 1, x = 1.
    let mut p = LpProblem::new(Sense::Minimize);
    let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
    let y = p.add_var("y", 0.0, 1.0, 0.0);
    p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
    assert_opt(&p, 1.0, Some(&[1.0, 1.0]));
}

#[test]
fn negative_rhs_rows() {
    // max -x - y s.t. -x - y <= -2  (i.e. x + y >= 2), x,y in [0,5]
    let mut p = LpProblem::new(Sense::Maximize);
    let x = p.add_var("x", 0.0, 5.0, -1.0);
    let y = p.add_var("y", 0.0, 5.0, -1.0);
    p.add_constraint(vec![(x, -1.0), (y, -1.0)], Relation::Le, -2.0);
    assert_opt(&p, -2.0, None);
}

#[test]
fn upper_bounded_variables_exercise_bound_flips() {
    // max Σ x_i with Σ x_i <= 2.5, x_i in [0,1] → objective 2.5.
    let mut p = LpProblem::new(Sense::Maximize);
    let vars: Vec<VarId> = (0..5).map(|i| p.add_var(format!("x{i}"), 0.0, 1.0, 1.0)).collect();
    p.add_constraint(vars.iter().map(|&v| (v, 1.0)).collect(), Relation::Le, 2.5);
    assert_opt(&p, 2.5, None);
}

#[test]
fn beale_cycling_example_terminates() {
    // Beale's classic cycling LP (degenerate); Bland fallback must save us.
    // min -0.75x4 + 150x5 - 0.02x6 + 6x7
    // s.t. 0.25x4 - 60x5 - 0.04x6 + 9x7 <= 0
    //      0.5x4 - 90x5 - 0.02x6 + 3x7 <= 0
    //      x6 <= 1
    // Optimum -0.05.
    let mut p = LpProblem::new(Sense::Minimize);
    let x4 = p.add_var("x4", 0.0, f64::INFINITY, -0.75);
    let x5 = p.add_var("x5", 0.0, f64::INFINITY, 150.0);
    let x6 = p.add_var("x6", 0.0, f64::INFINITY, -0.02);
    let x7 = p.add_var("x7", 0.0, f64::INFINITY, 6.0);
    p.add_constraint(
        vec![(x4, 0.25), (x5, -60.0), (x6, -0.04), (x7, 9.0)],
        Relation::Le,
        0.0,
    );
    p.add_constraint(
        vec![(x4, 0.5), (x5, -90.0), (x6, -0.02), (x7, 3.0)],
        Relation::Le,
        0.0,
    );
    p.add_constraint(vec![(x6, 1.0)], Relation::Le, 1.0);
    assert_opt(&p, -0.05, None);
}

#[test]
fn duals_match_known_shadow_prices() {
    // max 3x + 5y (the textbook_max_2d problem): duals are (0, 3/2, 1).
    let mut p = LpProblem::new(Sense::Maximize);
    let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
    let y = p.add_var("y", 0.0, f64::INFINITY, 5.0);
    p.add_constraint(vec![(x, 1.0)], Relation::Le, 4.0);
    p.add_constraint(vec![(y, 2.0)], Relation::Le, 12.0);
    p.add_constraint(vec![(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
    let sol = solve(&p, &opts()).unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!((sol.duals[0] - 0.0).abs() < 1e-7, "duals: {:?}", sol.duals);
    assert!((sol.duals[1] - 1.5).abs() < 1e-7, "duals: {:?}", sol.duals);
    assert!((sol.duals[2] - 1.0).abs() < 1e-7, "duals: {:?}", sol.duals);
}

#[test]
fn duals_strong_duality_on_ge_problem() {
    // Strong duality: cᵀx* = bᵀy* (variable bounds inactive here).
    let mut p = LpProblem::new(Sense::Minimize);
    let x = p.add_var("x", 0.0, f64::INFINITY, 0.12);
    let y = p.add_var("y", 0.0, f64::INFINITY, 0.15);
    p.add_constraint(vec![(x, 60.0), (y, 60.0)], Relation::Ge, 300.0);
    p.add_constraint(vec![(x, 12.0), (y, 6.0)], Relation::Ge, 36.0);
    p.add_constraint(vec![(x, 10.0), (y, 30.0)], Relation::Ge, 90.0);
    let sol = solve(&p, &opts()).unwrap();
    let dual_obj = 300.0 * sol.duals[0] + 36.0 * sol.duals[1] + 90.0 * sol.duals[2];
    assert!((dual_obj - sol.objective).abs() < 1e-6, "duals {:?}", sol.duals);
    // Minimization with Ge rows: duals nonnegative.
    for &d in &sol.duals {
        assert!(d >= -1e-9);
    }
}

#[test]
fn equality_row_duals() {
    // min x + 2y s.t. x + y = 1, x,y >= 0 → x=1, dual = 1 (marginal cost of
    // raising the rhs).
    let mut p = LpProblem::new(Sense::Minimize);
    let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
    let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
    p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 1.0);
    let sol = solve(&p, &opts()).unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!((sol.objective - 1.0).abs() < 1e-9);
    assert!((sol.duals[0] - 1.0).abs() < 1e-7, "duals {:?}", sol.duals);
}

#[test]
fn zero_rows_and_vars() {
    let p = LpProblem::new(Sense::Maximize);
    let sol = solve(&p, &opts()).unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_eq!(sol.objective, 0.0);
}

#[test]
fn fixed_variables() {
    let mut p = LpProblem::new(Sense::Maximize);
    let x = p.add_var("x", 2.0, 2.0, 10.0);
    let y = p.add_var("y", 0.0, 10.0, 1.0);
    p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 5.0);
    assert_opt(&p, 23.0, Some(&[2.0, 3.0]));
}

#[test]
fn negative_lower_bounds() {
    // max x + y with x in [-4,-1], y in [-2, 3], x + y <= 0.
    let mut p = LpProblem::new(Sense::Maximize);
    let x = p.add_var("x", -4.0, -1.0, 1.0);
    let y = p.add_var("y", -2.0, 3.0, 1.0);
    p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 0.0);
    assert_opt(&p, 0.0, Some(&[-1.0, 1.0]));
}

#[test]
fn redundant_equality_rows_survive() {
    // x + y = 1 stated twice: phase 1 leaves a frozen artificial on the
    // redundant row; solution must still be correct.
    let mut p = LpProblem::new(Sense::Maximize);
    let x = p.add_var("x", 0.0, 1.0, 2.0);
    let y = p.add_var("y", 0.0, 1.0, 1.0);
    p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 1.0);
    p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 1.0);
    assert_opt(&p, 2.0, Some(&[1.0, 0.0]));
}

/// Brute force: enumerate all basic points from active constraint/bound
/// combinations in 2-3 dims and take the feasible best.
mod brute {
    use super::*;

    pub fn best_vertex_objective(p: &LpProblem) -> Option<f64> {
        // Collect hyperplanes: every constraint as equality + every finite
        // bound; enumerate all n-subsets, solve, keep feasible points.
        let n = p.num_vars();
        assert!(n <= 3, "brute force limited to 3 vars");
        let mut planes: Vec<(Vec<f64>, f64)> = Vec::new();
        for ci in 0..p.num_constraints() {
            let (terms, rhs) = constraint_row(p, ci);
            planes.push((terms, rhs));
        }
        for v in 0..n {
            let (l, u) = p.var_bounds(p.var_id(v));
            if l.is_finite() {
                let mut row = vec![0.0; n];
                row[v] = 1.0;
                planes.push((row, l));
            }
            if u.is_finite() {
                let mut row = vec![0.0; n];
                row[v] = 1.0;
                planes.push((row, u));
            }
        }
        let mut best: Option<f64> = None;
        let idxs: Vec<usize> = (0..planes.len()).collect();
        for combo in combos(&idxs, n) {
            let mut a = cubis_linalg::Matrix::zeros(n, n);
            let mut b = vec![0.0; n];
            for (r, &pi) in combo.iter().enumerate() {
                for c in 0..n {
                    a[(r, c)] = planes[pi].0[c];
                }
                b[r] = planes[pi].1;
            }
            let Ok(lu) = cubis_linalg::Lu::factor(&a) else { continue };
            let x = lu.solve(&b);
            if p.max_violation(&x) < 1e-7 {
                let obj = p.objective_value(&x);
                best = Some(match (best, p.sense()) {
                    (None, _) => obj,
                    (Some(b0), Sense::Maximize) => b0.max(obj),
                    (Some(b0), Sense::Minimize) => b0.min(obj),
                });
            }
        }
        best
    }

    fn constraint_row(p: &LpProblem, ci: usize) -> (Vec<f64>, f64) {
        let n = p.num_vars();
        let mut row = vec![0.0; n];
        let (terms, _rel, rhs) = p.constraint(ci);
        for &(v, c) in terms {
            row[v.index()] = c;
        }
        (row, rhs)
    }

    fn combos(items: &[usize], k: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut cur = Vec::new();
        fn rec(items: &[usize], k: usize, start: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            if cur.len() == k {
                out.push(cur.clone());
                return;
            }
            for i in start..items.len() {
                cur.push(items[i]);
                rec(items, k, i + 1, cur, out);
                cur.pop();
            }
        }
        rec(items, k, 0, &mut cur, &mut out);
        out
    }
}

#[test]
fn random_lps_match_vertex_enumeration() {
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut solved = 0;
    for trial in 0..300 {
        let n = rng.gen_range(2..=3usize);
        let m = rng.gen_range(1..=4usize);
        let sense = if rng.gen_bool(0.5) { Sense::Maximize } else { Sense::Minimize };
        let mut p = LpProblem::new(sense);
        let vars: Vec<VarId> = (0..n)
            .map(|i| {
                let l = rng.gen_range(-3.0..0.0);
                let u = l + rng.gen_range(0.5..5.0);
                p.add_var(format!("x{i}"), l, u, rng.gen_range(-2.0..2.0))
            })
            .collect();
        for _ in 0..m {
            let terms: Vec<(VarId, f64)> =
                vars.iter().map(|&v| (v, rng.gen_range(-2.0..2.0))).collect();
            let rel = match rng.gen_range(0..3) {
                0 => Relation::Le,
                1 => Relation::Ge,
                _ => Relation::Eq,
            };
            p.add_constraint(terms, rel, rng.gen_range(-2.0..2.0));
        }
        let sol = solve(&p, &opts()).expect("numerical");
        let brute = brute::best_vertex_objective(&p);
        match (sol.status, brute) {
            (LpStatus::Optimal, Some(b)) => {
                assert!(
                    (sol.objective - b).abs() < 1e-5,
                    "trial {trial}: simplex {} vs brute {b}\n{}",
                    sol.objective,
                    p.dump()
                );
                solved += 1;
            }
            (LpStatus::Infeasible, None) => {}
            (LpStatus::Infeasible, Some(b)) => {
                panic!("trial {trial}: simplex says infeasible, brute found {b}\n{}", p.dump());
            }
            (LpStatus::Optimal, None) => {
                // Brute force only visits vertices of fully-determined
                // systems; with equality-degenerate geometry it can miss
                // the feasible set. Verify feasibility instead.
                assert!(p.max_violation(&sol.x) < 1e-6);
            }
            (other, _) => panic!("trial {trial}: unexpected status {other:?}"),
        }
    }
    assert!(solved > 50, "too few optimal instances to be meaningful: {solved}");
}
