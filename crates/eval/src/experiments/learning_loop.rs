//! **F7 (extension) — the end-to-end data loop: learn intervals, then
//! solve robustly.**
//!
//! The paper motivates intervals by scarce data but never closes the
//! loop; this experiment does. A ground-truth SUQR attacker generates
//! `n` attack observations; the defender (a) fits a point MLE and best
//! responds to it, or (b) bootstraps a weight box and runs CUBIS on it.
//! Both strategies are then evaluated against the **true** attacker and
//! against the worst model in the (true-box) neighborhood. Expected
//! shape: with little data the robust defender loses far less to model
//! error; as `n` grows the two converge (intervals shrink like 1/√n).

use super::Profile;
use crate::fixtures;
use crate::metrics::Series;
use crate::report::Report;
use cubis_behavior::{
    attack_distribution, AttackDataset, BoundConvention, FitOptions, Suqr, SuqrWeights,
    UncertainSuqr,
};
use cubis_core::{RobustProblem, SolveError};
use rayon::prelude::*;

/// Observation counts swept.
pub const NS: [usize; 4] = [30, 100, 300, 1000];
/// Ground-truth attacker weights.
pub const TRUTH: SuqrWeights = SuqrWeights {
    w1: -6.0,
    w2: 0.8,
    w3: 0.4,
};

/// Run the experiment.
pub fn run(profile: Profile) -> Result<Report, SolveError> {
    let seeds: Vec<u64> = (0..profile.seeds().min(6)).collect();
    let mut r = Report::new(
        "F7 — learn-then-robustify: utility vs observation count",
        vec![
            "n obs",
            "robust (true attacker)",
            "point (true attacker)",
            "robust (worst in box)",
            "point (worst in box)",
            "box width",
        ],
    );
    r.note(format!(
        "T = 6, R = 2, truth w = (−6.0, 0.8, 0.4), {} seeds; 'worst in box' \
         evaluates each strategy against the adversarial model inside the \
         defender's own bootstrap box (90% percentile, 12 resamples).",
        seeds.len()
    ));

    for &n in &NS {
        let cells: Vec<(f64, f64, f64, f64, f64)> = seeds
            .par_iter()
            .map(|&seed| {
                let (game, _) = fixtures::workload(seed, 6, 2.0, 0.0);
                let data = AttackDataset::synthetic(&game, TRUTH, n, seed ^ 0xda7a);
                let fit_opts = FitOptions {
                    max_iters: 150,
                    ..Default::default()
                };
                // (a) point defender.
                let w_hat = cubis_behavior::fit_suqr(&game, &data, &fit_opts);
                let point_model = Suqr::new(w_hat);
                let x_point = cubis_solvers::solve_point_qr(&game, &point_model, 80, 1e-3)?;
                // (b) robust defender on the bootstrap box.
                let weight_box =
                    cubis_behavior::bootstrap_box(&game, &data, 12, 0.1, seed ^ 0xb007, &fit_opts);
                let box_width =
                    weight_box.w1.width() + weight_box.w2.width() + weight_box.w3.width();
                let model = UncertainSuqr::from_game(
                    &game,
                    weight_box,
                    0.0,
                    BoundConvention::ExactInterval,
                );
                let p = RobustProblem::new(&game, &model);
                let x_robust = super::cubis_dp(80, 1e-3).solve(&p)?.x;
                // Evaluate vs the true attacker.
                let truth_model = Suqr::new(TRUTH);
                let eval_true = |x: &[f64]| {
                    let q = attack_distribution(&truth_model, &game, x);
                    game.expected_defender_utility(x, &q)
                };
                // Evaluate vs the worst model in the defender's own box.
                let eval_worst = |x: &[f64]| p.worst_case(x).utility;
                Ok((
                    eval_true(&x_robust),
                    eval_true(&x_point),
                    eval_worst(&x_robust),
                    eval_worst(&x_point),
                    box_width,
                ))
            })
            .collect::<Result<_, SolveError>>()?;
        let mut cols = [
            Series::new(),
            Series::new(),
            Series::new(),
            Series::new(),
            Series::new(),
        ];
        for (a, b, c, d, e) in cells {
            cols[0].push(a);
            cols[1].push(b);
            cols[2].push(c);
            cols[3].push(d);
            cols[4].push(e);
        }
        r.row(vec![
            format!("{n}"),
            cols[0].summary(),
            cols[1].summary(),
            cols[2].summary(),
            cols[3].summary(),
            format!("{:.2}", cols[4].mean()),
        ]);
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robust_never_loses_on_its_own_worst_case() {
        let (game, _) = fixtures::workload(0, 5, 2.0, 0.0);
        let data = AttackDataset::synthetic(&game, TRUTH, 60, 42);
        let opts = FitOptions {
            max_iters: 100,
            ..Default::default()
        };
        let weight_box = cubis_behavior::bootstrap_box(&game, &data, 8, 0.1, 9, &opts);
        let model =
            UncertainSuqr::from_game(&game, weight_box, 0.0, BoundConvention::ExactInterval);
        let p = RobustProblem::new(&game, &model);
        let x_robust = super::super::cubis_dp(60, 1e-2).solve(&p).unwrap().x;
        let w_hat = cubis_behavior::fit_suqr(&game, &data, &opts);
        let x_point = cubis_solvers::solve_point_qr(&game, &Suqr::new(w_hat), 60, 1e-2).unwrap();
        assert!(
            p.worst_case(&x_robust).utility >= p.worst_case(&x_point).utility - 0.1,
            "robust {} vs point {} on the robust objective",
            p.worst_case(&x_robust).utility,
            p.worst_case(&x_point).utility
        );
    }
}
