//! Replayable failing-case artifacts.
//!
//! When an oracle trips, the harness emits a JSON artifact carrying the
//! violated oracle, the human-readable detail and the full shrunk
//! instance. The artifact uses `cubis-trace`'s JSON codec — the same
//! writer the solve journal uses — so trace tooling can parse it, and
//! the `f64` round-trip guarantees of that codec (shortest-repr
//! printing) make `from_json_str(to_json_string(a)) == a` exact. Seeds
//! are stored as hex strings: they are full 64-bit values and a JSON
//! number (an `f64`) only carries 53 bits of integer precision.

use crate::canon;
use crate::instance::{format_seed, parse_seed, CheckInstance};
use cubis_trace::json::JsonValue;

/// Artifact schema version.
pub const ARTIFACT_VERSION: f64 = 1.0;
/// The `kind` discriminator written into every artifact.
pub const ARTIFACT_KIND: &str = "cubis-check-case";

/// A shrunk, replayable failing case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseArtifact {
    /// The per-case seed whose generated instance (before shrinking)
    /// exposed the failure — replay with `CUBIS_CHECK_SEED`.
    pub case_seed: u64,
    /// Name of the violated oracle.
    pub oracle: String,
    /// Violation detail from the oracle.
    pub detail: String,
    /// The shrunk minimal instance that still fails.
    pub instance: CheckInstance,
}

impl CaseArtifact {
    /// Encode as a JSON value.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("version".to_string(), JsonValue::Num(ARTIFACT_VERSION)),
            ("kind".to_string(), JsonValue::Str(ARTIFACT_KIND.to_string())),
            ("case_seed".to_string(), JsonValue::Str(format_seed(self.case_seed))),
            ("oracle".to_string(), JsonValue::Str(self.oracle.clone())),
            ("detail".to_string(), JsonValue::Str(self.detail.clone())),
            // The canonical instance codec — the same bytes the
            // cubis-serve cache key is hashed from (modulo the seed).
            ("instance".to_string(), canon::encode_instance(&self.instance)),
        ])
    }

    /// Serialize to the JSON text written next to the fuzz run.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json_string()
    }

    /// Decode from JSON text produced by [`Self::to_json_string`].
    pub fn from_json_str(src: &str) -> Result<Self, String> {
        let v = cubis_trace::json::parse(src).map_err(|e| format!("bad artifact JSON: {e}"))?;
        Self::from_json(&v)
    }

    /// Decode from a parsed JSON value.
    pub fn from_json(v: &JsonValue) -> Result<Self, String> {
        let field = |name: &str| v.get(name).ok_or_else(|| format!("missing field `{name}`"));
        let kind =
            field("kind")?.as_str().ok_or_else(|| "field `kind` is not a string".to_string())?;
        if kind != ARTIFACT_KIND {
            return Err(format!("kind `{kind}` is not `{ARTIFACT_KIND}`"));
        }
        let version = field("version")?
            .as_f64()
            .ok_or_else(|| "field `version` is not a number".to_string())?;
        if version > ARTIFACT_VERSION {
            return Err(format!("artifact version {version} is newer than supported"));
        }
        let case_seed = parse_seed(
            field("case_seed")?
                .as_str()
                .ok_or_else(|| "field `case_seed` is not a string".to_string())?,
        )?;
        let str_field = |name: &str| -> Result<String, String> {
            Ok(field(name)?
                .as_str()
                .ok_or_else(|| format!("field `{name}` is not a string"))?
                .to_string())
        };
        Ok(Self {
            case_seed,
            oracle: str_field("oracle")?,
            detail: str_field("detail")?,
            instance: canon::decode_instance(field("instance")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CaseArtifact {
        CaseArtifact {
            case_seed: 0xDEAD_BEEF_0042_7777,
            oracle: "inner-dp-vs-brute".to_string(),
            detail: "c=0.25: DP 1.5 vs brute-force 1.25 (Δ = 2.5e-1)".to_string(),
            instance: CheckInstance::generate(42),
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let a = sample();
        let text = a.to_json_string();
        let back = CaseArtifact::from_json_str(&text).unwrap();
        assert_eq!(a, back);
        // Idempotent serialization.
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn seed_survives_above_53_bits() {
        let mut a = sample();
        a.case_seed = u64::MAX - 1;
        let back = CaseArtifact::from_json_str(&a.to_json_string()).unwrap();
        assert_eq!(back.case_seed, u64::MAX - 1);
    }

    #[test]
    fn rejects_wrong_kind_and_future_version() {
        let a = sample();
        let text = a.to_json_string().replace(ARTIFACT_KIND, "not-a-case");
        assert!(CaseArtifact::from_json_str(&text).is_err());
        let text = a.to_json_string().replace("\"version\":1", "\"version\":99");
        assert!(CaseArtifact::from_json_str(&text).is_err());
    }
}
