//! Dense row-major matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
///
/// Row-major storage keeps the simplex tableau's row operations (the hot
/// path of the LP solver) contiguous in memory.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major `Vec`.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Build from nested rows (convenience for tests and examples).
    ///
    /// # Panics
    /// Panics if rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow two distinct rows mutably (used by pivoting).
    ///
    /// # Panics
    /// Panics if `a == b` or either index is out of range.
    pub fn two_rows_mut(&mut self, a: usize, b: usize) -> (&mut [f64], &mut [f64]) {
        assert!(a != b, "two_rows_mut: identical rows");
        assert!(a < self.rows && b < self.rows, "two_rows_mut: out of range");
        let c = self.cols;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * c);
        let lo_row = &mut head[lo * c..(lo + 1) * c];
        let hi_row = &mut tail[..c];
        if a < b {
            (lo_row, hi_row)
        } else {
            (hi_row, lo_row)
        }
    }

    /// Swap rows `a` and `b` (no-op when `a == b`).
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (ra, rb) = self.two_rows_mut(a, b);
        ra.swap_with_slice(rb);
    }

    /// Copy column `c` into a fresh `Vec`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mul_vec: shape mismatch");
        (0..self.rows).map(|r| crate::vector::dot(self.row(r), x)).collect()
    }

    /// Transposed matrix-vector product `Aᵀ·y`.
    ///
    /// # Panics
    /// Panics if `y.len() != self.rows()`.
    pub fn mul_vec_transposed(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "mul_vec_transposed: shape mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &yr) in y.iter().enumerate() {
            crate::vector::axpy(yr, self.row(r), &mut out);
        }
        out
    }

    /// Dense matrix product `A·B`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "mul: inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps both B and the output row-contiguous.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                // cubis:allow(NUM01): exact-zero sparsity skip — the axpy
                // contributes nothing only for a bit-exact zero.
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                crate::vector::axpy(aik, brow, orow);
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Maximum absolute entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        crate::vector::inf_norm(&self.data)
    }

    /// Raw row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_vec_is_vec() {
        let i = Matrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.mul_vec(&x), x);
    }

    #[test]
    fn mul_vec_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.mul_vec(&[1.0, -1.0]), vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    fn mul_vec_transposed_matches_transpose_then_mul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[3.0, 4.0, -1.0]]);
        let y = [2.0, -1.0];
        assert_eq!(a.mul_vec_transposed(&y), a.transpose().mul_vec(&y));
    }

    #[test]
    fn matrix_product_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let ab = a.mul(&b);
        assert_eq!(ab, Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]));
    }

    #[test]
    fn swap_rows_and_two_rows_mut() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        a.swap_rows(0, 2);
        assert_eq!(a.row(0), &[5.0, 6.0]);
        assert_eq!(a.row(2), &[1.0, 2.0]);
        let (r2, r0) = a.two_rows_mut(2, 0);
        assert_eq!(r2, &[1.0, 2.0]);
        assert_eq!(r0, &[5.0, 6.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mul_vec_shape_mismatch_panics() {
        Matrix::zeros(2, 3).mul_vec(&[1.0, 2.0]);
    }

    #[test]
    fn col_extraction() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.col(1), vec![2.0, 4.0]);
    }
}
