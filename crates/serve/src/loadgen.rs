//! A closed-loop load generator for the solve service.
//!
//! `clients` threads each issue `requests_per_client` sequential
//! `POST /v1/solve` requests over fresh connections (closed-loop: the
//! next request waits for the previous response, so offered load tracks
//! service capacity instead of overrunning it). The instance mix is
//! seeded and deterministic: with probability `duplicate_rate` a
//! request re-sends one of a small pool of pinned instances (these are
//! the cache's bread and butter), otherwise it sends a fresh
//! never-repeated instance. Latencies are measured client-side around
//! the full connect→response round trip, so the reported quantiles are
//! what a caller would actually observe.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use cubis_check::{CheckInstance, SplitMix64};

use crate::codec::SolveRequest;
use crate::http;

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Master seed for the instance mix.
    pub seed: u64,
    /// Probability a request re-sends a pinned pool instance.
    pub duplicate_rate: f64,
    /// Pinned-pool size (distinct instances shared by all clients).
    pub pool_size: usize,
    /// Optional per-request deadline forwarded to the server.
    pub deadline_ms: Option<u64>,
    /// Per-request I/O timeout.
    pub timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            clients: 4,
            requests_per_client: 25,
            seed: 42,
            duplicate_rate: 0.5,
            pool_size: 4,
            deadline_ms: None,
            timeout: Duration::from_secs(30),
        }
    }
}

/// What one request observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RequestOutcome {
    Hit,
    Miss,
    Rejected(u16),
    TransportError,
}

/// Aggregated results of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenOutcome {
    /// Requests attempted.
    pub requests: usize,
    /// 200s served from the cache.
    pub cache_hits: usize,
    /// 200s solved fresh.
    pub cache_misses: usize,
    /// Non-200 responses (429/503/504/…), by count.
    pub rejected: usize,
    /// Requests that failed at the transport level.
    pub transport_errors: usize,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Sorted per-request latencies for successful (200) requests.
    pub latencies: Vec<Duration>,
}

impl LoadgenOutcome {
    /// Successful requests (cache hit or fresh solve).
    pub fn successes(&self) -> usize {
        self.cache_hits + self.cache_misses
    }

    /// Cache hit rate over successful requests (0 when none).
    pub fn hit_rate(&self) -> f64 {
        if self.successes() == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.successes() as f64
    }

    /// Successful requests per second of wall clock.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.successes() as f64 / secs
    }

    /// Exact latency quantile over successful requests (nearest-rank),
    /// or `None` with no successes.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.latencies.is_empty() {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.latencies.len() as f64).ceil().max(1.0) as usize;
        self.latencies.get(rank - 1).copied()
    }
}

/// The pinned duplicate pool for `seed`: the instances repeated
/// requests re-send. Grids are clamped small — the load generator
/// measures the serving layer, not DP scaling.
pub fn duplicate_pool(seed: u64, pool_size: usize) -> Vec<CheckInstance> {
    let mut r = SplitMix64::new(seed ^ 0x5EED_F00D_0000_0001);
    (0..pool_size.max(1))
        .map(|_| clamp_for_serving(CheckInstance::generate(r.next_u64())))
        .collect()
}

fn clamp_for_serving(mut inst: CheckInstance) -> CheckInstance {
    inst.pp = inst.pp.min(4);
    inst
}

/// Run the load against a server at `addr`; blocks until every client
/// finishes.
pub fn run(addr: SocketAddr, cfg: &LoadgenConfig) -> LoadgenOutcome {
    let pool = duplicate_pool(cfg.seed, cfg.pool_size);
    let started = Instant::now();
    let handles: Vec<_> = (0..cfg.clients.max(1))
        .map(|client| {
            let pool = pool.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || client_loop(addr, client as u64, &pool, &cfg))
        })
        .collect();
    let mut requests = 0;
    let mut cache_hits = 0;
    let mut cache_misses = 0;
    let mut rejected = 0;
    let mut transport_errors = 0;
    let mut latencies = Vec::new();
    for handle in handles {
        // cubis:allow(NUM02): a panicked client thread is a harness bug with no meaningful counts to salvage; surfacing the panic beats reporting a silently short run
        let results = handle.join().expect("loadgen client panicked");
        for (outcome, latency) in results {
            requests += 1;
            match outcome {
                RequestOutcome::Hit => {
                    cache_hits += 1;
                    latencies.push(latency);
                }
                RequestOutcome::Miss => {
                    cache_misses += 1;
                    latencies.push(latency);
                }
                RequestOutcome::Rejected(_) => rejected += 1,
                RequestOutcome::TransportError => transport_errors += 1,
            }
        }
    }
    latencies.sort();
    LoadgenOutcome {
        requests,
        cache_hits,
        cache_misses,
        rejected,
        transport_errors,
        elapsed: started.elapsed(),
        latencies,
    }
}

fn client_loop(
    addr: SocketAddr,
    client: u64,
    pool: &[CheckInstance],
    cfg: &LoadgenConfig,
) -> Vec<(RequestOutcome, Duration)> {
    // Decorrelate the per-client streams while keeping the whole mix a
    // pure function of (seed, client index).
    let mut r = SplitMix64::new(cfg.seed ^ client.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut results = Vec::with_capacity(cfg.requests_per_client);
    for _ in 0..cfg.requests_per_client {
        let instance = if r.chance(cfg.duplicate_rate) {
            pool[r.range_usize(0, pool.len() - 1)].clone()
        } else {
            clamp_for_serving(CheckInstance::generate(r.next_u64()))
        };
        let body = SolveRequest {
            instance,
            deadline_ms: cfg.deadline_ms,
            policy: crate::codec::RequestPolicy::Auto,
        }
        .to_json_string();
        let started = Instant::now();
        let outcome = match http::roundtrip(
            addr,
            "POST",
            "/v1/solve",
            &[],
            body.as_bytes(),
            cfg.timeout,
        ) {
            Ok(resp) if resp.status == 200 => {
                if resp.header("x-cubis-cache") == Some("hit") {
                    RequestOutcome::Hit
                } else {
                    RequestOutcome::Miss
                }
            }
            Ok(resp) => RequestOutcome::Rejected(resp.status),
            Err(_) => RequestOutcome::TransportError,
        };
        results.push((outcome, started.elapsed()));
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_pool_is_deterministic_and_clamped() {
        let a = duplicate_pool(42, 4);
        let b = duplicate_pool(42, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|i| i.pp <= 4 && i.is_valid()));
        assert_ne!(duplicate_pool(43, 4), a);
    }

    #[test]
    fn outcome_quantiles_and_rates() {
        let outcome = LoadgenOutcome {
            requests: 10,
            cache_hits: 4,
            cache_misses: 4,
            rejected: 1,
            transport_errors: 1,
            elapsed: Duration::from_secs(2),
            latencies: (1..=8).map(Duration::from_millis).collect(),
        };
        assert_eq!(outcome.successes(), 8);
        assert!((outcome.hit_rate() - 0.5).abs() < 1e-12);
        assert!((outcome.throughput_rps() - 4.0).abs() < 1e-12);
        assert_eq!(outcome.quantile(0.5), Some(Duration::from_millis(4)));
        assert_eq!(outcome.quantile(1.0), Some(Duration::from_millis(8)));
        let empty = LoadgenOutcome {
            requests: 0,
            cache_hits: 0,
            cache_misses: 0,
            rejected: 0,
            transport_errors: 0,
            elapsed: Duration::from_secs(1),
            latencies: vec![],
        };
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.hit_rate(), 0.0);
    }

    #[test]
    fn end_to_end_against_a_live_server() {
        let handle = crate::server::start(crate::server::ServeConfig {
            workers: 2,
            queue_capacity: 32,
            ..Default::default()
        })
        .expect("bind ephemeral port");
        let outcome = run(
            handle.local_addr(),
            &LoadgenConfig {
                clients: 2,
                requests_per_client: 6,
                duplicate_rate: 0.6,
                pool_size: 2,
                ..Default::default()
            },
        );
        assert_eq!(outcome.requests, 12);
        assert_eq!(outcome.transport_errors, 0, "transport errors: {outcome:?}");
        assert!(outcome.successes() > 0);
        assert!(outcome.cache_hits > 0, "duplicate mix must produce hits: {outcome:?}");
        assert!(outcome.quantile(0.99).is_some());
        handle.shutdown();
    }
}
