//! Sampled attacker types for the worst-type and Bayesian baselines.
//!
//! Prior robust/Bayesian approaches (Brown et al. GameSec'14, Yang et
//! al. AAMAS'14) model uncertainty as a *finite set of SUQR attacker
//! types*. To compare against them on our interval games, we sample
//! types from the same uncertainty box the interval model uses.

use cubis_behavior::{ChoiceModel, SuqrWeights, UncertainSuqr};
use cubis_game::SecurityGame;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// One sampled SUQR attacker type: a weight vector plus per-target
/// payoff perception sampled from the interval model's box.
#[derive(Debug, Clone)]
pub struct SampledType {
    /// Sampled weights.
    pub weights: SuqrWeights,
    /// Sampled `(Ra_i, Pa_i)` per target.
    pub payoffs: Vec<(f64, f64)>,
}

impl SampledType {
    /// Log-attractiveness of this type at target `i`, coverage `x_i`
    /// (uses the type's own payoff perception, not the game's).
    pub fn log_attractiveness(&self, i: usize, x_i: f64) -> f64 {
        let (ra, pa) = self.payoffs[i];
        self.weights.w1 * x_i + self.weights.w2 * ra + self.weights.w3 * pa
    }

    /// Expected defender utility if the whole population follows this
    /// type (softmax response).
    pub fn defender_utility(&self, game: &SecurityGame, x: &[f64]) -> f64 {
        let t = game.num_targets();
        let logs: Vec<f64> = (0..t).map(|i| self.log_attractiveness(i, x[i])).collect();
        let q = cubis_behavior::choice::softmax(&logs);
        game.expected_defender_utility(x, &q)
    }
}

impl ChoiceModel for SampledType {
    fn log_attractiveness(&self, _game: &SecurityGame, i: usize, x_i: f64) -> f64 {
        SampledType::log_attractiveness(self, i, x_i)
    }
}

/// Sample `n` types uniformly from the box of an [`UncertainSuqr`]
/// model. Includes the two extreme corners first (all-lower, all-upper)
/// so small samples still bracket the box; deterministic under `seed`.
pub fn sample_types(model: &UncertainSuqr, n: usize, seed: u64) -> Vec<SampledType> {
    assert!(n >= 1, "sample_types: need at least one type");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let w = &model.weights;
    let mut out = Vec::with_capacity(n);
    let corner = |lo: bool, model: &UncertainSuqr| -> SampledType {
        let pick = |iv: cubis_behavior::Interval| if lo { iv.lo } else { iv.hi };
        SampledType {
            weights: SuqrWeights::new(
                pick(w.w1).min(0.0),
                pick(w.w2).max(0.0),
                pick(w.w3).max(0.0),
            ),
            payoffs: model.payoffs.iter().map(|&(ra, pa)| (pick(ra), pick(pa))).collect(),
        }
    };
    out.push(corner(true, model));
    if n >= 2 {
        out.push(corner(false, model));
    }
    while out.len() < n {
        let u = |iv: cubis_behavior::Interval, rng: &mut ChaCha8Rng| {
            // cubis:allow(NUM01): degenerate-interval check; width is
            // exactly zero iff lo and hi are the same bits, and only
            // then is `gen_range(lo..=hi)` replaced by the constant.
            if iv.width() == 0.0 {
                iv.lo
            } else {
                rng.gen_range(iv.lo..=iv.hi)
            }
        };
        let weights = SuqrWeights::new(
            u(w.w1, &mut rng).min(0.0),
            u(w.w2, &mut rng).max(0.0),
            u(w.w3, &mut rng).max(0.0),
        );
        let payoffs = model
            .payoffs
            .iter()
            .map(|&(ra, pa)| (u(ra, &mut rng), u(pa, &mut rng)))
            .collect();
        out.push(SampledType { weights, payoffs });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubis_behavior::{BoundConvention, IntervalChoiceModel, SuqrUncertainty};
    use cubis_game::GameGenerator;

    fn fixture() -> (cubis_game::SecurityGame, UncertainSuqr) {
        let game = GameGenerator::new(50).generate(4, 2.0);
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            0.5,
            BoundConvention::ExactInterval,
        );
        (game, model)
    }

    #[test]
    fn deterministic_and_correct_count() {
        let (_, model) = fixture();
        let a = sample_types(&model, 7, 3);
        let b = sample_types(&model, 7, 3);
        assert_eq!(a.len(), 7);
        assert_eq!(a[3].weights.w1, b[3].weights.w1);
    }

    #[test]
    fn sampled_types_lie_inside_interval_bounds() {
        let (game, model) = fixture();
        let types = sample_types(&model, 20, 9);
        for ty in &types {
            for i in 0..4 {
                for &x in &[0.0, 0.4, 1.0] {
                    let f = ty.log_attractiveness(i, x);
                    let (lo, hi) = model.log_bounds(&game, i, x);
                    assert!(
                        f >= lo - 1e-9 && f <= hi + 1e-9,
                        "type escapes the box: {f} vs [{lo}, {hi}]"
                    );
                }
            }
        }
    }

    #[test]
    fn corners_come_first() {
        let (_, model) = fixture();
        let types = sample_types(&model, 2, 0);
        assert_eq!(types[0].weights.w1, model.weights.w1.lo);
        assert_eq!(types[1].weights.w1, model.weights.w1.hi.min(0.0));
    }

    #[test]
    fn type_defender_utility_matches_manual_softmax() {
        let (game, model) = fixture();
        let ty = &sample_types(&model, 3, 1)[2];
        let x = cubis_game::uniform_coverage(4, 2.0);
        let logs: Vec<f64> = (0..4).map(|i| ty.log_attractiveness(i, x[i])).collect();
        let q = cubis_behavior::choice::softmax(&logs);
        let manual = game.expected_defender_utility(&x, &q);
        assert!((ty.defender_utility(&game, &x) - manual).abs() < 1e-12);
    }
}
