//! Shared helpers for the criterion benches.
//!
//! Each bench target regenerates one table/figure of the evaluation
//! (DESIGN.md §4). Criterion measures the *solver* runtimes; the
//! quality numbers for the same configurations are produced by the
//! `cubis-eval` binaries (`exp_*`), which the benches reuse for their
//! workloads so the two always agree on inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod pins;
pub mod serve_report;

pub use cubis_eval::fixtures;
pub use pins::{BenchPins, ServePin, PINS_FORMAT_VERSION};
pub use serve_report::{ServeBenchReport, SERVE_FORMAT_VERSION};

use cubis_behavior::UncertainSuqr;
use cubis_game::SecurityGame;

/// A deterministic workload instance for benching: `(game, model)` at
/// the given shape, matching the eval harness's seeds.
pub fn instance(seed: u64, t: usize, r: f64, delta: f64) -> (SecurityGame, UncertainSuqr) {
    fixtures::workload(seed, t, r, delta)
}
