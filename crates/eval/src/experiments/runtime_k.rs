//! **F6 — MILP runtime vs K.**
//!
//! The MILP of (33–40) has `T·K` continuous variables and
//! `T·K` binaries (`q` and `h`); its solve time grows with K while the
//! approximation error falls (F4) — the practical K trade-off.

use super::Profile;
use crate::fixtures::workload;
use crate::metrics::{median, timed};
use crate::report::Report;
use cubis_core::SolveError;

/// The K grid.
pub const KS: [usize; 5] = [2, 4, 8, 16, 24];
/// Workload shape.
pub const T: usize = 8;

/// Run the experiment.
pub fn run(profile: Profile) -> Result<Report, SolveError> {
    let reps = match profile {
        Profile::Quick => 3,
        Profile::Full => 7,
    };
    let mut r = Report::new(
        "F6 — CUBIS(MILP) runtime and effort vs K",
        vec![
            "K",
            "median secs",
            "B&B nodes",
            "simplex iters",
            "binary steps",
        ],
    );
    r.note(format!(
        "T = {T}, R = 2, δ = 0.5, ε = 1e-2, median over {reps} seeds. Effort \
         columns are per full CUBIS solve (all binary-search steps)."
    ));
    for &k in &KS {
        let mut secs = Vec::new();
        let mut nodes = Vec::new();
        let mut iters = Vec::new();
        let mut bsteps = Vec::new();
        for seed in 0..reps {
            let (game, model) = workload(seed, T, 2.0, 0.5);
            let p = cubis_core::RobustProblem::new(&game, &model);
            let (sol, s) = timed(|| super::cubis_milp(k, 1e-2).solve(&p));
            let sol = sol?;
            secs.push(s);
            nodes.push(sol.stats.milp_nodes as f64);
            iters.push(sol.stats.lp_iterations as f64);
            bsteps.push(sol.binary_steps as f64);
        }
        r.row(vec![
            format!("{k}"),
            format!("{:.3}", median(&secs)),
            format!("{:.0}", median(&nodes)),
            format!("{:.0}", median(&iters)),
            format!("{:.0}", median(&bsteps)),
        ]);
    }
    Ok(r)
}
