//! The numeric-safety lint rules.
//!
//! Every v1 rule is a purely lexical pattern over the token stream from
//! [`crate::lexer`], scoped by file class (library / test / bench /
//! example / binary) and by `#[cfg(test)]` regions inside library
//! files. The v2 scope-aware rules ([`scan_scoped`]) additionally see
//! the brace-matched scope tree from [`crate::scopes`], so they can
//! reason about function extents: a lock guard and the blocking call it
//! overlaps, a `HashMap` iterated by the same function that serializes
//! output. See DESIGN.md §"Static analysis" for the rationale behind
//! each rule and the `cubis:allow` escape hatch.

use crate::lexer::{TokKind, Token};
use crate::scopes::ScopeTree;
use crate::{FileClass, Finding, Severity};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Identifier and one-line summary for each rule, used by the CLI
/// `rules` subcommand and the documentation.
pub const RULE_DOCS: &[(&str, &str)] = &[
    (
        "NUM01",
        "raw f64 `==`/`!=` against a float literal or NAN/INFINITY in library code; \
         use cubis_linalg::approx_eq (or annotate intentional exact-bit compares)",
    ),
    (
        "NUM02",
        "`.unwrap()`/`.expect()`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in \
         library code; route failures through SolveError/MilpError instead",
    ),
    (
        "NUM03",
        "NaN-hazardous comparator: `partial_cmp(..).unwrap()` or a \
         `sort_by`/`max_by`/`min_by` closure built on `partial_cmp`; use f64::total_cmp",
    ),
    (
        "CONC01",
        "`Ordering::Relaxed` atomic operation in library code; the incumbent/termination \
         protocol documents Acquire/Release — prove and annotate any relaxation",
    ),
    (
        "DET01",
        "unseeded randomness (`thread_rng`/`from_entropy`/`rand::random`/`OsRng`) outside \
         eval binaries and benches; seed a ChaCha8Rng for reproducibility",
    ),
    (
        "DET02",
        "HashMap/HashSet iteration feeding formatted or serialized output in library code; \
         iteration order is nondeterministic — use BTreeMap/BTreeSet or sort before emitting",
    ),
    (
        "CONC02",
        "blocking call (solve/send/recv/join/write_all/…) while a Mutex/RwLock guard bound \
         in the same scope is still live; drop the guard before blocking",
    ),
    (
        "NUM04",
        "lossy float→int (or f64→f32) `as` cast in lp/milp/core hot paths; use try_from \
         on an integer-valued intermediate, or annotate the clamp that bounds it",
    ),
    (
        "PANIC01",
        "slice indexing inside an lp/milp loop body; pivot loops document `.get` + \
         SolveError as the out-of-range route instead of a panicking `[]`",
    ),
    (
        "TRC01",
        "trace counter/span name drift: an emitted name missing from \
         cubis_trace::names (so /metrics and trace-report cannot table it), or a \
         registered name no library code emits (dead counter)",
    ),
    (
        "LINT01",
        "stale suppression: a well-formed `cubis:allow` that no longer masks any finding; \
         delete the comment (not itself suppressible)",
    ),
    (
        "LINT00",
        "malformed suppression: `cubis:allow` without a justification string or naming an \
         unknown rule (not itself suppressible)",
    ),
    (
        "SAFE01",
        "library crate root missing `#![forbid(unsafe_code)]`; every crates/*/src/lib.rs \
         must carry the attribute (sole exemption: cubis-reactor's root, which denies \
         unsafe and re-allows it only for the SAFE02-audited sys module)",
    ),
    (
        "SAFE02",
        "`unsafe` outside the audited syscall module (crates/reactor/src/sys.rs), or an \
         unsafe block inside it without a `// cubis:sys-audit` justification marker on a \
         nearby preceding line; all raw-pointer/FFI reasoning lives in that one file",
    ),
];

/// Rule identifiers that may appear inside `cubis:allow(…)`.
///
/// The meta rules (LINT00/LINT01), the cross-file invariants (TRC01,
/// SAFE01) and nothing else are excluded: suppressing a stale
/// suppression or a registry drift makes no sense — fix the drift.
pub const ALLOWABLE_RULES: &[&str] = &[
    "NUM01", "NUM02", "NUM03", "NUM04", "CONC01", "CONC02", "DET01", "DET02", "PANIC01",
];

/// Severity of a rule: `Deny` findings must be fixed or `cubis:allow`ed;
/// `Warn` findings may instead be absorbed by the committed
/// `analyze-baseline.json` (see `cubis-xtask analyze --fix-baseline`).
pub fn severity(rule: &str) -> Severity {
    match rule {
        "NUM04" | "PANIC01" => Severity::Warn,
        _ => Severity::Deny,
    }
}

/// Run every token-level rule over one file's token stream.
///
/// `in_test[i]` marks tokens inside `#[cfg(test)]`/`#[test]` regions of
/// library files; file-level classes (test files, benches, examples)
/// come in through `class`.
pub fn scan_tokens(
    path: &Path,
    class: FileClass,
    toks: &[Token],
    in_test: &[bool],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lib_code = |i: usize| class == FileClass::Library && !in_test[i];
    // NUM03 and DET01 guard every execution context: a NaN panic in a
    // test comparator is a flaky test, unseeded randomness anywhere but
    // the eval/bench entry points breaks reproduction runs.
    let det_exempt = matches!(class, FileClass::Bench | FileClass::EvalBinary);
    let mut num03_lines: BTreeSet<u32> = BTreeSet::new();

    for i in 0..toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if t.text == "==" || t.text == "!=" => {
                if lib_code(i) {
                    let nan_const = |k: usize| {
                        toks.get(k).is_some_and(|n| {
                            n.kind == TokKind::Ident
                                && matches!(n.text.as_str(), "NAN" | "INFINITY" | "NEG_INFINITY")
                        })
                    };
                    let floaty = |k: usize| {
                        toks.get(k).is_some_and(|n| n.kind == TokKind::Float) || nan_const(k)
                    };
                    // `x == f64::NAN` — the constant sits two tokens past `::`.
                    let qualified_nan_after = toks
                        .get(i + 1)
                        .is_some_and(|n| n.is_ident("f64") || n.is_ident("f32"))
                        && toks.get(i + 2).is_some_and(|n| n.is_punct("::"))
                        && nan_const(i + 3);
                    if (i > 0 && floaty(i - 1)) || floaty(i + 1) || qualified_nan_after {
                        findings.push(Finding::new(
                            "NUM01",
                            path,
                            t.line,
                            format!(
                                "raw float `{}` comparison; use cubis_linalg::approx_eq or \
                                 annotate the intentional exact compare",
                                t.text
                            ),
                        ));
                    }
                }
            }
            TokKind::Ident => {
                let next_is = |k: usize, p: &str| toks.get(k).is_some_and(|n| n.is_punct(p));
                // NUM02: `.unwrap()` / `.expect(`.
                if (t.text == "unwrap" || t.text == "expect")
                    && i > 0
                    && toks[i - 1].is_punct(".")
                    && next_is(i + 1, "(")
                    && lib_code(i)
                    && !follows_partial_cmp(toks, i)
                {
                    findings.push(Finding::new(
                        "NUM02",
                        path,
                        t.line,
                        format!(
                            "`.{}()` in library code; propagate a SolveError/MilpError (or \
                             annotate why this cannot fail)",
                            t.text
                        ),
                    ));
                }
                // NUM02: panic-family macros.
                if matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && next_is(i + 1, "!")
                    && lib_code(i)
                {
                    findings.push(Finding::new(
                        "NUM02",
                        path,
                        t.line,
                        format!(
                            "`{}!` in library code; return an error variant instead of aborting \
                             the solve",
                            t.text
                        ),
                    ));
                }
                // NUM03a: partial_cmp(..).unwrap()/.expect(..).
                if t.text == "partial_cmp" && next_is(i + 1, "(") {
                    if let Some(close) = matching_paren(toks, i + 1) {
                        let panicking = toks.get(close + 1).is_some_and(|n| n.is_punct("."))
                            && toks
                                .get(close + 2)
                                .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"));
                        if panicking {
                            num03_lines.insert(t.line);
                        }
                    }
                }
                // NUM03b: partial_cmp anywhere inside an ordering closure.
                if matches!(
                    t.text.as_str(),
                    "sort_by"
                        | "sort_unstable_by"
                        | "sort_by_key"
                        | "max_by"
                        | "min_by"
                        | "binary_search_by"
                ) && next_is(i + 1, "(")
                {
                    if let Some(close) = matching_paren(toks, i + 1) {
                        for inner in &toks[i + 2..close] {
                            if inner.is_ident("partial_cmp") {
                                num03_lines.insert(inner.line);
                            }
                        }
                    }
                }
                // CONC01: Ordering::Relaxed (std::cmp::Ordering has no
                // Relaxed variant, so the sequence is unambiguous).
                if t.text == "Relaxed"
                    && i >= 2
                    && toks[i - 1].is_punct("::")
                    && toks[i - 2].is_ident("Ordering")
                    && lib_code(i)
                {
                    findings.push(Finding::new(
                        "CONC01",
                        path,
                        t.line,
                        "`Ordering::Relaxed` is weaker than the documented incumbent/termination \
                         protocol; use Acquire/Release/AcqRel or annotate the proof"
                            .to_string(),
                    ));
                }
                // DET01: unseeded randomness.
                if !det_exempt {
                    let unseeded = matches!(t.text.as_str(), "thread_rng" | "from_entropy")
                        || t.text == "OsRng"
                        || (t.text == "random"
                            && i >= 2
                            && toks[i - 1].is_punct("::")
                            && toks[i - 2].is_ident("rand"));
                    if unseeded {
                        findings.push(Finding::new(
                            "DET01",
                            path,
                            t.line,
                            format!(
                                "`{}` draws unseeded entropy; use ChaCha8Rng::seed_from_u64 so \
                                 runs reproduce",
                                t.text
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }
    }

    for line in num03_lines {
        findings.push(Finding::new(
            "NUM03",
            path,
            line,
            "comparator panics or misorders on NaN; use f64::total_cmp".to_string(),
        ));
    }
    findings
}

/// True when the `.unwrap`/`.expect` identifier at `i` directly chains
/// off a `partial_cmp(…)` call — that hazard is NUM03's (more specific)
/// finding, so NUM02 stays quiet to avoid double-reporting.
fn follows_partial_cmp(toks: &[Token], i: usize) -> bool {
    if i < 2 || !toks[i - 2].is_punct(")") {
        return false;
    }
    let mut depth = 0usize;
    for k in (0..i - 1).rev() {
        if toks[k].kind == TokKind::Punct {
            match toks[k].text.as_str() {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        return k > 0 && toks[k - 1].is_ident("partial_cmp");
                    }
                }
                _ => {}
            }
        }
    }
    false
}

/// Index of the `)` matching the `(` at `open` (same nesting level), if
/// the stream is balanced.
fn matching_paren(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth = depth.checked_sub(1)?;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Compute, for each token, whether it sits inside a test-only region
/// of a library file: a `#[cfg(test)] mod … { … }`, a `#[test]`/
/// `#[bench]` function, or any other item carrying a test-flavored
/// attribute. Brace-depth tracking makes the mask robust to nesting.
pub fn test_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut depth: i64 = 0;
    // Depths whose closing brace ends an active test region.
    let mut regions: Vec<i64> = Vec::new();
    // Depth at which a test attribute was seen, awaiting its item body.
    let mut pending: Option<i64> = None;
    let mut i = 0;
    while i < toks.len() {
        mask[i] = !regions.is_empty();
        let t = &toks[i];
        if t.is_punct("#") {
            // `#[…]` outer attribute (inner `#![…]` attributes are
            // skipped without affecting the mask).
            let inner = toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
            let open = i + 1 + usize::from(inner);
            if toks.get(open).is_some_and(|n| n.is_punct("[")) {
                if let Some(close) = matching_bracket(toks, open) {
                    if !inner {
                        let body = &toks[open + 1..close];
                        let has = |name: &str| body.iter().any(|b| b.is_ident(name));
                        if (has("test") || has("bench")) && !has("not") {
                            pending = Some(depth);
                        }
                    }
                    for m in mask.iter_mut().take(close + 1).skip(i) {
                        *m = !regions.is_empty();
                    }
                    i = close + 1;
                    continue;
                }
            }
        } else if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => {
                    depth += 1;
                    if pending.take().is_some() {
                        regions.push(depth);
                    }
                }
                "}" => {
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                    depth -= 1;
                }
                ";" => {
                    // `#[cfg(test)] use …;` — attribute consumed by a
                    // braceless item at the same depth.
                    if pending == Some(depth) {
                        pending = None;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    mask
}

// ---------------------------------------------------------------------
// v2 scope-aware rules
// ---------------------------------------------------------------------

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Calls that park the current thread (or, for `solve*`, can run for an
/// unbounded number of pivots) — holding a shard lock across one of
/// these is the serve-v1 hazard CONC02 exists for.
const BLOCKING_CALLS: &[&str] = &[
    "accept",
    "connect",
    "flush",
    "join",
    "park",
    "read_exact",
    "read_to_end",
    "recv",
    "recv_timeout",
    "send",
    "sleep",
    "solve",
    "solve_batch",
    "wait",
    "write_all",
];

/// True for the lp/milp/core paths whose inner loops NUM04/PANIC01
/// police.
fn hot_crate(path: &Path) -> bool {
    let p = path.to_string_lossy();
    p.starts_with("crates/lp/") || p.starts_with("crates/milp/") || p.starts_with("crates/core/")
}

/// Run the scope-aware rules (DET02, CONC02, NUM04, PANIC01) over one
/// file. Complements [`scan_tokens`]; the caller merges both result
/// sets.
pub fn scan_scoped(
    path: &Path,
    class: FileClass,
    toks: &[Token],
    in_test: &[bool],
    tree: &ScopeTree,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    if class != FileClass::Library {
        return findings;
    }
    for (fid, scope) in tree.fns() {
        if scope.is_test || in_test.get(scope.tok_start).copied().unwrap_or(false) {
            continue;
        }
        // Scan from the signature, not the body brace: parameters like
        // `m: &HashMap<…>` and `x: f64` are binding sites the rules
        // must see.
        let range = scope.sig_start..scope.tok_end.min(toks.len());
        det02_in_fn(path, toks, range.clone(), &mut findings);
        conc02_in_fn(path, toks, range.clone(), &mut findings);
        if hot_crate(path) {
            num04_in_fn(path, toks, range.clone(), &mut findings);
            panic01_in_fn(path, toks, range, tree, fid, &mut findings);
        }
    }
    findings
}

/// Identifiers bound to a `HashMap`/`HashSet` inside `range`:
/// `let [mut] x: HashMap<…>`, `let [mut] x = HashMap::new()`, or a
/// parameter `x: &HashMap<…>`.
fn hash_bound_idents(toks: &[Token], range: std::ops::Range<usize>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for i in range.clone() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !(t.text == "HashMap" || t.text == "HashSet") {
            continue;
        }
        // Walk left over type noise (`:`, `&`, `mut`, `<`, lifetimes,
        // `=`, path `::`) to the identifier being bound.
        let mut k = i;
        while k > range.start {
            k -= 1;
            match toks[k].kind {
                TokKind::Punct if matches!(toks[k].text.as_str(), ":" | "&" | "=" | "<") => {}
                TokKind::Ident if toks[k].text == "mut" => {}
                TokKind::Lifetime => {}
                TokKind::Ident => {
                    out.insert(toks[k].text.clone());
                    break;
                }
                _ => break,
            }
        }
    }
    out
}

/// DET02: a hash-ordered collection is iterated in a function that also
/// formats/serializes output, with no sort or BTree re-collection in
/// sight.
fn det02_in_fn(
    path: &Path,
    toks: &[Token],
    range: std::ops::Range<usize>,
    findings: &mut Vec<Finding>,
) {
    let hashed = hash_bound_idents(toks, range.clone());
    if hashed.is_empty() {
        return;
    }
    let has_ident = |name: &str| toks[range.clone()].iter().any(|t| t.is_ident(name));
    // An explicit ordering step anywhere in the fn is the documented
    // mitigation; a BTree re-collection likewise.
    let mitigated = [
        "sort",
        "sort_by",
        "sort_by_key",
        "sort_unstable",
        "sort_unstable_by",
        "sort_unstable_by_key",
        "BTreeMap",
        "BTreeSet",
    ]
    .iter()
    .any(|m| has_ident(m));
    if mitigated {
        return;
    }
    let sink = [
        "format",
        "write",
        "writeln",
        "push_str",
        "to_json_string",
        "serialize",
        "to_string",
    ]
    .iter()
    .any(|s| has_ident(s));
    if !sink {
        return;
    }
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for i in range.clone() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !hashed.contains(&t.text) || seen.contains(t.text.as_str()) {
            continue;
        }
        // Iteration forms: `for _ in [&mut] x`, `x.iter()`, `x.keys()`,
        // `x.values()`, `x.into_iter()`.
        let for_iterated = {
            let mut k = i;
            let mut saw_in = false;
            while k > range.start {
                k -= 1;
                match toks[k].text.as_str() {
                    "&" | "mut" => continue,
                    "in" => saw_in = true,
                    _ => {}
                }
                break;
            }
            saw_in
        };
        let method_iterated = toks.get(i + 1).is_some_and(|n| n.is_punct("."))
            && toks.get(i + 2).is_some_and(|n| {
                matches!(
                    n.text.as_str(),
                    "iter" | "iter_mut" | "into_iter" | "keys" | "values" | "values_mut"
                )
            });
        if for_iterated || method_iterated {
            seen.insert(&t.text);
            findings.push(Finding::new(
                "DET02",
                path,
                t.line,
                format!(
                    "iterating hash-ordered `{}` in a function that formats/serializes \
                     output; iteration order varies per process — use BTreeMap/BTreeSet \
                     or sort before emitting",
                    t.text
                ),
            ));
        }
    }
}

/// CONC02: a Mutex/RwLock guard binding whose live extent contains a
/// blocking call.
fn conc02_in_fn(
    path: &Path,
    toks: &[Token],
    range: std::ops::Range<usize>,
    findings: &mut Vec<Finding>,
) {
    let mut i = range.start;
    while i < range.end {
        if toks[i].is_ident("let") {
            if let Some((guard, semi)) = guard_binding(toks, i, range.end) {
                report_blocking_in_extent(path, toks, semi + 1, range.end, &guard, findings);
            }
        }
        i += 1;
    }
}

/// If the statement starting at `let_at` is a plain lock acquisition
/// (`let [mut] g = chain.lock()[.unwrap_or_else(…)];`, `.read()`,
/// argless `.write()`, or a `lock_*` helper), return the guard name and
/// the index of the terminating `;`.
fn guard_binding(toks: &[Token], let_at: usize, end: usize) -> Option<(String, usize)> {
    let mut k = let_at + 1;
    if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
        k += 1;
    }
    let name = toks
        .get(k)
        .filter(|t| t.kind == TokKind::Ident)?
        .text
        .clone();
    if !toks.get(k + 1).is_some_and(|t| t.is_punct("=")) {
        return None;
    }
    // Walk the initializer, collecting the call chain's method names.
    // Any `{` (match/block initializer) disqualifies: too complex to be
    // a plain acquisition.
    let mut methods: Vec<(String, bool)> = Vec::new(); // (name, argless)
    let mut j = k + 2;
    let semi;
    loop {
        if j >= end {
            return None;
        }
        let t = &toks[j];
        match t.kind {
            TokKind::Punct if t.text == ";" => {
                semi = j;
                break;
            }
            TokKind::Punct if t.text == "{" => return None,
            TokKind::Ident if toks.get(j + 1).is_some_and(|n| n.is_punct("(")) => {
                let close = matching_paren(toks, j + 1)?;
                methods.push((t.text.clone(), close == j + 2));
                j = close + 1;
                continue;
            }
            _ => {}
        }
        j += 1;
    }
    // The chain is a guard acquisition iff the last non-adapter call is
    // a lock primitive: `…lock() ;`, `…read().unwrap_or_else(…) ;`, etc.
    let is_adapter = |m: &str| matches!(m, "unwrap" | "expect" | "unwrap_or_else");
    let lockish = |m: &str, argless: bool| {
        m == "lock" || m == "read" || m.starts_with("lock_") || (m == "write" && argless)
    };
    let mut saw_lock = false;
    for (m, argless) in methods.iter().rev() {
        if is_adapter(m) {
            continue;
        }
        saw_lock = lockish(m, *argless);
        break;
    }
    if saw_lock {
        Some((name, semi))
    } else {
        None
    }
}

/// Scan forward from the guard binding to the end of its enclosing
/// block (or an explicit `drop(guard)`), flagging blocking calls.
fn report_blocking_in_extent(
    path: &Path,
    toks: &[Token],
    from: usize,
    fn_end: usize,
    guard: &str,
    findings: &mut Vec<Finding>,
) {
    let mut depth: i64 = 0;
    let mut i = from;
    while i < fn_end {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return; // enclosing block closed; guard dropped
                    }
                }
                _ => {}
            }
        } else if t.kind == TokKind::Ident {
            // `drop(guard)` or `std::mem::drop(guard)` ends the extent.
            if t.text == "drop"
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                && toks.get(i + 2).is_some_and(|n| n.is_ident(guard))
            {
                return;
            }
            let is_call = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
            let is_method = i > 0 && (toks[i - 1].is_punct(".") || toks[i - 1].is_punct("::"));
            if is_call && is_method && BLOCKING_CALLS.contains(&t.text.as_str()) {
                findings.push(Finding::new(
                    "CONC02",
                    path,
                    t.line,
                    format!(
                        "`.{}(…)` can block while lock guard `{guard}` is still live; \
                         drop the guard (or narrow its scope) before blocking",
                        t.text
                    ),
                ));
            }
        }
        i += 1;
    }
}

/// NUM04: lossy float→int / f64→f32 `as` casts in hot-path crates.
fn num04_in_fn(
    path: &Path,
    toks: &[Token],
    range: std::ops::Range<usize>,
    findings: &mut Vec<Finding>,
) {
    // Float-typed locals/params: `x: f64`, `let x = 1.5`, …
    let mut floats: BTreeSet<String> = BTreeSet::new();
    let mut f64s: BTreeSet<String> = BTreeSet::new();
    for i in range.clone() {
        let t = &toks[i];
        if t.kind == TokKind::Ident && (t.text == "f64" || t.text == "f32") {
            let mut k = i;
            while k > range.start {
                k -= 1;
                match toks[k].kind {
                    TokKind::Punct if matches!(toks[k].text.as_str(), ":" | "&" | "<") => {}
                    TokKind::Ident if toks[k].text == "mut" => {}
                    TokKind::Ident => {
                        floats.insert(toks[k].text.clone());
                        if t.text == "f64" {
                            f64s.insert(toks[k].text.clone());
                        }
                        break;
                    }
                    _ => break,
                }
            }
        }
        if t.is_ident("let") {
            let mut k = i + 1;
            if toks.get(k).is_some_and(|n| n.is_ident("mut")) {
                k += 1;
            }
            if toks.get(k).map(|n| n.kind) == Some(TokKind::Ident)
                && toks.get(k + 1).is_some_and(|n| n.is_punct("="))
                && toks.get(k + 2).map(|n| n.kind) == Some(TokKind::Float)
            {
                floats.insert(toks[k].text.clone());
                if !toks[k + 2].text.ends_with("f32") {
                    f64s.insert(toks[k].text.clone());
                }
            }
        }
    }
    let mut lines: BTreeSet<u32> = BTreeSet::new();
    for i in range.clone() {
        if !toks[i].is_ident("as") || i == range.start {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        let to_int = target.kind == TokKind::Ident && INT_TYPES.contains(&target.text.as_str());
        let to_f32 = target.is_ident("f32");
        if !to_int && !to_f32 {
            continue;
        }
        let prev = &toks[i - 1];
        let lossy = if prev.kind == TokKind::Float {
            to_int
        } else if prev.is_punct(")") && i >= 4 && toks[i - 2].is_punct("(") {
            // `x.floor() as usize` — a rounding result truncated into an
            // int type with no range check.
            to_int
                && toks[i - 4].is_punct(".")
                && matches!(
                    toks[i - 3].text.as_str(),
                    "floor" | "ceil" | "round" | "trunc"
                )
        } else if prev.kind == TokKind::Ident {
            (to_int && floats.contains(&prev.text)) || (to_f32 && f64s.contains(&prev.text))
        } else {
            false
        };
        if lossy {
            lines.insert(toks[i].line);
        }
    }
    for line in lines {
        findings.push(Finding::new(
            "NUM04",
            path,
            line,
            "lossy numeric `as` cast on a hot path; use try_from on an integer-valued \
             intermediate, or annotate the clamp that bounds it"
                .to_string(),
        ));
    }
}

/// PANIC01: panicking `[]` indexing with a variable index inside a
/// loop body of an lp/milp/core function. Reported once per
/// `(function, indexed identifier)` so the count stays reviewable; the
/// line is the first offending site.
fn panic01_in_fn(
    path: &Path,
    toks: &[Token],
    range: std::ops::Range<usize>,
    tree: &ScopeTree,
    fid: usize,
    findings: &mut Vec<Finding>,
) {
    let in_loop = loop_mask(toks, range.clone());
    let mut first_site: BTreeMap<String, u32> = BTreeMap::new();
    for i in range.clone() {
        if !in_loop[i - range.start] {
            continue;
        }
        let t = &toks[i];
        // `base[expr]` where `base` is an identifier (not a macro `[`,
        // not an attribute) and `expr` mentions at least one variable.
        if t.kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|n| n.is_punct("[")) {
            continue;
        }
        let Some(close) = matching_bracket(toks, i + 1) else {
            continue;
        };
        let variable_index = toks[i + 2..close]
            .iter()
            .any(|n| n.kind == TokKind::Ident && !INT_TYPES.contains(&n.text.as_str()));
        if variable_index {
            first_site.entry(t.text.clone()).or_insert(t.line);
        }
    }
    for (base, line) in first_site {
        findings.push(Finding::new(
            "PANIC01",
            path,
            line,
            format!(
                "fn `{}` indexes `{base}[…]` with a variable index inside a loop; pivot \
                 loops document `.get` + SolveError as the out-of-range route",
                tree.scopes()[fid].name
            ),
        ));
    }
}

/// For each token in `range`, whether it sits inside a `for`/`while`/
/// `loop` body. `for` is only a loop when an `in` keyword precedes the
/// body brace (rejecting `impl Trait for T {` and HRTB `for<'a>`).
fn loop_mask(toks: &[Token], range: std::ops::Range<usize>) -> Vec<bool> {
    let mut mask = vec![false; range.len()];
    for i in range.clone() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !matches!(t.text.as_str(), "for" | "while" | "loop") {
            continue;
        }
        // Find the body `{` at nesting level 0 relative to the keyword.
        let mut nest = 0i64;
        let mut saw_in = t.text != "for";
        let mut body_open = None;
        for (k, n) in toks.iter().enumerate().take(range.end).skip(i + 1) {
            if n.kind == TokKind::Punct {
                match n.text.as_str() {
                    "(" | "[" => nest += 1,
                    ")" | "]" => nest -= 1,
                    "{" if nest == 0 => {
                        body_open = Some(k);
                        break;
                    }
                    ";" if nest == 0 => break,
                    _ => {}
                }
            } else if n.is_ident("in") && nest == 0 {
                saw_in = true;
            }
        }
        let Some(open) = body_open else { continue };
        if !saw_in {
            continue;
        }
        // Mark the body extent via brace matching.
        let mut depth = 0i64;
        for (k, n) in toks.iter().enumerate().take(range.end).skip(open) {
            if n.kind == TokKind::Punct {
                match n.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            for m in mask
                                .iter_mut()
                                .take(k + 1 - range.start)
                                .skip(open - range.start)
                            {
                                *m = true;
                            }
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    mask
}

// ---------------------------------------------------------------------
// cross-file invariant inputs (consumed by the workspace pass in lib.rs)
// ---------------------------------------------------------------------

/// Collect `.counter("name", …)` / `.span("name")` emission sites in
/// non-test code: `(counters, spans)` as `(name, line)` lists.
pub fn collect_emissions(
    toks: &[Token],
    in_test: &[bool],
) -> (Vec<(String, u32)>, Vec<(String, u32)>) {
    let mut counters = Vec::new();
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || in_test[i]
            || !(t.text == "counter" || t.text == "span")
            || i == 0
            || !toks[i - 1].is_punct(".")
            || !toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            continue;
        }
        let Some(name_tok) = toks.get(i + 2).filter(|n| n.kind == TokKind::Str) else {
            continue;
        };
        let Some(name) = str_literal_value(&name_tok.text) else {
            continue;
        };
        if t.text == "counter" {
            counters.push((name, name_tok.line));
        } else {
            spans.push((name, name_tok.line));
        }
    }
    (counters, spans)
}

/// The registered counter/span names parsed out of
/// `crates/trace/src/names.rs`: `(counters, spans)` as `(name, line)`.
/// `None` when the `COUNTERS`/`SPANS` tables cannot be found.
pub fn parse_name_registry(toks: &[Token]) -> Option<(Vec<(String, u32)>, Vec<(String, u32)>)> {
    let counters = parse_registry_table(toks, "COUNTERS")?;
    let spans = parse_registry_table(toks, "SPANS")?;
    Some((counters, spans))
}

fn parse_registry_table(toks: &[Token], table: &str) -> Option<Vec<(String, u32)>> {
    // `pub const TABLE: &[(&str, &str)] = &[ ("name", "doc"), … ];`
    let at = toks.iter().position(|t| t.is_ident(table))?;
    // Find the `[` opening the literal (the one after `=`), then take
    // the first string of every top-level paren group.
    let eq = (at..toks.len()).find(|&k| toks[k].is_punct("="))?;
    let open = (eq..toks.len()).find(|&k| toks[k].is_punct("["))?;
    let close = matching_bracket(toks, open)?;
    let mut out = Vec::new();
    let mut k = open + 1;
    while k < close {
        if toks[k].is_punct("(") {
            let group_close = matching_paren(toks, k)?;
            if let Some(name_tok) = toks[k + 1..group_close]
                .iter()
                .find(|t| t.kind == TokKind::Str)
            {
                out.push((str_literal_value(&name_tok.text)?, name_tok.line));
            }
            k = group_close + 1;
        } else {
            k += 1;
        }
    }
    Some(out)
}

/// The value of an escape-free string literal token (the lexer stores
/// `Str` token text without the surrounding quotes).
fn str_literal_value(text: &str) -> Option<String> {
    if text.contains('\\') {
        return None;
    }
    Some(text.to_string())
}

/// Whether the token stream carries the crate attribute
/// `#![forbid(unsafe_code)]` (SAFE01's witness).
pub fn has_forbid_unsafe(toks: &[Token]) -> bool {
    toks.windows(8).any(|w| {
        w[0].is_punct("#")
            && w[1].is_punct("!")
            && w[2].is_punct("[")
            && w[3].is_ident("forbid")
            && w[4].is_punct("(")
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(")")
            && w[7].is_punct("]")
    })
}

/// Workspace-relative path of the one file where `unsafe` is legal:
/// the reactor's syscall shim (SAFE02's exemption).
pub const SYS_MODULE_PATH: &str = "crates/reactor/src/sys.rs";

/// How close (in lines) a `// cubis:sys-audit` marker must sit above an
/// unsafe block inside [`SYS_MODULE_PATH`] to justify it. The markers
/// annotate the wrapper's safety argument, so a few lines of setup
/// between the comment and the block are fine; a marker further away is
/// treated as belonging to some other site.
pub const SYS_AUDIT_WINDOW: u32 = 10;

/// SAFE02: confine `unsafe` to the audited syscall module.
///
/// Outside [`SYS_MODULE_PATH`], any `unsafe` token is a finding — the
/// workspace forbids the keyword wholesale, and the reactor crate's
/// root re-allows it only for its `sys` module. Inside that module,
/// every `unsafe` must carry a `// cubis:sys-audit` marker within the
/// preceding [`SYS_AUDIT_WINDOW`] lines (same line counts) spelling out
/// the safety argument. Doc comments and string literals mentioning the
/// keyword never fire (the lexer drops comments and tags strings).
pub fn scan_unsafe(path: &Path, toks: &[Token], src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let sites: Vec<u32> = toks
        .iter()
        .filter(|t| t.is_ident("unsafe"))
        .map(|t| t.line)
        .collect();
    if sites.is_empty() {
        return findings;
    }
    if path == Path::new(SYS_MODULE_PATH) {
        let markers: Vec<u32> = src
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains("cubis:sys-audit"))
            .map(|(i, _)| (i + 1) as u32)
            .collect();
        for line in sites {
            let justified = markers
                .iter()
                .any(|&m| m <= line && line - m <= SYS_AUDIT_WINDOW);
            if !justified {
                findings.push(Finding::new(
                    "SAFE02",
                    path,
                    line,
                    format!(
                        "unsafe block without a `// cubis:sys-audit` safety argument within \
                         the preceding {SYS_AUDIT_WINDOW} lines; every site in the syscall \
                         module documents why the invariants hold"
                    ),
                ));
            }
        }
    } else {
        for line in sites {
            findings.push(Finding::new(
                "SAFE02",
                path,
                line,
                format!(
                    "`unsafe` outside the audited syscall module; raw-pointer/FFI code \
                     belongs in {SYS_MODULE_PATH} behind a checked safe wrapper"
                ),
            ));
        }
    }
    findings
}

/// Index of the `]` matching the `[` at `open`, if balanced.
fn matching_bracket(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth = depth.checked_sub(1)?;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
    }
    None
}
