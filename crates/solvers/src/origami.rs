//! ORIGAMI: strong Stackelberg equilibrium against a perfectly rational
//! attacker (Kiekintveld et al., AAMAS'09).
//!
//! A rational attacker picks the target with the highest expected
//! utility `Ua_i(x_i)`; under the strong (optimistic) tie-breaking
//! convention he breaks ties in the defender's favor. ORIGAMI grows an
//! "attack set" of targets kept indifferent at a common attacker value
//! `v`, lowering `v` until the budget is exhausted or every member is
//! fully covered.

use cubis_game::SecurityGame;

/// Compute the SSE coverage against a perfectly rational attacker.
pub fn solve_origami(game: &SecurityGame) -> Vec<f64> {
    let t = game.num_targets();
    // Sort targets by uncovered attacker utility Ua_i(0) = Ra_i, descending.
    let mut order: Vec<usize> = (0..t).collect();
    order.sort_by(|&a, &b| {
        game.target(b)
            .att_reward
            .total_cmp(&game.target(a).att_reward)
    });

    // Candidate attacker values where the attack set changes: the next
    // target's Ra, or where some member saturates (x = 1 ⇒ v = Pa_i).
    // We simply bisect on v: coverage needed to bring every target with
    // Ra_i > v down to utility v is monotone in v.
    let coverage_for = |v: f64| -> Vec<f64> {
        (0..t)
            .map(|i| {
                let tp = game.target(i);
                if tp.att_reward <= v {
                    0.0
                } else {
                    tp.coverage_for_attacker_utility(v).clamp(0.0, 1.0)
                }
            })
            .collect()
    };
    let total = |v: f64| -> f64 { coverage_for(v).iter().sum() };

    let mut hi = game
        .targets()
        .iter()
        .map(|tp| tp.att_reward)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut lo = game
        .targets()
        .iter()
        .map(|tp| tp.att_penalty)
        .fold(f64::INFINITY, f64::min);
    if total(lo) <= game.resources() {
        // Enough budget to push every target to its floor.
        return coverage_for(lo);
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if total(mid) <= game.resources() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    coverage_for(hi)
}

/// Expected defender utility at the SSE under strong tie-breaking: among
/// the attacker's best responses, the one best for the defender.
pub fn sse_defender_utility(game: &SecurityGame, x: &[f64]) -> f64 {
    let t = game.num_targets();
    assert_eq!(x.len(), t, "sse_defender_utility: length mismatch");
    let best_att = (0..t)
        .map(|i| game.attacker_utility(i, x[i]))
        .fold(f64::NEG_INFINITY, f64::max);
    (0..t)
        .filter(|&i| game.attacker_utility(i, x[i]) >= best_att - 1e-9)
        .map(|i| game.defender_utility(i, x[i]))
        .fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubis_game::{GameGenerator, SecurityGame, TargetPayoffs};

    #[test]
    fn symmetric_two_targets_split_evenly() {
        let game = SecurityGame::new(
            vec![
                TargetPayoffs::new(5.0, -5.0, 5.0, -5.0),
                TargetPayoffs::new(5.0, -5.0, 5.0, -5.0),
            ],
            1.0,
        );
        let x = solve_origami(&game);
        assert!((x[0] - 0.5).abs() < 1e-6);
        assert!((x[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn attack_set_members_are_indifferent() {
        let game = GameGenerator::new(14).generate(6, 2.0);
        let x = solve_origami(&game);
        let utils: Vec<f64> = (0..6).map(|i| game.attacker_utility(i, x[i])).collect();
        let v = utils.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for i in 0..6 {
            if x[i] > 1e-6 && x[i] < 1.0 - 1e-9 {
                // Interior-covered targets sit at the common value v.
                assert!(
                    (utils[i] - v).abs() < 1e-4,
                    "target {i}: {} vs {v}",
                    utils[i]
                );
            } else {
                // Uncovered targets are no more attractive than v;
                // saturated ones (x = 1) may sit strictly below it.
                assert!(utils[i] <= v + 1e-6);
            }
        }
    }

    #[test]
    fn budget_is_exhausted_when_binding() {
        let game = GameGenerator::new(15).generate(8, 3.0);
        let x = solve_origami(&game);
        let total: f64 = x.iter().sum();
        assert!(total <= game.resources() + 1e-6);
        // With R < T and positive rewards the budget should bind.
        assert!(total >= game.resources() - 1e-3, "total {total}");
    }

    #[test]
    fn sse_utility_uses_optimistic_tie_breaking() {
        // Two targets, identical attacker view, different defender view:
        // the attacker (by SSE convention) picks the defender-preferred one.
        let game = SecurityGame::new(
            vec![
                TargetPayoffs::new(5.0, -1.0, 5.0, -5.0),
                TargetPayoffs::new(1.0, -5.0, 5.0, -5.0),
            ],
            1.0,
        );
        let x = vec![0.5, 0.5];
        let u = sse_defender_utility(&game, &x);
        assert!((u - game.defender_utility(0, 0.5)).abs() < 1e-9);
    }

    #[test]
    fn more_budget_never_hurts() {
        let mut gen = GameGenerator::new(16);
        let game_small = gen.generate(6, 1.0);
        let game_big = SecurityGame::new(game_small.targets().to_vec(), 3.0);
        let u_small = sse_defender_utility(&game_small, &solve_origami(&game_small));
        let u_big = sse_defender_utility(&game_big, &solve_origami(&game_big));
        assert!(u_big >= u_small - 1e-6);
    }
}
