//! Revised bounded-variable simplex with factorization reuse.
//!
//! Where the previous implementation maintained the dense full tableau
//! `B⁻¹·A` and paid `O(m²·n)` to rebuild it on every refactorization,
//! this one keeps the canonical constraint matrix in sparse column form
//! ([`crate::sparse::SparseMat`]) and represents `B⁻¹` implicitly as a
//! dense LU factorization composed with product-form eta updates
//! ([`crate::basis::Factorization`]). Each iteration prices reduced
//! costs with one BTRAN plus a sparse pass over the columns, FTRANs only
//! the entering column, and appends one eta; the eta chain is collapsed
//! into a fresh LU by the refactorization policy (every
//! [`REFACTOR_EVERY`] pivots, or immediately after a high-amplification
//! pivot).
//!
//! Pricing is devex (reference-framework weights) with two fallbacks:
//! the weights reset to full Dantzig pricing when they grow stale, and a
//! run of degenerate pivots switches to Bland's rule for anti-cycling,
//! exactly as before.
//!
//! The second structural change is the [`SimplexEngine`]: the canonical
//! form, bounds and factorization live across solves, so a caller that
//! repeatedly solves the *same* rows under different variable bounds —
//! branch-and-bound in `cubis-milp` — passes a [`Basis`] from the parent
//! node and the engine restores primal feasibility with a **dual
//! simplex** phase instead of a from-scratch two-phase solve. See
//! `docs/SOLVER.md` for the full protocol.

use crate::basis::{Basis, Factorization, VarStatus};
use crate::model::{LpProblem, Relation, Sense};
use crate::solution::{LpSolution, LpStatus};
use crate::sparse::SparseMat;

/// Errors that prevent a meaningful solve (distinct from the ordinary
/// [`LpStatus`] outcomes, which are data, not errors).
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The final solution violated constraints beyond tolerance —
    /// indicates numerical breakdown on this instance.
    Numerical {
        /// Largest violation observed.
        violation: f64,
    },
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Numerical { violation } => {
                write!(f, "numerical breakdown: final violation {violation:.3e}")
            }
        }
    }
}

impl std::error::Error for LpError {}

/// Tunable tolerances and limits for [`solve`] and
/// [`SimplexEngine::solve_with`].
#[derive(Debug, Clone)]
pub struct LpOptions {
    /// Reduced-cost threshold for optimality.
    pub opt_tol: f64,
    /// Pivot magnitude threshold.
    pub piv_tol: f64,
    /// Phase-1 objective threshold for declaring feasibility.
    pub feas_tol: f64,
    /// Hard cap on total simplex iterations (both phases). `None` picks
    /// `50·(rows + cols) + 1000`.
    pub max_iterations: Option<usize>,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub bland_after: usize,
    /// Observability sink. Disabled by default; when enabled, each solve
    /// reports `lp.solves`, `lp.pivots`, `lp.refactorizations`,
    /// `lp.eta_updates` and `lp.dual_restarts` counters plus an
    /// `lp.solve` span per call (aggregates only — the per-pivot hot
    /// loop is never instrumented).
    pub recorder: cubis_trace::SharedRecorder,
}

impl Default for LpOptions {
    fn default() -> Self {
        Self {
            opt_tol: 1e-9,
            piv_tol: 1e-9,
            feas_tol: 1e-7,
            max_iterations: None,
            bland_after: 64,
            recorder: cubis_trace::SharedRecorder::null(),
        }
    }
}

/// Refactorize after this many eta updates to bound solve drift.
const REFACTOR_EVERY: usize = 64;
/// Conservative refactorization cadence for the safe-mode retry.
const REFACTOR_EVERY_SAFE: usize = 2;
/// Refactorize when the *cumulative* amplification of the eta chain
/// (product of per-pivot `‖w‖∞/|pivot|` factors) exceeds this — one
/// near-singular pivot or a run of moderately bad ones both trip it.
/// Roundoff entering any eta is multiplied by up to this factor.
const CHAIN_AMP_LIMIT: f64 = 1e5;
/// Safe-mode chain amplification limit (refactor after any pivot whose
/// column/pivot ratio is even mildly amplifying).
const CHAIN_AMP_LIMIT_SAFE: f64 = 1e2;
/// Devex weights above this trigger a reset to full (Dantzig) pricing.
const DEVEX_RESET: f64 = 1e8;

/// Result of one [`SimplexEngine::solve_with`] call.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The LP solution (status, point, duals, effort counters).
    pub solution: LpSolution,
    /// Snapshot of the optimal basis, present only when
    /// `solution.status` is [`LpStatus::Optimal`]. Feed it back to a
    /// later `solve_with` on the same engine to warm-restart.
    pub basis: Option<Basis>,
    /// True when this solve warm-restarted from a supplied [`Basis`]
    /// (the dual-simplex repair path), false for from-scratch solves.
    pub dual_restart: bool,
}

enum RunStatus {
    Optimal,
    Unbounded,
    IterationLimit,
    Numerical,
}

enum StepOutcome {
    Optimal,
    Unbounded,
    Progress { degenerate: bool },
    Numerical,
}

enum DualResult {
    /// Primal feasibility restored (within tolerance).
    Feasible,
    /// Dual unbounded: the tightened problem is primal infeasible. The
    /// engine re-confirms this with a cold solve before reporting it.
    Infeasible,
    /// Budget exhausted or numerical trouble; fall back to a cold solve.
    GiveUp,
}

/// A reusable revised-simplex solver bound to one [`LpProblem`]'s rows.
///
/// Building the engine converts the problem to canonical form once —
/// `[structural | slacks | artificials]` sparse columns with `Ge` rows
/// negated — and every subsequent [`solve_with`](Self::solve_with) call
/// reuses that storage, optionally under tightened variable bounds
/// and/or warm-started from a previous solve's [`Basis`].
///
/// Branch-and-bound is the intended caller: constraint rows never
/// change across nodes, only bounds do, which is exactly the case the
/// dual-simplex warm restart handles.
///
/// # Example
///
/// ```
/// use cubis_lp::{LpProblem, Sense, Relation, LpOptions, LpStatus, SimplexEngine};
///
/// // max x + 2y  s.t. x + y <= 4, 0 <= x,y <= 10
/// let mut p = LpProblem::new(Sense::Maximize);
/// let x = p.add_var("x", 0.0, 10.0, 1.0);
/// let y = p.add_var("y", 0.0, 10.0, 2.0);
/// p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
///
/// let mut engine = SimplexEngine::new(&p);
/// let root = engine.solve_with(&[], None, &LpOptions::default()).unwrap();
/// assert_eq!(root.solution.status, LpStatus::Optimal);
/// assert!((root.solution.objective - 8.0).abs() < 1e-9); // x=0, y=4
///
/// // Tighten y <= 1 and warm-restart from the root basis: the dual
/// // simplex repairs feasibility instead of re-solving from scratch.
/// let child = engine
///     .solve_with(&[(y.index(), 0.0, 1.0)], root.basis.as_ref(), &LpOptions::default())
///     .unwrap();
/// assert!(child.dual_restart);
/// assert!((child.solution.objective - 5.0).abs() < 1e-9); // x=3, y=1
/// ```
pub struct SimplexEngine {
    /// The source problem (kept for objective evaluation, violation
    /// checks against original rows, and failure dumps).
    problem: LpProblem,
    m: usize,
    ncols: usize,
    n_struct: usize,
    /// First artificial column; there is exactly one per row.
    art_start: usize,
    /// Canonical sparse matrix (`Ge` rows negated so slacks are `+1`).
    mat: SparseMat,
    /// Canonical right-hand side.
    rhs: Vec<f64>,
    /// `canonical row i = row_sign[i] · original row i` (−1 for `Ge`).
    row_sign: Vec<f64>,
    /// Slack column of each row (`None` for `Eq` rows).
    slack_of_row: Vec<Option<usize>>,
    /// Default column bounds (problem bounds; slacks `[0, ∞)`;
    /// artificials `[0, 0]`).
    base_lower: Vec<f64>,
    base_upper: Vec<f64>,
    /// User objective per structural column (problem sense).
    user_obj: Vec<f64>,
    /// −1 for maximization (internal sense is minimization).
    flip: f64,
    /// `max(1, |coefficients|, |rhs|)` of the instance.
    scale: f64,

    // ---- per-solve working state ----
    lower: Vec<f64>,
    upper: Vec<f64>,
    cost: Vec<f64>,
    status: Vec<VarStatus>,
    xval: Vec<f64>,
    basic: Vec<usize>,
    xb: Vec<f64>,
    fact: Option<Factorization>,
    devex: Vec<f64>,
    iterations: usize,
    refactorizations: usize,
    eta_updates: usize,
    refactor_every: usize,
    amp_limit: f64,
    /// Product of `max(1, ‖w‖∞/|pivot|)` over the live eta chain — an
    /// upper-bound estimate of how much the chain can amplify roundoff.
    /// Reset to 1 on every refactorization.
    chain_amp: f64,
    chain_limit: f64,
    /// Basic-variable bound violation revealed by the most recent exact
    /// `recompute_xb` — the primal loop treats a large value as proof
    /// that recent pivots ran on corrupted coefficients.
    infeas_after_refactor: f64,
}

impl SimplexEngine {
    /// Build an engine for `p`: canonicalize rows into sparse columns
    /// and allocate the working state. Constraint rows are fixed for the
    /// engine's lifetime; variable bounds can be tightened per solve.
    pub fn new(p: &LpProblem) -> Self {
        let m = p.num_constraints();
        let n = p.num_vars();
        let n_slack = p.constraints.iter().filter(|c| c.relation != Relation::Eq).count();
        let art_start = n + n_slack;
        let ncols = art_start + m;

        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ncols];
        let mut rhs = vec![0.0; m];
        let mut row_sign = vec![1.0; m];
        let mut slack_of_row: Vec<Option<usize>> = vec![None; m];
        let mut next_slack = n;
        let mut scale = 1.0f64;
        for (i, c) in p.constraints.iter().enumerate() {
            let sign = if c.relation == Relation::Ge { -1.0 } else { 1.0 };
            row_sign[i] = sign;
            for &(v, co) in &c.terms {
                cols[v.index()].push((i, sign * co));
                scale = scale.max(co.abs());
            }
            if c.relation != Relation::Eq {
                cols[next_slack].push((i, 1.0));
                slack_of_row[i] = Some(next_slack);
                next_slack += 1;
            }
            cols[art_start + i].push((i, 1.0));
            rhs[i] = sign * c.rhs;
            scale = scale.max(c.rhs.abs());
        }
        let mat = SparseMat::from_columns(m, &cols);

        let mut base_lower: Vec<f64> = p.vars.iter().map(|v| v.lower).collect();
        let mut base_upper: Vec<f64> = p.vars.iter().map(|v| v.upper).collect();
        base_lower.extend(std::iter::repeat_n(0.0, n_slack));
        base_upper.extend(std::iter::repeat_n(f64::INFINITY, n_slack));
        base_lower.extend(std::iter::repeat_n(0.0, m));
        base_upper.extend(std::iter::repeat_n(0.0, m));

        let flip = if p.sense() == Sense::Maximize { -1.0 } else { 1.0 };
        let user_obj: Vec<f64> = p.vars.iter().map(|v| v.obj).collect();

        Self {
            problem: p.clone(),
            m,
            ncols,
            n_struct: n,
            art_start,
            mat,
            rhs,
            row_sign,
            slack_of_row,
            base_lower,
            base_upper,
            user_obj,
            flip,
            scale,
            lower: vec![0.0; ncols],
            upper: vec![0.0; ncols],
            cost: vec![0.0; ncols],
            status: vec![VarStatus::AtLower; ncols],
            xval: vec![0.0; ncols],
            basic: Vec::with_capacity(m),
            xb: vec![0.0; m],
            fact: None,
            devex: vec![1.0; ncols],
            iterations: 0,
            refactorizations: 0,
            eta_updates: 0,
            refactor_every: REFACTOR_EVERY,
            amp_limit: 0.0,
            chain_amp: 1.0,
            chain_limit: CHAIN_AMP_LIMIT,
            infeas_after_refactor: 0.0,
        }
    }

    /// Solve the engine's problem, optionally under tightened variable
    /// bounds and warm-started from a previous optimal [`Basis`].
    ///
    /// `tighten` entries `(var_index, lower, upper)` are intersected
    /// with the problem's own bounds in order; a crossing intersection
    /// short-circuits to [`LpStatus::Infeasible`] without a solve. With
    /// a warm basis whose bounds changes left it primal-infeasible, a
    /// dual-simplex phase repairs feasibility (typically a handful of
    /// pivots); without one, the classic two-phase primal runs.
    ///
    /// Returns `Err` only on numerical breakdown, after an internal
    /// retry in a conservative mode (frequent refactorization); see
    /// [`solve`] for the status-vs-error contract.
    pub fn solve_with(
        &mut self,
        tighten: &[(usize, f64, f64)],
        warm: Option<&Basis>,
        opts: &LpOptions,
    ) -> Result<SolveOutcome, LpError> {
        let _span = opts.recorder.span("lp.solve");
        let out = match self.attempt(tighten, warm, opts, false) {
            Err(LpError::Numerical { .. }) => self.attempt(tighten, None, opts, true),
            other => other,
        };
        if opts.recorder.enabled() {
            opts.recorder.counter("lp.solves", 1);
            if let Ok(o) = &out {
                opts.recorder.counter("lp.pivots", o.solution.iterations as u64);
                opts.recorder
                    .counter("lp.refactorizations", o.solution.refactorizations as u64);
                opts.recorder.counter("lp.eta_updates", self.eta_updates as u64);
                if o.dual_restart {
                    opts.recorder.counter("lp.dual_restarts", 1);
                }
            }
        }
        out
    }

    fn attempt(
        &mut self,
        tighten: &[(usize, f64, f64)],
        warm: Option<&Basis>,
        opts: &LpOptions,
        safe: bool,
    ) -> Result<SolveOutcome, LpError> {
        self.iterations = 0;
        self.refactorizations = 0;
        self.eta_updates = 0;
        self.refactor_every = if safe { REFACTOR_EVERY_SAFE } else { REFACTOR_EVERY };
        self.amp_limit = self.mat.max_abs().max(1.0) * if safe { 1e3 } else { 1e6 };
        self.chain_limit = if safe { CHAIN_AMP_LIMIT_SAFE } else { CHAIN_AMP_LIMIT };
        self.chain_amp = 1.0;
        self.infeas_after_refactor = 0.0;

        if !self.apply_bounds(tighten) {
            return Ok(self.outcome(LpStatus::Infeasible, false));
        }
        let max_iters = opts
            .max_iterations
            .unwrap_or(50 * (self.m + self.ncols) + 1000);

        // ---- Warm path: dual-simplex restart from the parent basis. ----
        if let Some(wb) = warm {
            if let Some(status) = self.try_warm(wb, opts, max_iters) {
                return match status {
                    LpStatus::Optimal => self.extract(true),
                    other => Ok(self.outcome(other, true)),
                };
            }
        }

        // ---- Cold path: two-phase primal from a slack/artificial basis. ----
        let needs_phase1 = self.init_cold_basis();
        if !self.refactorize() {
            return Err(LpError::Numerical { violation: f64::INFINITY });
        }
        if needs_phase1 {
            match self.optimize(opts, max_iters) {
                RunStatus::IterationLimit => {
                    return Ok(self.outcome(LpStatus::IterationLimit, false))
                }
                // Phase 1 minimizes Σ|artificial| ≥ 0: unbounded (or a
                // broken factorization) can only mean numerical trouble.
                RunStatus::Unbounded | RunStatus::Numerical => {
                    return Err(LpError::Numerical { violation: f64::INFINITY })
                }
                RunStatus::Optimal => {}
            }
            if self.phase1_objective() > opts.feas_tol {
                return Ok(self.outcome(LpStatus::Infeasible, false));
            }
            self.freeze_artificials();
        }
        self.set_phase2_costs();
        match self.optimize(opts, max_iters) {
            RunStatus::IterationLimit => Ok(self.outcome(LpStatus::IterationLimit, false)),
            RunStatus::Unbounded => Ok(self.outcome(LpStatus::Unbounded, false)),
            RunStatus::Numerical => Err(LpError::Numerical { violation: f64::INFINITY }),
            RunStatus::Optimal => self.extract(false),
        }
    }

    /// Attempt the warm restart; `None` means "fall back to cold".
    fn try_warm(&mut self, wb: &Basis, opts: &LpOptions, max_iters: usize) -> Option<LpStatus> {
        if wb.basic.len() != self.m
            || wb.status.len() != self.ncols
            || !wb.basic.iter().all(|&j| j < self.ncols)
        {
            return None;
        }
        // Install statuses, snapping nonbasic values onto the (possibly
        // tightened) bounds. In branch-and-bound bounds only shrink, so
        // a nonbasic variable keeps its side; the fallbacks below cover
        // general callers.
        for j in 0..self.ncols {
            self.status[j] = match wb.status[j] {
                VarStatus::Basic => VarStatus::Basic,
                VarStatus::AtLower if self.lower[j].is_finite() => VarStatus::AtLower,
                VarStatus::AtUpper if self.upper[j].is_finite() => VarStatus::AtUpper,
                VarStatus::AtLower | VarStatus::AtUpper | VarStatus::Free => {
                    if self.lower[j].is_finite() {
                        VarStatus::AtLower
                    } else if self.upper[j].is_finite() {
                        VarStatus::AtUpper
                    } else {
                        VarStatus::Free
                    }
                }
            };
            self.xval[j] = match self.status[j] {
                VarStatus::AtLower => self.lower[j],
                VarStatus::AtUpper => self.upper[j],
                _ => 0.0,
            };
        }
        self.basic.clear();
        self.basic.extend_from_slice(&wb.basic);
        // Reuse the live factorization when it already represents this
        // exact basis (the plunging child in branch-and-bound); refactor
        // otherwise. A singular basis falls back to cold.
        let reusable = self
            .fact
            .as_ref()
            .is_some_and(|f| f.basic == self.basic && f.eta_count() == 0);
        if !reusable && !self.refactorize() {
            return None;
        }
        self.recompute_xb();
        self.set_phase2_costs();
        match self.dual_optimize(opts, max_iters) {
            // Dual-unbounded means primal-infeasible, but the verdict
            // rests on pivot tolerances; re-confirm on the cold path so
            // warm answers never diverge from cold ones.
            DualResult::Infeasible | DualResult::GiveUp => None,
            DualResult::Feasible => match self.optimize(opts, max_iters) {
                RunStatus::Optimal => Some(LpStatus::Optimal),
                RunStatus::Unbounded => Some(LpStatus::Unbounded),
                RunStatus::IterationLimit => Some(LpStatus::IterationLimit),
                RunStatus::Numerical => None,
            },
        }
    }

    /// Reset bounds to the problem's and intersect the tightenings.
    /// Returns false on a crossing (empty) intersection.
    fn apply_bounds(&mut self, tighten: &[(usize, f64, f64)]) -> bool {
        self.lower.copy_from_slice(&self.base_lower);
        self.upper.copy_from_slice(&self.base_upper);
        for &(vi, lo, hi) in tighten {
            debug_assert!(vi < self.n_struct, "tighten index out of range");
            let l = self.lower[vi].max(lo);
            let u = self.upper[vi].min(hi);
            if l > u {
                return false;
            }
            self.lower[vi] = l;
            self.upper[vi] = u;
        }
        true
    }

    /// Choose the initial basis (slack where it starts feasible,
    /// artificial otherwise), relax the needed artificials for phase 1,
    /// and set the phase-1 costs. Returns true iff phase 1 is needed.
    fn init_cold_basis(&mut self) -> bool {
        for j in 0..self.art_start {
            self.status[j] = if self.lower[j].is_finite() {
                VarStatus::AtLower
            } else if self.upper[j].is_finite() {
                VarStatus::AtUpper
            } else {
                VarStatus::Free
            };
            self.xval[j] = match self.status[j] {
                VarStatus::AtLower => self.lower[j],
                VarStatus::AtUpper => self.upper[j],
                _ => 0.0,
            };
        }
        for j in self.art_start..self.ncols {
            self.status[j] = VarStatus::AtLower;
            self.xval[j] = 0.0;
        }
        self.cost.iter_mut().for_each(|c| *c = 0.0);

        // Residual of each row at the nonbasic starting point.
        let mut resid = self.rhs.clone();
        for j in 0..self.art_start {
            let xj = self.xval[j];
            // cubis:allow(NUM01): exact-zero sparsity skip in the
            // residual build; tiny nonzeros must still be accumulated.
            if xj != 0.0 {
                self.mat.col_axpy(j, -xj, &mut resid);
            }
        }
        self.basic.clear();
        let mut needs_phase1 = false;
        for i in 0..self.m {
            let slack_ok = self.slack_of_row[i].is_some_and(|_| resid[i] >= 0.0);
            if slack_ok {
                // cubis:allow(NUM02): infallible — slack_ok implies Some.
                let s = self.slack_of_row[i].expect("slack-basic row must have a slack");
                self.basic.push(s);
                self.status[s] = VarStatus::Basic;
                self.xb[i] = resid[i];
            } else {
                // Artificial basic at the residual; relax the bound on
                // the residual's side and charge ±1 so phase 1 minimizes
                // Σ|aᵢ| with a static cost vector.
                let a = self.art_start + i;
                self.basic.push(a);
                self.status[a] = VarStatus::Basic;
                self.xb[i] = resid[i];
                if resid[i] >= 0.0 {
                    self.lower[a] = 0.0;
                    self.upper[a] = f64::INFINITY;
                    self.cost[a] = 1.0;
                } else {
                    self.lower[a] = f64::NEG_INFINITY;
                    self.upper[a] = 0.0;
                    self.cost[a] = -1.0;
                }
                needs_phase1 = true;
            }
        }
        needs_phase1
    }

    /// Σ|artificial| at the current point (phase-1 objective).
    fn phase1_objective(&self) -> f64 {
        let mut obj = 0.0;
        for (i, &bi) in self.basic.iter().enumerate() {
            if bi >= self.art_start {
                obj += self.cost[bi] * self.xb[i];
            }
        }
        obj.max(0.0)
    }

    /// Pin every artificial back to `[0, 0]` after phase 1. Basic
    /// artificials (redundant rows) stay basic at ~0; the ratio test
    /// treats them as instantly blocking, which is exactly right.
    fn freeze_artificials(&mut self) {
        for j in self.art_start..self.ncols {
            self.cost[j] = 0.0;
            self.lower[j] = 0.0;
            self.upper[j] = 0.0;
            if self.status[j] != VarStatus::Basic {
                self.status[j] = VarStatus::AtLower;
                self.xval[j] = 0.0;
            }
        }
    }

    fn set_phase2_costs(&mut self) {
        self.cost.iter_mut().for_each(|c| *c = 0.0);
        for j in 0..self.n_struct {
            self.cost[j] = self.flip * self.user_obj[j];
        }
    }

    /// Rebuild the LU from the pristine columns of the current basis and
    /// recompute the basic values. Returns false if the basis matrix is
    /// numerically singular (state untouched).
    fn refactorize(&mut self) -> bool {
        match Factorization::factor(&self.mat, &self.basic) {
            Some(f) => {
                self.fact = Some(f);
                self.refactorizations += 1;
                self.chain_amp = 1.0;
                self.recompute_xb();
                self.infeas_after_refactor = self.basic_infeasibility();
                true
            }
            None => false,
        }
    }

    /// Max bound violation of the basic variables (diagnostic).
    fn basic_infeasibility(&self) -> f64 {
        let mut worst = 0.0f64;
        for (i, &bi) in self.basic.iter().enumerate() {
            worst = worst.max(self.lower[bi] - self.xb[i]).max(self.xb[i] - self.upper[bi]);
        }
        worst
    }

    /// Solve `B·x = b` with iterative refinement.
    ///
    /// A plain LU solve errs by roughly `κ(B)·ε`, and CUBIS node LPs
    /// routinely carry κ(B) ≈ 1e10–1e12 (coefficients span 1e-9..1e1),
    /// which would leave results wrong in the fourth decimal. Up to two
    /// rounds of refinement against the pristine sparse columns push the
    /// error back down to the order of the residual evaluation (~ε·‖b‖).
    fn solve_b(&self, b: &[f64]) -> Vec<f64> {
        // cubis:allow(NUM02): callers hold a live factorization.
        let fact = self.fact.as_ref().expect("solve_b without factorization");
        let mut x = b.to_vec();
        fact.ftran(&mut x);
        for _ in 0..2 {
            // r = b − B·x, then solve B·d = r and correct.
            let mut r = b.to_vec();
            for (i, &bi) in self.basic.iter().enumerate() {
                // cubis:allow(NUM01): exact-zero sparsity skip.
                if x[i] != 0.0 {
                    self.mat.col_axpy(bi, -x[i], &mut r);
                }
            }
            fact.ftran(&mut r);
            let dmax = r.iter().fold(0.0f64, |a, v| a.max(v.abs()));
            for (xi, d) in x.iter_mut().zip(&r) {
                *xi += d;
            }
            if dmax <= 1e-12 {
                break;
            }
        }
        x
    }

    /// Solve `Bᵀ·y = b` with iterative refinement (see [`Self::solve_b`]).
    fn solve_bt(&self, b: &[f64]) -> Vec<f64> {
        // cubis:allow(NUM02): callers hold a live factorization.
        let fact = self.fact.as_ref().expect("solve_bt without factorization");
        let mut y = b.to_vec();
        fact.btran(&mut y);
        for _ in 0..2 {
            // r_i = b_i − a_{B(i)}·y, then solve Bᵀ·d = r and correct.
            let mut r: Vec<f64> = self
                .basic
                .iter()
                .enumerate()
                .map(|(i, &bi)| b[i] - self.mat.col_dot(bi, &y))
                .collect();
            fact.btran(&mut r);
            let dmax = r.iter().fold(0.0f64, |a, v| a.max(v.abs()));
            for (yi, d) in y.iter_mut().zip(&r) {
                *yi += d;
            }
            if dmax <= 1e-12 {
                break;
            }
        }
        y
    }

    /// `x_B = B⁻¹·(b − N·x_N)` from pristine data.
    fn recompute_xb(&mut self) {
        let mut rhs = self.rhs.clone();
        for j in 0..self.ncols {
            if self.status[j] == VarStatus::Basic {
                continue;
            }
            let xj = self.xval[j];
            // cubis:allow(NUM01): exact-zero sparsity skip in the rhs
            // rebuild; tiny nonzeros must still be accumulated.
            if xj != 0.0 {
                self.mat.col_axpy(j, -xj, &mut rhs);
            }
        }
        self.xb = self.solve_b(&rhs);
    }

    /// Dual of `c_B` under the current factorization: `Bᵀy = c_B`.
    fn dual_prices(&self) -> Vec<f64> {
        let cb: Vec<f64> = self.basic.iter().map(|&bi| self.cost[bi]).collect();
        self.solve_bt(&cb)
    }

    /// Can column `j` move at all? Excludes fixed columns — frozen
    /// artificials and branch-fixed binaries — from pricing.
    #[inline]
    fn movable(&self, j: usize) -> bool {
        self.status[j] == VarStatus::Free || self.upper[j] > self.lower[j]
    }

    // ---------------------------------------------------------- primal

    /// Run the primal loop on the current cost vector.
    fn optimize(&mut self, opts: &LpOptions, max_iters: usize) -> RunStatus {
        let mut degen_run = 0usize;
        self.devex.iter_mut().for_each(|g| *g = 1.0);
        self.infeas_after_refactor = 0.0;
        loop {
            if self.fact.as_ref().is_some_and(|f| f.eta_count() >= self.refactor_every)
                && !self.refactorize()
            {
                return RunStatus::Numerical;
            }
            // A refactorization recomputes xb exactly; if that exact
            // recompute reveals bound violations well beyond tolerance,
            // an earlier pivot was taken on eta-chain noise and the
            // whole trajectory is suspect. Bail so the caller retries in
            // safe mode (tiny eta chains, tight amplification cap).
            if !(self.infeas_after_refactor <= 1e-6 * self.scale.max(1.0)) {
                return RunStatus::Numerical;
            }
            if self.iterations >= max_iters {
                return RunStatus::IterationLimit;
            }
            self.iterations += 1;
            let bland = degen_run >= opts.bland_after;
            match self.step(opts, bland) {
                StepOutcome::Optimal => return RunStatus::Optimal,
                StepOutcome::Unbounded => return RunStatus::Unbounded,
                StepOutcome::Numerical => return RunStatus::Numerical,
                StepOutcome::Progress { degenerate } => {
                    if degenerate {
                        degen_run += 1;
                    } else {
                        degen_run = 0;
                    }
                }
            }
        }
    }

    /// One revised-simplex step: price, FTRAN, ratio test, update.
    ///
    /// Pricing and the ratio test run in a loop: a candidate column whose
    /// only blocking rows offer an unacceptably small pivot (a nearly
    /// parallel constraint) is rejected — pivoting on such an element
    /// makes the basis numerically singular — and the next-best column is
    /// priced instead.
    fn step(&mut self, opts: &LpOptions, bland: bool) -> StepOutcome {
        let mut y = self.dual_prices();
        let mut rejected: Vec<usize> = Vec::new();
        // Set once every attractive column has been rejected: the tiny
        // pivot is then forced — real (verified against a fresh
        // factorization), unavoidable, and survivable because the
        // chain-amplification guard refactorizes immediately after.
        let mut accept_tiny = false;

        loop {
            // Pricing: devex-weighted reduced costs; Bland's rule takes
            // the first eligible index when anti-cycling is active.
            let mut entering: Option<(usize, f64)> = None; // (col, direction)
            let mut best_score = 0.0;
            for j in 0..self.ncols {
                if self.status[j] == VarStatus::Basic
                    || !self.movable(j)
                    || rejected.contains(&j)
                {
                    continue;
                }
                let d = self.cost[j] - self.mat.col_dot(j, &y);
                let (dir, viol) = match self.status[j] {
                    VarStatus::AtLower => (1.0, -d),
                    VarStatus::AtUpper => (-1.0, d),
                    VarStatus::Free => {
                        if d < 0.0 {
                            (1.0, -d)
                        } else {
                            (-1.0, d)
                        }
                    }
                    // Basic columns were skipped above; a zero violation
                    // keeps them out without a panic path.
                    VarStatus::Basic => (0.0, 0.0),
                };
                if viol <= opts.opt_tol {
                    continue;
                }
                if bland {
                    entering = Some((j, dir));
                    break;
                }
                let score = viol * viol / self.devex[j];
                if entering.is_none() || score > best_score {
                    entering = Some((j, dir));
                    best_score = score;
                }
            }
            let Some((e, dir)) = entering else {
                if rejected.is_empty() {
                    return StepOutcome::Optimal;
                }
                // Every attractive column was rejected for pivot
                // quality. Collapse the eta chain first in case the tiny
                // pivots were noise; if the factorization is already
                // fresh they are real and a forced tiny pivot is the
                // only way forward.
                if self.fact.as_ref().is_some_and(|f| f.eta_count() > 0) {
                    if !self.refactorize() {
                        return StepOutcome::Numerical;
                    }
                    y = self.dual_prices();
                } else if accept_tiny {
                    // Already retried with tiny pivots allowed and still
                    // found nothing: genuine numerical dead end.
                    return StepOutcome::Numerical;
                } else {
                    accept_tiny = true;
                }
                rejected.clear();
                continue;
            };

            // FTRAN the entering column (refined: w = B⁻¹·a_e).
            let mut ae = vec![0.0; self.m];
            self.mat.col_axpy(e, 1.0, &mut ae);
            let mut w = self.solve_b(&ae);
            let mut wmax = w.iter().fold(0.0f64, |a, v| a.max(v.abs()));
            // Growth guard: an entering column whose FTRAN image is far
            // above the pristine system's scale signals eta-chain error
            // amplification — collapse the chain and redo the solve.
            if wmax > self.amp_limit && self.fact.as_ref().is_some_and(|f| f.eta_count() > 0) {
                if !self.refactorize() {
                    return StepOutcome::Numerical;
                }
                w = self.solve_b(&ae);
                wmax = w.iter().fold(0.0f64, |a, v| a.max(v.abs()));
            }
            // Rows below drop_tol are eta-chain noise (≈ machine_eps ·
            // ‖w‖∞ · chain_amp, and chain_amp is capped); rows above it
            // carry real coefficients and MUST participate in the ratio
            // test — skipping them lets their basic variables drift out
            // of bounds by |w_i|·Δ per step, which no later pivot
            // repairs. Pivots are only *chosen* above piv_accept, the
            // classic relative stability threshold.
            let drop_tol = 1e-11 * wmax;
            let piv_accept = opts.piv_tol.max(1e-7 * wmax);

            // Ratio test (Harris-style two-pass): pass 1 finds the
            // tightest step with a small feasibility relaxation; pass 2
            // picks, among the rows still blocking within that relaxed
            // step, the one with the largest pivot magnitude (Bland mode
            // keeps the exact smallest-index rule instead).
            let width = self.upper[e] - self.lower[e]; // may be inf
            let feas_relax = 1e-9;
            let strict_cap = |i: usize, g: f64, relax: f64| -> Option<f64> {
                let bi = self.basic[i];
                // Basic value moves by −Δ·g; find the bound it hits.
                let cap = if g > 0.0 {
                    let lb = self.lower[bi];
                    if !lb.is_finite() {
                        return None;
                    }
                    (self.xb[i] - (lb - relax)) / g
                } else {
                    let ub = self.upper[bi];
                    if !ub.is_finite() {
                        return None;
                    }
                    (self.xb[i] - (ub + relax)) / g
                };
                Some(cap.max(0.0))
            };

            // Pass 1: relaxed limit.
            let mut delta_limit = width;
            for i in 0..self.m {
                let g = dir * w[i];
                if g.abs() <= drop_tol {
                    continue;
                }
                if let Some(cap) = strict_cap(i, g, feas_relax) {
                    delta_limit = delta_limit.min(cap);
                }
            }
            if !delta_limit.is_finite() {
                return StepOutcome::Unbounded;
            }

            // Pass 2: choose the leaving row.
            let mut leave: Option<(usize, f64, f64)> = None; // (row, |pivot|, cap)
            for i in 0..self.m {
                let g = dir * w[i];
                if g.abs() <= drop_tol {
                    continue;
                }
                let Some(cap) = strict_cap(i, g, 0.0) else {
                    continue;
                };
                if cap > delta_limit + 1e-30 {
                    continue;
                }
                let take = match &leave {
                    None => true,
                    Some((li, mag, lcap)) => {
                        if bland {
                            // Smallest basic index among minimal caps.
                            cap < lcap - 1e-12
                                || (cap < lcap + 1e-12 && self.basic[i] < self.basic[*li])
                        } else {
                            g.abs() > *mag
                        }
                    }
                };
                if take {
                    leave = Some((i, g.abs(), cap));
                }
            }
            if let Some((_, mag, _)) = &leave {
                if *mag < piv_accept && !accept_tiny {
                    // Every acceptable-pivot row allows a longer step than
                    // the blocker: the entering direction runs almost
                    // parallel to that constraint. Pick a different
                    // entering column rather than destabilize the basis.
                    rejected.push(e);
                    continue;
                }
            }
            let best_delta = match &leave {
                // Entering variable hits its other bound before any basic
                // variable blocks within the relaxed limit.
                None => width,
                Some((_, _, cap)) => *cap,
            };
            debug_assert!(best_delta.is_finite());
            let degenerate = best_delta <= opts.piv_tol;

            return match leave {
                None => {
                    // Bound flip across the entering variable's range.
                    debug_assert!(width.is_finite());
                    for i in 0..self.m {
                        self.xb[i] -= dir * best_delta * w[i];
                    }
                    self.status[e] = match self.status[e] {
                        VarStatus::AtLower => VarStatus::AtUpper,
                        VarStatus::AtUpper => VarStatus::AtLower,
                        other => other,
                    };
                    self.xval[e] = if self.status[e] == VarStatus::AtUpper {
                        self.upper[e]
                    } else {
                        self.lower[e]
                    };
                    StepOutcome::Progress { degenerate }
                }
                Some((r, _, _)) => {
                    let delta = best_delta;
                    let entering_value = self.xval[e] + dir * delta;
                    for i in 0..self.m {
                        if i != r {
                            self.xb[i] -= dir * delta * w[i];
                        }
                    }
                    // Leaving variable exits at the value it actually
                    // reached — its bound in the regular case, but a hair
                    // past it when the Harris clamp made the step
                    // degenerate. Snapping onto the bound here would
                    // silently displace the true basic solution by
                    // snap·B⁻¹a_lv, which ill-conditioned bases amplify
                    // into real infeasibility; the residual offset is
                    // instead carried in xval (row-space effect ~ε) and
                    // cleaned up at extraction.
                    let lv = self.basic[r];
                    let g = dir * w[r];
                    self.status[lv] = if g > 0.0 {
                        VarStatus::AtLower
                    } else {
                        VarStatus::AtUpper
                    };
                    self.xval[lv] = self.xb[r] - delta * g;
                    let piv = w[r];
                    if !bland {
                        self.update_devex(e, r, &w);
                    }
                    self.basic[r] = e;
                    self.status[e] = VarStatus::Basic;
                    self.xb[r] = entering_value;
                    // cubis:allow(NUM02): the factorization is installed
                    // before the primal loop and held throughout the step.
                    let fact = self.fact.as_mut().expect("step without factorization");
                    fact.push_eta(r, w, e);
                    self.eta_updates += 1;
                    // Amplifying pivots multiply existing roundoff by up
                    // to wmax/|piv| each; once the chain's cumulative
                    // factor is large, collapse it right away so the next
                    // ratio test sees true coefficients.
                    self.chain_amp *= (wmax / piv.abs()).max(1.0);
                    if self.chain_amp > self.chain_limit && !self.refactorize() {
                        return StepOutcome::Numerical;
                    }
                    StepOutcome::Progress { degenerate }
                }
            };
        }
    }

    /// Devex reference-framework update after a pivot on `(r, e)`.
    fn update_devex(&mut self, e: usize, r: usize, w: &[f64]) {
        let alpha_e = w[r];
        let gamma_e = self.devex[e].max(1.0);
        // Pivot row of the tableau: αⱼ = ρᵀ·aⱼ with ρ = B⁻ᵀ·e_r.
        let mut rho = vec![0.0; self.m];
        rho[r] = 1.0;
        // cubis:allow(NUM02): callers hold a live factorization.
        self.fact.as_ref().expect("devex without factorization").btran(&mut rho);
        let ratio_base = gamma_e / (alpha_e * alpha_e);
        let mut worst = 1.0f64;
        for j in 0..self.ncols {
            if j == e || self.status[j] == VarStatus::Basic || !self.movable(j) {
                continue;
            }
            let alpha = self.mat.col_dot(j, &rho);
            // cubis:allow(NUM01): exact-zero pivot-row skip; any
            // bit-nonzero entry must update the weight.
            if alpha != 0.0 {
                let cand = alpha * alpha * ratio_base;
                if cand > self.devex[j] {
                    self.devex[j] = cand;
                    worst = worst.max(cand);
                }
            }
        }
        // The leaving variable re-enters the nonbasic pool.
        self.devex[self.basic[r]] = ratio_base.max(1.0);
        // Stale reference framework: reset to full (Dantzig) pricing.
        if worst > DEVEX_RESET {
            self.devex.iter_mut().for_each(|g| *g = 1.0);
        }
    }

    // ------------------------------------------------------------ dual

    /// Dual-simplex loop: restore primal feasibility of the warm basis
    /// after bound tightenings, keeping dual feasibility throughout.
    fn dual_optimize(&mut self, opts: &LpOptions, max_iters: usize) -> DualResult {
        let feas_eps = 1e-9;
        let budget = (2 * self.m + 100).min(max_iters);
        let mut dual_iters = 0usize;
        loop {
            if self.fact.as_ref().is_some_and(|f| f.eta_count() >= self.refactor_every)
                && !self.refactorize()
            {
                return DualResult::GiveUp;
            }
            // Leaving row: the most-violated basic variable.
            let mut pick: Option<(usize, bool)> = None; // (row, below-lower?)
            let mut worst = feas_eps;
            for i in 0..self.m {
                let bi = self.basic[i];
                let below = self.lower[bi] - self.xb[i];
                let above = self.xb[i] - self.upper[bi];
                if below > worst {
                    worst = below;
                    pick = Some((i, true));
                }
                if above > worst {
                    worst = above;
                    pick = Some((i, false));
                }
            }
            let Some((r, going_low)) = pick else {
                return DualResult::Feasible;
            };
            if dual_iters >= budget || self.iterations >= max_iters {
                return DualResult::GiveUp;
            }
            dual_iters += 1;
            self.iterations += 1;

            // Pivot row αⱼ = ρᵀ·aⱼ and reduced costs dⱼ.
            let mut er = vec![0.0; self.m];
            er[r] = 1.0;
            let rho = self.solve_bt(&er);
            let y = self.dual_prices();

            // Entering column: dual ratio test. κ encodes which way the
            // leaving row must move (+1 to raise xb[r], −1 to lower it).
            let kappa = if going_low { 1.0 } else { -1.0 };
            let mut best: Option<(usize, f64, f64)> = None; // (col, ratio, |alpha|)
            for j in 0..self.ncols {
                if self.status[j] == VarStatus::Basic || !self.movable(j) {
                    continue;
                }
                let alpha = self.mat.col_dot(j, &rho);
                if alpha.abs() <= opts.piv_tol {
                    continue;
                }
                let eligible = match self.status[j] {
                    VarStatus::AtLower => kappa * alpha < 0.0,
                    VarStatus::AtUpper => kappa * alpha > 0.0,
                    VarStatus::Free => true,
                    // Basic columns never price in the dual ratio test.
                    VarStatus::Basic => false,
                };
                if !eligible {
                    continue;
                }
                let d = self.cost[j] - self.mat.col_dot(j, &y);
                let dmag = match self.status[j] {
                    VarStatus::AtLower => d.max(0.0),
                    VarStatus::AtUpper => (-d).max(0.0),
                    _ => d.abs(),
                };
                let ratio = dmag / alpha.abs();
                let take = match &best {
                    None => true,
                    Some((_, bratio, bmag)) => {
                        ratio < bratio - 1e-12
                            || (ratio < bratio + 1e-12 && alpha.abs() > *bmag)
                    }
                };
                if take {
                    best = Some((j, ratio, alpha.abs()));
                }
            }
            let Some((e, _, _)) = best else {
                // Dual unbounded ⇒ primal infeasible.
                return DualResult::Infeasible;
            };

            // FTRAN the entering column; its row-r entry is the pivot.
            let mut ae = vec![0.0; self.m];
            self.mat.col_axpy(e, 1.0, &mut ae);
            let w = self.solve_b(&ae);
            let piv = w[r];
            if piv.abs() <= opts.piv_tol.max(1e-11) {
                // The BTRAN-priced α disagrees with the FTRAN pivot:
                // the eta chain has drifted. Collapse and retry once.
                if self.fact.as_ref().is_some_and(|f| f.eta_count() > 0) && self.refactorize() {
                    continue;
                }
                return DualResult::GiveUp;
            }

            let bi = self.basic[r];
            let target = if going_low { self.lower[bi] } else { self.upper[bi] };
            // Entering step (signed movement of the entering variable).
            let s = (self.xb[r] - target) / piv;
            let width_e = self.upper[e] - self.lower[e];
            if width_e.is_finite() && s.abs() > width_e + 1e-12 {
                // Bound-flipping step: the entering variable crosses its
                // whole range before the leaving row reaches its bound.
                // Flip it, shrink the violation, keep the basis.
                let delta = if s > 0.0 { width_e } else { -width_e };
                for i in 0..self.m {
                    self.xb[i] -= delta * w[i];
                }
                self.status[e] = match self.status[e] {
                    VarStatus::AtLower => VarStatus::AtUpper,
                    VarStatus::AtUpper => VarStatus::AtLower,
                    other => other,
                };
                self.xval[e] = if self.status[e] == VarStatus::AtUpper {
                    self.upper[e]
                } else {
                    self.lower[e]
                };
                continue;
            }

            // Standard dual pivot.
            for i in 0..self.m {
                if i != r {
                    self.xb[i] -= s * w[i];
                }
            }
            let entering_value = self.xval[e] + s;
            self.status[bi] = if going_low { VarStatus::AtLower } else { VarStatus::AtUpper };
            self.xval[bi] = target;
            self.basic[r] = e;
            self.status[e] = VarStatus::Basic;
            self.xb[r] = entering_value;
            let wmax = w.iter().fold(0.0f64, |a, v| a.max(v.abs()));
            // cubis:allow(NUM02): the factorization is installed before
            // the dual loop and held throughout the step.
            let fact = self.fact.as_mut().expect("dual step without factorization");
            fact.push_eta(r, w, e);
            self.eta_updates += 1;
            self.chain_amp *= (wmax / piv.abs()).max(1.0);
            if self.chain_amp > self.chain_limit && !self.refactorize() {
                return DualResult::GiveUp;
            }
        }
    }

    // ------------------------------------------------------ extraction

    /// Build the final solution from the optimal basis. The basis is
    /// always refactorized fresh first, so the reported point is a pure
    /// function of `(basis, statuses, bounds)` — warm and cold solves
    /// that end in the same basis return bit-identical answers.
    fn extract(&mut self, dual_restart: bool) -> Result<SolveOutcome, LpError> {
        let must_refresh = self
            .fact
            .as_ref()
            .is_none_or(|f| f.eta_count() > 0 || f.basic != self.basic);
        if must_refresh {
            match Factorization::factor(&self.mat, &self.basic) {
                Some(f) => self.fact = Some(f),
                None => return Err(LpError::Numerical { violation: f64::INFINITY }),
            }
        }
        self.recompute_xb();

        let mut x = vec![0.0; self.n_struct];
        for j in 0..self.n_struct {
            x[j] = self.xval[j];
        }
        for (i, &bi) in self.basic.iter().enumerate() {
            if bi < self.n_struct {
                x[bi] = self.xb[i];
            }
        }
        // Sub-tolerance cleanup onto the (possibly tightened) bounds.
        for j in 0..self.n_struct {
            x[j] = x[j].clamp(self.lower[j].min(self.upper[j]), self.upper[j]);
        }

        let violation = self.current_violation(&x);
        if violation > 1e-5 * self.scale {
            if std::env::var("CUBIS_LP_DUMP").is_ok() {
                let _ = std::fs::write("/tmp/fail_lp.txt", self.problem.dump());
            }
            return Err(LpError::Numerical { violation });
        }
        let objective: f64 = self.user_obj.iter().zip(&x).map(|(c, xi)| c * xi).sum();

        // Duals from the final basis: y′ solves Bᵀy′ = c_B over the
        // canonical system; the original-row dual is row_sign·y′,
        // flipped back into the problem's own sense.
        let y = self.dual_prices();
        let duals: Vec<f64> = (0..self.m)
            .map(|i| self.flip * self.row_sign[i] * y[i])
            .collect();

        Ok(SolveOutcome {
            solution: LpSolution {
                status: LpStatus::Optimal,
                objective,
                x,
                duals,
                iterations: self.iterations,
                refactorizations: self.refactorizations,
            },
            basis: Some(Basis { basic: self.basic.clone(), status: self.status.clone() }),
            dual_restart,
        })
    }

    /// Max violation of the original rows and the current (possibly
    /// tightened) structural bounds at `x`.
    fn current_violation(&self, x: &[f64]) -> f64 {
        let mut worst = 0.0f64;
        for j in 0..self.n_struct {
            worst = worst.max(self.lower[j] - x[j]).max(x[j] - self.upper[j]);
        }
        for c in &self.problem.constraints {
            let lhs: f64 = c.terms.iter().map(|(v, co)| co * x[v.index()]).sum();
            let viol = match c.relation {
                Relation::Le => lhs - c.rhs,
                Relation::Ge => c.rhs - lhs,
                Relation::Eq => (lhs - c.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        worst
    }

    /// Non-optimal terminal outcome (no meaningful point).
    fn outcome(&self, status: LpStatus, dual_restart: bool) -> SolveOutcome {
        SolveOutcome {
            solution: LpSolution {
                status,
                objective: f64::NAN,
                x: vec![f64::NAN; self.n_struct],
                duals: vec![f64::NAN; self.m],
                iterations: self.iterations,
                refactorizations: self.refactorizations,
            },
            basis: None,
            dual_restart,
        }
    }
}

/// Solve a linear program from scratch.
///
/// Returns `Err` only on numerical breakdown; infeasibility,
/// unboundedness and iteration limits are reported through
/// [`LpStatus`]. Instances on which the default pivoting drifts (rare,
/// ill-conditioned bases) are retried once in a conservative mode with
/// frequent refactorization before an error is surfaced.
///
/// This is the one-shot convenience wrapper; callers that solve the
/// same rows repeatedly under changing bounds should hold a
/// [`SimplexEngine`] and use [`SimplexEngine::solve_with`] to reuse the
/// canonical form and warm-restart from a previous [`Basis`].
pub fn solve(p: &LpProblem, opts: &LpOptions) -> Result<LpSolution, LpError> {
    let mut engine = SimplexEngine::new(p);
    engine.solve_with(&[], None, opts).map(|o| o.solution)
}
