//! The raw syscall surface of the reactor — the **only** place in the
//! workspace where `unsafe` is permitted.
//!
//! Everything here wraps one of seven POSIX/Linux primitives the event
//! loop cannot get from `std`: `epoll_create1`/`epoll_ctl`/`epoll_wait`
//! (Linux readiness queue), `poll` (the portable level-triggered
//! fallback), `pipe2` (the loop's self-wake channel), and raw
//! `read`/`write` on the pipe's file descriptors. There is no dynamic
//! allocation, no callback into user code, and no fd ownership
//! ambiguity: every fd created here is returned as an
//! [`std::os::fd::OwnedFd`] so RAII closes it exactly once.
//!
//! The safety argument, in full (see also `docs/REACTOR.md`):
//!
//! - the `extern "C"` prototypes below match the glibc/musl
//!   declarations for these functions (all are C ABI, all are
//!   async-signal-safe kernel entry points with no library state),
//! - every pointer passed across the boundary is derived from a live
//!   Rust slice or a stack value whose lifetime covers the call, with
//!   the length passed alongside it,
//! - every return value is checked: `-1` becomes
//!   [`std::io::Error::last_os_error`], and partial results are sized
//!   by the kernel's own count, never assumed,
//! - `epoll_event` layout matches the kernel ABI per-arch (packed on
//!   x86/x86-64, natural alignment elsewhere — the same `cfg_attr`
//!   split glibc's `__EPOLL_PACKED` performs).
//!
//! Each unsafe block carries a `// cubis:sys-audit` marker naming the
//! invariant it relies on; the analyzer's SAFE02 rule fails the build
//! if a marker is missing, or if `unsafe` appears in any other file.

use std::io;
use std::os::fd::{FromRawFd, OwnedFd};
use std::os::raw::{c_int, c_void};
use std::os::unix::io::RawFd;

// ---------------------------------------------------------------------
// FFI prototypes (C ABI; resolved from the libc std already links).
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

// ---------------------------------------------------------------------
// ABI constants and structs.
// ---------------------------------------------------------------------

/// `EPOLLIN`: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// `EPOLLOUT`: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// `EPOLLERR`: error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// `EPOLLHUP`: hang-up (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// `EPOLLRDHUP`: peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

#[cfg(target_os = "linux")]
const EPOLL_CLOEXEC: c_int = 0x80000;
#[cfg(target_os = "linux")]
const EPOLL_CTL_ADD: c_int = 1;
#[cfg(target_os = "linux")]
const EPOLL_CTL_DEL: c_int = 2;
#[cfg(target_os = "linux")]
const EPOLL_CTL_MOD: c_int = 3;

#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0x800;
#[cfg(target_os = "linux")]
const O_CLOEXEC: c_int = 0x80000;

/// `POLLIN` for the portable fallback backend.
pub const POLLIN: i16 = 0x001;
/// `POLLOUT` for the portable fallback backend.
pub const POLLOUT: i16 = 0x004;
/// `POLLERR` (revents only).
pub const POLLERR: i16 = 0x008;
/// `POLLHUP` (revents only).
pub const POLLHUP: i16 = 0x010;

/// The kernel's `struct epoll_event`. x86/x86-64 use the packed
/// layout (glibc's `__EPOLL_PACKED`); other architectures align
/// naturally — both must match the kernel or `epoll_wait` would write
/// events at the wrong offsets.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLL*`).
    pub events: u32,
    /// Caller-owned cookie; the reactor stores its connection token.
    pub data: u64,
}

/// `struct pollfd` for the fallback backend.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct PollFd {
    /// The fd being polled.
    pub fd: RawFd,
    /// Requested events (`POLLIN`/`POLLOUT`).
    pub events: i16,
    /// Kernel-reported events.
    pub revents: i16,
}

// ---------------------------------------------------------------------
// Checked wrappers. Every function below is safe to call: the unsafe
// interior upholds the module-level argument.
// ---------------------------------------------------------------------

/// Create a close-on-exec epoll instance.
#[cfg(target_os = "linux")]
pub fn epoll_create() -> io::Result<OwnedFd> {
    // cubis:sys-audit: no pointers cross the boundary; a -1 return is
    // checked before the fd is wrapped, so OwnedFd only ever adopts a
    // descriptor the kernel just created and nothing else owns.
    let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // cubis:sys-audit: from_raw_fd's contract (sole ownership of an
    // open fd) holds per the check above; RAII close happens once.
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

/// Register `fd` with `epfd` for `events`, tagging readiness reports
/// with `token`.
#[cfg(target_os = "linux")]
pub fn epoll_add(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data: token };
    // cubis:sys-audit: `ev` is a live stack value for the duration of
    // the call; the kernel copies it before returning.
    let rc = unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &mut ev) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Change the interest set of an already-registered `fd`.
#[cfg(target_os = "linux")]
pub fn epoll_modify(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data: token };
    // cubis:sys-audit: same stack-value lifetime argument as epoll_add.
    let rc = unsafe { epoll_ctl(epfd, EPOLL_CTL_MOD, fd, &mut ev) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Remove `fd` from `epfd`.
#[cfg(target_os = "linux")]
pub fn epoll_delete(epfd: RawFd, fd: RawFd) -> io::Result<()> {
    let mut ev = EpollEvent { events: 0, data: 0 };
    // cubis:sys-audit: the event pointer is ignored by EPOLL_CTL_DEL on
    // every supported kernel but must be non-null pre-2.6.9; a live
    // stack value satisfies both.
    let rc = unsafe { epoll_ctl(epfd, EPOLL_CTL_DEL, fd, &mut ev) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Wait for readiness on `epfd`, filling `events`; returns how many
/// entries the kernel wrote. `timeout_ms < 0` blocks indefinitely.
#[cfg(target_os = "linux")]
pub fn epoll_wait_events(
    epfd: RawFd,
    events: &mut [EpollEvent],
    timeout_ms: c_int,
) -> io::Result<usize> {
    if events.is_empty() {
        return Ok(0);
    }
    // cubis:sys-audit: the pointer/len pair comes from one live mutable
    // slice; maxevents == events.len() caps the kernel's writes to it,
    // and the checked return value bounds how much we then read.
    let rc = unsafe {
        epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms)
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(rc as usize)
}

/// Level-triggered `poll(2)` over `fds`; returns the number of entries
/// with nonzero `revents`. `timeout_ms < 0` blocks indefinitely.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
    if fds.is_empty() && timeout_ms < 0 {
        return Ok(0);
    }
    // cubis:sys-audit: pointer/len from one live mutable slice; the
    // kernel only writes the `revents` field of entries within it.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::os::raw::c_ulong, timeout_ms) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(rc as usize)
}

/// Create a nonblocking close-on-exec pipe: `(read_end, write_end)` —
/// the reactor's wake channel.
#[cfg(target_os = "linux")]
pub fn wake_pipe() -> io::Result<(OwnedFd, OwnedFd)> {
    let mut fds: [c_int; 2] = [-1, -1];
    // cubis:sys-audit: the kernel writes exactly two fds into a live
    // stack array of two; the return is checked before either is used.
    let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    // cubis:sys-audit: both descriptors were just created and are owned
    // by nothing else; each OwnedFd adopts exactly one of them.
    let pair = unsafe { (OwnedFd::from_raw_fd(fds[0]), OwnedFd::from_raw_fd(fds[1])) };
    Ok(pair)
}

/// Read from a raw fd (the wake pipe's read end) into `buf`.
pub fn read_fd(fd: RawFd, buf: &mut [u8]) -> io::Result<usize> {
    // cubis:sys-audit: pointer/len from one live mutable slice; the
    // checked return value bounds how many bytes the caller trusts.
    let rc = unsafe { read(fd, buf.as_mut_ptr() as *mut c_void, buf.len()) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(rc as usize)
}

/// Write `buf` to a raw fd (the wake pipe's write end).
pub fn write_fd(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
    // cubis:sys-audit: pointer/len from one live immutable slice the
    // kernel only reads from.
    let rc = unsafe { write(fd, buf.as_ptr() as *const c_void, buf.len()) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(rc as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::fd::AsRawFd;

    #[test]
    fn wake_pipe_round_trips_a_byte() {
        let (r, w) = wake_pipe().expect("pipe2");
        assert_eq!(write_fd(w.as_raw_fd(), b"x").expect("write"), 1);
        let mut buf = [0u8; 8];
        assert_eq!(read_fd(r.as_raw_fd(), &mut buf).expect("read"), 1);
        assert_eq!(buf[0], b'x');
        // Drained and nonblocking: the next read is WouldBlock, not a
        // hang.
        let err = read_fd(r.as_raw_fd(), &mut buf).expect_err("empty pipe");
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_sees_pipe_readability() {
        let ep = epoll_create().expect("epoll_create1");
        let (r, w) = wake_pipe().expect("pipe2");
        epoll_add(ep.as_raw_fd(), r.as_raw_fd(), EPOLLIN, 7).expect("add");
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing readable yet: a zero timeout returns no events.
        assert_eq!(epoll_wait_events(ep.as_raw_fd(), &mut events, 0).expect("wait"), 0);
        write_fd(w.as_raw_fd(), b"!").expect("write");
        let n = epoll_wait_events(ep.as_raw_fd(), &mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        let ev = events[0];
        assert_eq!({ ev.data }, 7);
        assert_ne!({ ev.events } & EPOLLIN, 0);
        epoll_delete(ep.as_raw_fd(), r.as_raw_fd()).expect("del");
    }

    #[test]
    fn poll_sees_pipe_readability() {
        let (r, w) = wake_pipe().expect("pipe2");
        let mut fds = [PollFd { fd: r.as_raw_fd(), events: POLLIN, revents: 0 }];
        assert_eq!(poll_fds(&mut fds, 0).expect("poll"), 0);
        write_fd(w.as_raw_fd(), b"!").expect("write");
        assert_eq!(poll_fds(&mut fds, 1000).expect("poll"), 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
    }
}
