//! Tier-1 gate for the `cubis-xtask bench` harness: the smoke workload
//! runs end to end, its `BENCH_solve.json` output parses on the trace
//! JSON codec with sane (nonnegative, median ≤ p95) timings, the warm
//! engine demonstrably reuses its grid cache (fewer cold MILP builds
//! than binary-search steps), and per-seed binary-search step counts
//! stay pinned — a changed count means the probe trajectory changed,
//! which the warm-start machinery promises never to do.

use cubis_bench::harness::{self, BenchReport, BenchShape};
use cubis_core::{Cubis, MilpInner, RobustProblem};
use cubis_trace::json;

#[test]
fn bench_smoke_runs_and_round_trips_on_the_trace_codec() {
    let report = harness::run(&harness::smoke_shapes()).expect("smoke bench failed");
    let serialized = report.to_json_string();

    // The document must be plain trace-codec JSON, not merely a string
    // our own parser happens to accept.
    let raw = json::parse(&serialized).expect("not valid trace-codec JSON");
    assert!(raw.get("format_version").is_some());
    assert!(!raw.get("shapes").and_then(json::JsonValue::as_arr).expect("shapes").is_empty());

    let back = BenchReport::from_json_str(&serialized).expect("round-trip parse failed");
    assert_eq!(back, report);

    for s in &back.shapes {
        for (mode, m) in [("cold", &s.cold), ("warm", &s.warm)] {
            assert!(m.wall_ns_median > 0, "{} {mode}: zero median wall time", s.name);
            assert!(
                m.wall_ns_median <= m.wall_ns_p95,
                "{} {mode}: median {} above p95 {}",
                s.name,
                m.wall_ns_median,
                m.wall_ns_p95
            );
            assert!(m.binary_steps > 0, "{} {mode}: no binary-search steps", s.name);
        }
        // The tentpole claim: warm solves rebuild the inner MILP's model
        // samples strictly less often than the search probes.
        assert!(
            s.warm.cold_builds < s.warm.binary_steps,
            "{}: warm path built {} grids over {} steps",
            s.name,
            s.warm.cold_builds,
            s.warm.binary_steps
        );
        // And in fact exactly once: one resolution, one grid.
        assert_eq!(s.warm.cold_builds, 1, "{}", s.name);
        assert_eq!(s.warm.cached_builds, s.warm.binary_steps - 1, "{}", s.name);
        // The cold path never touches warm state.
        assert_eq!(s.cold.cold_builds, 0, "{}", s.name);
        assert_eq!(s.cold.cached_builds, 0, "{}", s.name);
    }
}

#[test]
fn malformed_bench_output_is_rejected() {
    for bad in ["", "not json", "{}", r#"{"format_version": 1, "shapes": []}"#] {
        assert!(BenchReport::from_json_str(bad).is_err(), "accepted {bad:?}");
    }
}

/// Binary-search step counts per fixture seed, read from the committed
/// `bench-pins.json` (shared with `cubis-xtask bench --smoke`). The
/// warm engine promises a bit-identical probe trajectory, so these are
/// exact pins, not tolerances: a drift here means either the fixtures,
/// the ε schedule, or a probe's feasibility sign changed — and a
/// legitimate re-pin is one reviewed edit of the pins file.
#[test]
fn binary_search_step_counts_are_pinned_per_seed() {
    let pins = cubis_bench::pins::BenchPins::load(&cubis_bench::pins::BenchPins::default_path())
        .expect("committed bench-pins.json");
    assert!(pins.step_pins.len() >= 4, "pin coverage shrank");
    for pin in &pins.step_pins {
        let (game, model) =
            cubis_eval::fixtures::workload(pin.seed, pin.targets, pin.resources, pin.delta);
        let p = RobustProblem::new(&game, &model);
        for warm in [true, false] {
            let mut solver = Cubis::new(MilpInner::new(pin.k)).with_epsilon(pin.epsilon);
            solver.opts.warm_start = warm;
            let sol = solver.solve(&p).expect("solve failed");
            assert_eq!(
                sol.binary_steps, pin.steps,
                "seed {} (t={}, K={}, warm={warm}): step count drifted",
                pin.seed, pin.targets, pin.k
            );
        }
    }
}

/// The warm and cold engines must agree on the certified interval to
/// the bit on the bench workloads, not just on the fuzz instances.
#[test]
fn warm_and_cold_bounds_are_bit_identical_on_bench_shapes() {
    for shape in harness::smoke_shapes().iter().chain(
        [BenchShape {
            name: "pin-t4-k6",
            seed: 11,
            targets: 4,
            resources: 2.0,
            delta: 0.5,
            k: 6,
            epsilon: 1e-3,
            reps: 1,
            engine: "milp",
        }]
        .iter(),
    ) {
        let (game, model) =
            cubis_eval::fixtures::workload(shape.seed, shape.targets, shape.resources, shape.delta);
        let p = RobustProblem::new(&game, &model);
        let solve = |warm: bool| {
            let mut solver =
                Cubis::new(MilpInner::new(shape.k)).with_epsilon(shape.epsilon);
            solver.opts.warm_start = warm;
            solver.solve(&p).expect("solve failed")
        };
        let w = solve(true);
        let c = solve(false);
        assert_eq!(w.lb.to_bits(), c.lb.to_bits(), "{}: lb diverged", shape.name);
        assert_eq!(w.ub.to_bits(), c.ub.to_bits(), "{}: ub diverged", shape.name);
        assert_eq!(w.binary_steps, c.binary_steps, "{}: steps diverged", shape.name);
    }
}
