//! Seeded test-instance generation and the instance JSON codec.
//!
//! A [`CheckInstance`] is everything one fuzz case needs to rebuild the
//! exact game + uncertainty model + solver knobs: per-target payoffs,
//! an integer resource count, the SUQR interval parametrization
//! (`width_factor` scales the paper's weight box, `payoff_delta` the
//! attacker-payoff intervals) and the discretization knobs (`k`
//! piecewise segments for the MILP, `pp` grid points per unit for
//! DP/greedy, `epsilon` for the binary search). Every field is drawn
//! from a [`SplitMix64`] stream, so `CheckInstance::generate(seed)` is a
//! pure function of the seed — the replay contract of the harness.

use crate::rng::SplitMix64;
use cubis_behavior::{BoundConvention, SuqrUncertainty, UncertainSuqr};
use cubis_game::{SecurityGame, TargetPayoffs};
use cubis_trace::json::JsonValue;

/// One self-contained fuzz case.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckInstance {
    /// The per-case seed this instance was generated from (kept for
    /// replay hints; `0` for hand-built instances).
    pub seed: u64,
    /// Per-target payoff tuples `(Rd, Pd, Ra, Pa)`.
    pub targets: Vec<TargetPayoffs>,
    /// Defender resources (integer-valued, `1 ≤ r ≤ T`).
    pub resources: f64,
    /// Half-width of the attacker payoff intervals (before
    /// `width_factor` scaling).
    pub payoff_delta: f64,
    /// Width scale applied to the paper's SUQR weight box *and* the
    /// payoff intervals (`0` collapses to a point model).
    pub width_factor: f64,
    /// How exponent bounds are derived from the parameter box.
    pub convention: BoundConvention,
    /// Piecewise segments `K` for the MILP inner solver.
    pub k: usize,
    /// Grid points per unit for the DP/greedy inner solvers.
    pub pp: usize,
    /// Binary-search tolerance `ε`.
    pub epsilon: f64,
}

/// Round to two decimals — generated data stays human-readable and the
/// shrinker's integer snapping has a clean lattice to land on.
fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

impl CheckInstance {
    /// Deterministically generate the instance for `seed`.
    pub fn generate(seed: u64) -> Self {
        // Decorrelate from the harness's case-seed stream (which is
        // itself SplitMix64 output) by burning one mixing step.
        let mut r = SplitMix64::new(seed ^ 0xA02B_DBF7_BB3C_0A7A);
        let t = r.range_usize(2, 6);
        let targets = (0..t)
            .map(|_| {
                TargetPayoffs::new(
                    round2(r.range_f64(1.0, 10.0)),
                    round2(r.range_f64(-10.0, -1.0)),
                    round2(r.range_f64(1.0, 10.0)),
                    round2(r.range_f64(-10.0, -1.0)),
                )
            })
            .collect();
        let resources = r.range_usize(1, (t - 1).max(1)) as f64;
        let payoff_delta = round2(r.range_f64(0.0, 1.5));
        let width_factor = round2(r.range_f64(0.25, 1.0));
        let convention = if r.chance(0.5) {
            BoundConvention::ExactInterval
        } else {
            BoundConvention::CornerComponentwise
        };
        let k = r.range_usize(2, 6);
        let pp = r.range_usize(3, 8);
        let epsilon = if r.chance(0.5) { 0.01 } else { 0.05 };
        Self {
            seed,
            targets,
            resources,
            payoff_delta,
            width_factor,
            convention,
            k,
            pp,
            epsilon,
        }
    }

    /// Number of targets.
    pub fn num_targets(&self) -> usize {
        self.targets.len()
    }

    /// Structural validity: the shrinker only proposes candidates that
    /// pass this (so `game()` never panics on a shrunk instance).
    pub fn is_valid(&self) -> bool {
        !self.targets.is_empty()
            && self.targets.iter().all(|t| t.validate().is_ok())
            && self.resources >= 1.0
            && self.resources <= self.targets.len() as f64
            && self.payoff_delta >= 0.0
            && self.width_factor >= 0.0
            && self.k >= 1
            && self.pp >= 1
            && self.epsilon > 0.0
    }

    /// Build the [`SecurityGame`] this instance describes.
    ///
    /// # Panics
    /// Panics when the instance is invalid (see [`Self::is_valid`]).
    pub fn game(&self) -> SecurityGame {
        SecurityGame::new(self.targets.clone(), self.resources)
    }

    /// Build the interval-SUQR uncertainty model for `game`.
    pub fn model(&self, game: &SecurityGame) -> UncertainSuqr {
        UncertainSuqr::from_game(
            game,
            SuqrUncertainty::paper_example(),
            self.payoff_delta,
            self.convention,
        )
        .scale_width(self.width_factor)
    }

    /// The instance with targets reordered as `new[i] = old[perm[i]]`.
    ///
    /// # Panics
    /// Panics when `perm` is not a permutation of `0..T`.
    pub fn permuted(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.targets.len(), "permuted: length mismatch");
        let mut seen = vec![false; perm.len()];
        for &j in perm {
            assert!(!seen[j], "permuted: index {j} repeated");
            seen[j] = true;
        }
        Self {
            targets: perm.iter().map(|&j| self.targets[j]).collect(),
            ..self.clone()
        }
    }

    /// The instance with target `i` removed (resources clamped to stay
    /// within `1 ≤ r ≤ T−1`); `None` when only one target remains.
    pub fn without_target(&self, i: usize) -> Option<Self> {
        if self.targets.len() <= 1 || i >= self.targets.len() {
            return None;
        }
        let mut targets = self.targets.clone();
        targets.remove(i);
        let resources = self.resources.min(targets.len() as f64).max(1.0);
        Some(Self { targets, resources, ..self.clone() })
    }

    /// Instance as the canonical JSON value (the payload of the failure
    /// artifact). Delegates to [`crate::canon::encode_instance`] — the
    /// single encoder shared with the `cubis-serve` cache key.
    pub fn to_json(&self) -> JsonValue {
        crate::canon::encode_instance(self)
    }

    /// Decode an instance from its [`Self::to_json`] form (the
    /// canonical codec in [`crate::canon`]).
    pub fn from_json(v: &JsonValue) -> Result<Self, String> {
        crate::canon::decode_instance(v)
    }

    /// The FNV-1a hash of this instance's canonical content encoding
    /// (replay seed excluded) — see [`crate::canon::content_hash`].
    pub fn content_hash(&self) -> u64 {
        crate::canon::content_hash(self)
    }
}

/// Parse a seed in decimal or `0x…` hexadecimal form.
pub fn parse_seed(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse::<u64>()
    };
    parsed.map_err(|e| format!("bad seed {s:?}: {e}"))
}

/// Format a seed the way replay hints print it.
pub fn format_seed(seed: u64) -> String {
    format!("{seed:#018x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        for seed in [0u64, 1, 42, 0xFFFF_FFFF_FFFF_FFFF] {
            let a = CheckInstance::generate(seed);
            let b = CheckInstance::generate(seed);
            assert_eq!(a, b, "seed {seed:#x}");
            assert!(a.is_valid(), "seed {seed:#x}: {a:?}");
            assert!((2..=6).contains(&a.num_targets()));
            assert!(a.resources >= 1.0 && a.resources < a.num_targets() as f64 + 1e-9);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = CheckInstance::generate(1);
        let b = CheckInstance::generate(2);
        assert_ne!(a, b);
    }

    #[test]
    fn json_round_trips_exactly() {
        for seed in [3u64, 0xDEAD_BEEF_CAFE_F00D] {
            let inst = CheckInstance::generate(seed);
            let json = inst.to_json();
            let back = CheckInstance::from_json(&json).unwrap();
            assert_eq!(inst, back);
            // And through the actual codec text.
            let text = json.to_json_string();
            let reparsed = cubis_trace::json::parse(&text).unwrap();
            assert_eq!(CheckInstance::from_json(&reparsed).unwrap(), inst);
        }
    }

    #[test]
    fn seed_parsing_accepts_both_radixes() {
        assert_eq!(parse_seed("42").unwrap(), 42);
        assert_eq!(parse_seed("0x2a").unwrap(), 42);
        assert_eq!(parse_seed(&format_seed(u64::MAX)).unwrap(), u64::MAX);
        assert!(parse_seed("nope").is_err());
    }

    #[test]
    fn permutation_reorders_targets() {
        let inst = CheckInstance::generate(5);
        let t = inst.num_targets();
        let perm: Vec<usize> = (0..t).rev().collect();
        let p = inst.permuted(&perm);
        for i in 0..t {
            assert_eq!(p.targets[i], inst.targets[t - 1 - i]);
        }
    }

    #[test]
    fn target_removal_keeps_validity() {
        let inst = CheckInstance::generate(9);
        let smaller = inst.without_target(0).unwrap();
        assert_eq!(smaller.num_targets(), inst.num_targets() - 1);
        assert!(smaller.is_valid());
        // Shrink all the way down to one target.
        let mut cur = inst;
        while let Some(next) = cur.without_target(0) {
            assert!(next.is_valid());
            cur = next;
        }
        assert_eq!(cur.num_targets(), 1);
    }

    #[test]
    fn model_builds_and_has_ordered_bounds() {
        use cubis_behavior::IntervalChoiceModel;
        let inst = CheckInstance::generate(11);
        let game = inst.game();
        let model = inst.model(&game);
        for i in 0..inst.num_targets() {
            let (l, u) = model.bounds(&game, i, 0.5);
            assert!(0.0 < l && l <= u);
        }
    }
}
