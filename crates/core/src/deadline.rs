//! Cooperative per-solve deadlines.
//!
//! A [`Deadline`] is a wall-clock point past which a solve should stop
//! doing new work. The CUBIS driver checks it **between** binary-search
//! probes (never inside one — the inner MILP/DP stays uninterrupted, so
//! every probe that ran still produced its exact, deterministic
//! answer). On expiry [`crate::Cubis::solve`] returns
//! [`crate::SolveError::DeadlineExceeded`] carrying the best incumbent
//! bounds `[lb, ub]` reached so far, so callers (the `cubis-serve`
//! request path in particular) can report partial progress instead of
//! spinning past their budget.
//!
//! # Examples
//!
//! ```
//! use std::time::Duration;
//! use cubis_core::Deadline;
//!
//! let unlimited = Deadline::none();
//! assert!(unlimited.is_unlimited());
//! assert!(!unlimited.expired());
//!
//! let exhausted = Deadline::after(Duration::ZERO);
//! assert!(exhausted.expired());
//!
//! let generous = Deadline::after(Duration::from_secs(3600));
//! assert!(!generous.expired());
//! ```

use std::time::{Duration, Instant};

/// A cooperative wall-clock deadline (see the module docs).
///
/// The default is unlimited, so existing `CubisOptions` construction
/// sites keep their behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// No deadline: [`Deadline::expired`] is always `false`.
    pub fn none() -> Self {
        Self(None)
    }

    /// Expire at the given instant.
    pub fn at(instant: Instant) -> Self {
        Self(Some(instant))
    }

    /// Expire `budget` from now. A budget large enough to overflow the
    /// clock's representable range is treated as unlimited.
    pub fn after(budget: Duration) -> Self {
        Self(Instant::now().checked_add(budget))
    }

    /// Whether this deadline can ever expire.
    pub fn is_unlimited(&self) -> bool {
        self.0.is_none()
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.0.is_some_and(|t| Instant::now() >= t)
    }

    /// Time left until expiry (`None` when unlimited; zero once
    /// expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.0.map(|t| t.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(d.is_unlimited());
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
        assert_eq!(d, Deadline::default());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::after(Duration::ZERO);
        assert!(!d.is_unlimited());
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn far_future_does_not_expire() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().is_some_and(|r| r > Duration::from_secs(3000)));
    }

    #[test]
    fn at_instant_in_past_is_expired() {
        let d = Deadline::at(Instant::now());
        // `now >= t` — an instant taken just above is already reached.
        assert!(d.expired());
    }
}
