//! Regenerates T1 (see DESIGN.md §4).

fn main() {
    cubis_eval::experiments::table1::run()
        .expect("experiment failed")
        .print();
}
