//! Optional solve-journal capture for the experiment binaries.
//!
//! Tracing is off by default so published timings are unperturbed. Set
//! the `CUBIS_TRACE` environment variable to opt in: `CUBIS_TRACE=1`
//! writes the journal to the experiment's default path (alongside
//! `results.json`), any other value is used as the output path. Render
//! a captured journal with `cargo run -p cubis-xtask -- trace-report
//! <path>`.

use std::sync::Arc;

use cubis_trace::{JournalRecorder, SharedRecorder};

/// A journal recorder plus the path its journal will be written to.
///
/// Constructed from the environment by [`TraceSink::from_env`]; the
/// experiment attaches [`TraceSink::recorder`] to its solvers and calls
/// [`TraceSink::write`] once the run finishes.
#[derive(Debug)]
pub struct TraceSink {
    recorder: Arc<JournalRecorder>,
    path: String,
}

impl TraceSink {
    /// Build a sink from `CUBIS_TRACE`, or `None` when tracing is off.
    ///
    /// `CUBIS_TRACE=1` (or `true`) selects `default_path`; any other
    /// non-empty value is taken as the output path verbatim.
    pub fn from_env(default_path: &str) -> Option<TraceSink> {
        let value = std::env::var("CUBIS_TRACE").ok()?;
        let path = match value.as_str() {
            "" | "0" | "false" => return None,
            "1" | "true" => default_path.to_string(),
            other => other.to_string(),
        };
        Some(TraceSink { recorder: Arc::new(JournalRecorder::new()), path })
    }

    /// The recorder handle to attach to solvers (cheap to clone).
    pub fn recorder(&self) -> SharedRecorder {
        SharedRecorder::new(self.recorder.clone())
    }

    /// Write the journal captured so far to the sink's path and return
    /// that path.
    pub fn write(&self) -> std::io::Result<&str> {
        std::fs::write(&self.path, self.recorder.snapshot().to_json())?;
        Ok(&self.path)
    }
}

/// The recorder an experiment should attach: the sink's when tracing
/// is on, the inert null recorder otherwise.
pub fn recorder_or_null(sink: Option<&TraceSink>) -> SharedRecorder {
    sink.map(TraceSink::recorder).unwrap_or_else(SharedRecorder::null)
}

/// Write the sink's journal (if any), reporting the outcome on stderr
/// the same way `run_all` reports `results.json`.
pub fn finish(sink: Option<&TraceSink>) {
    if let Some(s) = sink {
        match s.write() {
            Ok(path) => eprintln!("wrote trace journal {path}"),
            Err(e) => eprintln!("could not write trace journal: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubis_trace::Journal;

    #[test]
    fn recorder_or_null_defaults_to_inert() {
        assert!(!recorder_or_null(None).enabled());
    }

    #[test]
    fn sink_round_trips_a_journal_to_disk() {
        let sink = TraceSink {
            recorder: Arc::new(JournalRecorder::new()),
            path: std::env::temp_dir()
                .join("cubis_eval_trace_sink_test.json")
                .to_string_lossy()
                .into_owned(),
        };
        sink.recorder().counter("demo.counter", 3);
        let path = sink.write().unwrap().to_string();
        let journal = Journal::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(journal.counter_totals().get("demo.counter"), Some(&3));
        let _ = std::fs::remove_file(&path);
    }
}
