//! End-to-end tests for the cubis-trace observability layer: recording
//! a real solve produces a journal whose binary-search step events
//! reconstruct the driver's `[lb, ub]` trajectory, the no-op recorder
//! perturbs nothing, and journals survive a JSON round trip.

use std::sync::Arc;

use cubis_behavior::{BoundConvention, SuqrUncertainty, UncertainSuqr};
use cubis_core::{Cubis, DpInner, MilpInner, RobustProblem};
use cubis_game::{GameGenerator, SecurityGame};
use cubis_trace::{Event, Journal, JournalRecorder, SharedRecorder};

const EPSILON: f64 = 1e-2;

fn fixture(seed: u64, targets: usize, resources: f64) -> (SecurityGame, UncertainSuqr) {
    let game = GameGenerator::new(seed).generate(targets, resources);
    let model = UncertainSuqr::from_game(
        &game,
        SuqrUncertainty::paper_example(),
        0.5,
        BoundConvention::ExactInterval,
    );
    (game, model)
}

fn recorded_solve(
    seed: u64,
) -> (cubis_core::CubisSolution, Journal) {
    let (game, model) = fixture(seed, 5, 2.0);
    let p = RobustProblem::new(&game, &model);
    let journal = Arc::new(JournalRecorder::new());
    let sol = Cubis::new(DpInner::new(40))
        .with_epsilon(EPSILON)
        .with_recorder(SharedRecorder::new(journal.clone()))
        .solve(&p)
        .unwrap();
    (sol, journal.snapshot())
}

#[test]
fn null_recorder_leaves_solution_identical() {
    let (game, model) = fixture(900, 5, 2.0);
    let p = RobustProblem::new(&game, &model);
    let plain = Cubis::new(DpInner::new(40)).with_epsilon(EPSILON).solve(&p).unwrap();
    let nulled = Cubis::new(DpInner::new(40))
        .with_epsilon(EPSILON)
        .with_recorder(SharedRecorder::null())
        .solve(&p)
        .unwrap();
    assert_eq!(plain.x, nulled.x);
    assert_eq!(plain.lb, nulled.lb);
    assert_eq!(plain.ub, nulled.ub);
    assert_eq!(plain.binary_steps, nulled.binary_steps);
}

#[test]
fn recording_does_not_change_the_answer() {
    let (game, model) = fixture(901, 5, 2.0);
    let p = RobustProblem::new(&game, &model);
    let plain = Cubis::new(DpInner::new(40)).with_epsilon(EPSILON).solve(&p).unwrap();
    let (recorded, _journal) = {
        let journal = Arc::new(JournalRecorder::new());
        let sol = Cubis::new(DpInner::new(40))
            .with_epsilon(EPSILON)
            .with_recorder(SharedRecorder::new(journal.clone()))
            .solve(&p)
            .unwrap();
        (sol, journal.snapshot())
    };
    assert_eq!(plain.x, recorded.x);
    assert_eq!(plain.lb, recorded.lb);
    assert_eq!(plain.ub, recorded.ub);
    assert_eq!(plain.binary_steps, recorded.binary_steps);
}

#[test]
fn step_events_match_solution_and_shrink_monotonically() {
    let (sol, journal) = recorded_solve(902);
    let steps = journal.binary_steps();
    assert_eq!(steps.len(), sol.binary_steps, "one event per binary-search step");

    // The [lb, ub] trajectory is nested: lb nondecreasing, ub
    // nonincreasing, and every interval is well-formed.
    for w in steps.windows(2) {
        assert!(w[1].lb >= w[0].lb, "lb regressed: {:?} -> {:?}", w[0], w[1]);
        assert!(w[1].ub <= w[0].ub, "ub grew: {:?} -> {:?}", w[0], w[1]);
    }
    for s in &steps {
        assert!(s.lb <= s.ub, "inverted interval {s:?}");
        assert_eq!(s.feasible, s.g_value >= -1e-9);
    }

    // The last event agrees with the returned solution, and the final
    // gap honors the epsilon contract.
    let last = steps.last().unwrap();
    assert_eq!(last.lb, sol.lb);
    assert_eq!(last.ub, sol.ub);
    assert!(sol.ub - sol.lb <= EPSILON + 1e-12);

    // The solve summary event mirrors the solution.
    let summary = journal
        .events
        .iter()
        .find_map(|t| match &t.event {
            Event::SolveSummary(s) => Some(s.clone()),
            _ => None,
        })
        .expect("journal has a solve summary");
    assert_eq!(summary.lb, sol.lb);
    assert_eq!(summary.ub, sol.ub);
    assert_eq!(summary.worst_case, sol.worst_case);
    assert_eq!(summary.binary_steps, sol.binary_steps);
}

#[test]
fn inner_solve_events_cover_every_step() {
    let (sol, journal) = recorded_solve(903);
    let inner: Vec<_> = journal
        .events
        .iter()
        .filter_map(|t| match &t.event {
            Event::InnerSolve(e) => Some(e.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(inner.len(), sol.binary_steps, "one inner solve per step");
    for e in &inner {
        assert_eq!(e.backend, "dp");
        assert_eq!(e.k, Some(40));
    }
    // The warm engine (the default) samples the model once — the first
    // probe builds the (L, U, Ud) grid — and serves every later probe
    // from the cache with zero fresh evaluations.
    assert!(inner[0].evaluations > 0, "first probe must pay the grid build");
    for e in &inner[1..] {
        assert_eq!(e.evaluations, 0, "cached probe re-sampled the model");
    }
    let total: usize = inner.iter().map(|e| e.evaluations).sum();
    assert_eq!(total, sol.stats.evaluations, "journal evaluations match stats");

    // With warm start off every probe re-samples, restoring the
    // pre-cache accounting: per-step evaluations all positive and equal.
    let (game, model) = fixture(903, 5, 2.0);
    let p = RobustProblem::new(&game, &model);
    let journal = Arc::new(JournalRecorder::new());
    let mut cold_solver = Cubis::new(DpInner::new(40))
        .with_epsilon(EPSILON)
        .with_recorder(SharedRecorder::new(journal.clone()));
    cold_solver.opts.warm_start = false;
    let cold = cold_solver.solve(&p).unwrap();
    let cold_inner: Vec<_> = journal
        .snapshot()
        .events
        .iter()
        .filter_map(|t| match &t.event {
            Event::InnerSolve(e) => Some(e.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(cold_inner.len(), cold.binary_steps);
    for e in &cold_inner {
        assert!(e.evaluations > 0);
        assert_eq!(e.evaluations, inner[0].evaluations, "cold probes all pay the full grid");
    }
    assert_eq!(cold.lb.to_bits(), sol.lb.to_bits(), "warm/cold lb diverged");
    assert_eq!(cold.ub.to_bits(), sol.ub.to_bits(), "warm/cold ub diverged");
}

#[test]
fn span_totals_account_for_wall_clock() {
    let (_sol, journal) = recorded_solve(904);
    let spans = journal.span_totals();
    let solve = spans
        .iter()
        .find(|s| s.name == "cubis.solve")
        .expect("cubis.solve span recorded");
    assert_eq!(solve.count, 1);
    // The outer span closes last, so it bounds the journal duration
    // from below and every nested phase from above.
    let duration = journal.duration_ns();
    assert!(duration > 0);
    assert!(
        solve.total_ns as f64 >= 0.9 * duration as f64,
        "cubis.solve {}ns vs journal duration {}ns",
        solve.total_ns,
        duration
    );
    for s in &spans {
        if s.name != "cubis.solve" {
            assert!(s.total_ns <= solve.total_ns, "nested span {s:?} exceeds outer");
        }
    }
}

#[test]
fn milp_backend_records_bb_and_lp_counters() {
    let (game, model) = fixture(905, 4, 1.0);
    let p = RobustProblem::new(&game, &model);
    let journal = Arc::new(JournalRecorder::new());
    let sol = Cubis::new(MilpInner::new(6))
        .with_epsilon(5e-2)
        .with_recorder(SharedRecorder::new(journal.clone()))
        .solve(&p)
        .unwrap();
    let journal = journal.snapshot();
    let counters = journal.counter_totals();
    assert!(counters.get("bb.solves").copied().unwrap_or(0) >= sol.binary_steps as u64);
    assert!(counters.get("lp.solves").copied().unwrap_or(0) > 0);
    assert!(counters.get("lp.pivots").copied().unwrap_or(0) > 0);
    assert_eq!(counters.get("bb.nodes").copied().unwrap_or(0), sol.stats.milp_nodes as u64);
}

#[test]
fn journal_round_trips_through_json() {
    let (_sol, journal) = recorded_solve(906);
    assert!(!journal.is_empty());
    let json = journal.to_json();
    let back = Journal::from_json(&json).unwrap();
    assert_eq!(journal.events, back.events);
    // And the derived views agree.
    assert_eq!(journal.counter_totals(), back.counter_totals());
    assert_eq!(journal.binary_steps().len(), back.binary_steps().len());
}

#[test]
fn check_artifact_round_trips_through_trace_codec() {
    // cubis-check failure artifacts ride on cubis-trace's JSON writer,
    // so trace tooling must be able to parse one and re-emit it
    // unchanged — including full-width u64 seeds (stored as hex
    // strings) and shortest-repr f64 payoffs.
    let artifact = cubis_check::CaseArtifact {
        case_seed: 0xFEDC_BA98_7654_3210,
        oracle: "inner-dp-vs-brute".to_string(),
        detail: "c=0.25: DP 1.5 vs brute-force 1.25 (Δ = 2.5e-1)".to_string(),
        instance: cubis_check::CheckInstance::generate(0xC0FFEE),
    };
    let text = artifact.to_json_string();
    // Parse with the *trace* codec, not cubis-check's own reader.
    let parsed = cubis_trace::json::parse(&text).unwrap();
    assert_eq!(parsed.to_json_string(), text, "trace codec re-emission drifted");
    // And the typed decode over that parse tree reproduces the value.
    let back = cubis_check::CaseArtifact::from_json(&parsed).unwrap();
    assert_eq!(back, artifact);
    assert_eq!(back.case_seed, 0xFEDC_BA98_7654_3210);
}
