//! Render a recorded solve journal (`cubis-trace` JSON) as a human
//! digest: per-phase time and count breakdown, counter totals, the
//! binary-search trajectory with its consistency checks, inner-solve
//! effort per backend, and branch-and-bound worker utilization.
//!
//! Driven by `cubis-xtask trace-report <journal.json>`; journals come
//! from the experiment binaries (`CUBIS_TRACE=1`) or any code that
//! attaches a [`cubis_trace::JournalRecorder`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cubis_trace::{names, BbSolveEvent, Event, InnerSolveEvent, Journal, SolveSummaryEvent};

/// Result of checking a journal's binary-search trajectory against the
/// driver's invariants (used by [`render_report`] and by tests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrajectoryCheck {
    /// Step events found in the journal.
    pub steps: usize,
    /// Independent solves found (a journal may hold several; each
    /// restarts the step counter at 1).
    pub solves: usize,
    /// Within each solve, `lb` never decreased and `ub` never
    /// increased.
    pub monotone: bool,
    /// Every recorded interval satisfied `lb ≤ ub`.
    pub well_formed: bool,
    /// Each solve's final `[lb, ub]` and step count match its solve
    /// summary, in order (vacuously true when the journal has no
    /// summaries).
    pub matches_summary: bool,
}

impl TrajectoryCheck {
    /// All invariants hold.
    pub fn ok(&self) -> bool {
        self.monotone && self.well_formed && self.matches_summary
    }
}

/// Split a journal's step events into per-solve runs: the driver's
/// step counter starts at 1 and increases within one solve, so a
/// non-increasing step number marks the next solve.
fn step_segments(journal: &Journal) -> Vec<Vec<&cubis_trace::BinaryStepEvent>> {
    let mut segments: Vec<Vec<&cubis_trace::BinaryStepEvent>> = Vec::new();
    for s in journal.binary_steps() {
        let start_new = match segments.last().and_then(|seg| seg.last()) {
            Some(prev) => s.step <= prev.step,
            None => true,
        };
        if start_new {
            segments.push(Vec::new());
        }
        if let Some(seg) = segments.last_mut() {
            seg.push(s);
        }
    }
    segments
}

/// Check the `[lb, ub]` trajectory of `journal` against the binary
/// search's invariants.
pub fn check_trajectory(journal: &Journal) -> TrajectoryCheck {
    let segments = step_segments(journal);
    let mut check = TrajectoryCheck {
        steps: segments.iter().map(Vec::len).sum(),
        solves: segments.len(),
        monotone: true,
        well_formed: true,
        matches_summary: true,
    };
    for seg in &segments {
        for w in seg.windows(2) {
            if w[1].lb < w[0].lb || w[1].ub > w[0].ub {
                check.monotone = false;
            }
        }
        for s in seg {
            if s.lb > s.ub {
                check.well_formed = false;
            }
        }
    }
    let summaries = solve_summaries(journal);
    if !summaries.is_empty() {
        check.matches_summary = summaries.len() == segments.len()
            && segments.iter().zip(&summaries).all(|(seg, summary)| {
                // Bitwise equality is the contract: the driver records
                // the very values it returns.
                seg.last().is_some_and(|last| {
                    last.lb.to_bits() == summary.lb.to_bits()
                        && last.ub.to_bits() == summary.ub.to_bits()
                        && seg.len() == summary.binary_steps
                })
            });
    }
    check
}

/// The journal's solve summaries, in recording order.
fn solve_summaries(journal: &Journal) -> Vec<SolveSummaryEvent> {
    journal
        .events
        .iter()
        .filter_map(|t| match &t.event {
            Event::SolveSummary(s) => Some(s.clone()),
            _ => None,
        })
        .collect()
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Render the full text report for a journal.
pub fn render_report(journal: &Journal) -> String {
    let mut out = String::new();
    let duration = journal.duration_ns();
    let _ = writeln!(
        out,
        "trace report: {} event(s), {} ms observed wall-clock",
        journal.len(),
        fmt_ms(duration)
    );

    render_spans(&mut out, journal, duration);
    render_counters(&mut out, journal);
    render_trajectory(&mut out, journal);
    render_inner(&mut out, journal);
    render_bb(&mut out, journal);
    out
}

/// Span table: where the time went, as a share of observed wall-clock.
fn render_spans(out: &mut String, journal: &Journal, duration: u64) {
    let spans = journal.span_totals();
    if spans.is_empty() {
        return;
    }
    let _ = writeln!(out, "\n## Phases (span totals)\n");
    let _ = writeln!(
        out,
        "{:<20} {:>8} {:>12} {:>7}",
        "span", "count", "total ms", "%"
    );
    for s in &spans {
        let pct = if duration > 0 {
            100.0 * s.total_ns as f64 / duration as f64
        } else {
            0.0
        };
        // A journal recorded by an older (or patched) binary may carry
        // names the registry has since dropped; flag rather than hide.
        let marker = if names::is_registered_span(&s.name) {
            ""
        } else {
            "  (unregistered)"
        };
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>12} {:>6.1}%{}",
            s.name,
            s.count,
            fmt_ms(s.total_ns),
            pct,
            marker
        );
    }
    let _ = writeln!(
        out,
        "(spans nest: e.g. lp.solve time is part of bb.solve time, \
         so columns do not sum to 100%)"
    );
}

/// Counter totals.
fn render_counters(out: &mut String, journal: &Journal) {
    let counters = journal.counter_totals();
    if counters.is_empty() {
        return;
    }
    let _ = writeln!(out, "\n## Counters\n");
    for (name, total) in &counters {
        let marker = if names::is_registered_counter(name) {
            ""
        } else {
            "  (unregistered)"
        };
        let _ = writeln!(out, "{name:<24} {total:>12}{marker}");
    }
}

/// The binary-search trajectory plus its invariant checks.
fn render_trajectory(out: &mut String, journal: &Journal) {
    let segments = step_segments(journal);
    if segments.is_empty() {
        return;
    }
    let _ = writeln!(out, "\n## Binary search\n");
    for (i, seg) in segments.iter().enumerate() {
        if segments.len() > 1 {
            let _ = writeln!(out, "solve {} of {}:", i + 1, segments.len());
        }
        let _ = writeln!(
            out,
            "{:>4} {:>12} {:>12} {:>5} {:>12} {:>12} {:>12}",
            "step", "c", "G(c)", "feas", "lb", "ub", "gap"
        );
        for s in seg {
            let _ = writeln!(
                out,
                "{:>4} {:>12.6} {:>12.6} {:>5} {:>12.6} {:>12.6} {:>12.6}",
                s.step,
                s.c,
                s.g_value,
                if s.feasible { "yes" } else { "no" },
                s.lb,
                s.ub,
                s.ub - s.lb
            );
        }
    }
    let check = check_trajectory(journal);
    let verdict = |ok: bool| if ok { "ok" } else { "VIOLATED" };
    let _ = writeln!(
        out,
        "checks ({} solve(s)): monotone [lb,ub] {}; intervals well-formed {}; \
         final steps match summaries {}",
        check.solves,
        verdict(check.monotone),
        verdict(check.well_formed),
        verdict(check.matches_summary)
    );
    for summary in solve_summaries(journal) {
        let _ = writeln!(
            out,
            "summary: lb {:.6}, ub {:.6} (gap {:.2e}), exact worst case {:.6}, \
             {} step(s)",
            summary.lb,
            summary.ub,
            summary.ub - summary.lb,
            summary.worst_case,
            summary.binary_steps
        );
    }
}

/// Per-backend inner-solve effort.
fn render_inner(out: &mut String, journal: &Journal) {
    let mut by_backend: BTreeMap<&str, Vec<&InnerSolveEvent>> = BTreeMap::new();
    for t in &journal.events {
        if let Event::InnerSolve(e) = &t.event {
            by_backend.entry(e.backend.as_str()).or_default().push(e);
        }
    }
    if by_backend.is_empty() {
        return;
    }
    let _ = writeln!(out, "\n## Inner solves\n");
    let _ = writeln!(
        out,
        "{:<8} {:>7} {:>12} {:>10} {:>10} {:>12}",
        "backend", "solves", "total ms", "bb nodes", "lp iters", "evaluations"
    );
    for (backend, events) in &by_backend {
        let dur: u64 = events.iter().map(|e| e.dur_ns).sum();
        let nodes: usize = events.iter().map(|e| e.milp_nodes).sum();
        let lp: usize = events.iter().map(|e| e.lp_iterations).sum();
        let evals: usize = events.iter().map(|e| e.evaluations).sum();
        let _ = writeln!(
            out,
            "{:<8} {:>7} {:>12} {:>10} {:>10} {:>12}",
            backend,
            events.len(),
            fmt_ms(dur),
            nodes,
            lp,
            evals
        );
    }
}

/// Branch-and-bound aggregate plus worker utilization.
fn render_bb(out: &mut String, journal: &Journal) {
    let bb: Vec<&BbSolveEvent> = journal
        .events
        .iter()
        .filter_map(|t| match &t.event {
            Event::BbSolve(e) => Some(e),
            _ => None,
        })
        .collect();
    if bb.is_empty() {
        return;
    }
    let nodes: usize = bb.iter().map(|e| e.nodes).sum();
    let incumbents: usize = bb.iter().map(|e| e.incumbent_updates).sum();
    let _ = writeln!(out, "\n## Branch and bound\n");
    let _ = writeln!(
        out,
        "{} solve(s), {} node(s), {} incumbent update(s)",
        bb.len(),
        nodes,
        incumbents
    );
    // Worker utilization: per-solve node share of the busiest vs the
    // average worker (1.0 = perfectly balanced; only recorded by the
    // parallel backend).
    let parallel: Vec<&&BbSolveEvent> = bb.iter().filter(|e| !e.worker_nodes.is_empty()).collect();
    if let Some(sample) = parallel.first() {
        let workers = sample.worker_nodes.len();
        let mut worst_imbalance = 1.0f64;
        for e in &parallel {
            let total: u64 = e.worker_nodes.iter().sum();
            let max = e.worker_nodes.iter().copied().max().unwrap_or(0);
            if total > 0 {
                let mean = total as f64 / e.worker_nodes.len() as f64;
                worst_imbalance = worst_imbalance.max(max as f64 / mean);
            }
        }
        let _ = writeln!(
            out,
            "parallel: {} worker(s); worst per-solve imbalance {:.2}x \
             (busiest worker / mean)",
            workers, worst_imbalance
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubis_trace::{BinaryStepEvent, TimedEvent};

    fn step(step: usize, lb: f64, ub: f64) -> TimedEvent {
        TimedEvent {
            t_ns: step as u64,
            event: Event::BinaryStep(BinaryStepEvent {
                step,
                c: 0.5 * (lb + ub),
                g_value: 0.0,
                feasible: true,
                lb,
                ub,
            }),
        }
    }

    fn summary(lb: f64, ub: f64, steps: usize) -> TimedEvent {
        TimedEvent {
            t_ns: 1000,
            event: Event::SolveSummary(SolveSummaryEvent {
                lb,
                ub,
                worst_case: lb,
                binary_steps: steps,
            }),
        }
    }

    #[test]
    fn consistent_trajectory_passes() {
        let journal = Journal {
            events: vec![step(1, 0.0, 4.0), step(2, 2.0, 4.0), summary(2.0, 4.0, 2)],
        };
        let check = check_trajectory(&journal);
        assert!(check.ok(), "{check:?}");
        assert_eq!(check.steps, 2);
        assert_eq!(check.solves, 1);
    }

    #[test]
    fn multi_solve_journals_are_segmented_at_step_resets() {
        // Two back-to-back solves: the second restarts its counter, so
        // the ub "jump" between them is not a monotonicity violation.
        let journal = Journal {
            events: vec![
                step(1, 0.0, 4.0),
                step(2, 2.0, 4.0),
                summary(2.0, 4.0, 2),
                step(1, -9.0, 6.0),
                step(2, -9.0, -1.5),
                summary(-9.0, -1.5, 2),
            ],
        };
        let check = check_trajectory(&journal);
        assert_eq!(check.solves, 2);
        assert!(check.ok(), "{check:?}");
    }

    #[test]
    fn summary_count_mismatch_is_flagged() {
        let journal = Journal {
            events: vec![
                step(1, 0.0, 4.0),
                summary(0.0, 4.0, 1),
                summary(0.0, 4.0, 1),
            ],
        };
        assert!(!check_trajectory(&journal).matches_summary);
    }

    #[test]
    fn regressed_bound_is_flagged() {
        let journal = Journal {
            events: vec![step(1, 1.0, 4.0), step(2, 0.5, 4.0)],
        };
        assert!(!check_trajectory(&journal).monotone);
    }

    #[test]
    fn summary_mismatch_is_flagged() {
        let journal = Journal {
            events: vec![step(1, 0.0, 4.0), summary(1.0, 4.0, 1)],
        };
        assert!(!check_trajectory(&journal).matches_summary);
    }

    #[test]
    fn report_renders_all_sections() {
        let mut events = vec![
            TimedEvent {
                t_ns: 10,
                event: Event::Span {
                    name: "cubis.solve".into(),
                    dur_ns: 10,
                },
            },
            TimedEvent {
                t_ns: 11,
                event: Event::Counter {
                    name: "lp.pivots".into(),
                    delta: 7,
                },
            },
            TimedEvent {
                t_ns: 12,
                event: Event::InnerSolve(InnerSolveEvent {
                    backend: "milp".into(),
                    c: 1.0,
                    k: Some(8),
                    milp_nodes: 3,
                    lp_iterations: 9,
                    evaluations: 2,
                    dur_ns: 5,
                }),
            },
            TimedEvent {
                t_ns: 13,
                event: Event::BbSolve(BbSolveEvent {
                    nodes: 3,
                    lp_iterations: 9,
                    incumbent_updates: 1,
                    worker_nodes: vec![2, 1],
                    dur_ns: 5,
                }),
            },
        ];
        events.push(step(1, 0.0, 2.0));
        events.push(summary(0.0, 2.0, 1));
        let report = render_report(&Journal { events });
        for needle in [
            "## Phases",
            "cubis.solve",
            "## Counters",
            "lp.pivots",
            "## Binary search",
            "match summaries ok",
            "## Inner solves",
            "milp",
            "## Branch and bound",
            "2 worker(s)",
        ] {
            assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
        }
    }

    #[test]
    fn unregistered_names_are_flagged_in_the_digest() {
        let journal = Journal {
            events: vec![
                TimedEvent {
                    t_ns: 10,
                    event: Event::Span {
                        name: "lp.solve".into(),
                        dur_ns: 10,
                    },
                },
                TimedEvent {
                    t_ns: 11,
                    event: Event::Span {
                        name: "lp.mystery_phase".into(),
                        dur_ns: 4,
                    },
                },
                TimedEvent {
                    t_ns: 12,
                    event: Event::Counter {
                        name: "lp.pivots".into(),
                        delta: 7,
                    },
                },
                TimedEvent {
                    t_ns: 13,
                    event: Event::Counter {
                        name: "lp.mystery_count".into(),
                        delta: 1,
                    },
                },
            ],
        };
        let report = render_report(&journal);
        for line in report.lines() {
            let flagged = line.contains("(unregistered)");
            if line.contains("mystery") {
                assert!(flagged, "unregistered name not flagged: {line:?}");
            } else {
                assert!(!flagged, "registered name wrongly flagged: {line:?}");
            }
        }
        assert_eq!(report.matches("(unregistered)").count(), 2, "{report}");
    }

    #[test]
    fn empty_journal_renders_header_only() {
        let report = render_report(&Journal::default());
        assert!(report.starts_with("trace report: 0 event(s)"));
        assert!(!report.contains("##"));
    }
}
