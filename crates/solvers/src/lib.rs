//! Baseline defender solvers for the evaluation.
//!
//! The paper's experiments compare CUBIS against defenders that ignore
//! uncertainty or handle it differently:
//!
//! * [`uniform`] — spread resources evenly (no model at all);
//! * [`maximin`] — behavior-free robust: assume a fully adversarial
//!   attacker and maximize the minimum defender utility (water-filling);
//! * [`origami`] — strong Stackelberg equilibrium against a perfectly
//!   rational attacker (the classic ORIGAMI algorithm);
//! * [`midpoint`] — best response to the *midpoint* of the uncertainty
//!   intervals (the paper's non-robust strawman; equivalent to a
//!   PASAQ-style quantal-response best response);
//! * [`worst_type`] — Brown et al. (GameSec'14)-style robustness against
//!   a finite set of sampled attacker types (maximize the worst type's
//!   utility);
//! * [`bayesian`] — Yang et al. (AAMAS'14)-style Bayesian response:
//!   maximize the *average* utility over sampled types;
//! * [`nonconvex`] — multi-start projected gradient directly on the
//!   exact worst-case objective: the "generic non-convex solver
//!   (Fmincon)" comparator the paper mentions, built from scratch.
//!
//! All solvers return a coverage vector in the defender's feasible set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bayesian;
pub mod maximin;
pub mod midpoint;
pub mod nonconvex;
pub mod origami;
pub mod types;
pub mod uniform;
pub mod worst_type;

pub use bayesian::solve_bayesian;
pub use maximin::solve_maximin;
pub use midpoint::{solve_midpoint, solve_midpoint_params, solve_point_qr};
pub use nonconvex::{solve_nonconvex, NonconvexOptions};
pub use origami::solve_origami;
pub use types::{sample_types, SampledType};
pub use uniform::solve_uniform;
pub use worst_type::{solve_worst_type, WorstTypeOptions};
