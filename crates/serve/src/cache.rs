//! The two-tier solution cache: a sharded in-memory LRU hot tier over
//! an optional persistent append-only content-hash store.
//!
//! Keys are the FNV-1a content hash of the canonical instance encoding
//! ([`cubis_check::canon::content_hash`]); values are fully rendered
//! solution bodies, stored as the exact bytes the first solve produced
//! so a hit is *bit-identical* to a fresh solve (the trace codec's
//! shortest-repr `f64` printing makes re-rendering deterministic, and
//! the `cubis-serve-cache-vs-fresh` oracle holds the service to it).
//! The bit-identity contract spans both tiers — and server restarts: a
//! body served from the persistent tier is the same bytes the original
//! solve wrote, possibly in a previous process.
//!
//! Hash collisions cannot produce a wrong answer: each entry stores the
//! canonical content bytes alongside the body (on disk, the record
//! stores both byte runs), and a lookup whose bytes differ is treated
//! as a miss. Shards are independent mutexes selected by the high bits
//! of the key, so concurrent workers rarely contend; within a shard the
//! LRU order is a small `VecDeque` scanned linearly — shard capacities
//! are tens of entries, where a scan beats any pointer-chased list.
//!
//! # The persistent tier
//!
//! [`SolutionCache::with_disk_tier`] opens (or creates)
//! `<dir>/solutions.log`, an append-only record log:
//!
//! ```text
//! rec <hash-hex> <content-len> <body-len>\n
//! <content bytes><body bytes>\n
//! ```
//!
//! Opening scans the log once to build an in-memory offset index; a
//! truncated final record (a crash mid-append) is ignored, everything
//! before it stays served. Lookups that miss the hot tier read the
//! record back, verify the content bytes, promote the body into the
//! hot tier, and report [`CacheTier::Persistent`]. Inserts append at
//! most once per `(hash, content)` — the log never stores duplicates,
//! so its growth is bounded by the number of *distinct* instances ever
//! solved, not by traffic.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// Which tier satisfied a cache hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// The in-memory LRU.
    Hot,
    /// The on-disk append-only store (the body was then promoted).
    Persistent,
}

impl CacheTier {
    /// The `X-Cubis-Cache-Tier` header value.
    pub fn header_value(&self) -> &'static str {
        match self {
            Self::Hot => "hot",
            Self::Persistent => "persistent",
        }
    }
}

struct Entry {
    hash: u64,
    /// Canonical content bytes (the preimage of `hash`) — the collision
    /// guard.
    content: String,
    /// The rendered solution body served on a hit.
    body: String,
}

struct Shard {
    /// Most-recently-used first.
    entries: std::collections::VecDeque<Entry>,
}

/// Byte extents of one record's payload inside the log file.
#[derive(Debug, Clone, Copy)]
struct DiskRecord {
    content_off: u64,
    content_len: u32,
    body_off: u64,
    body_len: u32,
}

struct DiskState {
    file: File,
    /// hash → records with that hash (usually exactly one; collisions
    /// and policy-qualified contents share a hash slot).
    index: HashMap<u64, Vec<DiskRecord>>,
    records: usize,
}

struct DiskTier {
    state: Mutex<DiskState>,
    path: PathBuf,
}

/// A two-tier map from instance content to solution bodies: sharded
/// in-memory LRU over an optional persistent append-only log.
pub struct SolutionCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    disk: Option<DiskTier>,
}

impl SolutionCache {
    /// Create a memory-only cache with `shards` independent shards of
    /// `per_shard_capacity` entries each (both clamped to ≥ 1).
    pub fn new(shards: usize, per_shard_capacity: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard { entries: std::collections::VecDeque::new() }))
                .collect(),
            per_shard_capacity: per_shard_capacity.max(1),
            disk: None,
        }
    }

    /// Create a cache whose misses fall through to a persistent store
    /// under `dir` (created if absent). Entries already in the log —
    /// including ones written by a previous process — are immediately
    /// servable.
    pub fn with_disk_tier(
        shards: usize,
        per_shard_capacity: usize,
        dir: &Path,
    ) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("solutions.log");
        let mut file = OpenOptions::new().read(true).append(true).create(true).open(&path)?;
        let (index, records, clean_len) = scan_log(&mut file)?;
        if clean_len < file.metadata()?.len() {
            // A crash left a partial record; trim it so new appends
            // start on a record boundary instead of extending garbage.
            file.set_len(clean_len)?;
        }
        let mut cache = Self::new(shards, per_shard_capacity);
        cache.disk = Some(DiskTier {
            state: Mutex::new(DiskState { file, index, records }),
            path,
        });
        Ok(cache)
    }

    /// The log path of the persistent tier, if one is attached.
    pub fn disk_path(&self) -> Option<&Path> {
        self.disk.as_ref().map(|d| d.path.as_path())
    }

    fn shard(&self, hash: u64) -> &Mutex<Shard> {
        // High bits: FNV-1a mixes them well, and the low bits already
        // picked the LRU position on small tables elsewhere.
        let idx = (hash >> 32) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Look up the body for `(hash, content)` and which tier held it,
    /// refreshing (or establishing) its hot-tier LRU position.
    /// `content` must be the canonical bytes `hash` was computed from;
    /// an entry with the same hash but different bytes is a collision
    /// and reads as a miss.
    pub fn get_tiered(&self, hash: u64, content: &str) -> Option<(String, CacheTier)> {
        {
            let mut shard = self.shard(hash).lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(pos) =
                shard.entries.iter().position(|e| e.hash == hash && e.content == content)
            {
                let entry = shard.entries.remove(pos)?;
                let body = entry.body.clone();
                shard.entries.push_front(entry);
                return Some((body, CacheTier::Hot));
            }
        }
        let disk = self.disk.as_ref()?;
        let body = {
            let mut state = disk.state.lock().unwrap_or_else(PoisonError::into_inner);
            read_matching(&mut state, hash, content)?
        };
        // Promote: the next lookup is a hot hit.
        self.insert_hot(hash, content, &body);
        Some((body, CacheTier::Persistent))
    }

    /// Look up the body for `(hash, content)` across both tiers.
    pub fn get(&self, hash: u64, content: &str) -> Option<String> {
        self.get_tiered(hash, content).map(|(body, _)| body)
    }

    fn insert_hot(&self, hash: u64, content: &str, body: &str) {
        let mut shard = self.shard(hash).lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(pos) =
            shard.entries.iter().position(|e| e.hash == hash && e.content == content)
        {
            shard.entries.remove(pos);
        }
        shard.entries.push_front(Entry {
            hash,
            content: content.to_string(),
            body: body.to_string(),
        });
        while shard.entries.len() > self.per_shard_capacity {
            shard.entries.pop_back();
        }
    }

    /// Insert (or refresh) the body for `(hash, content)`: into the hot
    /// tier (evicting LRU when the shard is full) and — if absent there
    /// — appended to the persistent log.
    pub fn insert(&self, hash: u64, content: &str, body: &str) {
        self.insert_hot(hash, content, body);
        if let Some(disk) = &self.disk {
            let mut state = disk.state.lock().unwrap_or_else(PoisonError::into_inner);
            if read_matching(&mut state, hash, content).is_none() {
                // Append failures degrade the cache to memory-only for
                // this entry; they never fail the solve.
                let _ = append_record(&mut state, hash, content, body);
            }
        }
    }

    /// Total entries in the hot tier across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).entries.len())
            .sum()
    }

    /// Whether the hot tier holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records in the persistent tier (0 without one).
    pub fn persistent_len(&self) -> usize {
        self.disk
            .as_ref()
            .map(|d| d.state.lock().unwrap_or_else(PoisonError::into_inner).records)
            .unwrap_or(0)
    }
}

/// Scan the log from the start, returning the offset index, the record
/// count, and the byte offset of the end of the last intact record. A
/// truncated tail (crash mid-append) ends the scan cleanly.
fn scan_log(
    file: &mut File,
) -> std::io::Result<(HashMap<u64, Vec<DiskRecord>>, usize, u64)> {
    file.seek(SeekFrom::Start(0))?;
    let len = file.metadata()?.len();
    let mut reader = BufReader::new(&mut *file);
    let mut index: HashMap<u64, Vec<DiskRecord>> = HashMap::new();
    let mut records = 0usize;
    let mut offset = 0u64;
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        if n == 0 {
            break;
        }
        let header_len = n as u64;
        let Some((hash, content_len, body_len)) = parse_header(&header) else {
            break; // Corrupt header: treat the rest of the log as tail.
        };
        let content_off = offset + header_len;
        let body_off = content_off + u64::from(content_len);
        // Payload + trailing newline must fit inside the file.
        let end = body_off + u64::from(body_len) + 1;
        if end > len {
            break; // Truncated tail.
        }
        // Skip the payload without reading it.
        let mut remaining = u64::from(content_len) + u64::from(body_len) + 1;
        while remaining > 0 {
            let take = remaining.min(64 * 1024) as usize;
            let mut sink = vec![0u8; take];
            reader.read_exact(&mut sink)?;
            remaining -= take as u64;
        }
        index.entry(hash).or_default().push(DiskRecord {
            content_off,
            content_len,
            body_off,
            body_len,
        });
        records += 1;
        offset = end;
    }
    Ok((index, records, offset))
}

fn parse_header(line: &str) -> Option<(u64, u32, u32)> {
    let mut parts = line.trim_end().split(' ');
    if parts.next()? != "rec" {
        return None;
    }
    let hash = u64::from_str_radix(parts.next()?, 16).ok()?;
    let content_len: u32 = parts.next()?.parse().ok()?;
    let body_len: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((hash, content_len, body_len))
}

/// Find and read back the body of the record matching `(hash,
/// content)`, verifying the stored content bytes.
fn read_matching(state: &mut DiskState, hash: u64, content: &str) -> Option<String> {
    let candidates: Vec<DiskRecord> = state.index.get(&hash)?.clone();
    for rec in candidates {
        if rec.content_len as usize != content.len() {
            continue;
        }
        let mut stored = vec![0u8; rec.content_len as usize];
        if state.file.seek(SeekFrom::Start(rec.content_off)).is_err()
            || state.file.read_exact(&mut stored).is_err()
        {
            continue;
        }
        if stored != content.as_bytes() {
            continue; // Hash collision: different canonical bytes.
        }
        let mut body = vec![0u8; rec.body_len as usize];
        if state.file.seek(SeekFrom::Start(rec.body_off)).is_err()
            || state.file.read_exact(&mut body).is_err()
        {
            continue;
        }
        return String::from_utf8(body).ok();
    }
    None
}

fn append_record(
    state: &mut DiskState,
    hash: u64,
    content: &str,
    body: &str,
) -> std::io::Result<()> {
    let (content_len, body_len) = match (u32::try_from(content.len()), u32::try_from(body.len())) {
        (Ok(c), Ok(b)) => (c, b),
        _ => return Ok(()), // Absurdly large entry: skip persistence.
    };
    // Append mode: writes land at the end regardless of the read
    // cursor, but the offsets must be computed from the real end.
    let base = state.file.seek(SeekFrom::End(0))?;
    let header = format!("rec {hash:016x} {content_len} {body_len}\n");
    state.file.write_all(header.as_bytes())?;
    state.file.write_all(content.as_bytes())?;
    state.file.write_all(body.as_bytes())?;
    state.file.write_all(b"\n")?;
    state.file.flush()?;
    let content_off = base + header.len() as u64;
    state.index.entry(hash).or_default().push(DiskRecord {
        content_off,
        content_len,
        body_off: content_off + u64::from(content_len),
        body_len,
    });
    state.records += 1;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cubis-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn hit_after_insert_and_lru_eviction() {
        let cache = SolutionCache::new(1, 2);
        cache.insert(1, "a", "body-a");
        cache.insert(2, "b", "body-b");
        assert_eq!(cache.get(1, "a").as_deref(), Some("body-a"));
        // `1` is now most recent, so inserting a third evicts `2`.
        cache.insert(3, "c", "body-c");
        assert_eq!(cache.get(2, "b"), None);
        assert_eq!(cache.get(1, "a").as_deref(), Some("body-a"));
        assert_eq!(cache.get(3, "c").as_deref(), Some("body-c"));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn collision_reads_as_miss_and_never_wrong_body() {
        let cache = SolutionCache::new(4, 4);
        cache.insert(42, "content-a", "body-a");
        // Same hash, different canonical bytes: a forged collision.
        assert_eq!(cache.get(42, "content-b"), None);
        assert_eq!(cache.get(42, "content-a").as_deref(), Some("body-a"));
    }

    #[test]
    fn reinsert_refreshes_rather_than_duplicates() {
        let cache = SolutionCache::new(1, 8);
        cache.insert(7, "x", "old");
        cache.insert(7, "x", "new");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(7, "x").as_deref(), Some("new"));
    }

    #[test]
    fn shards_partition_the_key_space() {
        let cache = SolutionCache::new(8, 1);
        // Per-shard capacity 1, but keys landing in distinct shards
        // coexist.
        for i in 0u64..8 {
            let h = i << 32; // Distinct high bits select distinct shards.
            cache.insert(h, "k", "v");
        }
        assert!(cache.len() > 1, "distinct shards must not evict each other");
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(SolutionCache::new(4, 16));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        let h = (t << 32) | i;
                        cache.insert(h, "c", "b");
                        assert_eq!(cache.get(h, "c").as_deref(), Some("b"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("cache worker panicked");
        }
        assert!(!cache.is_empty());
    }

    #[test]
    fn disk_tier_survives_eviction_and_reports_the_tier() {
        let dir = temp_dir("evict");
        let cache = SolutionCache::with_disk_tier(1, 1, &dir).expect("open disk tier");
        cache.insert(1, "a", "body-a");
        cache.insert(2, "b", "body-b"); // Evicts `1` from the hot tier.
        assert_eq!(
            cache.get_tiered(2, "b"),
            Some(("body-b".to_string(), CacheTier::Hot))
        );
        // `1` is gone from memory but lives in the log — and the hit
        // promotes it back, evicting `2`.
        assert_eq!(
            cache.get_tiered(1, "a"),
            Some(("body-a".to_string(), CacheTier::Persistent))
        );
        assert_eq!(
            cache.get_tiered(1, "a"),
            Some(("body-a".to_string(), CacheTier::Hot))
        );
        assert_eq!(cache.persistent_len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_tier_survives_reopen_byte_identically() {
        let dir = temp_dir("reopen");
        {
            let cache = SolutionCache::with_disk_tier(2, 4, &dir).expect("open");
            cache.insert(0xABCD, "canon\nlines", "{\"v\":1.25}");
            // Re-inserting must not duplicate the record.
            cache.insert(0xABCD, "canon\nlines", "{\"v\":1.25}");
            assert_eq!(cache.persistent_len(), 1);
        }
        let cache = SolutionCache::with_disk_tier(2, 4, &dir).expect("reopen");
        assert_eq!(cache.len(), 0, "hot tier starts cold after reopen");
        assert_eq!(cache.persistent_len(), 1);
        assert_eq!(
            cache.get_tiered(0xABCD, "canon\nlines"),
            Some(("{\"v\":1.25}".to_string(), CacheTier::Persistent)),
            "reopened store must serve the exact original bytes"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_ignored_earlier_records_survive() {
        let dir = temp_dir("trunc");
        {
            let cache = SolutionCache::with_disk_tier(1, 4, &dir).expect("open");
            cache.insert(1, "aa", "first");
            cache.insert(2, "bb", "second");
        }
        // Chop bytes off the end, simulating a crash mid-append.
        let path = dir.join("solutions.log");
        let bytes = std::fs::read(&path).expect("read log");
        std::fs::write(&path, &bytes[..bytes.len() - 4]).expect("truncate");
        let cache = SolutionCache::with_disk_tier(1, 4, &dir).expect("reopen truncated");
        assert_eq!(cache.persistent_len(), 1, "only the intact record survives");
        assert_eq!(cache.get(1, "aa").as_deref(), Some("first"));
        assert_eq!(cache.get(2, "bb"), None);
        // And the store keeps working: new inserts append after repair.
        cache.insert(3, "cc", "third");
        let reopened = SolutionCache::with_disk_tier(1, 4, &dir).expect("reopen again");
        assert_eq!(reopened.get(3, "cc").as_deref(), Some("third"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_collision_still_reads_as_miss() {
        let dir = temp_dir("collide");
        let cache = SolutionCache::with_disk_tier(1, 1, &dir).expect("open");
        cache.insert(9, "content-a", "body-a");
        cache.insert(10, "x", "y"); // Evict `9` from memory.
        assert_eq!(cache.get_tiered(9, "content-z"), None);
        assert_eq!(
            cache.get_tiered(9, "content-a"),
            Some(("body-a".to_string(), CacheTier::Persistent))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
