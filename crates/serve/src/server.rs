//! The HTTP server: a nonblocking reactor frontend feeding a sharded,
//! work-stealing worker pool.
//!
//! One [`cubis_reactor`] thread owns the listener and every connection:
//! it accepts, incrementally parses pipelined keep-alive requests, and
//! answers the cheap read-only endpoints (`/healthz`, `/metrics`) and
//! all rejections (429/503/405/404) inline — so health and
//! observability stay responsive even when every worker is busy. Solve
//! work is handed to a fixed pool of worker threads through per-worker
//! queue shards: jobs are pushed round-robin, each worker drains its
//! own shard first and *steals* from siblings when empty, and the
//! total queued count is bounded by explicit admission control — a
//! full queue answers `429 Too Many Requests` (with `Retry-After`), a
//! draining server answers `503 Service Unavailable`, and nothing
//! ever blocks the reactor on solver time. Workers answer through
//! [`cubis_reactor::Reply`], which routes the encoded response back to
//! the reactor; pipelined responses leave in request order no matter
//! which worker finishes first.
//!
//! Shutdown is cooperative and drain-first: [`ServerHandle::shutdown`]
//! flips the draining flag (new solve requests get 503), joins the
//! workers — who keep popping until the queue is *empty*, so every
//! request admitted before the drain began still gets its response —
//! then stops the reactor, which flushes every buffered response
//! before closing.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use cubis_reactor::{
    encode_response, Handler, ParseError, ParsedRequest, ReactorConfig, ReactorHandle, Reply,
    Response,
};
use cubis_trace::SharedRecorder;

use crate::app::App;
use crate::codec;
use crate::http;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port `0` for an ephemeral port.
    pub addr: String,
    /// Worker threads servicing the solve queue.
    pub workers: usize,
    /// Bounded admission-queue capacity across all shards (beyond
    /// this: 429).
    pub queue_capacity: usize,
    /// Shards of the solution cache.
    pub cache_shards: usize,
    /// LRU capacity per cache shard.
    pub cache_capacity_per_shard: usize,
    /// Per-connection read/write stall timeout.
    pub io_timeout: Duration,
    /// How long an idle keep-alive connection may sit between
    /// requests before the reactor closes it.
    pub idle_timeout: Duration,
    /// Honor `x-cubis-test-hold-ms` (integration tests only: lets a
    /// test pin a worker deterministically to fill the queue).
    pub allow_test_hooks: bool,
    /// Directory for the persistent cache tier; `None` = memory-only.
    pub data_dir: Option<PathBuf>,
    /// Hard cap on concurrently open connections.
    pub max_connections: usize,
    /// Force the reactor's portable `poll(2)` backend.
    pub force_poll_backend: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            cache_shards: 8,
            cache_capacity_per_shard: 32,
            io_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            allow_test_hooks: false,
            data_dir: None,
            max_connections: 4096,
            force_poll_backend: false,
        }
    }
}

/// One admitted solve job.
struct Job {
    request: ParsedRequest,
    reply: Reply,
    keep_alive: bool,
}

/// Per-worker queue shards with work stealing. Pushes go round-robin;
/// a worker drains its own shard front-first and steals from the
/// *back* of siblings, so stolen work is the freshest (the owner keeps
/// FIFO order for its own).
struct WorkQueue {
    shards: Vec<Mutex<VecDeque<Job>>>,
    /// Total queued across shards (admission control reads this).
    queued: AtomicUsize,
    /// Round-robin push cursor.
    rr: AtomicUsize,
    gate: Mutex<()>,
    wake: Condvar,
}

impl WorkQueue {
    fn new(workers: usize) -> Self {
        Self {
            shards: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            rr: AtomicUsize::new(0),
            gate: Mutex::new(()),
            wake: Condvar::new(),
        }
    }

    fn push(&self, job: Job) -> usize {
        // cubis:allow(CONC01): the round-robin cursor only spreads pushes
        // across shards; no memory is published through it, and the shard
        // mutex below orders the job hand-off
        let shard = self.rr.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.shards[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(job);
        let depth = self.queued.fetch_add(1, Ordering::SeqCst) + 1;
        self.wake.notify_one();
        depth
    }

    /// Pop for worker `own`: own shard first, then steal.
    fn try_pop(&self, own: usize) -> Option<Job> {
        if let Some(job) =
            self.shards[own].lock().unwrap_or_else(PoisonError::into_inner).pop_front()
        {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        for offset in 1..self.shards.len() {
            let victim = (own + offset) % self.shards.len();
            if let Some(job) = self.shards[victim]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_back()
            {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }
}

struct Shared {
    app: App,
    queue: WorkQueue,
    draining: AtomicBool,
    config: ServeConfig,
}

/// The reactor-side request handler: inline answers and admission.
struct Frontend {
    shared: Arc<Shared>,
}

/// Encode an application-level response for one request.
fn render(
    status: u16,
    extra_headers: &[(&str, &str)],
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> Response {
    Response {
        bytes: encode_response(
            status,
            http::reason(status),
            content_type,
            extra_headers,
            body,
            keep_alive,
        ),
        close: !keep_alive,
    }
}

fn render_error(status: u16, code: &str, detail: &str, keep_alive: bool) -> Response {
    render(
        status,
        &[],
        "application/json",
        codec::error_body(code, detail, None).as_bytes(),
        keep_alive,
    )
}

impl Handler for Frontend {
    fn handle(&self, request: ParsedRequest, reply: Reply) {
        let shared = &self.shared;
        let metrics = shared.app.metrics();
        metrics.requests_total.fetch_add(1, Ordering::SeqCst);
        let keep_alive = request.keep_alive;
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => {
                reply.send(render(
                    200,
                    &[],
                    "application/json",
                    b"{\"status\":\"ok\"}",
                    keep_alive,
                ));
            }
            ("GET", "/metrics") => {
                let body = shared.app.render_metrics();
                reply.send(render(
                    200,
                    &[],
                    "text/plain; charset=utf-8",
                    body.as_bytes(),
                    keep_alive,
                ));
            }
            ("POST", "/v1/solve") | ("POST", "/v1/solve_batch") => {
                if shared.draining.load(Ordering::SeqCst) {
                    metrics.rejected_draining.fetch_add(1, Ordering::SeqCst);
                    reply.send(render_error(
                        503,
                        "draining",
                        "server is shutting down",
                        false,
                    ));
                    return;
                }
                if shared.queue.queued.load(Ordering::SeqCst) >= shared.config.queue_capacity {
                    metrics.rejected_queue_full.fetch_add(1, Ordering::SeqCst);
                    reply.send(render(
                        429,
                        &[("retry-after", "1")],
                        "application/json",
                        codec::error_body(
                            "queue_full",
                            "admission queue is full; retry later",
                            None,
                        )
                        .as_bytes(),
                        keep_alive,
                    ));
                    return;
                }
                let depth = shared.queue.push(Job { request, reply, keep_alive });
                metrics.queue_depth.store(depth as u64, Ordering::SeqCst);
            }
            ("GET", "/v1/solve") | ("GET", "/v1/solve_batch") => {
                metrics.client_errors.fetch_add(1, Ordering::SeqCst);
                reply.send(render_error(405, "method_not_allowed", "use POST", keep_alive));
            }
            _ => {
                metrics.client_errors.fetch_add(1, Ordering::SeqCst);
                reply.send(render_error(404, "not_found", "unknown route", keep_alive));
            }
        }
    }

    fn on_parse_error(&self, err: &ParseError) -> Response {
        self.shared.app.metrics().client_errors.fetch_add(1, Ordering::SeqCst);
        let (status, code) = match err {
            ParseError::HeadTooLarge(_) => (431, "too_large"),
            ParseError::BodyTooLarge(_) => (413, "too_large"),
            ParseError::Malformed(_) => (400, "malformed"),
        };
        render_error(status, code, &err.to_string(), false)
    }
}

/// A running server; dropping the handle without calling
/// [`Self::shutdown`] stops the reactor (via its own drop) but
/// detaches the workers, so tests and the load generator should
/// always shut down.
pub struct ServerHandle {
    addr: SocketAddr,
    reactor: Option<ReactorHandle>,
    workers: Vec<std::thread::JoinHandle<()>>,
    shared: Arc<Shared>,
}

/// Start a server for `config`; returns once the listener is bound
/// and the worker pool is up.
pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let app = match &config.data_dir {
        Some(dir) => App::with_data_dir(config.cache_shards, config.cache_capacity_per_shard, dir)?,
        None => App::new(config.cache_shards, config.cache_capacity_per_shard),
    };
    let workers_n = config.workers.max(1);
    let shared = Arc::new(Shared {
        app,
        queue: WorkQueue::new(workers_n),
        draining: AtomicBool::new(false),
        config: config.clone(),
    });
    let workers = (0..workers_n)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("cubis-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared, i))
        })
        .collect::<std::io::Result<Vec<_>>>()?;
    let recorder =
        SharedRecorder::new(shared.app.trace() as Arc<dyn cubis_trace::Recorder>);
    let reactor = cubis_reactor::start(
        ReactorConfig {
            addr: config.addr.clone(),
            max_connections: config.max_connections,
            idle_timeout: config.idle_timeout,
            read_timeout: config.io_timeout,
            write_timeout: config.io_timeout,
            max_head_bytes: http::MAX_HEAD_BYTES,
            max_body_bytes: http::MAX_BODY_BYTES,
            force_poll_backend: config.force_poll_backend,
        },
        Arc::new(Frontend { shared: Arc::clone(&shared) }),
        recorder,
    )?;
    Ok(ServerHandle { addr: reactor.local_addr(), reactor: Some(reactor), workers, shared })
}

impl ServerHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct access to the app (metrics, cache introspection) for
    /// embedding callers like `cubis-xtask loadgen`.
    pub fn app(&self) -> &App {
        &self.shared.app
    }

    /// Graceful shutdown: refuse new work, drain the queue, join the
    /// workers, flush every buffered response, stop the reactor.
    /// Every request admitted before this call still gets a response.
    pub fn shutdown(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.app.metrics().draining.store(1, Ordering::SeqCst);
        self.shared.queue.wake.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // A request admitted in the instant between the drain flag and
        // the last worker exiting would otherwise hang its connection
        // until the reactor's flush budget expires: answer it here.
        for shard_idx in 0..self.shared.queue.shards.len() {
            while let Some(job) = self.shared.queue.try_pop(shard_idx) {
                self.shared.app.metrics().rejected_draining.fetch_add(1, Ordering::SeqCst);
                job.reply.send(render_error(503, "draining", "server is shutting down", false));
            }
        }
        if let Some(reactor) = self.reactor.take() {
            reactor.shutdown();
        }
    }
}

/// Pop the next job for worker `idx`, blocking until one arrives or
/// the drain finishes.
fn next_job(shared: &Shared, idx: usize) -> Option<Job> {
    let metrics = shared.app.metrics();
    loop {
        if let Some(job) = shared.queue.try_pop(idx) {
            metrics
                .queue_depth
                .store(shared.queue.queued.load(Ordering::SeqCst) as u64, Ordering::SeqCst);
            return Some(job);
        }
        // Drain-first: only exit on an *empty* queue.
        if shared.draining.load(Ordering::SeqCst) {
            return None;
        }
        let gate = shared.queue.gate.lock().unwrap_or_else(PoisonError::into_inner);
        let _unused = shared
            .queue
            .wake
            .wait_timeout(gate, Duration::from_millis(100))
            .unwrap_or_else(PoisonError::into_inner);
    }
}

fn worker_loop(shared: &Shared, idx: usize) {
    let metrics = shared.app.metrics();
    while let Some(job) = next_job(shared, idx) {
        metrics.in_flight.fetch_add(1, Ordering::SeqCst);
        let started = Instant::now();
        if shared.config.allow_test_hooks {
            if let Some(ms) =
                job.request.header("x-cubis-test-hold-ms").and_then(|v| v.parse::<u64>().ok())
            {
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
        let body_text = String::from_utf8_lossy(&job.request.body).into_owned();
        let response = match job.request.path.as_str() {
            "/v1/solve" => shared.app.handle_solve_body(&body_text),
            _ => shared.app.handle_batch_body(&body_text),
        };
        let mut headers = vec![("x-cubis-cache", response.cache.header_value())];
        if let Some(tier) = response.tier {
            headers.push(("x-cubis-cache-tier", tier.header_value()));
        }
        if let Some(engine) = response.inner {
            headers.push(("x-cubis-inner", engine));
        }
        job.reply.send(render(
            response.status,
            &headers,
            "application/json",
            response.body.as_bytes(),
            job.keep_alive,
        ));
        metrics.solve_latency.observe(started.elapsed());
        metrics.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Transport-level behavior (routing, backpressure, drain) is
    // exercised end-to-end in `tests/tests/serve.rs`; here we keep the
    // cheap invariants that don't need a solve.

    #[test]
    fn boots_on_ephemeral_port_and_answers_health() {
        let handle = start(ServeConfig {
            workers: 1,
            queue_capacity: 4,
            ..ServeConfig::default()
        })
        .expect("bind ephemeral port");
        let addr = handle.local_addr();
        let resp =
            http::roundtrip(addr, "GET", "/healthz", &[], b"", Duration::from_secs(5)).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body_text().contains("ok"));
        let resp =
            http::roundtrip(addr, "GET", "/nope", &[], b"", Duration::from_secs(5)).unwrap();
        assert_eq!(resp.status, 404);
        handle.shutdown();
    }

    #[test]
    fn refuses_after_shutdown() {
        let handle = start(ServeConfig::default()).expect("bind ephemeral port");
        let addr = handle.local_addr();
        handle.shutdown();
        // The listener is closed once the reactor exits: either the
        // connection is refused outright or (if it raced the close) it
        // sees a 503.
        let outcome = http::roundtrip(addr, "GET", "/healthz", &[], b"", Duration::from_secs(2));
        match outcome {
            Err(_) => {}
            Ok(resp) => assert_eq!(resp.status, 503),
        }
    }

    #[test]
    fn keep_alive_client_reuses_one_connection_for_many_requests() {
        let handle = start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        })
        .expect("bind ephemeral port");
        let mut conn =
            http::ClientConn::connect(handle.local_addr(), Duration::from_secs(5)).unwrap();
        for _ in 0..5 {
            let resp = conn.request("GET", "/healthz", &[], b"").unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.header("connection"), Some("keep-alive"));
        }
        assert_eq!(conn.exchanges(), 5);
        assert!(conn.reusable());
        let text = handle.app().render_metrics();
        assert!(
            text.contains("cubis_serve_requests_total 5"),
            "all five keep-alive requests must be counted:\n{text}"
        );
        handle.shutdown();
    }
}
