//! One module per table/figure (see DESIGN.md §4).

pub mod ablate_backend;
pub mod ablate_convention;
pub mod bound_eps;
pub mod bound_k;
pub mod learning_loop;
pub mod parallel_scaling;
pub mod quality_delta;
pub mod quality_targets;
pub mod runtime_k;
pub mod runtime_targets;
pub mod table1;

use cubis_behavior::UncertainSuqr;
use cubis_core::{Cubis, DpInner, MilpInner, RobustProblem, SolveError};
use cubis_game::SecurityGame;
use cubis_solvers as solvers;

/// Effort profile: `quick` keeps every experiment in seconds-to-a-minute
/// territory; `full` matches the paper-scale sweeps. Selected with the
/// `CUBIS_FULL=1` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Reduced seeds/sizes (default).
    Quick,
    /// Paper-scale sweeps.
    Full,
}

impl Profile {
    /// Read the profile from the environment (`CUBIS_FULL=1` → Full).
    pub fn from_env() -> Self {
        if std::env::var("CUBIS_FULL")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            Profile::Full
        } else {
            Profile::Quick
        }
    }

    /// Number of seeded instances per configuration.
    pub fn seeds(self) -> u64 {
        match self {
            Profile::Quick => 8,
            Profile::Full => 30,
        }
    }
}

/// Default grid resolution for DP-backed CUBIS in quality sweeps.
pub const DP_RESOLUTION: usize = 60;
/// Default binary-search threshold.
pub const EPSILON: f64 = 1e-3;
/// Sampled attacker types for the worst-type / Bayesian baselines.
pub const N_TYPES: usize = 8;

/// The solver zoo compared in the quality experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// CUBIS with the DP inner solver (same answers as the MILP route,
    /// used in sweeps for speed; the MILP route is exercised in T1, F3,
    /// F4, F6 and A1).
    Cubis,
    /// Best response to midpoint parameters (the paper's strawman).
    Midpoint,
    /// Worst-type robust (Brown et al. style) over sampled types.
    WorstType,
    /// Bayesian average over sampled types.
    Bayesian,
    /// Uniform coverage.
    Uniform,
    /// Behavior-free maximin.
    Maximin,
    /// SSE vs a perfectly rational attacker (ORIGAMI).
    Origami,
}

impl Baseline {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Baseline::Cubis => "CUBIS",
            Baseline::Midpoint => "Midpoint",
            Baseline::WorstType => "WorstType",
            Baseline::Bayesian => "Bayesian",
            Baseline::Uniform => "Uniform",
            Baseline::Maximin => "Maximin",
            Baseline::Origami => "ORIGAMI",
        }
    }

    /// The zoo in presentation order.
    pub fn all() -> [Baseline; 7] {
        [
            Baseline::Cubis,
            Baseline::Midpoint,
            Baseline::WorstType,
            Baseline::Bayesian,
            Baseline::Uniform,
            Baseline::Maximin,
            Baseline::Origami,
        ]
    }

    /// Compute this baseline's strategy on an instance. Seeds for the
    /// type-sampling baselines derive from `seed` so instances stay
    /// deterministic. Solver failures (numerical breakdown, node
    /// budgets) propagate as [`SolveError`] so a sweep can report the
    /// instance instead of aborting the whole experiment binary.
    pub fn solve(
        self,
        game: &SecurityGame,
        model: &UncertainSuqr,
        seed: u64,
    ) -> Result<Vec<f64>, SolveError> {
        Ok(match self {
            Baseline::Cubis => {
                let p = RobustProblem::new(game, model);
                Cubis::new(DpInner::new(DP_RESOLUTION))
                    .with_epsilon(EPSILON)
                    .solve(&p)?
                    .x
            }
            Baseline::Midpoint => {
                solvers::solve_midpoint_params(game, model, DP_RESOLUTION, EPSILON)?
            }
            Baseline::WorstType => {
                let types = solvers::sample_types(model, N_TYPES, seed ^ 0x5eed);
                let opts = solvers::WorstTypeOptions {
                    k: 4,
                    epsilon: 0.05,
                    ..Default::default()
                };
                solvers::solve_worst_type(game, &types, &opts)
                    .map_err(|e| SolveError::Milp(e.to_string()))?
            }
            Baseline::Bayesian => {
                let types = solvers::sample_types(model, N_TYPES, seed ^ 0x5eed);
                let opts = solvers::NonconvexOptions {
                    starts: 6,
                    max_iters: 80,
                    seed: seed ^ 0xbe5,
                    parallel: false,
                    ..Default::default()
                };
                solvers::solve_bayesian(game, &types, &opts)
            }
            Baseline::Uniform => solvers::solve_uniform(game),
            Baseline::Maximin => solvers::solve_maximin(game),
            Baseline::Origami => solvers::solve_origami(game),
        })
    }
}

/// Exact worst-case utility of `x` on an instance (the quality metric of
/// every experiment).
pub fn robust_value(game: &SecurityGame, model: &UncertainSuqr, x: &[f64]) -> f64 {
    RobustProblem::new(game, model).worst_case(x).utility
}

/// A CUBIS solver using the paper's MILP inner route.
pub fn cubis_milp(k: usize, epsilon: f64) -> Cubis<MilpInner> {
    Cubis::new(MilpInner::new(k)).with_epsilon(epsilon)
}

/// A CUBIS solver using the DP inner route.
pub fn cubis_dp(resolution: usize, epsilon: f64) -> Cubis<DpInner> {
    Cubis::new(DpInner::new(resolution)).with_epsilon(epsilon)
}
