//! The CUBIS driver: binary search over the defender-utility value.
//!
//! Propositions 1–2 justify the search: the value-point problem **P1**
//! ("does some `(x, β)` achieve exactly `c`?") is monotone in `c`, and
//! its feasibility is decided by the sign of `max_x G_c(x)`. The driver
//! therefore maintains `[lb, ub]` with **P1** feasible at `lb` and
//! infeasible at `ub`, halving until `ub − lb ≤ ε`.
//!
//! Per Lemma 2, the strategy returned at the final feasible step has
//! true worst-case utility at least `lb − O(1/K)`; the driver reports
//! the *exact* worst-case utility of the returned strategy via the
//! oracle, so callers never consume the approximation error blindly.

use crate::deadline::Deadline;
use crate::inner::{InnerResult, InnerSolver, InnerStats, SolveError};
use crate::problem::RobustProblem;
use crate::warm::{WarmState, WarmStats};
use cubis_behavior::IntervalChoiceModel;
use cubis_trace::{BinaryStepEvent, Event, InnerSolveEvent, SharedRecorder, SolveSummaryEvent};
use rayon::prelude::*;

pub use crate::inner::BudgetMode;

/// Options for the binary search.
///
/// # Examples
///
/// ```
/// use cubis_core::CubisOptions;
///
/// let opts = CubisOptions { epsilon: 1e-4, ..Default::default() };
/// assert!(opts.epsilon < CubisOptions::default().epsilon);
/// assert!(!opts.recorder.enabled()); // tracing is off by default
/// ```
#[derive(Debug, Clone)]
pub struct CubisOptions {
    /// Convergence threshold `ε` on `ub − lb`.
    pub epsilon: f64,
    /// Feasibility tolerance on `G ≥ 0` (absorbs solver roundoff).
    pub g_tol: f64,
    /// Hard cap on binary-search steps (safety; `ε` normally terminates
    /// first).
    pub max_steps: usize,
    /// Carry warm state across binary-search probes: cached breakpoint
    /// grids (the model samples are `c`-independent per Prop. 3), the
    /// previous probe's incumbent, and transferred bound certificates.
    /// Feasibility decisions are bitwise identical either way (a
    /// `cubis-check` oracle pins this); disable only to measure the
    /// cold path.
    pub warm_start: bool,
    /// Observability sink. Disabled by default; see
    /// [`Cubis::with_recorder`] for the one-call way to attach a
    /// recorder to the driver *and* its inner solver.
    pub recorder: SharedRecorder,
    /// Cooperative wall-clock budget, checked between binary-search
    /// probes (never inside one). On expiry the solve returns
    /// [`SolveError::DeadlineExceeded`] carrying the incumbent bounds.
    /// Unlimited by default.
    pub deadline: Deadline,
}

impl Default for CubisOptions {
    fn default() -> Self {
        Self {
            epsilon: 1e-3,
            g_tol: 1e-9,
            max_steps: 128,
            warm_start: true,
            recorder: SharedRecorder::null(),
            deadline: Deadline::none(),
        }
    }
}

/// Theorem-1 certificate attached to a solution.
#[derive(Debug, Clone, Copy)]
pub struct Certificate {
    /// Final binary-search gap `ub − lb ≤ ε`.
    pub gap: f64,
    /// Approximation resolution `K` of the inner solver, if applicable.
    pub k: Option<usize>,
}

/// Result of a CUBIS solve.
#[derive(Debug, Clone)]
pub struct CubisSolution {
    /// The robust defender strategy (coverage vector).
    pub x: Vec<f64>,
    /// Final binary-search lower bound (last feasible `c`).
    pub lb: f64,
    /// Final binary-search upper bound (first infeasible `c`).
    pub ub: f64,
    /// **Exact** worst-case expected utility of `x` (oracle-evaluated;
    /// by Lemma 2 this is ≥ `lb − O(1/K)`).
    pub worst_case: f64,
    /// Number of binary-search steps performed.
    pub binary_steps: usize,
    /// Largest certified inner-probe optimality slack seen during the
    /// search, in utility (`c`) units (see [`InnerResult::gap`]). Zero
    /// for exact backends; for [`crate::ScaleInner`] it bounds how far
    /// an approximate probe could have moved the feasibility threshold,
    /// so the true binary-search bounds lie within
    /// `[lb − inner_gap, ub + inner_gap]`.
    pub inner_gap: f64,
    /// Accumulated backend effort.
    pub stats: InnerStats,
    /// Warm-start effort breakdown (all zero when
    /// [`CubisOptions::warm_start`] is off or the backend ignores warm
    /// state).
    pub warm: WarmStats,
    /// Inner-solver resolution (`K`), recorded for the certificate.
    k: Option<usize>,
}

impl CubisSolution {
    /// The Theorem-1 `O(ε + 1/K)` certificate.
    pub fn certificate(&self) -> Certificate {
        Certificate { gap: self.ub - self.lb, k: self.k }
    }

    fn with_k(mut self, k: Option<usize>) -> Self {
        self.k = k;
        self
    }
}

/// The CUBIS solver: a binary search parameterized by an inner
/// maximization backend (MILP per the paper, or the DP reference).
///
/// # Example
///
/// ```
/// use cubis_behavior::{BoundConvention, SuqrUncertainty, UncertainSuqr};
/// use cubis_core::{Cubis, MilpInner, RobustProblem};
/// use cubis_game::{SecurityGame, TargetPayoffs};
///
/// let game = SecurityGame::new(vec![
///     TargetPayoffs::new(5.0, -6.0, 3.0, -5.0),
///     TargetPayoffs::new(6.0, -9.0, 7.0, -7.0),
/// ], 1.0);
/// let model = UncertainSuqr::from_game(
///     &game, SuqrUncertainty::paper_example(), 1.0,
///     BoundConvention::CornerComponentwise,
/// );
/// let problem = RobustProblem::new(&game, &model);
/// let solution = Cubis::new(MilpInner::new(10))
///     .with_epsilon(1e-3)
///     .solve(&problem)
///     .unwrap();
/// assert!(solution.ub - solution.lb <= 1e-3 + 1e-12);
/// assert!((solution.x.iter().sum::<f64>() - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Cubis<I> {
    /// Inner maximization backend.
    pub inner: I,
    /// Search options.
    pub opts: CubisOptions,
}

impl<I: InnerSolver> Cubis<I> {
    /// CUBIS with default options.
    pub fn new(inner: I) -> Self {
        Self { inner, opts: CubisOptions::default() }
    }

    /// Override the convergence threshold `ε`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "with_epsilon: epsilon must be positive");
        self.opts.epsilon = epsilon;
        self
    }

    /// Attach a cooperative deadline (see [`Deadline`]); the solve
    /// checks it between binary-search probes and returns
    /// [`SolveError::DeadlineExceeded`] with the incumbent bounds when
    /// the budget runs out.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.opts.deadline = deadline;
        self
    }

    /// Attach an observability recorder to the driver and (via
    /// [`InnerSolver::attach_recorder`]) to the inner solver's
    /// branch-and-bound and simplex layers. With the default (null)
    /// recorder all instrumentation is inert.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use cubis_behavior::{BoundConvention, SuqrUncertainty, UncertainSuqr};
    /// use cubis_core::{Cubis, DpInner, RobustProblem};
    /// use cubis_game::{SecurityGame, TargetPayoffs};
    /// use cubis_trace::{JournalRecorder, SharedRecorder};
    ///
    /// let game = SecurityGame::new(vec![
    ///     TargetPayoffs::new(5.0, -6.0, 3.0, -5.0),
    ///     TargetPayoffs::new(6.0, -9.0, 7.0, -7.0),
    /// ], 1.0);
    /// let model = UncertainSuqr::from_game(
    ///     &game, SuqrUncertainty::paper_example(), 1.0,
    ///     BoundConvention::CornerComponentwise,
    /// );
    /// let problem = RobustProblem::new(&game, &model);
    ///
    /// let journal = Arc::new(JournalRecorder::new());
    /// let solution = Cubis::new(DpInner::new(10))
    ///     .with_epsilon(1e-2)
    ///     .with_recorder(SharedRecorder::new(journal.clone()))
    ///     .solve(&problem)
    ///     .unwrap();
    ///
    /// // One recorded step event per binary-search step.
    /// let journal = journal.snapshot();
    /// assert_eq!(journal.binary_steps().len(), solution.binary_steps);
    /// ```
    pub fn with_recorder(mut self, recorder: SharedRecorder) -> Self {
        self.inner.attach_recorder(&recorder);
        self.opts.recorder = recorder;
        self
    }

    /// One timed, recorded inner solve (Proposition 2's feasibility
    /// probe at utility value `c`), warm-started when a state is given.
    fn probe<M: IntervalChoiceModel>(
        &self,
        p: &RobustProblem<'_, M>,
        c: f64,
        warm: Option<&mut WarmState>,
    ) -> Result<InnerResult, SolveError> {
        let rec = &self.opts.recorder;
        if !rec.enabled() {
            return match warm {
                Some(w) => self.inner.feasibility_g_warm(p, c, self.opts.g_tol, w),
                None => self.inner.feasibility_g(p, c, self.opts.g_tol),
            };
        }
        let _span = rec.span("cubis.inner");
        let t0 = std::time::Instant::now();
        let res = match warm {
            Some(w) => self.inner.feasibility_g_warm(p, c, self.opts.g_tol, w)?,
            None => self.inner.feasibility_g(p, c, self.opts.g_tol)?,
        };
        rec.record(Event::InnerSolve(InnerSolveEvent {
            backend: self.inner.name().to_string(),
            c,
            k: self.inner.resolution(),
            milp_nodes: res.stats.milp_nodes,
            lp_iterations: res.stats.lp_iterations,
            evaluations: res.stats.evaluations,
            dur_ns: t0.elapsed().as_nanos() as u64,
        }));
        Ok(res)
    }

    fn record_step(&self, step: usize, c: f64, g_value: f64, feasible: bool, lb: f64, ub: f64) {
        if self.opts.recorder.enabled() {
            self.opts.recorder.record(Event::BinaryStep(BinaryStepEvent {
                step,
                c,
                g_value,
                feasible,
                lb,
                ub,
            }));
        }
    }

    /// Compute the robust defender strategy for problem (5).
    pub fn solve<M: IntervalChoiceModel>(
        &self,
        p: &RobustProblem<'_, M>,
    ) -> Result<CubisSolution, SolveError> {
        let _span = self.opts.recorder.span("cubis.solve");
        let (range_lo, range_hi) = p.utility_range();
        let mut stats = InnerStats::default();
        let mut steps = 0usize;
        // Cross-probe warm state: one per solve, never shared across
        // instances (the cached grids are model-specific).
        let mut warm_state = self.opts.warm_start.then(WarmState::new);

        // Cooperative cancellation: expired before any probe ran — all
        // we can report is the untightened search range.
        if self.opts.deadline.expired() {
            return Err(SolveError::DeadlineExceeded {
                lb: range_lo,
                ub: range_hi,
                binary_steps: 0,
            });
        }

        // Anchor: P1 is always feasible at c = min_i Pd_i (every term of
        // G is then nonnegative), giving an initial strategy even if all
        // midpoints turn out infeasible.
        let first = self.probe(p, range_lo, warm_state.as_mut())?;
        stats.add(first.stats);
        let mut inner_gap = first.gap;
        steps += 1;
        debug_assert!(first.g_value >= -self.opts.g_tol, "P1 infeasible at range low");
        let mut best: InnerResult = first;
        let mut lb = range_lo;
        let mut ub = range_hi;
        self.record_step(steps, range_lo, best.g_value, true, lb, ub);

        while ub - lb > self.opts.epsilon && steps < self.opts.max_steps {
            // Checked *between* probes: completed probes stay exact, and
            // the returned incumbent interval is the true state of the
            // search at expiry.
            if self.opts.deadline.expired() {
                return Err(SolveError::DeadlineExceeded { lb, ub, binary_steps: steps });
            }
            let mid = 0.5 * (lb + ub);
            let res = self.probe(p, mid, warm_state.as_mut())?;
            stats.add(res.stats);
            inner_gap = inner_gap.max(res.gap);
            steps += 1;
            let g_value = res.g_value;
            let feasible = g_value >= -self.opts.g_tol;
            if feasible {
                lb = mid;
                best = res;
            } else {
                ub = mid;
            }
            self.record_step(steps, mid, g_value, feasible, lb, ub);
        }

        let worst_case = {
            let _oracle_span = self.opts.recorder.span("cubis.oracle");
            p.worst_case(&best.x).utility
        };
        let warm = warm_state.map(|w| w.stats).unwrap_or_default();
        if self.opts.recorder.enabled() {
            let rec = &self.opts.recorder;
            rec.counter("cubis.cold_builds", warm.cold_builds as u64);
            rec.counter("cubis.cached_builds", warm.cached_builds as u64);
            rec.counter("cubis.warm_seeds", warm.warm_seeds as u64);
            rec.counter("cubis.bound_hints", warm.bound_hints as u64);
            rec.record(Event::SolveSummary(SolveSummaryEvent {
                lb,
                ub,
                worst_case,
                binary_steps: steps,
            }));
        }
        Ok(CubisSolution {
            x: best.x,
            lb,
            ub,
            worst_case,
            binary_steps: steps,
            inner_gap,
            stats,
            warm,
            k: None,
        }
        .with_k(self.inner.resolution()))
    }

    /// Solve a batch of instances, fanned across rayon.
    ///
    /// Each instance gets its own warm state (grids are model-specific),
    /// shared across that instance's binary-search probes; the solver
    /// configuration — including the recorder — is shared by all of
    /// them. Results come back in input order, each independently
    /// identical to what [`Cubis::solve`] would return.
    pub fn solve_batch<M: IntervalChoiceModel + Sync>(
        &self,
        problems: &[RobustProblem<'_, M>],
    ) -> Vec<Result<CubisSolution, SolveError>>
    where
        I: Sync,
    {
        let _span = self.opts.recorder.span("cubis.batch");
        problems.par_iter().map(|p| self.solve(p)).collect()
    }
}

/// Number of binary-search steps needed for threshold `ε` over a range
/// of width `w` (the paper's `⌈log₂(w/ε)⌉`, plus the anchor step).
pub fn predicted_steps(w: f64, epsilon: f64) -> usize {
    assert!(w >= 0.0 && epsilon > 0.0, "predicted_steps: bad inputs");
    if w <= epsilon {
        return 1;
    }
    (w / epsilon).log2().ceil() as usize + 1
}

// Re-export the error type at the solver level for convenience.
pub use crate::inner::SolveError as CubisError;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inner::DpInner;
    use cubis_behavior::{BoundConvention, SuqrUncertainty, UncertainSuqr};
    use cubis_game::GameGenerator;

    #[test]
    fn predicted_steps_formula() {
        assert_eq!(predicted_steps(16.0, 1.0), 5);
        assert_eq!(predicted_steps(0.5, 1.0), 1);
        assert_eq!(predicted_steps(14.0, 0.001), 15);
    }

    #[test]
    fn expired_deadline_returns_incumbent_bounds() {
        let mut gen = GameGenerator::new(5);
        let game = gen.generate(4, 1.0);
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            0.5,
            BoundConvention::ExactInterval,
        );
        let p = RobustProblem::new(&game, &model);
        let solver = Cubis::new(DpInner::new(20))
            .with_epsilon(0.01)
            .with_deadline(Deadline::after(std::time::Duration::ZERO));
        let err = solver.solve(&p).expect_err("zero deadline must expire");
        let (lo, hi) = p.utility_range();
        match err {
            SolveError::DeadlineExceeded { lb, ub, binary_steps } => {
                // Expired before the anchor probe: the reported bounds
                // are the untightened search range.
                assert_eq!(binary_steps, 0);
                assert_eq!(lb.to_bits(), lo.to_bits());
                assert_eq!(ub.to_bits(), hi.to_bits());
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // An unlimited deadline leaves the solve untouched.
        let sol = Cubis::new(DpInner::new(20))
            .with_epsilon(0.01)
            .with_deadline(Deadline::none())
            .solve(&p)
            .unwrap();
        assert!(sol.ub - sol.lb <= 0.01);
    }

    #[test]
    fn binary_step_count_matches_prediction() {
        let mut gen = GameGenerator::new(5);
        let game = gen.generate(4, 1.0);
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            0.5,
            BoundConvention::ExactInterval,
        );
        let p = RobustProblem::new(&game, &model);
        let eps = 0.01;
        let solver = Cubis::new(DpInner::new(20)).with_epsilon(eps);
        let sol = solver.solve(&p).unwrap();
        let (lo, hi) = p.utility_range();
        assert_eq!(sol.binary_steps, predicted_steps(hi - lo, eps));
        assert!(sol.ub - sol.lb <= eps);
    }
}
