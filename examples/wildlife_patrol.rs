//! Wildlife-protection scenario — the domain that motivates the paper.
//!
//! A conservancy patrols a grid of poaching hotspots. Historical
//! ranger data is too sparse to pin down poacher behavior, so the SUQR
//! weights carry wide uncertainty intervals. We compare the CUBIS
//! patrol schedule against the non-robust and behavior-free
//! alternatives as data (and hence certainty) accumulates.
//!
//! ```sh
//! cargo run --release --bin wildlife_patrol
//! ```

use cubis_behavior::{BoundConvention, SuqrUncertainty, SuqrWeights, UncertainSuqr};
use cubis_core::{Cubis, DpInner, RobustProblem};
use cubis_game::{SecurityGame, TargetPayoffs};

/// Hotspots: (animal density value for poachers, ecological loss for the
/// conservancy, distance penalty for a caught poacher).
const HOTSPOTS: [(f64, f64, f64); 8] = [
    (9.0, 8.5, -6.0), // rhino watering hole
    (7.0, 7.0, -5.0), // elephant corridor
    (6.5, 5.0, -4.0),
    (5.0, 6.0, -7.0), // near ranger base: harsh penalty
    (4.0, 3.5, -3.0),
    (3.5, 4.0, -2.5),
    (2.0, 2.0, -2.0),
    (1.5, 1.0, -1.5), // periphery
];

fn build_game() -> SecurityGame {
    let targets = HOTSPOTS
        .iter()
        .map(|&(value, loss, penalty)| {
            TargetPayoffs::new(
                0.3 * loss,  // catching a poacher recovers a fraction of the loss
                -loss,       // a successful poach costs the full ecological value
                value, penalty,
            )
        })
        .collect();
    // Three ranger teams for eight hotspots.
    SecurityGame::new(targets, 3.0)
}

fn main() {
    let game = build_game();
    println!("Wildlife patrol: {} hotspots, {} ranger teams\n", game.num_targets(), 3);
    println!(
        "{:>18} | {:>9} | {:>9} | {:>9} | {:>9}",
        "data regime", "CUBIS", "midpoint", "maximin", "uniform"
    );
    println!("{}", "-".repeat(66));

    // Data regimes: from one season of data (wide intervals) to many.
    for (label, delta) in [
        ("1 season (δ=1.0)", 1.0),
        ("3 seasons (δ=0.6)", 0.6),
        ("10 seasons (δ=0.3)", 0.3),
        ("exact model (δ=0)", 0.0),
    ] {
        let weights = SuqrUncertainty::around(SuqrWeights::LITERATURE, 0.5).scale_width(delta);
        let model = UncertainSuqr::from_game(
            &game,
            weights,
            1.5 * delta,
            BoundConvention::ExactInterval,
        );
        let p = RobustProblem::new(&game, &model);

        let cubis = Cubis::new(DpInner::new(120)).with_epsilon(1e-3).solve(&p).unwrap();
        let midpoint =
            cubis_solvers::solve_midpoint_params(&game, &model, 120, 1e-3).unwrap();
        let maximin = cubis_solvers::solve_maximin(&game);
        let uniform = cubis_solvers::solve_uniform(&game);

        println!(
            "{label:>18} | {:>+9.3} | {:>+9.3} | {:>+9.3} | {:>+9.3}",
            cubis.worst_case,
            p.worst_case(&midpoint).utility,
            p.worst_case(&maximin).utility,
            p.worst_case(&uniform).utility,
        );
    }

    // Show where the robust patrol actually goes under the widest
    // uncertainty.
    let weights = SuqrUncertainty::around(SuqrWeights::LITERATURE, 0.5);
    let model = UncertainSuqr::from_game(&game, weights, 1.5, BoundConvention::ExactInterval);
    let p = RobustProblem::new(&game, &model);
    let sol = Cubis::new(DpInner::new(120)).with_epsilon(1e-3).solve(&p).unwrap();
    println!("\nrobust patrol coverage under widest uncertainty:");
    for (i, (x, &(value, loss, _))) in sol.x.iter().zip(&HOTSPOTS).enumerate() {
        println!(
            "  hotspot {i}: coverage {x:.2}  (poacher value {value:.1}, ecological loss {loss:.1})"
        );
    }
}
