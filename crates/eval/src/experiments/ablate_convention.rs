//! **A2 — bound-convention ablation.**
//!
//! The paper's worked example derives `L/U` from component-wise
//! parameter corners, which is *not* the true box minimum when a
//! product flips sign (DESIGN.md §2). This ablation quantifies the
//! difference: interval width, and how a strategy optimized under one
//! convention fares when the world is as pessimistic as the other.

use super::Profile;
use crate::fixtures::workload_with;
use crate::metrics::Series;
use crate::report::Report;
use cubis_behavior::{BoundConvention, IntervalChoiceModel};
use cubis_core::{RobustProblem, SolveError};

/// Run the experiment.
pub fn run(profile: Profile) -> Result<Report, SolveError> {
    let seeds: Vec<u64> = (0..profile.seeds().min(10)).collect();
    let mut r = Report::new(
        "A2 — bound convention: paper corners vs exact interval arithmetic",
        vec!["metric", "corner (paper)", "exact"],
    );
    r.note(
        "T = 6, R = 2, δ = 0.5. 'log-width' is the mean of ln U − ln L over \
         targets at x = 0.5; 'wc under exact' evaluates each convention's \
         optimal strategy against the exact-interval adversary (the safe \
         pessimistic world).",
    );
    let mut width_c = Series::new();
    let mut width_e = Series::new();
    let mut wc_cc = Series::new(); // corner-optimized, corner-evaluated
    let mut wc_ce = Series::new(); // corner-optimized, exact-evaluated
    let mut wc_ee = Series::new(); // exact-optimized, exact-evaluated
    for &seed in &seeds {
        let (game, corner) = workload_with(seed, 6, 2.0, 0.5, BoundConvention::CornerComponentwise);
        let (_, exact) = workload_with(seed, 6, 2.0, 0.5, BoundConvention::ExactInterval);
        for i in 0..6 {
            let (lc, uc) = corner.log_bounds(&game, i, 0.5);
            let (le, ue) = exact.log_bounds(&game, i, 0.5);
            width_c.push(uc - lc);
            width_e.push(ue - le);
        }
        let pc = RobustProblem::new(&game, &corner);
        let pe = RobustProblem::new(&game, &exact);
        let xc = super::cubis_dp(100, 1e-3).solve(&pc)?.x;
        let xe = super::cubis_dp(100, 1e-3).solve(&pe)?.x;
        wc_cc.push(pc.worst_case(&xc).utility);
        wc_ce.push(pe.worst_case(&xc).utility);
        wc_ee.push(pe.worst_case(&xe).utility);
    }
    r.row(vec![
        "mean log-width of [L,U]".into(),
        format!("{:.3}", width_c.mean()),
        format!("{:.3}", width_e.mean()),
    ]);
    r.row(vec![
        "wc under own convention".into(),
        wc_cc.summary(),
        wc_ee.summary(),
    ]);
    r.row(vec![
        "wc under exact adversary".into(),
        wc_ce.summary(),
        wc_ee.summary(),
    ]);
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_intervals_are_wider_and_safer() {
        let (game, corner) = workload_with(0, 5, 2.0, 0.5, BoundConvention::CornerComponentwise);
        let (_, exact) = workload_with(0, 5, 2.0, 0.5, BoundConvention::ExactInterval);
        // Width: exact ⊇ corner.
        for i in 0..5 {
            let (lc, uc) = corner.log_bounds(&game, i, 0.3);
            let (le, ue) = exact.log_bounds(&game, i, 0.3);
            assert!(le <= lc + 1e-9 && ue >= uc - 1e-9, "target {i}");
        }
        // Optimizing under exact can only improve the exact worst case.
        let pe = RobustProblem::new(&game, &exact);
        let pc = RobustProblem::new(&game, &corner);
        let xe = super::super::cubis_dp(60, 1e-2).solve(&pe).unwrap().x;
        let xc = super::super::cubis_dp(60, 1e-2).solve(&pc).unwrap().x;
        assert!(
            pe.worst_case(&xe).utility >= pe.worst_case(&xc).utility - 0.05,
            "exact-optimal {} vs corner-optimal {} under exact adversary",
            pe.worst_case(&xe).utility,
            pe.worst_case(&xc).utility
        );
    }
}
