//! Per-target payoff tuples and the linear expected utilities (1)–(2).

use serde::{Deserialize, Serialize};

/// Payoffs at one target.
///
/// Conventions follow the paper: the defender's reward `Rd` applies when
/// she is covering an attacked target, her penalty `Pd` when she is not;
/// the attacker's reward `Ra` applies when attacking an uncovered
/// target, his penalty `Pa` when caught. Standard SSG sign conventions
/// (`Rd > Pd`, `Ra > Pa`) are enforced by [`TargetPayoffs::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TargetPayoffs {
    /// Defender reward `Rd_i` (attacked while covered).
    pub def_reward: f64,
    /// Defender penalty `Pd_i` (attacked while uncovered).
    pub def_penalty: f64,
    /// Attacker reward `Ra_i` (successful attack).
    pub att_reward: f64,
    /// Attacker penalty `Pa_i` (caught).
    pub att_penalty: f64,
}

/// Why a payoff tuple was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum PayoffError {
    /// A payoff is NaN or infinite.
    NonFinite,
    /// `Rd <= Pd`: covering an attacked target must be better for the
    /// defender than not covering it.
    DefenderOrder {
        /// Offending reward.
        reward: f64,
        /// Offending penalty.
        penalty: f64,
    },
    /// `Ra <= Pa`: attacking uncovered must be better for the attacker.
    AttackerOrder {
        /// Offending reward.
        reward: f64,
        /// Offending penalty.
        penalty: f64,
    },
}

impl std::fmt::Display for PayoffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PayoffError::NonFinite => write!(f, "non-finite payoff"),
            PayoffError::DefenderOrder { reward, penalty } => {
                write!(f, "defender reward {reward} must exceed penalty {penalty}")
            }
            PayoffError::AttackerOrder { reward, penalty } => {
                write!(f, "attacker reward {reward} must exceed penalty {penalty}")
            }
        }
    }
}

impl std::error::Error for PayoffError {}

impl TargetPayoffs {
    /// Construct a payoff tuple (order: `Rd, Pd, Ra, Pa`).
    pub fn new(def_reward: f64, def_penalty: f64, att_reward: f64, att_penalty: f64) -> Self {
        Self { def_reward, def_penalty, att_reward, att_penalty }
    }

    /// A zero-sum tuple derived from attacker payoffs:
    /// `Rd = −Pa`, `Pd = −Ra`.
    pub fn zero_sum(att_reward: f64, att_penalty: f64) -> Self {
        Self {
            def_reward: -att_penalty,
            def_penalty: -att_reward,
            att_reward,
            att_penalty,
        }
    }

    /// Validate finiteness and ordering conventions.
    pub fn validate(&self) -> Result<(), PayoffError> {
        let vals = [self.def_reward, self.def_penalty, self.att_reward, self.att_penalty];
        if vals.iter().any(|v| !v.is_finite()) {
            return Err(PayoffError::NonFinite);
        }
        if self.def_reward <= self.def_penalty {
            return Err(PayoffError::DefenderOrder {
                reward: self.def_reward,
                penalty: self.def_penalty,
            });
        }
        if self.att_reward <= self.att_penalty {
            return Err(PayoffError::AttackerOrder {
                reward: self.att_reward,
                penalty: self.att_penalty,
            });
        }
        Ok(())
    }

    /// Equation (1): `Ud_i(x_i) = x_i·Rd + (1 − x_i)·Pd`.
    #[inline]
    pub fn defender_utility(&self, x_i: f64) -> f64 {
        x_i * self.def_reward + (1.0 - x_i) * self.def_penalty
    }

    /// Equation (2): `Ua_i(x_i) = x_i·Pa + (1 − x_i)·Ra`.
    #[inline]
    pub fn attacker_utility(&self, x_i: f64) -> f64 {
        x_i * self.att_penalty + (1.0 - x_i) * self.att_reward
    }

    /// Coverage at which the defender is indifferent to utility level `c`
    /// (solves `Ud(x) = c`); unclamped.
    pub fn coverage_for_defender_utility(&self, c: f64) -> f64 {
        (c - self.def_penalty) / (self.def_reward - self.def_penalty)
    }

    /// Coverage at which the attacker's utility equals `v` (solves
    /// `Ua(x) = v`); unclamped. Used by the ORIGAMI baseline.
    pub fn coverage_for_attacker_utility(&self, v: f64) -> f64 {
        (self.att_reward - v) / (self.att_reward - self.att_penalty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sum_construction() {
        let t = TargetPayoffs::zero_sum(5.0, -3.0);
        assert_eq!(t.def_reward, 3.0);
        assert_eq!(t.def_penalty, -5.0);
        assert!(t.validate().is_ok());
        // Zero-sum identity: Ud(x) + Ua(x) = 0 for all x.
        for &x in &[0.0, 0.3, 1.0] {
            assert!((t.defender_utility(x) + t.attacker_utility(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn validation_rejects_bad_orders() {
        assert!(matches!(
            TargetPayoffs::new(-1.0, 1.0, 5.0, -5.0).validate(),
            Err(PayoffError::DefenderOrder { .. })
        ));
        assert!(matches!(
            TargetPayoffs::new(1.0, -1.0, -5.0, 5.0).validate(),
            Err(PayoffError::AttackerOrder { .. })
        ));
        assert!(matches!(
            TargetPayoffs::new(f64::NAN, -1.0, 5.0, -5.0).validate(),
            Err(PayoffError::NonFinite)
        ));
    }

    #[test]
    fn inverse_coverage_solves() {
        let t = TargetPayoffs::new(4.0, -6.0, 8.0, -2.0);
        let c = 1.5;
        let x = t.coverage_for_defender_utility(c);
        assert!((t.defender_utility(x) - c).abs() < 1e-12);
        let v = 3.0;
        let x2 = t.coverage_for_attacker_utility(v);
        assert!((t.attacker_utility(x2) - v).abs() < 1e-12);
    }
}
