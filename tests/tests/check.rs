//! Tier-1 gate for the cubis-check harness: the deterministic smoke
//! subset is clean, generation is reproducible, fixed-seed regressions
//! stay fixed, and — the acceptance test for the whole subsystem — a
//! deliberately corrupted inner solver is caught and shrunk to a
//! replayable counterexample of at most four targets.

use cubis_check::{CaseArtifact, CheckInstance, FuzzConfig};
use cubis_core::inner::{GreedyInner, InnerSolver};
use cubis_core::problem::RobustProblem;
use cubis_core::ScaleInner;

#[test]
fn fuzz_smoke_has_no_violations() {
    let report = cubis_check::run_fuzz(&FuzzConfig::smoke());
    assert_eq!(report.cases_run, FuzzConfig::smoke().iters);
    assert!(report.oracle_checks > 0, "every smoke case skipped all oracles");
    assert!(
        report.failure.is_none(),
        "smoke violation: {:?}",
        report.failure.map(|f| (f.oracle, f.detail, f.shrunk))
    );
}

#[test]
fn instance_generation_is_deterministic_and_valid() {
    for seed in 0..50u64 {
        let a = CheckInstance::generate(seed);
        let b = CheckInstance::generate(seed);
        assert_eq!(a, b, "seed {seed} not reproducible");
        assert!(a.is_valid(), "seed {seed} generated invalid instance: {a:?}");
    }
}

#[test]
fn fixed_seed_regressions_pass_all_oracles() {
    // Anchors for bugs this harness has already caught or clarified:
    // 0x28efe333b266f103 is the case that exposed the unsound
    // "MILP equals breakpoint DP" assumption (the linearized optimum
    // legitimately sits off-grid, within the Lemma-1 slack).
    for &seed in &[1u64, 2, 3, 0x28ef_e333_b266_f103] {
        let inst = CheckInstance::generate(seed);
        match cubis_check::oracles::run_all(&inst) {
            Ok(checked) => assert!(checked >= 5, "seed {seed:#x}: only {checked} oracles ran"),
            Err(v) => panic!("seed {seed:#x}: oracle `{}` violated: {}", v.oracle, v.detail),
        }
    }
}

#[test]
fn greedy_tie_breaks_match_spec_on_fixed_seeds() {
    // The NaN-safe `total_cmp` selection rule must agree between the
    // production GreedyInner and the executable spec on every unit
    // placement, not just on the final value.
    for seed in [10u64, 11, 12, 13, 14] {
        let inst = CheckInstance::generate(seed);
        let game = inst.game();
        let model = inst.model(&game);
        let p = RobustProblem::new(&game, &model);
        let spec = cubis_check::reference::spec_greedy(&p, inst.pp, 2, 0.0);
        let prod = GreedyInner { points_per_unit: inst.pp, lookahead: 2 }
            .maximize_g(&p, 0.0)
            .unwrap();
        let prod_alloc: Vec<usize> =
            prod.x.iter().map(|&xi| (xi * inst.pp as f64).round() as usize).collect();
        assert_eq!(spec.alloc, prod_alloc, "seed {seed}: allocations diverge");
        assert!(
            (spec.g_value - prod.g_value).abs() <= 1e-12,
            "seed {seed}: g {} vs {}",
            spec.g_value,
            prod.g_value
        );
    }
}

/// Metamorphic: relabeling targets is a symmetry of the inner problem
/// (`G_c` is a sum over targets), so the breakpoint-grid engine's
/// achieved value, envelope, and certified gap must all survive a
/// permutation — only the allocation vector is allowed to move.
#[test]
fn scale_certificate_is_permutation_invariant() {
    for seed in [3u64, 17, 23, 40, 77] {
        let inst = CheckInstance::generate(seed);
        let t = inst.num_targets();
        let perm: Vec<usize> = (0..t).rev().collect();
        let shuffled = inst.permuted(&perm);

        let game = inst.game();
        let model = inst.model(&game);
        let p = RobustProblem::new(&game, &model);
        let (lo, hi) = p.utility_range();
        let c = lo + 0.5 * (hi - lo);
        let (res, cert) = ScaleInner::new(inst.pp).maximize_with_certificate(&p, c).unwrap();

        let game2 = shuffled.game();
        let model2 = shuffled.model(&game2);
        let p2 = RobustProblem::new(&game2, &model2);
        let (res2, cert2) = ScaleInner::new(inst.pp).maximize_with_certificate(&p2, c).unwrap();

        assert!(
            (res.g_value - res2.g_value).abs() <= 1e-9,
            "seed {seed}: permuted value {} vs {}",
            res2.g_value,
            res.g_value
        );
        assert!(
            (cert.envelope - cert2.envelope).abs() <= 1e-9,
            "seed {seed}: permuted envelope {} vs {}",
            cert2.envelope,
            cert.envelope
        );
        assert!(
            (cert.gap_g - cert2.gap_g).abs() <= 1e-9,
            "seed {seed}: permuted certified gap {} vs {}",
            cert2.gap_g,
            cert.gap_g
        );
    }
}

/// Metamorphic: refining the grid `pp → 2pp → 4pp` keeps every coarse
/// sample point (`j/pp` is bitwise `2j/2pp`), so the certified
/// envelope — the least concave majorant of the sampled points at the
/// budget — can only grow along the chain.
#[test]
fn scale_certified_bound_is_monotone_under_grid_refinement() {
    for seed in [5u64, 9, 21, 33, 48] {
        let inst = CheckInstance::generate(seed);
        let game = inst.game();
        let model = inst.model(&game);
        let p = RobustProblem::new(&game, &model);
        let (lo, hi) = p.utility_range();
        for f in [0.25, 0.5, 0.75] {
            let c = lo + f * (hi - lo);
            let mut prev: Option<f64> = None;
            for pp in [inst.pp, 2 * inst.pp, 4 * inst.pp] {
                let (_, cert) =
                    ScaleInner::new(pp).maximize_with_certificate(&p, c).unwrap();
                if let Some(coarser) = prev {
                    assert!(
                        cert.envelope >= coarser - 1e-9,
                        "seed {seed} c={c}: envelope fell {} → {} at pp={pp}",
                        coarser,
                        cert.envelope
                    );
                }
                prev = Some(cert.envelope);
            }
        }
    }
}

#[test]
fn corrupted_greedy_is_caught_and_shrunk_to_a_small_replayable_case() {
    // Acceptance criterion: flip greedy's selection comparison and the
    // harness must (a) detect the divergence, (b) shrink it to ≤ 4
    // targets, (c) emit a replayable artifact. The corrupted solver is
    // the spec replay with `flip = true` — behaviorally identical to
    // inverting the comparison inside `GreedyInner` itself, since the
    // straight spec replays `GreedyInner` move-for-move.
    let diverges = |inst: &CheckInstance| -> bool {
        let game = inst.game();
        let model = inst.model(&game);
        let p = RobustProblem::new(&game, &model);
        let corrupted = cubis_check::reference::spec_greedy_impl(&p, inst.pp, 2, 0.0, true);
        let honest = GreedyInner { points_per_unit: inst.pp, lookahead: 2 }
            .maximize_g(&p, 0.0)
            .unwrap();
        let honest_alloc: Vec<usize> =
            honest.x.iter().map(|&xi| (xi * inst.pp as f64).round() as usize).collect();
        corrupted.alloc != honest_alloc
    };
    let caught = (0..8u64)
        .map(CheckInstance::generate)
        .find(|inst| diverges(inst))
        .expect("corruption never detected on the first 8 seeds");

    let out =
        cubis_check::shrink::shrink(&caught, diverges, cubis_check::shrink::DEFAULT_MAX_ATTEMPTS);
    assert!(out.instance.is_valid());
    assert!(diverges(&out.instance), "shrinker returned a passing instance");
    assert!(
        out.instance.num_targets() <= 4,
        "counterexample not small: {} targets",
        out.instance.num_targets()
    );

    // Replayable: the artifact round-trips and regenerates the case.
    let artifact = CaseArtifact {
        case_seed: caught.seed,
        oracle: "inner-greedy-vs-spec".to_string(),
        detail: "corrupted comparison diverges from honest greedy".to_string(),
        instance: out.instance.clone(),
    };
    let back = CaseArtifact::from_json_str(&artifact.to_json_string()).unwrap();
    assert_eq!(back, artifact);
    assert_eq!(CheckInstance::generate(back.case_seed), caught);
    assert!(diverges(&back.instance));
}
