//! Substrate micro-benchmarks: the simplex and branch-and-bound layers
//! in isolation (not a paper figure; guards against solver regressions
//! that would otherwise masquerade as algorithmic slowdowns in F3/F6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cubis_bench::instance;
use cubis_core::{DpInner, InnerSolver, MilpInner, RobustProblem};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    for &t in &[4usize, 8, 16] {
        let (game, model) = instance(0, t, (t as f64 / 4.0).ceil(), 0.5);
        let p = RobustProblem::new(&game, &model);
        // One inner MILP solve at a mid-range utility value.
        let c_val = 0.5 * (game.min_defender_utility() + game.max_defender_utility());
        g.bench_with_input(BenchmarkId::new("inner_milp_k8", t), &t, |b, _| {
            let inner = MilpInner::new(8);
            b.iter(|| inner.maximize_g(black_box(&p), black_box(c_val)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("inner_dp100", t), &t, |b, _| {
            let inner = DpInner::new(100);
            b.iter(|| inner.maximize_g(black_box(&p), black_box(c_val)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("oracle", t), &t, |b, _| {
            let x = cubis_game::uniform_coverage(t, game.resources());
            b.iter(|| p.worst_case(black_box(&x)).utility)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench
}
criterion_main!(benches);
