//! The sharded LRU solution cache.
//!
//! Keys are the FNV-1a content hash of the canonical instance encoding
//! ([`cubis_check::canon::content_hash`]); values are fully rendered
//! solution bodies, stored as the exact bytes the first solve produced
//! so a hit is *bit-identical* to a fresh solve (the trace codec's
//! shortest-repr `f64` printing makes re-rendering deterministic, and
//! the `cubis-serve-cache-vs-fresh` oracle holds the service to it).
//!
//! Hash collisions cannot produce a wrong answer: each entry stores the
//! canonical content bytes alongside the body, and a lookup whose bytes
//! differ is treated as a miss. Shards are independent mutexes selected
//! by the high bits of the key, so concurrent workers rarely contend;
//! within a shard the LRU order is a small `VecDeque` scanned linearly
//! — shard capacities are tens of entries, where a scan beats any
//! pointer-chased list.

use std::sync::{Mutex, PoisonError};

struct Entry {
    hash: u64,
    /// Canonical content bytes (the preimage of `hash`) — the collision
    /// guard.
    content: String,
    /// The rendered solution body served on a hit.
    body: String,
}

struct Shard {
    /// Most-recently-used first.
    entries: std::collections::VecDeque<Entry>,
}

/// A sharded least-recently-used map from instance content to solution
/// bodies.
pub struct SolutionCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
}

impl SolutionCache {
    /// Create a cache with `shards` independent shards of
    /// `per_shard_capacity` entries each (both clamped to ≥ 1).
    pub fn new(shards: usize, per_shard_capacity: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard { entries: std::collections::VecDeque::new() }))
                .collect(),
            per_shard_capacity: per_shard_capacity.max(1),
        }
    }

    fn shard(&self, hash: u64) -> &Mutex<Shard> {
        // High bits: FNV-1a mixes them well, and the low bits already
        // picked the LRU position on small tables elsewhere.
        let idx = (hash >> 32) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Look up the body for `(hash, content)`, refreshing its LRU
    /// position. `content` must be the canonical bytes `hash` was
    /// computed from; an entry with the same hash but different bytes
    /// is a collision and reads as a miss.
    pub fn get(&self, hash: u64, content: &str) -> Option<String> {
        let mut shard = self.shard(hash).lock().unwrap_or_else(PoisonError::into_inner);
        let pos = shard
            .entries
            .iter()
            .position(|e| e.hash == hash && e.content == content)?;
        let entry = shard.entries.remove(pos)?;
        let body = entry.body.clone();
        shard.entries.push_front(entry);
        Some(body)
    }

    /// Insert (or refresh) the body for `(hash, content)`, evicting the
    /// least-recently-used entry of the shard when full.
    pub fn insert(&self, hash: u64, content: &str, body: &str) {
        let mut shard = self.shard(hash).lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(pos) =
            shard.entries.iter().position(|e| e.hash == hash && e.content == content)
        {
            shard.entries.remove(pos);
        }
        shard.entries.push_front(Entry {
            hash,
            content: content.to_string(),
            body: body.to_string(),
        });
        while shard.entries.len() > self.per_shard_capacity {
            shard.entries.pop_back();
        }
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).entries.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_and_lru_eviction() {
        let cache = SolutionCache::new(1, 2);
        cache.insert(1, "a", "body-a");
        cache.insert(2, "b", "body-b");
        assert_eq!(cache.get(1, "a").as_deref(), Some("body-a"));
        // `1` is now most recent, so inserting a third evicts `2`.
        cache.insert(3, "c", "body-c");
        assert_eq!(cache.get(2, "b"), None);
        assert_eq!(cache.get(1, "a").as_deref(), Some("body-a"));
        assert_eq!(cache.get(3, "c").as_deref(), Some("body-c"));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn collision_reads_as_miss_and_never_wrong_body() {
        let cache = SolutionCache::new(4, 4);
        cache.insert(42, "content-a", "body-a");
        // Same hash, different canonical bytes: a forged collision.
        assert_eq!(cache.get(42, "content-b"), None);
        assert_eq!(cache.get(42, "content-a").as_deref(), Some("body-a"));
    }

    #[test]
    fn reinsert_refreshes_rather_than_duplicates() {
        let cache = SolutionCache::new(1, 8);
        cache.insert(7, "x", "old");
        cache.insert(7, "x", "new");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(7, "x").as_deref(), Some("new"));
    }

    #[test]
    fn shards_partition_the_key_space() {
        let cache = SolutionCache::new(8, 1);
        // Per-shard capacity 1, but keys landing in distinct shards
        // coexist.
        for i in 0u64..8 {
            let h = i << 32; // Distinct high bits select distinct shards.
            cache.insert(h, "k", "v");
        }
        assert!(cache.len() > 1, "distinct shards must not evict each other");
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(SolutionCache::new(4, 16));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        let h = (t << 32) | i;
                        cache.insert(h, "c", "b");
                        assert_eq!(cache.get(h, "c").as_deref(), Some("b"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("cache worker panicked");
        }
        assert!(!cache.is_empty());
    }
}
