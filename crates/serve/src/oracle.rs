//! The `cubis-serve-cache-vs-fresh` differential oracle.
//!
//! Property: for any valid instance, a from-scratch solve, the
//! in-process handler's first (cache-miss) response, and its second
//! (cache-hit) response all produce *bit-identical* solution bodies.
//! That is the cache's correctness contract — a hit is
//! indistinguishable from a fresh solve at the byte level — and it is
//! checked through [`crate::app::App`], the exact code path production
//! requests take.
//!
//! The oracle is registered with `cubis-check` through the extras
//! extension point (`run_fuzz_with`), which exists precisely because
//! the dependency arrow points serve → check: the check crate cannot
//! name this oracle, so the xtask fuzz driver passes it in.

use cubis_check::oracles::{Oracle, OracleStatus};
use cubis_check::CheckInstance;
use cubis_core::Deadline;

use crate::app::{App, CacheOutcome};
use crate::codec::{RequestPolicy, SolveRequest};

/// The registry entry for this crate's differential oracle.
pub fn cache_vs_fresh_oracle() -> Oracle {
    Oracle {
        name: "cubis-serve-cache-vs-fresh",
        what: "serve handler twice (miss then hit) vs a from-scratch solve, byte-identical bodies",
        run: cache_vs_fresh,
    }
}

fn cache_vs_fresh(inst: &CheckInstance) -> Result<OracleStatus, String> {
    // Large grids make the DP solve the dominant fuzz cost; the cache
    // property is grid-size-independent, so bound the work.
    if inst.num_targets() > 5 || inst.pp > 6 {
        return Ok(OracleStatus::Skipped);
    }
    let app = App::new(2, 8);
    let fresh = app
        .solve_fresh(inst, Deadline::none(), RequestPolicy::Auto)
        .map_err(|e| format!("fresh solve failed: {e}"))?;
    let req =
        SolveRequest { instance: inst.clone(), deadline_ms: None, policy: RequestPolicy::Auto };
    let first = app.handle_solve(&req);
    if first.status != 200 {
        return Err(format!("first handler call: status {} body {}", first.status, first.body));
    }
    if first.cache != CacheOutcome::Miss {
        return Err(format!("first handler call was not a miss: {:?}", first.cache));
    }
    let second = app.handle_solve(&req);
    if second.status != 200 {
        return Err(format!("second handler call: status {} body {}", second.status, second.body));
    }
    if second.cache != CacheOutcome::Hit {
        return Err(format!("second handler call was not a hit: {:?}", second.cache));
    }
    if first.body != fresh {
        return Err(format!(
            "handler (miss) body diverges from from-scratch solve:\n  handler: {}\n  fresh:   {}",
            first.body, fresh
        ));
    }
    if second.body != first.body {
        return Err(format!(
            "cache hit body diverges from the miss that filled it:\n  hit:  {}\n  miss: {}",
            second.body, first.body
        ));
    }
    Ok(OracleStatus::Checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_passes_on_generated_instances() {
        let mut checked = 0;
        for seed in 0u64..8 {
            let inst = CheckInstance::generate(seed);
            match cache_vs_fresh(&inst).expect("oracle violation") {
                OracleStatus::Checked => checked += 1,
                OracleStatus::Skipped => {}
            }
        }
        assert!(checked > 0, "every instance was skipped — bounds too tight");
    }

    #[test]
    fn oracle_runs_inside_the_check_harness() {
        let report = cubis_check::run_fuzz_with(
            &cubis_check::FuzzConfig { seed: 42, iters: 3 },
            &[cache_vs_fresh_oracle()],
        );
        assert_eq!(report.cases_run, 3);
        assert!(
            report.failure.is_none(),
            "extras fuzz violation: {:?}",
            report.failure.map(|f| (f.oracle, f.detail))
        );
    }
}
