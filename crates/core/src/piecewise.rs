//! Piecewise-linear approximation over `[0, 1]` with `K` equal segments
//! (Section IV-C, equations 31–32).

/// A piecewise-linear approximation of a univariate function on `[0,1]`:
/// `f(x) ≈ f(0) + Σ_k s_k·x_k` where `x_k` is the portion of `x` falling
/// in segment `k` (fill order).
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    /// Value at zero, `f(0)`.
    pub f0: f64,
    /// Segment slopes `s_k = K·[f(k/K) − f((k−1)/K)]`, `k = 1..K`.
    pub slopes: Vec<f64>,
}

impl PiecewiseLinear {
    /// Sample `f` at the breakpoints `k/K` and build the approximation.
    ///
    /// # Panics
    /// Panics if `k == 0` or `f` returns a non-finite value at a
    /// breakpoint.
    pub fn build(k: usize, f: impl Fn(f64) -> f64) -> Self {
        assert!(k > 0, "PiecewiseLinear: K must be positive");
        let kf = k as f64;
        let mut prev = f(0.0);
        assert!(prev.is_finite(), "PiecewiseLinear: f(0) not finite");
        let f0 = prev;
        let slopes = (1..=k)
            .map(|j| {
                let v = f(j as f64 / kf);
                assert!(v.is_finite(), "PiecewiseLinear: f({j}/{k}) not finite");
                let s = kf * (v - prev);
                prev = v;
                s
            })
            .collect();
        Self { f0, slopes }
    }

    /// Build from precomputed breakpoint values `values[j] = f(j/K)`,
    /// `j = 0..=K`. Uses the same arithmetic as [`PiecewiseLinear::build`]
    /// (`s_j = K·(v_j − v_{j−1})`), so for identical samples the result
    /// is bitwise identical — this is what lets the warm-start cache
    /// reuse breakpoint grids across binary-search probes without
    /// perturbing the MILP.
    ///
    /// # Panics
    /// Panics if fewer than two values are given or any is non-finite.
    pub fn from_samples(values: &[f64]) -> Self {
        assert!(values.len() >= 2, "PiecewiseLinear: need K+1 >= 2 samples");
        let k = values.len() - 1;
        let kf = k as f64;
        let f0 = values[0];
        assert!(f0.is_finite(), "PiecewiseLinear: f(0) not finite");
        let slopes = (1..=k)
            .map(|j| {
                let v = values[j];
                assert!(v.is_finite(), "PiecewiseLinear: f({j}/{k}) not finite");
                kf * (v - values[j - 1])
            })
            .collect();
        Self { f0, slopes }
    }

    /// Number of segments `K`.
    pub fn k(&self) -> usize {
        self.slopes.len()
    }

    /// Fill-order segment portions of a coverage value:
    /// `x_k = clamp(x − (k−1)/K, 0, 1/K)`, so `Σ_k x_k = x`.
    pub fn segment_portions(k: usize, x: f64) -> Vec<f64> {
        assert!(k > 0, "segment_portions: K must be positive");
        assert!((-1e-12..=1.0 + 1e-12).contains(&x), "segment_portions: x {x} outside [0,1]");
        let kf = k as f64;
        (1..=k)
            .map(|j| (x - (j as f64 - 1.0) / kf).clamp(0.0, 1.0 / kf))
            .collect()
    }

    /// Evaluate the approximation at `x ∈ [0,1]`.
    pub fn eval(&self, x: f64) -> f64 {
        let portions = Self::segment_portions(self.k(), x);
        self.f0
            + self
                .slopes
                .iter()
                .zip(&portions)
                .map(|(s, p)| s * p)
                .sum::<f64>()
    }

    /// The worst-case approximation error bound `max|f′|/K` of Lemma 1,
    /// estimated by sampling the derivative on a fine grid.
    pub fn error_bound_estimate(k: usize, f: impl Fn(f64) -> f64) -> f64 {
        let fine = 1024;
        let h = 1.0 / fine as f64;
        let mut max_d = 0.0f64;
        for j in 0..fine {
            let a = j as f64 * h;
            let d = (f(a + h) - f(a)) / h;
            max_d = max_d.max(d.abs());
        }
        max_d / k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_1_portions() {
        // K = 5, x = 0.3 ⇒ x_1 = 1/5, x_2 = 0.1, x_3..x_5 = 0.
        let p = PiecewiseLinear::segment_portions(5, 0.3);
        assert!((p[0] - 0.2).abs() < 1e-12);
        assert!((p[1] - 0.1).abs() < 1e-12);
        assert_eq!(&p[2..], &[0.0, 0.0, 0.0]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 0.3).abs() < 1e-12);
    }

    #[test]
    fn exact_on_linear_functions() {
        let f = |x: f64| 3.0 - 2.0 * x;
        let pw = PiecewiseLinear::build(4, f);
        for j in 0..=20 {
            let x = j as f64 / 20.0;
            assert!((pw.eval(x) - f(x)).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn exact_at_breakpoints_for_any_function() {
        let f = |x: f64| (5.0 * x).sin() + x * x;
        let k = 7;
        let pw = PiecewiseLinear::build(k, f);
        for j in 0..=k {
            let x = j as f64 / k as f64;
            assert!((pw.eval(x) - f(x)).abs() < 1e-12, "breakpoint {j}");
        }
    }

    #[test]
    fn error_decays_like_one_over_k() {
        let f = |x: f64| (-3.0 * x).exp() * (x - 0.5);
        let err = |k: usize| {
            let pw = PiecewiseLinear::build(k, f);
            (0..=200)
                .map(|j| {
                    let x = j as f64 / 200.0;
                    (pw.eval(x) - f(x)).abs()
                })
                .fold(0.0f64, f64::max)
        };
        let e4 = err(4);
        let e8 = err(8);
        let e32 = err(32);
        assert!(e8 < e4);
        assert!(e32 < e8);
        // Roughly first-order (the Lemma-1 bound is O(1/K); allow slack).
        assert!(e32 < e4 / 4.0, "e4={e4}, e32={e32}");
    }

    #[test]
    fn error_bound_estimate_dominates_observed_error() {
        let f = |x: f64| (-2.0 * x).exp();
        for k in [2usize, 8, 32] {
            let pw = PiecewiseLinear::build(k, f);
            let observed = (0..=500)
                .map(|j| {
                    let x = j as f64 / 500.0;
                    (pw.eval(x) - f(x)).abs()
                })
                .fold(0.0f64, f64::max);
            let bound = PiecewiseLinear::error_bound_estimate(k, f);
            assert!(observed <= bound * 1.01 + 1e-9, "k={k}: {observed} > {bound}");
        }
    }

    #[test]
    fn slopes_match_formula() {
        let f = |x: f64| x * x;
        let pw = PiecewiseLinear::build(2, f);
        // s_1 = 2·(f(1/2) − f(0)) = 0.5; s_2 = 2·(f(1) − f(1/2)) = 1.5.
        assert!((pw.slopes[0] - 0.5).abs() < 1e-12);
        assert!((pw.slopes[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "K must be positive")]
    fn zero_segments_rejected() {
        PiecewiseLinear::build(0, |x| x);
    }

    #[test]
    fn from_samples_is_bitwise_identical_to_build() {
        let f = |x: f64| (-2.3 * x).exp() * (x - 0.37);
        for k in [1usize, 3, 8] {
            let samples: Vec<f64> = (0..=k).map(|j| f(j as f64 / k as f64)).collect();
            let a = PiecewiseLinear::build(k, f);
            let b = PiecewiseLinear::from_samples(&samples);
            assert_eq!(a.f0.to_bits(), b.f0.to_bits(), "k={k}");
            assert_eq!(a.slopes.len(), b.slopes.len());
            for (j, (sa, sb)) in a.slopes.iter().zip(&b.slopes).enumerate() {
                assert_eq!(sa.to_bits(), sb.to_bits(), "k={k} slope {j}");
            }
        }
    }

    mod f1_f2_properties {
        //! Lemma-1 properties checked on the *actual* `f1`/`f2`
        //! transforms the MILP linearizes, not on synthetic functions.

        use super::*;
        use crate::problem::RobustProblem;
        use crate::transform;
        use cubis_behavior::{BoundConvention, SuqrUncertainty, UncertainSuqr};
        use cubis_game::{SecurityGame, TargetPayoffs};

        fn fixture() -> (SecurityGame, UncertainSuqr) {
            let game = SecurityGame::new(
                vec![
                    TargetPayoffs::new(5.0, -3.0, 3.0, -5.0),
                    TargetPayoffs::new(7.0, -7.0, 7.0, -7.0),
                    TargetPayoffs::new(2.0, -6.0, 6.0, -2.0),
                ],
                1.5,
            );
            let model = UncertainSuqr::from_game(
                &game,
                SuqrUncertainty::paper_example(),
                0.5,
                BoundConvention::ExactInterval,
            );
            (game, model)
        }

        /// Max error of the K-segment linearization of `f`, sampled on
        /// a fine grid.
        fn observed_error(k: usize, f: &dyn Fn(f64) -> f64) -> f64 {
            let pw = PiecewiseLinear::build(k, f);
            (0..=400)
                .map(|j| {
                    let x = j as f64 / 400.0;
                    (pw.eval(x) - f(x)).abs()
                })
                .fold(0.0f64, f64::max)
        }

        /// Per-segment Lipschitz constant of `f` on segment `j` of `k`,
        /// estimated by fine finite differences inside the segment.
        fn segment_lipschitz(k: usize, j: usize, f: &dyn Fn(f64) -> f64) -> f64 {
            let lo = j as f64 / k as f64;
            let fine = 64;
            let h = 1.0 / (k * fine) as f64;
            (0..fine)
                .map(|s| {
                    let a = lo + s as f64 * h;
                    ((f(a + h) - f(a)) / h).abs()
                })
                .fold(0.0f64, f64::max)
        }

        #[test]
        fn f1_f2_error_within_per_segment_lipschitz_bound() {
            // Lemma 1: on segment j, |f̄ − f| ≤ M_j/K where M_j is the
            // segment's Lipschitz constant (the interpolant and the
            // function agree at both endpoints). Checked per segment —
            // a sharper claim than the global max|f′|/K bound.
            let (game, model) = fixture();
            let p = RobustProblem::new(&game, &model);
            let k = 6;
            for &c in &[-2.0, 0.0, 1.0] {
                for i in 0..game.num_targets() {
                    for which in 0..2 {
                        let f: Box<dyn Fn(f64) -> f64> = if which == 0 {
                            Box::new(|x| transform::f1(&p, i, x, c))
                        } else {
                            Box::new(|x| transform::f2(&p, i, x, c))
                        };
                        let pw = PiecewiseLinear::build(k, &*f);
                        for j in 0..k {
                            let m = segment_lipschitz(k, j, &*f);
                            let bound = m / k as f64;
                            let seg_err = (0..=50)
                                .map(|s| {
                                    let x = (j as f64 + s as f64 / 50.0) / k as f64;
                                    (pw.eval(x) - f(x)).abs()
                                })
                                .fold(0.0f64, f64::max);
                            assert!(
                                seg_err <= bound * 1.05 + 1e-9,
                                "c={c} i={i} f{} seg {j}: err {seg_err} > bound {bound}",
                                which + 1
                            );
                        }
                    }
                }
            }
        }

        #[test]
        fn f1_f2_error_halves_when_k_doubles() {
            // Lemma 1 gives O(1/K): doubling K must at least halve the
            // error, up to a constant. f1/f2 are smooth (exponentials ×
            // affine), so the observed decay is in fact quadratic; the
            // 0.75 factor leaves generous slack over the guaranteed ½.
            let (game, model) = fixture();
            let p = RobustProblem::new(&game, &model);
            for &c in &[-2.0, 0.5] {
                for i in 0..game.num_targets() {
                    for which in 0..2 {
                        let f: Box<dyn Fn(f64) -> f64> = if which == 0 {
                            Box::new(|x| transform::f1(&p, i, x, c))
                        } else {
                            Box::new(|x| transform::f2(&p, i, x, c))
                        };
                        for k in [2usize, 4, 8] {
                            let e_k = observed_error(k, &*f);
                            let e_2k = observed_error(2 * k, &*f);
                            assert!(
                                e_2k <= 0.75 * e_k + 1e-9,
                                "c={c} i={i} f{} K={k}: err(2K)={e_2k} vs err(K)={e_k}",
                                which + 1
                            );
                        }
                    }
                }
            }
        }
    }
}
