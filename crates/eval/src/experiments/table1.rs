//! **T1 — Table I / worked example** (Section III of the paper).
//!
//! Reproduces the 2-target, 1-resource example: the robust (CUBIS)
//! strategy vs the midpoint strategy, and their worst-case utilities.
//! Paper numbers: robust (0.46, 0.54) → −0.90; midpoint (0.34, 0.66) →
//! −2.26.

use crate::fixtures::{table1_game, table1_model};
use crate::report::Report;
use cubis_core::{RobustProblem, SolveError};
use cubis_solvers::solve_midpoint_params;
use cubis_trace::SharedRecorder;

/// Run the experiment.
pub fn run() -> Result<Report, SolveError> {
    run_traced(&SharedRecorder::null())
}

/// Run the experiment with an observability recorder attached to both
/// CUBIS solves (see [`crate::trace`]); `run` is this with the null
/// recorder.
pub fn run_traced(recorder: &SharedRecorder) -> Result<Report, SolveError> {
    let game = table1_game();
    let model = table1_model();
    let p = RobustProblem::new(&game, &model);

    let milp = super::cubis_milp(20, 1e-3).with_recorder(recorder.clone()).solve(&p)?;
    let dp = super::cubis_dp(200, 1e-3).with_recorder(recorder.clone()).solve(&p)?;
    let mid = solve_midpoint_params(&game, &model, 200, 1e-3)?;
    let wc_mid = p.worst_case(&mid).utility;

    let mut r = Report::new(
        "T1 — Table I worked example (2 targets, 1 resource)",
        vec!["strategy", "x1", "x2", "worst-case utility"],
    );
    r.note(
        "Defender payoffs Rd=(5,6), Pd=(−6,−9) reconstructed by grid search \
         (the paper does not state them); attacker intervals and the weight \
         box are verbatim from Table I.",
    );
    r.row(vec![
        "paper: robust".into(),
        "0.460".into(),
        "0.540".into(),
        "-0.900".into(),
    ]);
    r.row(vec![
        "CUBIS (MILP, K=20)".into(),
        format!("{:.3}", milp.x[0]),
        format!("{:.3}", milp.x[1]),
        format!("{:+.3}", milp.worst_case),
    ]);
    r.row(vec![
        "CUBIS (DP, 200 pts)".into(),
        format!("{:.3}", dp.x[0]),
        format!("{:.3}", dp.x[1]),
        format!("{:+.3}", dp.worst_case),
    ]);
    r.row(vec![
        "paper: midpoint".into(),
        "0.340".into(),
        "0.660".into(),
        "-2.260".into(),
    ]);
    r.row(vec![
        "midpoint (ours)".into(),
        format!("{:.3}", mid[0]),
        format!("{:.3}", mid[1]),
        format!("{wc_mid:+.3}"),
    ]);
    Ok(r)
}

#[cfg(test)]
mod tests {
    #[test]
    fn reproduces_paper_strategies() {
        let r = super::run().unwrap();
        // CUBIS (MILP) row: strategy within 0.02 of the paper's.
        let milp_row = &r.rows[1];
        let x1: f64 = milp_row[1].parse().unwrap();
        assert!((x1 - 0.46).abs() < 0.02, "x1 = {x1}");
        // Midpoint row: within 0.03.
        let mid_row = &r.rows[4];
        let m1: f64 = mid_row[1].parse().unwrap();
        assert!((m1 - 0.34).abs() < 0.03, "m1 = {m1}");
        // Robust worst case beats midpoint worst case by ≥ 1 utility.
        let wc_rob: f64 = milp_row[3].parse().unwrap();
        let wc_mid: f64 = mid_row[3].parse().unwrap();
        assert!(wc_rob > wc_mid + 1.0, "rob {wc_rob} vs mid {wc_mid}");
    }
}
