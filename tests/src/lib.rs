//! Integration-test-only crate: the tests live in `tests/tests/` and
//! exercise cross-crate pipelines (game → behavior → CUBIS → oracle,
//! baselines, experiment fixtures). This library target is empty.
