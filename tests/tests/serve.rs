//! Tier-1 gate for the cubis-serve subsystem, end to end over real
//! sockets: boot on an ephemeral port, solve (miss then bit-identical
//! hit), batch solve, health/metrics, backpressure (429 on a full
//! queue), per-request deadlines (504 with incumbent bounds), the
//! persistent cache tier surviving a restart byte-identically (with
//! the `serve.cache_tier2_hits` counter to show for it), keep-alive
//! reuse over one connection, and a graceful shutdown that drains
//! admitted work.
//!
//! The backpressure and drain tests pin a single worker with the
//! `x-cubis-test-hold-ms` hook (enabled only by
//! `ServeConfig::allow_test_hooks`) and synchronize on the
//! `/metrics` gauges instead of sleeping for "long enough" — the
//! acceptor answers GETs inline, so metrics stay readable while the
//! worker is deliberately wedged.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use cubis_check::CheckInstance;
use cubis_serve::http;
use cubis_serve::{BatchRequest, RequestPolicy, ServeConfig, SolutionView, SolveRequest};

const IO: Duration = Duration::from_secs(10);

fn small_instance(seed: u64) -> CheckInstance {
    let mut inst = CheckInstance::generate(seed);
    inst.pp = inst.pp.min(4);
    inst
}

/// A valid instance with `t` targets — large enough to cross the
/// `Auto` routing threshold — built by tiling a generated instance's
/// payoff rows.
fn large_instance(seed: u64, t: usize) -> CheckInstance {
    let mut inst = small_instance(seed);
    let base = inst.targets.len();
    while inst.targets.len() < t {
        let row = inst.targets[inst.targets.len() % base].clone();
        inst.targets.push(row);
    }
    inst.targets.truncate(t);
    inst.resources = (t / 8).max(1) as f64;
    assert!(inst.is_valid(), "tiled instance must stay valid");
    inst
}

fn post_solve(addr: SocketAddr, body: &str, extra: &[(&str, &str)]) -> http::Response {
    http::roundtrip(addr, "POST", "/v1/solve", extra, body.as_bytes(), IO)
        .expect("solve round trip")
}

/// Poll `/metrics` until `line` appears (gauge synchronization).
fn await_metric(addr: SocketAddr, line: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let resp = http::roundtrip(addr, "GET", "/metrics", &[], b"", IO).expect("metrics");
        assert_eq!(resp.status, 200);
        if resp.body_text().contains(line) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "metric line `{line}` never appeared; metrics:\n{}",
            resp.body_text()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn solve_misses_then_hits_bit_identically() {
    let server = cubis_serve::start(ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    let body =
        SolveRequest { instance: small_instance(42), deadline_ms: None, policy: RequestPolicy::Auto }.to_json_string();

    let first = post_solve(addr, &body, &[]);
    assert_eq!(first.status, 200, "body: {}", first.body_text());
    assert_eq!(first.header("x-cubis-cache"), Some("miss"));
    let view = SolutionView::from_json_str(&first.body_text()).expect("solution body");
    assert_eq!(view.x.len(), small_instance(42).num_targets());
    assert!(view.lb <= view.ub, "bounds out of order: {view:?}");
    assert!(view.gap >= 0.0 && view.binary_steps > 0);

    let second = post_solve(addr, &body, &[]);
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-cubis-cache"), Some("hit"));
    assert_eq!(second.body, first.body, "cache hit must be bit-identical to the fresh solve");
    server.shutdown();
}

#[test]
fn batch_fans_out_and_agrees_with_single_solves() {
    let server = cubis_serve::start(ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    let a = small_instance(100);
    let b = small_instance(101);

    let single = post_solve(
        addr,
        &SolveRequest { instance: a.clone(), deadline_ms: None, policy: RequestPolicy::Auto }.to_json_string(),
        &[],
    );
    assert_eq!(single.status, 200);

    let batch =
        BatchRequest {
        instances: vec![a.clone(), b.clone(), a.clone()],
        deadline_ms: None,
        policy: RequestPolicy::Auto,
    };
    let resp = http::roundtrip(
        addr,
        "POST",
        "/v1/solve_batch",
        &[],
        batch.to_json_string().as_bytes(),
        IO,
    )
    .expect("batch round trip");
    assert_eq!(resp.status, 200, "body: {}", resp.body_text());
    let v = cubis_trace::json::parse(&resp.body_text()).expect("batch body");
    let results = v.get("results").and_then(|r| r.as_arr()).expect("results array");
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].get("cache").unwrap().as_str(), Some("hit"));
    assert_eq!(results[1].get("cache").unwrap().as_str(), Some("miss"));
    assert_eq!(results[2].get("cache").unwrap().as_str(), Some("hit"));
    // Item-level bit-identity with the single-solve response.
    assert_eq!(
        results[0].get("result").unwrap().to_json_string(),
        single.body_text(),
        "batch item must be byte-identical to the single solve"
    );
    server.shutdown();
}

#[test]
fn auto_policy_routes_large_instances_to_scale_and_caches_bit_identically() {
    let server = cubis_serve::start(ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    let inst = large_instance(77, 48);
    let body = SolveRequest { instance: inst, deadline_ms: None, policy: RequestPolicy::Auto }
        .to_json_string();

    let first = post_solve(addr, &body, &[]);
    assert_eq!(first.status, 200, "body: {}", first.body_text());
    assert_eq!(first.header("x-cubis-inner"), Some("scale"), "48 targets must route to scale");
    assert_eq!(first.header("x-cubis-cache"), Some("miss"));
    let view = SolutionView::from_json_str(&first.body_text()).expect("solution body");
    assert_eq!(view.x.len(), 48);
    assert!(
        view.inner_gap.is_finite() && view.inner_gap >= 0.0,
        "scale body must carry its certified slack: {view:?}"
    );

    let second = post_solve(addr, &body, &[]);
    assert_eq!(second.header("x-cubis-cache"), Some("hit"));
    assert_eq!(second.header("x-cubis-inner"), Some("scale"));
    assert_eq!(second.body, first.body, "cached scale body must be byte-identical");

    // Small instances still answer on the exact DP engine…
    let small_body =
        SolveRequest { instance: small_instance(5), deadline_ms: None, policy: RequestPolicy::Auto }
            .to_json_string();
    let small = post_solve(addr, &small_body, &[]);
    assert_eq!(small.header("x-cubis-inner"), Some("dp"));
    // …and forcing `scale` on one flips the engine without reusing the
    // dp cache entry.
    let forced_body = SolveRequest {
        instance: small_instance(5),
        deadline_ms: None,
        policy: RequestPolicy::Scale,
    }
    .to_json_string();
    let forced = post_solve(addr, &forced_body, &[]);
    assert_eq!(forced.header("x-cubis-inner"), Some("scale"));
    assert_eq!(forced.header("x-cubis-cache"), Some("miss"));
    server.shutdown();
}

#[test]
fn healthz_and_metrics_respond() {
    let server = cubis_serve::start(ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    let health = http::roundtrip(addr, "GET", "/healthz", &[], b"", IO).expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.body_text(), "{\"status\":\"ok\"}");

    post_solve(
        addr,
        &SolveRequest { instance: small_instance(7), deadline_ms: None, policy: RequestPolicy::Auto }.to_json_string(),
        &[],
    );
    let metrics = http::roundtrip(addr, "GET", "/metrics", &[], b"", IO).expect("metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.body_text();
    for line in [
        "cubis_serve_requests_total",
        "cubis_serve_cache_misses 1",
        "cubis_serve_latency_us_count 1",
        "cubis_serve_queue_depth",
        "cubis_trace_counter", // solver effort flowed into the scrape
    ] {
        assert!(text.contains(line), "missing `{line}` in metrics:\n{text}");
    }
    server.shutdown();
}

#[test]
fn unknown_routes_and_bad_bodies_are_client_errors() {
    let server = cubis_serve::start(ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    let resp = http::roundtrip(addr, "GET", "/nope", &[], b"", IO).expect("404");
    assert_eq!(resp.status, 404);
    let resp = http::roundtrip(addr, "GET", "/v1/solve", &[], b"", IO).expect("405");
    assert_eq!(resp.status, 405);
    let resp = post_solve(addr, "this is not json", &[]);
    assert_eq!(resp.status, 400);
    server.shutdown();
}

#[test]
fn zero_deadline_times_out_with_incumbent_bounds() {
    let server = cubis_serve::start(ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    let body =
        SolveRequest { instance: small_instance(9), deadline_ms: Some(0), policy: RequestPolicy::Auto }.to_json_string();
    let resp = post_solve(addr, &body, &[]);
    assert_eq!(resp.status, 504, "body: {}", resp.body_text());
    let v = cubis_trace::json::parse(&resp.body_text()).expect("error body");
    assert_eq!(v.get("code").unwrap().as_str(), Some("deadline_exceeded"));
    let incumbent = v.get("incumbent").expect("504 must carry incumbent bounds");
    let lb = incumbent.get("lb").unwrap().as_f64().unwrap();
    let ub = incumbent.get("ub").unwrap().as_f64().unwrap();
    assert!(lb <= ub);
    // The expired request must not have poisoned the cache: without
    // the deadline the same instance solves fresh (a miss, not a hit).
    let ok = post_solve(
        addr,
        &SolveRequest { instance: small_instance(9), deadline_ms: None, policy: RequestPolicy::Auto }.to_json_string(),
        &[],
    );
    assert_eq!(ok.status, 200);
    assert_eq!(ok.header("x-cubis-cache"), Some("miss"));
    server.shutdown();
}

#[test]
fn full_queue_rejects_with_429() {
    let server = cubis_serve::start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        allow_test_hooks: true,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let body =
        SolveRequest { instance: small_instance(1), deadline_ms: None, policy: RequestPolicy::Auto }.to_json_string();

    // Pin the single worker, then fill the single queue slot.
    let pinned = {
        let body = body.clone();
        std::thread::spawn(move || post_solve(addr, &body, &[("x-cubis-test-hold-ms", "1500")]))
    };
    await_metric(addr, "cubis_serve_in_flight 1");
    let queued = {
        let body = body.clone();
        std::thread::spawn(move || post_solve(addr, &body, &[]))
    };
    await_metric(addr, "cubis_serve_queue_depth 1");

    // Worker pinned + queue full: the next request must bounce.
    let rejected = post_solve(addr, &body, &[]);
    assert_eq!(rejected.status, 429, "body: {}", rejected.body_text());
    assert_eq!(rejected.header("retry-after"), Some("1"));

    // The admitted requests still complete.
    assert_eq!(pinned.join().expect("pinned client").status, 200);
    assert_eq!(queued.join().expect("queued client").status, 200);
    let metrics = http::roundtrip(addr, "GET", "/metrics", &[], b"", IO).expect("metrics");
    assert!(metrics.body_text().contains("cubis_serve_rejected_queue_full 1"));
    server.shutdown();
}

#[test]
fn persistent_tier_survives_restart_and_counts_tier2_hits() {
    let data_dir = std::env::temp_dir().join(format!("cubis-serve-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let config = || ServeConfig {
        data_dir: Some(data_dir.clone()),
        ..ServeConfig::default()
    };
    let body =
        SolveRequest { instance: small_instance(3), deadline_ms: None, policy: RequestPolicy::Auto }
            .to_json_string();

    // First server: miss (solve lands in both tiers), then a hot hit.
    let server = cubis_serve::start(config()).expect("bind");
    let addr = server.local_addr();
    let fresh = post_solve(addr, &body, &[]);
    assert_eq!(fresh.status, 200, "body: {}", fresh.body_text());
    assert_eq!(fresh.header("x-cubis-cache"), Some("miss"));
    let hot = post_solve(addr, &body, &[]);
    assert_eq!(hot.header("x-cubis-cache"), Some("hit"));
    assert_eq!(hot.header("x-cubis-cache-tier"), Some("hot"));
    assert_eq!(hot.body, fresh.body);
    server.shutdown();

    // Second server, same data dir, empty hot tier: the hit must come
    // off disk, byte-identical, and show up in the tier-2 counter.
    let server = cubis_serve::start(config()).expect("rebind");
    let addr = server.local_addr();
    let revived = post_solve(addr, &body, &[]);
    assert_eq!(revived.status, 200, "body: {}", revived.body_text());
    assert_eq!(revived.header("x-cubis-cache"), Some("hit"), "persistent tier lost the entry");
    assert_eq!(revived.header("x-cubis-cache-tier"), Some("persistent"));
    assert_eq!(revived.body, fresh.body, "restart must not change a cached byte");

    let metrics = http::roundtrip(addr, "GET", "/metrics", &[], b"", IO).expect("metrics");
    let text = metrics.body_text();
    assert!(
        text.contains("cubis_trace_counter{name=\"serve.cache_tier2_hits\"} 1"),
        "tier-2 hit counter missing or wrong:\n{text}"
    );
    assert!(
        text.contains("cubis_trace_counter{name=\"serve.cache_tier1_hits\"} 0"),
        "fresh server must have an empty hot tier:\n{text}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn keepalive_reuse_is_visible_in_metrics() {
    let server = cubis_serve::start(ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    let mut conn = http::ClientConn::connect(addr, IO).expect("connect");
    for _ in 0..3 {
        let resp = conn.request("GET", "/healthz", &[], b"").expect("healthz");
        assert_eq!(resp.status, 200);
    }
    let resp = conn.request("GET", "/metrics", &[], b"").expect("metrics");
    assert_eq!(conn.exchanges(), 4, "one connection must carry all four requests");
    let text = resp.body_text();
    let reuse = text
        .lines()
        .find_map(|l| l.strip_prefix("cubis_trace_counter{name=\"reactor.keepalive_reuse\"} "))
        .and_then(|n| n.trim().parse::<u64>().ok())
        .expect("reactor.keepalive_reuse counter line");
    // The reactor flushes its counters at the end of each event-loop
    // iteration, so the metrics request's own reuse tick may land
    // after this response was rendered: 4 requests guarantee 2.
    assert!(reuse >= 2, "4 requests on one connection must register >=2 reuses, got {reuse}");
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_admitted_work() {
    let server = cubis_serve::start(ServeConfig {
        workers: 1,
        queue_capacity: 8,
        allow_test_hooks: true,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let body =
        SolveRequest { instance: small_instance(2), deadline_ms: None, policy: RequestPolicy::Auto }.to_json_string();

    // Pin the worker, then queue a second request behind it.
    let pinned = {
        let body = body.clone();
        std::thread::spawn(move || post_solve(addr, &body, &[("x-cubis-test-hold-ms", "800")]))
    };
    await_metric(addr, "cubis_serve_in_flight 1");
    let queued = {
        let body = body.clone();
        std::thread::spawn(move || post_solve(addr, &body, &[]))
    };
    await_metric(addr, "cubis_serve_queue_depth 1");

    // Shutdown must block until both admitted requests are answered.
    server.shutdown();
    assert_eq!(pinned.join().expect("pinned client").status, 200, "in-flight request dropped");
    assert_eq!(queued.join().expect("queued client").status, 200, "queued request dropped");

    // And the listener is gone: new connections fail (or catch a 503
    // if they race the final accept).
    match http::roundtrip(addr, "GET", "/healthz", &[], b"", Duration::from_secs(2)) {
        Err(_) => {}
        Ok(resp) => assert_eq!(resp.status, 503),
    }
}
