//! Prospect-theory (PT) attacker models.
//!
//! The paper's robust machinery only assumes the general discrete-choice
//! form (4) — `q_i ∝ F_i(x_i)` with positive decreasing `F_i`. This
//! module instantiates it with the other behavioral family used in the
//! SSG literature (Yang et al., IJCAI'11): Tversky–Kahneman prospect
//! theory. Attacking target `i` is the prospect
//!
//! ```text
//! (Ra_i with probability 1 − x_i ; Pa_i with probability x_i)
//! ```
//!
//! valued as `V_i(x) = w(1−x)·v(Ra_i) + w(x)·v(Pa_i)` with the standard
//! value function `v` (power/loss-averse) and probability weighting
//! `w`. Choice follows a logit over `η·V_i` — so
//! `F_i(x) = exp(η·V_i(x))`, positive and decreasing.
//!
//! [`UncertainProspect`] carries intervals on the loss-aversion `λ` and
//! precision `η` (the two parameters hardest to pin down from field
//! data); since `V_i` is monotone decreasing in `λ` and the exponent is
//! the product `η·V_i`, exact interval bounds follow from one interval
//! multiplication.

use crate::choice::ChoiceModel;
use crate::interval::Interval;
use crate::uncertain::IntervalChoiceModel;
use cubis_game::SecurityGame;
use serde::{Deserialize, Serialize};

/// Prospect-theory shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProspectParams {
    /// Gain-curvature exponent `α ∈ (0, 1]` (`v(y) = y^α` for gains).
    pub alpha: f64,
    /// Loss-curvature exponent `β ∈ (0, 1]`.
    pub beta: f64,
    /// Loss aversion `λ ≥ 1` (`v(y) = −λ·(−y)^β` for losses).
    pub lambda: f64,
    /// Probability-weighting curvature `γ ∈ (0.28, 1]` (the
    /// Tversky–Kahneman `w` is monotone on this range).
    pub gamma: f64,
    /// Logit precision `η ≥ 0` on the prospect values.
    pub eta: f64,
}

impl ProspectParams {
    /// The Tversky–Kahneman 1992 median estimates
    /// (`α = β = 0.88`, `λ = 2.25`, `γ = 0.61`) with unit precision.
    pub const TVERSKY_KAHNEMAN: ProspectParams =
        ProspectParams { alpha: 0.88, beta: 0.88, lambda: 2.25, gamma: 0.61, eta: 1.0 };

    /// Validate ranges.
    ///
    /// # Panics
    /// Panics if any parameter is outside its documented range.
    pub fn validated(self) -> Self {
        assert!((0.0..=1.0).contains(&self.alpha) && self.alpha > 0.0, "bad alpha");
        assert!((0.0..=1.0).contains(&self.beta) && self.beta > 0.0, "bad beta");
        assert!(self.lambda >= 1.0, "bad lambda {}", self.lambda);
        assert!(self.gamma > 0.28 && self.gamma <= 1.0, "bad gamma {}", self.gamma);
        assert!(self.eta >= 0.0 && self.eta.is_finite(), "bad eta {}", self.eta);
        self
    }
}

/// TK probability weighting `w(p) = p^γ / (p^γ + (1−p)^γ)^{1/γ}`.
pub fn weight_probability(p: f64, gamma: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p), "weight_probability: p = {p}");
    let pg = p.powf(gamma);
    let qg = (1.0 - p).powf(gamma);
    pg / (pg + qg).powf(1.0 / gamma)
}

/// TK value function: `y^α` for gains, `−λ(−y)^β` for losses.
pub fn value_function(y: f64, alpha: f64, beta: f64, lambda: f64) -> f64 {
    if y >= 0.0 {
        y.powf(alpha)
    } else {
        -lambda * (-y).powf(beta)
    }
}

/// Point-estimate prospect-theory attacker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prospect {
    /// PT parameters.
    pub params: ProspectParams,
}

impl Prospect {
    /// Construct (validates parameters).
    pub fn new(params: ProspectParams) -> Self {
        Self { params: params.validated() }
    }

    /// The prospect value `V_i(x)` of attacking target `i`, with the
    /// given loss aversion (λ is a parameter here so the interval model
    /// can reuse the computation at the box corners).
    fn value_with_lambda(&self, game: &SecurityGame, i: usize, x_i: f64, lambda: f64) -> f64 {
        let t = game.target(i);
        let p = &self.params;
        weight_probability(1.0 - x_i, p.gamma) * value_function(t.att_reward, p.alpha, p.beta, lambda)
            + weight_probability(x_i, p.gamma)
                * value_function(t.att_penalty, p.alpha, p.beta, lambda)
    }

    /// `V_i(x)` at the model's own λ.
    pub fn prospect_value(&self, game: &SecurityGame, i: usize, x_i: f64) -> f64 {
        self.value_with_lambda(game, i, x_i, self.params.lambda)
    }
}

impl ChoiceModel for Prospect {
    fn log_attractiveness(&self, game: &SecurityGame, i: usize, x_i: f64) -> f64 {
        self.params.eta * self.prospect_value(game, i, x_i)
    }
}

/// Prospect-theory attacker with interval-valued loss aversion `λ` and
/// precision `η`; shape parameters `α, β, γ` are point estimates.
///
/// Exactness: for standard payoffs (`Ra > 0 > Pa`), `V_i` is strictly
/// decreasing in `λ` (only the loss term carries λ), so
/// `V_i ∈ [V_i(λ_hi), V_i(λ_lo)]`; the exponent `η·V_i` then spans the
/// exact product interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UncertainProspect {
    base: Prospect,
    /// Loss-aversion interval (`≥ 1`).
    pub lambda: Interval,
    /// Precision interval (`≥ 0`).
    pub eta: Interval,
}

impl UncertainProspect {
    /// Construct from shape parameters and the two intervals.
    ///
    /// # Panics
    /// Panics if the intervals leave the valid PT ranges.
    pub fn new(shape: ProspectParams, lambda: Interval, eta: Interval) -> Self {
        assert!(lambda.lo >= 1.0, "UncertainProspect: lambda.lo {} < 1", lambda.lo);
        assert!(eta.lo >= 0.0, "UncertainProspect: eta.lo {} < 0", eta.lo);
        Self { base: Prospect::new(shape), lambda, eta }
    }
}

impl IntervalChoiceModel for UncertainProspect {
    fn log_bounds(&self, game: &SecurityGame, i: usize, x_i: f64) -> (f64, f64) {
        // V decreasing in λ ⇒ value interval from the λ endpoints.
        let v_lo = self.base.value_with_lambda(game, i, x_i, self.lambda.hi);
        let v_hi = self.base.value_with_lambda(game, i, x_i, self.lambda.lo);
        let e = Interval::new(v_lo.min(v_hi), v_lo.max(v_hi)).mul(self.eta);
        (e.lo, e.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choice::attack_distribution;
    use cubis_game::{GameGenerator, TargetPayoffs};

    fn game() -> SecurityGame {
        SecurityGame::new(
            vec![
                TargetPayoffs::new(5.0, -3.0, 8.0, -2.0),
                TargetPayoffs::new(2.0, -6.0, 3.0, -4.0),
            ],
            1.0,
        )
    }

    #[test]
    fn weighting_function_shape() {
        // Endpoints fixed; inverse-S: overweights small p.
        for gamma in [0.4, 0.61, 1.0] {
            assert!((weight_probability(0.0, gamma) - 0.0).abs() < 1e-12);
            assert!((weight_probability(1.0, gamma) - 1.0).abs() < 1e-12);
        }
        assert!(weight_probability(0.05, 0.61) > 0.05);
        assert!(weight_probability(0.95, 0.61) < 0.95);
        // γ = 1 is the identity.
        assert!((weight_probability(0.3, 1.0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn value_function_loss_aversion() {
        // Losses loom larger than gains: |v(−y)| > v(y) for λ > 1.
        let v_gain = value_function(4.0, 0.88, 0.88, 2.25);
        let v_loss = value_function(-4.0, 0.88, 0.88, 2.25);
        assert!(v_loss < 0.0);
        assert!(-v_loss > v_gain);
    }

    #[test]
    fn attractiveness_decreases_in_coverage() {
        let g = game();
        let m = Prospect::new(ProspectParams::TVERSKY_KAHNEMAN);
        let mut prev = f64::INFINITY;
        for k in 0..=10 {
            let x = k as f64 / 10.0;
            let f = m.log_attractiveness(&g, 0, x);
            assert!(f < prev + 1e-12, "not decreasing at x = {x}");
            prev = f;
        }
    }

    #[test]
    fn pt_attacker_overweights_longshots_vs_suqr_like() {
        // With heavy coverage on the rich target, a PT attacker still
        // attacks it more than an expected-value logit would, because
        // w() overweights the small success probability.
        let g = game();
        let pt = Prospect::new(ProspectParams::TVERSKY_KAHNEMAN);
        let ev = Prospect::new(
            ProspectParams { alpha: 1.0, beta: 1.0, lambda: 1.0, gamma: 1.0, eta: 1.0 },
        );
        let x = [0.9, 0.1];
        let q_pt = attack_distribution(&pt, &g, &x);
        let q_ev = attack_distribution(&ev, &g, &x);
        assert!(q_pt[0] > q_ev[0], "PT {q_pt:?} vs EV {q_ev:?}");
    }

    #[test]
    fn interval_bounds_ordered_and_contain_point_models() {
        let g = GameGenerator::new(200).generate(5, 2.0);
        let shape = ProspectParams::TVERSKY_KAHNEMAN;
        let um = UncertainProspect::new(
            shape,
            Interval::new(1.5, 3.0),
            Interval::new(0.5, 1.5),
        );
        for lambda in [1.5, 2.25, 3.0] {
            for eta in [0.5, 1.0, 1.5] {
                let point = Prospect::new(ProspectParams { lambda, eta, ..shape });
                for i in 0..5 {
                    for k in 0..=4 {
                        let x = k as f64 / 4.0;
                        let e = point.log_attractiveness(&g, i, x);
                        let (lo, hi) = um.log_bounds(&g, i, x);
                        assert!(lo <= hi + 1e-12);
                        assert!(
                            lo - 1e-9 <= e && e <= hi + 1e-9,
                            "λ={lambda} η={eta} target {i} x={x}: {e} ∉ [{lo}, {hi}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cubis_consumes_prospect_intervals() {
        // Full-stack smoke: robust solve against a PT interval model.
        let g = GameGenerator::new(201).generate(4, 1.0);
        let um = UncertainProspect::new(
            ProspectParams::TVERSKY_KAHNEMAN,
            Interval::new(1.2, 3.5),
            Interval::new(0.4, 1.2),
        );
        // The oracle path only needs IntervalChoiceModel.
        let (lo, hi) = um.log_bounds(&g, 0, 0.5);
        assert!(lo <= hi);
        let (l, u) = um.bounds(&g, 0, 0.5);
        assert!(0.0 < l && l <= u);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn rejects_sub_unit_loss_aversion() {
        UncertainProspect::new(
            ProspectParams::TVERSKY_KAHNEMAN,
            Interval::new(0.5, 2.0),
            Interval::new(0.5, 1.0),
        );
    }
}
