//! cubis-serve: a zero-dependency HTTP solve service.
//!
//! CUBIS solves are pure functions of their instance, which makes them
//! unusually good service payloads: identical requests have identical
//! answers, so a cache keyed by the *canonical instance encoding* can
//! serve bit-identical responses without re-solving. This crate turns
//! that observation into a small operational stack, std-only by
//! design (the server is `std::net` plus threads; the wire format is
//! `cubis-trace`'s JSON codec; the cache key is `cubis-check`'s
//! canonical encoding under FNV-1a):
//!
//! | layer | module | what it owns |
//! |---|---|---|
//! | wire | [`http`] | minimal HTTP/1.1 parse/print, one-shot + keep-alive clients |
//! | codec | [`codec`] | versioned solve/batch/error bodies |
//! | cache | [`cache`] | hot sharded LRU over a persistent content-hash store |
//! | metrics | [`metrics`] | server counters + latency histogram + trace dump |
//! | app | [`app`] | transport-free request handling (the oracle's entry point) |
//! | server | [`server`] | reactor frontend, work-stealing workers, graceful drain |
//! | oracle | [`oracle`] | the cache-vs-fresh and parser differential checks |
//! | loadgen | [`loadgen`] | keep-alive closed-loop clients behind `cubis-xtask loadgen` |
//!
//! The transport itself — the event loop, nonblocking accept,
//! incremental request parsing, keep-alive/pipelining, timeouts —
//! lives in the [`cubis_reactor`] crate; this crate supplies the
//! application behind it.
//!
//! Operational contract, in one paragraph: `POST /v1/solve` and
//! `POST /v1/solve_batch` go through a bounded admission queue (full →
//! `429` with `Retry-After`, draining → `503`) to a fixed
//! work-stealing worker pool; per-request deadlines are enforced
//! *inside* the binary search via [`cubis_core::Deadline`], so an
//! expired request answers `504` with the incumbent bounds instead of
//! burning a worker; `GET /healthz` and `GET /metrics` are answered on
//! the reactor thread itself and never queue behind solves; cache hits
//! are bit-identical to fresh solves across both tiers — including
//! across server restarts, via the persistent tier under `--data-dir`
//! — and shutdown drains the queue before the workers exit, so
//! admitted work is never dropped.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod cache;
pub mod codec;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod oracle;
pub mod server;

pub use app::{ApiResponse, App, CacheOutcome};
pub use cache::{CacheTier, SolutionCache};
pub use codec::{BatchRequest, RequestPolicy, SolutionView, SolveRequest};
pub use loadgen::{LoadgenConfig, LoadgenOutcome};
pub use metrics::ServerMetrics;
pub use oracle::{cache_vs_fresh_oracle, parser_incremental_vs_oneshot_oracle};
pub use server::{start, ServeConfig, ServerHandle};
