//! Uncertainty audit: given a deployed (fixed) patrol strategy, use the
//! exact worst-case oracle to audit how it degrades as the behavioral
//! model's uncertainty grows, and identify the adversarial behavior
//! that realizes the worst case.
//!
//! This exercises the oracle/diagnostic side of the API rather than the
//! solver: security analysts often need to *evaluate* an existing
//! schedule, not recompute one.
//!
//! ```sh
//! cargo run --release --bin uncertainty_audit
//! ```

use cubis_behavior::{BoundConvention, SuqrUncertainty, SuqrWeights, UncertainSuqr};
use cubis_core::RobustProblem;
use cubis_game::{GameGenerator, PayoffRanges};

fn main() {
    // A mid-sized deployment drawn from the literature-standard payoff
    // distribution (seeded: the audit is reproducible).
    let game = GameGenerator::new(2024)
        .with_ranges(PayoffRanges::default())
        .with_covariance(-0.6)
        .generate(10, 4.0);

    // The "deployed" strategy: whatever the team runs today. Here, the
    // SSE schedule against a perfectly rational attacker.
    let deployed = cubis_solvers::solve_origami(&game);
    println!("deployed strategy (ORIGAMI SSE): {:?}\n", round2(&deployed));

    println!(
        "{:>6} | {:>12} | {:>12} | {:>22}",
        "δ", "worst case", "vs δ=0", "most-attacked target"
    );
    println!("{}", "-".repeat(60));
    let mut baseline = None;
    for step in 0..=5 {
        let delta = step as f64 / 5.0;
        let weights = SuqrUncertainty::around(SuqrWeights::LITERATURE, 0.5).scale_width(delta);
        let model = UncertainSuqr::from_game(
            &game,
            weights,
            2.0 * delta,
            BoundConvention::ExactInterval,
        );
        let p = RobustProblem::new(&game, &model);
        let wc = p.worst_case(&deployed);
        let base = *baseline.get_or_insert(wc.utility);
        let (worst_target, worst_q) = wc
            .attack
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        println!(
            "{delta:>6.1} | {:>+12.3} | {:>+12.3} | target {worst_target} (q = {worst_q:.2})",
            wc.utility,
            wc.utility - base,
        );
    }

    // Where should the analysts collect data next? Rank targets by the
    // value of resolving their behavioral uncertainty.
    let weights = SuqrUncertainty::around(SuqrWeights::LITERATURE, 0.5);
    let model =
        UncertainSuqr::from_game(&game, weights, 2.0, BoundConvention::ExactInterval);
    let p = RobustProblem::new(&game, &model);
    let voi = cubis_core::value_of_information(&p, &deployed);
    let ranking = cubis_core::rank_targets(&p, &deployed);
    println!("\ndata-collection priorities (value of resolving each target's behavior):");
    for &t in ranking.iter().take(3) {
        println!("  target {t}: worst case improves by {:+.3} if resolved", voi[t]);
    }

    // How much of the loss is recoverable by re-planning robustly at the
    // widest uncertainty?
    let weights = SuqrUncertainty::around(SuqrWeights::LITERATURE, 0.5);
    let model = UncertainSuqr::from_game(&game, weights, 2.0, BoundConvention::ExactInterval);
    let p = RobustProblem::new(&game, &model);
    let robust = cubis_core::Cubis::new(cubis_core::DpInner::new(100))
        .with_epsilon(1e-3)
        .solve(&p)
        .unwrap();
    let deployed_wc = p.worst_case(&deployed).utility;
    println!(
        "\nre-planning with CUBIS at δ = 1 recovers {:+.3} worst-case utility \
         ({:+.3} → {:+.3})",
        robust.worst_case - deployed_wc,
        deployed_wc,
        robust.worst_case
    );
}

fn round2(x: &[f64]) -> Vec<f64> {
    x.iter().map(|v| (v * 100.0).round() / 100.0).collect()
}
