//! The event loop: nonblocking accept, per-connection state machines,
//! keep-alive, pipelining, write backpressure, and timeouts.
//!
//! One thread owns everything: the listener, the [`Poller`], and every
//! connection. Request handling is delegated through [`Handler`] on
//! the loop thread — handlers that finish instantly (health checks,
//! metrics, rejections) call [`Reply::send`] before returning, while
//! slow work (solves) hands the [`Reply`] to another thread and sends
//! later; either way the completion lands on a queue and the loop is
//! woken through its self-pipe. Responses to pipelined requests are
//! written strictly in request order regardless of completion order.
//!
//! # Connection state machine
//!
//! ```text
//!             ┌──────────── keep-alive ────────────┐
//!             v                                    │
//! accept → [Idle] ─bytes→ [Reading] ─request→ [Pending] ─reply→ [Writing]
//!             │              │                      │               │
//!          idle t/o       read t/o              (no I/O t/o;     write t/o,
//!             │              │                   handler owns     backpressure
//!             v              v                   its deadline)       │
//!           close          close                                  close (after
//!                                                                  flush if
//!                                                                  `close`)
//! ```
//!
//! A connection in `Pending`/`Writing` may simultaneously be `Reading`
//! the next pipelined request; reads pause (the read interest is
//! dropped) whenever buffered output exceeds the backpressure
//! high-water mark, and resume once the peer drains it.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use cubis_trace::SharedRecorder;

use crate::http1::{encode_response, ParseError, ParseStep, ParsedRequest, RequestParser};
use crate::poller::{Interest, PollEvent, Poller};
use crate::sys;

/// Stop reading from a connection while more than this many response
/// bytes are waiting for the peer to drain (write backpressure).
pub const BACKPRESSURE_HIGH_WATER: usize = 256 * 1024;

/// How long a shutdown waits for buffered responses to flush before
/// abandoning the stragglers.
const SHUTDOWN_FLUSH_BUDGET: Duration = Duration::from_secs(5);

/// Reactor configuration.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Hard cap on concurrently open connections; accepts beyond it
    /// are closed immediately.
    pub max_connections: usize,
    /// Close a keep-alive connection idle (no buffered bytes, no
    /// pending responses) for this long.
    pub idle_timeout: Duration,
    /// Close a connection whose partially-received request stalls for
    /// this long (the slowloris guard).
    pub read_timeout: Duration,
    /// Close a connection whose buffered response bytes make no write
    /// progress for this long.
    pub write_timeout: Duration,
    /// Per-request head cap (request line + headers).
    pub max_head_bytes: usize,
    /// Per-request body cap.
    pub max_body_bytes: usize,
    /// Force the `poll(2)` backend even where epoll is available.
    pub force_poll_backend: bool,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 4096,
            idle_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_head_bytes: crate::http1::DEFAULT_MAX_HEAD_BYTES,
            max_body_bytes: crate::http1::DEFAULT_MAX_BODY_BYTES,
            force_poll_backend: false,
        }
    }
}

/// A fully-encoded response headed for one connection.
#[derive(Debug, Clone)]
pub struct Response {
    /// The exact bytes to write (status line through body).
    pub bytes: Vec<u8>,
    /// Close the connection once these bytes have flushed.
    pub close: bool,
}

/// The application half of the reactor: called on the loop thread for
/// every complete request.
pub trait Handler: Send + Sync + 'static {
    /// Handle one parsed request. Must not block: either reply
    /// immediately or move `reply` to another thread and return.
    fn handle(&self, req: ParsedRequest, reply: Reply);

    /// Render the single response written before closing a connection
    /// whose byte stream failed to parse.
    fn on_parse_error(&self, err: &ParseError) -> Response {
        let (status, reason) = match err {
            ParseError::HeadTooLarge(_) => (431, "Request Header Fields Too Large"),
            ParseError::BodyTooLarge(_) => (413, "Payload Too Large"),
            ParseError::Malformed(_) => (400, "Bad Request"),
        };
        let body = format!("{err}\n");
        Response {
            bytes: encode_response(status, reason, "text/plain", &[], body.as_bytes(), false),
            close: true,
        }
    }
}

/// Routes completed responses back to the loop thread and wakes it.
struct ReplyRouter {
    completions: Mutex<Vec<(u64, u64, Response)>>,
    /// Write end of the loop's self-pipe.
    wake_tx: std::os::fd::OwnedFd,
    stop: AtomicBool,
}

impl ReplyRouter {
    fn wake(&self) {
        // A full pipe means a wake is already pending — WouldBlock is
        // success here, and any other failure only costs latency (the
        // loop ticks on its own).
        let _ = sys::write_fd(self.wake_tx.as_raw_fd(), b"w");
    }
}

/// The send-once capability for answering one request.
pub struct Reply {
    conn_id: u64,
    serial: u64,
    router: Arc<ReplyRouter>,
}

impl Reply {
    /// Deliver the response. Responses are written to the socket in
    /// request order; sending out of order is fine, the bytes wait.
    pub fn send(self, response: Response) {
        {
            let mut q =
                self.router.completions.lock().unwrap_or_else(PoisonError::into_inner);
            q.push((self.conn_id, self.serial, response));
        }
        self.router.wake();
    }
}

/// Handle to a running reactor.
pub struct ReactorHandle {
    addr: SocketAddr,
    router: Arc<ReplyRouter>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ReactorHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the loop: no new connections are accepted, buffered
    /// responses get a bounded flush window, then everything closes.
    /// Callers that need a drain (answer everything in flight) should
    /// finish their handlers *before* calling this — the loop writes
    /// every response already sent through a [`Reply`].
    pub fn shutdown(mut self) {
        self.router.stop.store(true, Ordering::SeqCst);
        self.router.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ReactorHandle {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.router.stop.store(true, Ordering::SeqCst);
            self.router.wake();
            let _ = thread.join();
        }
    }
}

/// Start a reactor serving `handler`; returns once the listener is
/// bound. Counters flow through `recorder` (see
/// `cubis_trace::names` for the `reactor.*` set).
pub fn start(
    config: ReactorConfig,
    handler: Arc<dyn Handler>,
    recorder: SharedRecorder,
) -> std::io::Result<ReactorHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let (wake_rx, wake_tx) = sys::wake_pipe()?;
    let router = Arc::new(ReplyRouter {
        completions: Mutex::new(Vec::new()),
        wake_tx,
        stop: AtomicBool::new(false),
    });
    let mut poller = Poller::with_fallback(config.force_poll_backend)?;
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
    poller.register(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;
    let thread = {
        let router = Arc::clone(&router);
        std::thread::Builder::new().name("cubis-reactor".to_string()).spawn(move || {
            let mut core = Loop {
                listener,
                wake_rx,
                poller,
                router,
                handler,
                recorder,
                config,
                conns: Vec::new(),
                by_id: HashMap::new(),
                next_id: 1,
                stats: Stats::default(),
            };
            core.run();
        })?
    };
    Ok(ReactorHandle { addr, router, thread: Some(thread) })
}

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// What the current deadline on a connection means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeadlineKind {
    Idle,
    Read,
    Write,
}

enum Slot {
    /// Request dispatched; response not yet delivered.
    Waiting(u64),
    /// Response delivered out of order; waiting for its turn.
    Done(Response),
}

struct Conn {
    stream: TcpStream,
    id: u64,
    parser: RequestParser,
    /// Encoded bytes not yet accepted by the socket.
    out: Vec<u8>,
    out_pos: usize,
    /// In-order response slots for dispatched requests.
    pending: VecDeque<Slot>,
    next_serial: u64,
    requests_started: u64,
    /// Registered interest (kept to avoid redundant `modify` calls).
    interest: Interest,
    deadline: Option<(Instant, DeadlineKind)>,
    /// Stop parsing further requests (close requested or parse error).
    no_more_requests: bool,
    /// Close once `out` and `pending` drain.
    closing: bool,
    /// Peer sent EOF; serve what's pending, expect nothing more.
    peer_closed: bool,
}

#[derive(Default)]
struct Stats {
    wakeups: u64,
    readiness_events: u64,
    accepts: u64,
    keepalive_reuse: u64,
    timeout_kills: u64,
}

struct Loop {
    listener: TcpListener,
    wake_rx: std::os::fd::OwnedFd,
    poller: Poller,
    router: Arc<ReplyRouter>,
    handler: Arc<dyn Handler>,
    recorder: SharedRecorder,
    config: ReactorConfig,
    /// Slab of connections; the poller token is the slot index.
    conns: Vec<Option<Conn>>,
    /// Connection id → slab slot (ids guard against slot reuse).
    by_id: HashMap<u64, usize>,
    next_id: u64,
    stats: Stats,
}

impl Loop {
    fn run(&mut self) {
        let mut events: Vec<PollEvent> = Vec::new();
        let mut stopping_since: Option<Instant> = None;
        loop {
            let stopping = self.router.stop.load(Ordering::SeqCst);
            if stopping && stopping_since.is_none() {
                stopping_since = Some(Instant::now());
                let _ = self.poller.deregister(self.listener.as_raw_fd());
                self.close_flushed_conns();
            }
            if let Some(since) = stopping_since {
                if self.live_conns() == 0 || since.elapsed() >= SHUTDOWN_FLUSH_BUDGET {
                    self.flush_stats();
                    return;
                }
            }
            let timeout = self.next_wait_timeout(stopping_since);
            if self.poller.wait(&mut events, timeout).is_err() {
                // A failed wait would spin; back off and retry.
                std::thread::sleep(Duration::from_millis(5));
            }
            self.stats.wakeups += 1;
            self.stats.readiness_events += events.len() as u64;
            for ev in events.drain(..) {
                match ev.token {
                    TOKEN_LISTENER => {
                        if stopping_since.is_none() {
                            self.accept_ready();
                        }
                    }
                    TOKEN_WAKE => {
                        let mut buf = [0u8; 64];
                        while let Ok(n) = sys::read_fd(self.wake_rx.as_raw_fd(), &mut buf) {
                            if n < buf.len() {
                                break;
                            }
                        }
                    }
                    token => self.conn_ready(token as usize, ev),
                }
            }
            self.drain_completions();
            self.expire_deadlines();
            if stopping_since.is_some() {
                self.close_flushed_conns();
            }
            self.refresh_registrations();
            self.flush_stats();
        }
    }

    fn live_conns(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    /// During shutdown: drop every connection with nothing left to
    /// write; the rest get the flush budget.
    fn close_flushed_conns(&mut self) {
        let idle: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let conn = c.as_ref()?;
                let has_output =
                    conn.out_pos < conn.out.len() || !conn.pending.is_empty();
                (!has_output).then_some(i)
            })
            .collect();
        for token in idle {
            self.close_conn(token);
        }
    }

    fn next_wait_timeout(&self, stopping_since: Option<Instant>) -> Option<Duration> {
        let now = Instant::now();
        let mut min: Option<Duration> = stopping_since
            .map(|s| (s + SHUTDOWN_FLUSH_BUDGET).saturating_duration_since(now));
        for conn in self.conns.iter().flatten() {
            if let Some((at, _)) = conn.deadline {
                let left = at.saturating_duration_since(now);
                min = Some(match min {
                    Some(m) => m.min(left),
                    None => left,
                });
            }
        }
        // A coarse tick bounds how stale the deadline sweep can get
        // even if a registration path misses a wake.
        Some(min.map_or(Duration::from_millis(500), |m| m.min(Duration::from_millis(500))))
    }

    fn accept_ready(&mut self) {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            };
            if self.live_conns() >= self.config.max_connections {
                // Over the cap: shed the connection immediately.
                drop(stream);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let id = self.next_id;
            self.next_id += 1;
            let token = match self.conns.iter().position(|c| c.is_none()) {
                Some(slot) => slot,
                None => {
                    self.conns.push(None);
                    self.conns.len() - 1
                }
            };
            let conn = Conn {
                stream,
                id,
                parser: RequestParser::new(
                    self.config.max_head_bytes,
                    self.config.max_body_bytes,
                ),
                out: Vec::new(),
                out_pos: 0,
                pending: VecDeque::new(),
                next_serial: 0,
                requests_started: 0,
                interest: Interest::READ,
                deadline: Some((Instant::now() + self.config.idle_timeout, DeadlineKind::Idle)),
                no_more_requests: false,
                closing: false,
                peer_closed: false,
            };
            if self
                .poller
                .register(conn.stream.as_raw_fd(), token as u64, Interest::READ)
                .is_err()
            {
                continue;
            }
            self.stats.accepts += 1;
            self.by_id.insert(id, token);
            self.conns[token] = Some(conn);
        }
    }

    fn conn_ready(&mut self, token: usize, ev: PollEvent) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return;
        };
        if ev.readable && !conn.no_more_requests && conn.out.len() - conn.out_pos
            <= BACKPRESSURE_HIGH_WATER
        {
            self.read_ready(token);
        }
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return;
        };
        if ev.writable || conn.out_pos < conn.out.len() {
            self.write_ready(token);
        }
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return;
        };
        if ev.error && conn.out_pos >= conn.out.len() && conn.pending.is_empty() {
            self.close_conn(token);
        }
    }

    fn read_ready(&mut self, token: usize) {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                return;
            };
            match (&conn.stream).read(&mut buf) {
                Ok(0) => {
                    conn.peer_closed = true;
                    conn.no_more_requests = true;
                    if conn.out_pos >= conn.out.len() && conn.pending.is_empty() {
                        self.close_conn(token);
                    }
                    return;
                }
                Ok(n) => {
                    conn.parser.push(&buf[..n]);
                    self.pump_parser(token);
                    let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut)
                    else {
                        return;
                    };
                    if conn.no_more_requests
                        || conn.out.len() - conn.out_pos > BACKPRESSURE_HIGH_WATER
                    {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
    }

    /// Pull every complete request out of the connection's parser and
    /// dispatch it.
    fn pump_parser(&mut self, token: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                return;
            };
            if conn.no_more_requests {
                return;
            }
            match conn.parser.next_request() {
                ParseStep::NeedMore => return,
                ParseStep::Ready(req) => {
                    let serial = conn.next_serial;
                    conn.next_serial += 1;
                    conn.requests_started += 1;
                    if conn.requests_started > 1 {
                        self.stats.keepalive_reuse += 1;
                    }
                    if !req.keep_alive {
                        conn.no_more_requests = true;
                    }
                    conn.pending.push_back(Slot::Waiting(serial));
                    let reply = Reply {
                        conn_id: conn.id,
                        serial,
                        router: Arc::clone(&self.router),
                    };
                    let handler = Arc::clone(&self.handler);
                    handler.handle(req, reply);
                }
                ParseStep::Bad(err) => {
                    let response = self.handler.on_parse_error(&err);
                    let conn = match self.conns.get_mut(token).and_then(Option::as_mut) {
                        Some(c) => c,
                        None => return,
                    };
                    conn.no_more_requests = true;
                    conn.closing = true;
                    // Jump the queue only if nothing was dispatched
                    // before the bad bytes; otherwise append in order.
                    conn.pending.push_back(Slot::Done(response));
                    self.promote_ready(token);
                    return;
                }
            }
        }
    }

    /// Move contiguous completed responses from `pending` into the
    /// write buffer.
    fn promote_ready(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return;
        };
        while let Some(Slot::Done(_)) = conn.pending.front() {
            let Some(Slot::Done(resp)) = conn.pending.pop_front() else {
                break;
            };
            conn.out.extend_from_slice(&resp.bytes);
            if resp.close {
                conn.closing = true;
                conn.no_more_requests = true;
                conn.pending.clear();
                break;
            }
        }
        // Reclaim consumed prefix once it dominates the buffer.
        if conn.out_pos > 4096 && conn.out_pos * 2 > conn.out.len() {
            conn.out.drain(..conn.out_pos);
            conn.out_pos = 0;
        }
        self.write_ready(token);
    }

    fn write_ready(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return;
        };
        while conn.out_pos < conn.out.len() {
            match (&conn.stream).write(&conn.out[conn.out_pos..]) {
                Ok(0) => break,
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        let flushed = conn.out_pos >= conn.out.len();
        if flushed && conn.closing && conn.pending.is_empty() {
            self.close_conn(token);
        } else if flushed && conn.peer_closed && conn.pending.is_empty() {
            self.close_conn(token);
        }
    }

    fn drain_completions(&mut self) {
        let completions: Vec<(u64, u64, Response)> = {
            let mut q =
                self.router.completions.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *q)
        };
        for (conn_id, serial, response) in completions {
            let Some(&token) = self.by_id.get(&conn_id) else {
                continue; // Connection died before its response.
            };
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                continue;
            };
            if conn.id != conn_id {
                continue;
            }
            for slot in conn.pending.iter_mut() {
                if let Slot::Waiting(s) = slot {
                    if *s == serial {
                        *slot = Slot::Done(response);
                        break;
                    }
                }
            }
            self.promote_ready(token);
        }
    }

    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        let expired: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let conn = c.as_ref()?;
                match conn.deadline {
                    Some((at, _)) if at <= now => Some(i),
                    _ => None,
                }
            })
            .collect();
        for token in expired {
            self.stats.timeout_kills += 1;
            self.close_conn(token);
        }
    }

    /// Recompute interest + deadline for every live connection and
    /// sync the poller where they changed.
    fn refresh_registrations(&mut self) {
        let now = Instant::now();
        for token in 0..self.conns.len() {
            let Some(conn) = self.conns[token].as_mut() else {
                continue;
            };
            let has_output = conn.out_pos < conn.out.len();
            let wants_read = !conn.no_more_requests
                && !conn.peer_closed
                && conn.out.len() - conn.out_pos <= BACKPRESSURE_HIGH_WATER;
            let desired = Interest { readable: wants_read, writable: has_output };
            if desired != conn.interest {
                if self
                    .poller
                    .modify(conn.stream.as_raw_fd(), token as u64, desired)
                    .is_ok()
                {
                    conn.interest = desired;
                }
            }
            let kind = if has_output {
                Some(DeadlineKind::Write)
            } else if !conn.pending.is_empty() {
                None // Handler owns its own deadline.
            } else if !conn.parser.is_idle() {
                Some(DeadlineKind::Read)
            } else {
                Some(DeadlineKind::Idle)
            };
            conn.deadline = match kind {
                None => None,
                Some(kind) => {
                    let window = match kind {
                        DeadlineKind::Idle => self.config.idle_timeout,
                        DeadlineKind::Read => self.config.read_timeout,
                        DeadlineKind::Write => self.config.write_timeout,
                    };
                    match conn.deadline {
                        // Keep an armed deadline of the same kind —
                        // re-arming on every tick would defeat it.
                        Some((at, k)) if k == kind => Some((at, k)),
                        _ => Some((now + window, kind)),
                    }
                }
            };
        }
    }

    fn close_conn(&mut self, token: usize) {
        if let Some(conn) = self.conns.get_mut(token).and_then(Option::take) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.by_id.remove(&conn.id);
        }
    }

    /// Emit accumulated counters through the recorder (each name is
    /// registered in `cubis_trace::names::COUNTERS`).
    fn flush_stats(&mut self) {
        let stats = std::mem::take(&mut self.stats);
        if stats.wakeups > 0 {
            self.recorder.counter("reactor.wakeups", stats.wakeups);
        }
        if stats.readiness_events > 0 {
            self.recorder.counter("reactor.readiness_events", stats.readiness_events);
        }
        if stats.accepts > 0 {
            self.recorder.counter("reactor.accepts", stats.accepts);
        }
        if stats.keepalive_reuse > 0 {
            self.recorder.counter("reactor.keepalive_reuse", stats.keepalive_reuse);
        }
        if stats.timeout_kills > 0 {
            self.recorder.counter("reactor.timeout_kills", stats.timeout_kills);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    /// Echoes the request path and body length; `/close` asks for
    /// connection close; `/slow` replies from another thread after a
    /// short delay (exercises the completion queue + wake pipe).
    struct EchoHandler;

    impl Handler for EchoHandler {
        fn handle(&self, req: ParsedRequest, reply: Reply) {
            let body = format!("path={} body_len={}", req.path, req.body.len());
            let close = !req.keep_alive || req.path == "/close";
            let response = Response {
                bytes: encode_response(
                    200,
                    "OK",
                    "text/plain",
                    &[],
                    body.as_bytes(),
                    !close,
                ),
                close,
            };
            if req.path == "/slow" {
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(50));
                    reply.send(response);
                });
            } else {
                reply.send(response);
            }
        }
    }

    fn boot(config: ReactorConfig) -> ReactorHandle {
        start(config, Arc::new(EchoHandler), SharedRecorder::default())
            .expect("reactor binds an ephemeral port")
    }

    fn read_one_response(reader: &mut impl BufRead) -> (u16, Vec<(String, String)>, Vec<u8>) {
        let mut line = String::new();
        reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {line:?}"));
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header line");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            let (n, v) = line.split_once(':').expect("header colon");
            let (n, v) = (n.trim().to_ascii_lowercase(), v.trim().to_string());
            if n == "content-length" {
                content_length = v.parse().expect("content-length");
            }
            headers.push((n, v));
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        (status, headers, body)
    }

    fn configs() -> Vec<ReactorConfig> {
        vec![
            ReactorConfig::default(),
            ReactorConfig { force_poll_backend: true, ..ReactorConfig::default() },
        ]
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        for config in configs() {
            let handle = boot(config);
            let stream = TcpStream::connect(handle.local_addr()).expect("connect");
            stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = std::io::BufReader::new(stream);
            for i in 0..3 {
                writer
                    .write_all(format!("GET /r{i} HTTP/1.1\r\n\r\n").as_bytes())
                    .expect("write");
                let (status, headers, body) = read_one_response(&mut reader);
                assert_eq!(status, 200);
                assert_eq!(body, format!("path=/r{i} body_len=0").as_bytes());
                assert!(headers
                    .iter()
                    .any(|(n, v)| n == "connection" && v == "keep-alive"));
            }
            handle.shutdown();
        }
    }

    #[test]
    fn pipelined_requests_come_back_in_order() {
        for config in configs() {
            let handle = boot(config);
            let stream = TcpStream::connect(handle.local_addr()).expect("connect");
            stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = std::io::BufReader::new(stream);
            // The first is answered slowly off-thread, the second
            // instantly — order must still be request order.
            writer
                .write_all(b"GET /slow HTTP/1.1\r\n\r\nGET /fast HTTP/1.1\r\n\r\n")
                .expect("write");
            let (_, _, body1) = read_one_response(&mut reader);
            let (_, _, body2) = read_one_response(&mut reader);
            assert_eq!(body1, b"path=/slow body_len=0");
            assert_eq!(body2, b"path=/fast body_len=0");
            handle.shutdown();
        }
    }

    #[test]
    fn connection_close_is_honored() {
        let handle = boot(ReactorConfig::default());
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = std::io::BufReader::new(stream);
        writer
            .write_all(b"POST /x HTTP/1.1\r\nconnection: close\r\ncontent-length: 2\r\n\r\nhi")
            .expect("write");
        let (status, headers, body) = read_one_response(&mut reader);
        assert_eq!(status, 200);
        assert_eq!(body, b"path=/x body_len=2");
        assert!(headers.iter().any(|(n, v)| n == "connection" && v == "close"));
        // Server closes: the next read sees EOF.
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).expect("eof");
        assert!(rest.is_empty());
        handle.shutdown();
    }

    #[test]
    fn oversized_head_gets_431_and_close() {
        let handle = boot(ReactorConfig {
            max_head_bytes: 256,
            ..ReactorConfig::default()
        });
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = std::io::BufReader::new(stream);
        let huge = format!("GET / HTTP/1.1\r\nx-big: {}\r\n\r\n", "a".repeat(512));
        writer.write_all(huge.as_bytes()).expect("write");
        let (status, _, _) = read_one_response(&mut reader);
        assert_eq!(status, 431);
        handle.shutdown();
    }

    #[test]
    fn malformed_request_line_gets_400() {
        let handle = boot(ReactorConfig::default());
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = std::io::BufReader::new(stream);
        writer.write_all(b"NONSENSE\r\n\r\n").expect("write");
        let (status, _, _) = read_one_response(&mut reader);
        assert_eq!(status, 400);
        handle.shutdown();
    }

    #[test]
    fn slowloris_idle_and_stalled_reads_are_killed() {
        let handle = boot(ReactorConfig {
            idle_timeout: Duration::from_millis(150),
            read_timeout: Duration::from_millis(150),
            ..ReactorConfig::default()
        });
        // Stalled mid-request: a partial head, then silence.
        let mut stalled = TcpStream::connect(handle.local_addr()).expect("connect");
        stalled.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        stalled.write_all(b"GET / HTT").expect("write");
        let mut buf = Vec::new();
        let start = Instant::now();
        stalled.read_to_end(&mut buf).expect("server closes the stalled conn");
        assert!(buf.is_empty(), "no response bytes for a never-finished request");
        assert!(start.elapsed() < Duration::from_secs(4), "killed by timeout, not test patience");
        handle.shutdown();
    }

    #[test]
    fn shutdown_flushes_already_sent_responses() {
        let handle = boot(ReactorConfig::default());
        let addr = handle.local_addr();
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = std::io::BufReader::new(stream);
        writer.write_all(b"GET /slow HTTP/1.1\r\n\r\n").expect("write");
        // Give the loop a beat to dispatch, then shut down while the
        // slow handler is still sleeping: its reply must still arrive.
        std::thread::sleep(Duration::from_millis(10));
        let shutdown = std::thread::spawn(move || handle.shutdown());
        let (status, _, body) = read_one_response(&mut reader);
        assert_eq!(status, 200);
        assert_eq!(body, b"path=/slow body_len=0");
        shutdown.join().expect("shutdown thread");
    }
}
