//! The [`Journal`]: an ordered, timestamped event log with JSON export
//! and the aggregate views the `trace-report` renderer builds on.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;
use std::time::Instant;

use crate::event::{BinaryStepEvent, Event, TimedEvent};
use crate::json::{self, JsonError, JsonValue};
use crate::recorder::Recorder;

/// Journal format version written by [`Journal::to_json`].
pub const FORMAT_VERSION: u64 = 1;

/// A [`Recorder`] that appends every event, stamped against a
/// creation-time epoch, to an in-memory log.
///
/// Share it as `Arc<JournalRecorder>` (wrapped in
/// [`crate::SharedRecorder`]) while solving, then call
/// [`JournalRecorder::snapshot`] to extract the [`Journal`].
#[derive(Debug)]
pub struct JournalRecorder {
    epoch: Instant,
    events: Mutex<Vec<TimedEvent>>,
}

impl Default for JournalRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl JournalRecorder {
    /// A new, empty journal whose clock starts now.
    pub fn new() -> Self {
        JournalRecorder {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Copy the events captured so far into a [`Journal`].
    pub fn snapshot(&self) -> Journal {
        let events = match self.events.lock() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        Journal { events }
    }

    /// Number of events captured so far.
    pub fn len(&self) -> usize {
        match self.events.lock() {
            Ok(guard) => guard.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// Whether no events have been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for JournalRecorder {
    fn record(&self, event: Event) {
        let t_ns = self.epoch.elapsed().as_nanos() as u64;
        if let Ok(mut guard) = self.events.lock() {
            guard.push(TimedEvent { t_ns, event });
        }
        // A poisoned lock means another recording thread panicked; the
        // journal is best-effort diagnostics, so drop the event rather
        // than propagate the panic.
    }
}

/// Errors produced when decoding a journal from JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The input was not valid JSON.
    Parse(JsonError),
    /// The input was JSON but not a journal (wrong shape or version).
    Schema(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Parse(e) => write!(f, "invalid JSON: {e}"),
            JournalError::Schema(msg) => write!(f, "invalid journal: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// Aggregate of one span name across a journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTotal {
    /// The span name.
    pub name: String,
    /// How many times the span was recorded.
    pub count: usize,
    /// Sum of recorded durations in nanoseconds. Summing durations is
    /// well-defined even when same-named spans overlap across threads.
    pub total_ns: u64,
}

/// An immutable, ordered log of [`TimedEvent`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Journal {
    /// Events in recording order (`t_ns` is nondecreasing for events
    /// recorded from a single thread).
    pub events: Vec<TimedEvent>,
}

impl Journal {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the journal holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The latest timestamp in the journal, i.e. the observed solve
    /// wall-clock in nanoseconds (0 for an empty journal).
    pub fn duration_ns(&self) -> u64 {
        self.events.iter().map(|e| e.t_ns).max().unwrap_or(0)
    }

    /// Sum of every counter, keyed by name.
    pub fn counter_totals(&self) -> BTreeMap<String, u64> {
        let mut totals = BTreeMap::new();
        for ev in &self.events {
            if let Event::Counter { name, delta } = &ev.event {
                *totals.entry(name.clone()).or_insert(0) += delta;
            }
        }
        totals
    }

    /// Per-name span aggregates, sorted by descending total time.
    pub fn span_totals(&self) -> Vec<SpanTotal> {
        let mut map: BTreeMap<&str, (usize, u64)> = BTreeMap::new();
        for ev in &self.events {
            if let Event::Span { name, dur_ns } = &ev.event {
                let entry = map.entry(name).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += dur_ns;
            }
        }
        let mut totals: Vec<SpanTotal> = map
            .into_iter()
            .map(|(name, (count, total_ns))| SpanTotal {
                name: name.to_string(),
                count,
                total_ns,
            })
            .collect();
        totals.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        totals
    }

    /// The binary-search steps, in recording order.
    pub fn binary_steps(&self) -> Vec<&BinaryStepEvent> {
        self.events
            .iter()
            .filter_map(|ev| match &ev.event {
                Event::BinaryStep(step) => Some(step),
                _ => None,
            })
            .collect()
    }

    /// Serialize to the versioned JSON journal format.
    pub fn to_json(&self) -> String {
        let doc = JsonValue::Obj(vec![
            ("version".to_string(), JsonValue::Num(FORMAT_VERSION as f64)),
            (
                "events".to_string(),
                JsonValue::Arr(self.events.iter().map(TimedEvent::to_value).collect()),
            ),
        ]);
        doc.to_json_string()
    }

    /// Parse a journal written by [`Journal::to_json`].
    pub fn from_json(src: &str) -> Result<Journal, JournalError> {
        let doc = json::parse(src).map_err(JournalError::Parse)?;
        let version = doc
            .get("version")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| JournalError::Schema("missing 'version'".to_string()))?;
        if version != FORMAT_VERSION {
            return Err(JournalError::Schema(format!(
                "unsupported version {version} (this reader understands {FORMAT_VERSION})"
            )));
        }
        let raw = doc
            .get("events")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| JournalError::Schema("missing 'events' array".to_string()))?;
        let events = raw
            .iter()
            .enumerate()
            .map(|(i, v)| {
                TimedEvent::from_value(v)
                    .map_err(|e| JournalError::Schema(format!("event {i}: {}", e.message)))
            })
            .collect::<Result<Vec<TimedEvent>, JournalError>>()?;
        Ok(Journal { events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{InnerSolveEvent, SolveSummaryEvent};
    use crate::recorder::SharedRecorder;
    use std::sync::Arc;

    fn sample_journal() -> Journal {
        let rec = Arc::new(JournalRecorder::new());
        let shared = SharedRecorder::new(rec.clone());
        shared.counter("lp.pivots", 10);
        shared.counter("lp.pivots", 5);
        shared.counter("bb.nodes", 3);
        drop(shared.span("cubis.inner"));
        drop(shared.span("cubis.inner"));
        drop(shared.span("cubis.solve"));
        shared.record(Event::BinaryStep(BinaryStepEvent {
            step: 1,
            c: -2.0,
            g_value: 0.3,
            feasible: true,
            lb: -2.0,
            ub: -1.0,
        }));
        shared.record(Event::InnerSolve(InnerSolveEvent {
            backend: "dp".to_string(),
            c: -2.0,
            k: None,
            milp_nodes: 0,
            lp_iterations: 0,
            evaluations: 100,
            dur_ns: 42,
        }));
        shared.record(Event::SolveSummary(SolveSummaryEvent {
            lb: -2.0,
            ub: -1.0,
            worst_case: -1.6,
            binary_steps: 1,
        }));
        rec.snapshot()
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let journal = sample_journal();
        let text = journal.to_json();
        let back = Journal::from_json(&text).unwrap();
        assert_eq!(back, journal);
    }

    #[test]
    fn counter_totals_sum_by_name() {
        let totals = sample_journal().counter_totals();
        assert_eq!(totals.get("lp.pivots"), Some(&15));
        assert_eq!(totals.get("bb.nodes"), Some(&3));
    }

    #[test]
    fn span_totals_group_and_count() {
        let totals = sample_journal().span_totals();
        let inner = totals.iter().find(|t| t.name == "cubis.inner").unwrap();
        assert_eq!(inner.count, 2);
        assert!(totals.iter().any(|t| t.name == "cubis.solve"));
    }

    #[test]
    fn binary_steps_are_extracted_in_order() {
        let journal = sample_journal();
        let steps = journal.binary_steps();
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].step, 1);
    }

    #[test]
    fn timestamps_are_nondecreasing() {
        let journal = sample_journal();
        let ts: Vec<u64> = journal.events.iter().map(|e| e.t_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
        assert_eq!(journal.duration_ns(), *ts.iter().max().unwrap());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let err = Journal::from_json(r#"{"version": 99, "events": []}"#).unwrap_err();
        assert!(matches!(err, JournalError::Schema(_)), "{err}");
    }

    #[test]
    fn empty_journal_round_trips() {
        let journal = Journal::default();
        let back = Journal::from_json(&journal.to_json()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.duration_ns(), 0);
    }
}
