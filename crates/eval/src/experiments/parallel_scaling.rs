//! **A3 — parallel scaling of the experiment sweep.**
//!
//! The harness parallelizes instance sweeps with rayon (the session's
//! hpc-parallel idiom); this experiment measures the speedup of the F1
//! cell grid as the thread count grows.

use super::{robust_value, Baseline};
use crate::fixtures::workload;
use crate::metrics::timed;
use crate::report::Report;
use cubis_core::SolveError;
use rayon::prelude::*;

/// Thread counts measured.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The work item batch timed at each thread count: CUBIS + midpoint on
/// a seed grid.
fn sweep(seeds: u64) -> Result<f64, SolveError> {
    let jobs: Vec<u64> = (0..seeds).collect();
    let cells: Vec<f64> = jobs
        .into_par_iter()
        .map(|seed| {
            let (game, model) = workload(seed, 12, 3.0, 0.5);
            let xc = Baseline::Cubis.solve(&game, &model, seed)?;
            let xm = Baseline::Midpoint.solve(&game, &model, seed)?;
            let xb = Baseline::Bayesian.solve(&game, &model, seed)?;
            Ok(robust_value(&game, &model, &xc)
                - robust_value(&game, &model, &xm)
                - robust_value(&game, &model, &xb))
        })
        .collect::<Result<_, SolveError>>()?;
    Ok(cells.iter().sum())
}

/// Run the experiment.
pub fn run(_profile: super::Profile) -> Result<Report, SolveError> {
    let seeds = 32;
    let mut r = Report::new(
        "A3 — sweep wall-time vs rayon threads",
        vec!["threads", "seconds", "speedup"],
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    r.note(format!(
        "Workload: CUBIS + midpoint + Bayesian on {seeds} seeded games \
         (T = 12, R = 3, δ = 0.5); each row uses a dedicated rayon pool. \
         This host reports {cores} available core(s) — on a single-core \
         host the expected shape is flat (the experiment then measures \
         rayon overhead, which should stay within a few percent)."
    ));
    let mut base = None;
    for &n in &THREADS {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            // cubis:allow(NUM02): pool construction fails only when the
            // OS cannot spawn threads — not a solver-recoverable state.
            .expect("rayon pool");
        let (sum, secs) = timed(|| pool.install(|| sweep(seeds)));
        sum?;
        let baseline = *base.get_or_insert(secs);
        r.row(vec![
            format!("{n}"),
            format!("{secs:.3}"),
            format!("{:.2}x", baseline / secs),
        ]);
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    #[test]
    fn sweep_is_deterministic_across_pool_sizes() {
        let pool1 = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let pool4 = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let a = pool1.install(|| super::sweep(4)).unwrap();
        let b = pool4.install(|| super::sweep(4)).unwrap();
        assert!(
            (a - b).abs() < 1e-9,
            "parallel sweep changed results: {a} vs {b}"
        );
    }
}
