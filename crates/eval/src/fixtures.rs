//! Canonical game/model fixtures shared by the experiments.

use cubis_behavior::{BoundConvention, Interval, SuqrUncertainty, UncertainSuqr};
use cubis_game::{GameGenerator, SecurityGame, TargetPayoffs};

/// The reconstructed Table-I worked example.
///
/// Attacker payoff intervals and the SUQR weight box come verbatim from
/// the paper; the defender payoffs `Rd = (5, 6)`, `Pd = (−6, −9)` were
/// recovered by grid search (`crates/core/tests/table1_reconstruction.rs`)
/// as the tuple reproducing the paper's reported strategies and
/// worst-case utilities.
pub fn table1_game() -> SecurityGame {
    SecurityGame::new(
        vec![
            TargetPayoffs::new(5.0, -6.0, 3.0, -5.0),
            TargetPayoffs::new(6.0, -9.0, 7.0, -7.0),
        ],
        1.0,
    )
}

/// The Table-I uncertainty model (paper's bound convention).
pub fn table1_model() -> UncertainSuqr {
    UncertainSuqr::new(
        SuqrUncertainty::paper_example(),
        vec![
            (Interval::new(1.0, 5.0), Interval::new(-7.0, -3.0)),
            (Interval::new(5.0, 9.0), Interval::new(-9.0, -5.0)),
        ],
        BoundConvention::CornerComponentwise,
    )
}

/// A standard random workload instance: a seeded general-sum game plus
/// an uncertainty model whose interval widths scale with `delta ∈ [0,1]`
/// (0 = point estimates, 1 = the paper-example box width and ±2.0
/// payoff intervals).
pub fn workload(seed: u64, t: usize, r: f64, delta: f64) -> (SecurityGame, UncertainSuqr) {
    workload_with(seed, t, r, delta, BoundConvention::CornerComponentwise)
}

/// [`workload`] with an explicit bound convention.
pub fn workload_with(
    seed: u64,
    t: usize,
    r: f64,
    delta: f64,
    convention: BoundConvention,
) -> (SecurityGame, UncertainSuqr) {
    assert!((0.0..=1.0).contains(&delta), "workload: delta {delta} outside [0,1]");
    let game = GameGenerator::new(seed).generate(t, r);
    let weights = SuqrUncertainty::paper_example().scale_width(delta);
    let payoff_halfwidth = 2.0 * delta;
    let model = UncertainSuqr::from_game(&game, weights, payoff_halfwidth, convention);
    (game, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubis_behavior::IntervalChoiceModel;

    #[test]
    fn table1_fixture_is_valid() {
        let game = table1_game();
        let model = table1_model();
        assert_eq!(game.num_targets(), 2);
        assert_eq!(model.num_targets(), 2);
        let (l, u) = model.bounds(&game, 0, 0.3);
        assert!((l.ln() - -4.1).abs() < 1e-9);
        assert!((u.ln() - 1.7).abs() < 1e-9);
    }

    #[test]
    fn workload_delta_zero_is_degenerate() {
        let (game, model) = workload(1, 5, 2.0, 0.0);
        let (l, u) = model.bounds(&game, 2, 0.4);
        assert!((l - u).abs() < 1e-9 * u);
    }

    #[test]
    fn workload_is_deterministic() {
        let (g1, m1) = workload(9, 6, 2.0, 0.5);
        let (g2, m2) = workload(9, 6, 2.0, 0.5);
        assert_eq!(g1, g2);
        assert_eq!(m1, m2);
    }
}
