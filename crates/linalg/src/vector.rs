//! Vector kernels shared by the factorizations and the simplex pricing
//! loops. All functions operate on plain `&[f64]` / `&mut [f64]` so the
//! callers can keep their own storage layout.

/// Dot product `xᵀy`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    // Manual 4-way unrolling gives the compiler independent accumulation
    // chains; for the sizes here this is consistently faster than a naive
    // fold and numerically no worse than sequential summation.
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += x[i] * y[i];
        acc[1] += x[i + 1] * y[i + 1];
        acc[2] += x[i + 2] * y[i + 2];
        acc[3] += x[i + 3] * y[i + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..x.len() {
        s += x[i] * y[i];
    }
    s
}

/// `y ← y + a·x`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    // cubis:allow(NUM01): exact-zero fast path; a near-zero `a` must
    // still accumulate (callers rely on exact axpy semantics).
    if a == 0.0 {
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * xi;
    }
}

/// `x ← a·x`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Euclidean norm `‖x‖₂`, computed with scaling to avoid overflow.
pub fn norm2(x: &[f64]) -> f64 {
    let m = inf_norm(x);
    // cubis:allow(NUM01): exact zero means every component is ±0 and
    // dividing by `m` below would produce NaN; tolerance is wrong here.
    if m == 0.0 || !m.is_finite() {
        return m;
    }
    let mut s = 0.0;
    for &xi in x {
        let r = xi / m;
        s += r * r;
    }
    m * s.sqrt()
}

/// Infinity norm `max_i |x_i|` (0 for the empty slice).
pub fn inf_norm(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..13).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = (0..13).map(|i| (13 - i) as f64).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-12);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpy_zero_alpha_is_noop() {
        let x = [f64::NAN; 2];
        let mut y = [1.0, 2.0];
        axpy(0.0, &x, &mut y);
        assert_eq!(y, [1.0, 2.0]);
    }

    #[test]
    fn scale_works() {
        let mut x = [1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
    }

    #[test]
    fn norm2_is_scale_safe() {
        let x = [3e200, 4e200];
        assert!((norm2(&x) - 5e200).abs() / 5e200 < 1e-12);
        assert_eq!(norm2(&[]), 0.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn inf_norm_takes_abs() {
        assert_eq!(inf_norm(&[-7.0, 3.0]), 7.0);
        assert_eq!(inf_norm(&[]), 0.0);
    }
}
