//! The transport-free request handler.
//!
//! [`App`] owns everything a solve needs — the LRU cache, the metrics
//! sheet, the trace recorder — and maps decoded requests to `(status,
//! body, cache marker)` without touching a socket. The HTTP server's
//! workers call it, and so does the `cubis-serve-cache-vs-fresh` fuzz
//! oracle, which is the point: the oracle exercises the *exact* code
//! path production requests take, not a lookalike.
//!
//! Solves run the DP inner backend ([`cubis_core::DpInner`]) at the
//! instance's own `pp`/`epsilon` knobs: it is deterministic (a fixed
//! grid, no tie-breaking ambiguity), which the bit-identical cache
//! contract depends on. The cache marker travels as the
//! `X-Cubis-Cache` *header*, never in the body, so hit and fresh
//! bodies can be compared byte-for-byte.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use cubis_check::CheckInstance;
use cubis_core::problem::RobustProblem;
use cubis_core::{Cubis, CubisSolution, Deadline, DpInner, SolveError};
use cubis_trace::{CounterSetRecorder, SharedRecorder};

use crate::cache::SolutionCache;
use crate::codec::{self, BatchRequest, SolveRequest};
use crate::metrics::ServerMetrics;

/// How a response relates to the solution cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache.
    Hit,
    /// Solved fresh (and inserted).
    Miss,
    /// The cache was not consulted (errors, batch envelopes).
    NotApplicable,
}

impl CacheOutcome {
    /// The `X-Cubis-Cache` header value.
    pub fn header_value(&self) -> &'static str {
        match self {
            Self::Hit => "hit",
            Self::Miss => "miss",
            Self::NotApplicable => "none",
        }
    }
}

/// A transport-free response.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiResponse {
    /// HTTP status code.
    pub status: u16,
    /// JSON body text.
    pub body: String,
    /// Cache disposition (drives the `X-Cubis-Cache` header).
    pub cache: CacheOutcome,
}

impl ApiResponse {
    fn ok(body: String, cache: CacheOutcome) -> Self {
        Self { status: 200, body, cache }
    }

    fn error(status: u16, code: &str, detail: &str) -> Self {
        Self {
            status,
            body: codec::error_body(code, detail, None),
            cache: CacheOutcome::NotApplicable,
        }
    }
}

/// The solve application: cache + metrics + solver configuration.
pub struct App {
    cache: SolutionCache,
    metrics: Arc<ServerMetrics>,
    trace: Arc<CounterSetRecorder>,
}

impl App {
    /// Build an app with a cache of `shards × per_shard_capacity`
    /// entries and fresh metrics/trace sheets.
    pub fn new(shards: usize, per_shard_capacity: usize) -> Self {
        Self {
            cache: SolutionCache::new(shards, per_shard_capacity),
            metrics: Arc::new(ServerMetrics::default()),
            trace: Arc::new(CounterSetRecorder::new()),
        }
    }

    /// The shared metrics sheet (the server increments transport-level
    /// counters on it directly).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The solver-side trace recorder (rendered into `/metrics`).
    pub fn trace(&self) -> Arc<CounterSetRecorder> {
        Arc::clone(&self.trace)
    }

    /// Render the `/metrics` text body.
    pub fn render_metrics(&self) -> String {
        self.metrics.render(&self.trace)
    }

    /// Entries currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    fn deadline_from_ms(deadline_ms: Option<u64>) -> Deadline {
        match deadline_ms {
            Some(ms) => Deadline::after(Duration::from_millis(ms)),
            None => Deadline::none(),
        }
    }

    /// Run one fresh solve (no cache involvement) and encode the body.
    /// Public so the differential oracle can compare a from-scratch
    /// solve against the cached handler path.
    pub fn solve_fresh(
        &self,
        inst: &CheckInstance,
        deadline: Deadline,
    ) -> Result<String, SolveError> {
        let game = inst.game();
        let model = inst.model(&game);
        let problem = RobustProblem::new(&game, &model);
        let recorder = SharedRecorder::new(
            Arc::clone(&self.trace) as Arc<dyn cubis_trace::Recorder>
        );
        let solution: CubisSolution = Cubis::new(DpInner::new(inst.pp))
            .with_epsilon(inst.epsilon)
            .with_deadline(deadline)
            .with_recorder(recorder)
            .solve(&problem)?;
        Ok(codec::solution_to_json(inst.content_hash(), &solution).to_json_string())
    }

    fn solve_one(&self, inst: &CheckInstance, deadline_ms: Option<u64>) -> ApiResponse {
        if !inst.is_valid() {
            self.metrics.client_errors.fetch_add(1, Ordering::SeqCst);
            return ApiResponse::error(422, "invalid_instance", "instance fails validity checks");
        }
        let hash = inst.content_hash();
        let content = cubis_check::canon::content_bytes(inst);
        if let Some(body) = self.cache.get(hash, &content) {
            self.metrics.cache_hits.fetch_add(1, Ordering::SeqCst);
            return ApiResponse::ok(body, CacheOutcome::Hit);
        }
        self.metrics.cache_misses.fetch_add(1, Ordering::SeqCst);
        match self.solve_fresh(inst, Self::deadline_from_ms(deadline_ms)) {
            Ok(body) => {
                self.cache.insert(hash, &content, &body);
                ApiResponse::ok(body, CacheOutcome::Miss)
            }
            Err(SolveError::DeadlineExceeded { lb, ub, binary_steps }) => {
                self.metrics.deadline_exceeded.fetch_add(1, Ordering::SeqCst);
                ApiResponse {
                    status: 504,
                    body: codec::error_body(
                        "deadline_exceeded",
                        "solve deadline expired; incumbent bounds attached",
                        Some((lb, ub, binary_steps)),
                    ),
                    cache: CacheOutcome::NotApplicable,
                }
            }
            Err(e) => {
                self.metrics.server_errors.fetch_add(1, Ordering::SeqCst);
                ApiResponse::error(500, "solve_failed", &e.to_string())
            }
        }
    }

    /// Handle a decoded `POST /v1/solve`.
    pub fn handle_solve(&self, req: &SolveRequest) -> ApiResponse {
        self.solve_one(&req.instance, req.deadline_ms)
    }

    /// Handle a raw `POST /v1/solve` body.
    pub fn handle_solve_body(&self, body: &str) -> ApiResponse {
        match SolveRequest::from_json_str(body) {
            Ok(req) => self.handle_solve(&req),
            Err(detail) => {
                self.metrics.client_errors.fetch_add(1, Ordering::SeqCst);
                ApiResponse::error(400, "bad_request", &detail)
            }
        }
    }

    /// Handle a decoded `POST /v1/solve_batch`.
    ///
    /// Cache hits are filled in directly; the misses are fanned into
    /// one [`Cubis::solve_batch`] call, so a batch of fresh instances
    /// pays one rayon fan-out rather than `n` sequential solves. Every
    /// item's result is independently identical to what `/v1/solve`
    /// would have returned for it.
    pub fn handle_batch(&self, req: &BatchRequest) -> ApiResponse {
        if req.instances.is_empty() {
            self.metrics.client_errors.fetch_add(1, Ordering::SeqCst);
            return ApiResponse::error(422, "empty_batch", "batch has no instances");
        }
        if let Some(bad) = req.instances.iter().find(|i| !i.is_valid()) {
            self.metrics.client_errors.fetch_add(1, Ordering::SeqCst);
            return ApiResponse::error(
                422,
                "invalid_instance",
                &format!("instance with seed {:#x} fails validity checks", bad.seed),
            );
        }
        let keys: Vec<(u64, String)> = req
            .instances
            .iter()
            .map(|i| (i.content_hash(), cubis_check::canon::content_bytes(i)))
            .collect();
        let mut slots: Vec<Option<(String, CacheOutcome)>> = keys
            .iter()
            .map(|(hash, content)| {
                self.cache.get(*hash, content).map(|body| (body, CacheOutcome::Hit))
            })
            .collect();

        // Fan the misses into one solve_batch call. Grouping by `pp`
        // keeps one solver (one inner backend resolution) per group.
        let miss_idx: Vec<usize> =
            (0..slots.len()).filter(|&i| slots[i].is_none()).collect();
        self.metrics.cache_hits.fetch_add((keys.len() - miss_idx.len()) as u64, Ordering::SeqCst);
        self.metrics.cache_misses.fetch_add(miss_idx.len() as u64, Ordering::SeqCst);
        let deadline = Self::deadline_from_ms(req.deadline_ms);
        let recorder = SharedRecorder::new(
            Arc::clone(&self.trace) as Arc<dyn cubis_trace::Recorder>
        );
        let mut by_knobs: std::collections::BTreeMap<(usize, u64), Vec<usize>> =
            std::collections::BTreeMap::new();
        for &i in &miss_idx {
            let inst = &req.instances[i];
            by_knobs.entry((inst.pp, inst.epsilon.to_bits())).or_default().push(i);
        }
        for ((pp, eps_bits), idxs) in by_knobs {
            let built: Vec<_> = idxs
                .iter()
                .map(|&i| {
                    let game = req.instances[i].game();
                    let model = req.instances[i].model(&game);
                    (game, model)
                })
                .collect();
            let problems: Vec<_> =
                built.iter().map(|(game, model)| RobustProblem::new(game, model)).collect();
            let solver = Cubis::new(DpInner::new(pp))
                .with_epsilon(f64::from_bits(eps_bits))
                .with_deadline(deadline)
                .with_recorder(recorder.clone());
            for (&i, result) in idxs.iter().zip(solver.solve_batch(&problems)) {
                let slot = match result {
                    Ok(sol) => {
                        let (hash, content) = &keys[i];
                        let body = codec::solution_to_json(*hash, &sol).to_json_string();
                        self.cache.insert(*hash, content, &body);
                        (body, CacheOutcome::Miss)
                    }
                    Err(SolveError::DeadlineExceeded { lb, ub, binary_steps }) => {
                        self.metrics.deadline_exceeded.fetch_add(1, Ordering::SeqCst);
                        let body = codec::error_body(
                            "deadline_exceeded",
                            "solve deadline expired; incumbent bounds attached",
                            Some((lb, ub, binary_steps)),
                        );
                        (body, CacheOutcome::NotApplicable)
                    }
                    Err(e) => {
                        self.metrics.server_errors.fetch_add(1, Ordering::SeqCst);
                        let body = codec::error_body("solve_failed", &e.to_string(), None);
                        (body, CacheOutcome::NotApplicable)
                    }
                };
                slots[i] = Some(slot);
            }
        }

        let mut results = Vec::with_capacity(slots.len());
        for slot in slots {
            // Every index was either a hit or assigned by the loop
            // above; a `None` here would be a logic error, reported as
            // a 500 rather than a panic (NUM02: no unwraps in servers).
            match slot {
                Some((body, outcome)) => results.push((body, outcome)),
                None => {
                    self.metrics.server_errors.fetch_add(1, Ordering::SeqCst);
                    return ApiResponse::error(500, "internal", "batch slot left unfilled");
                }
            }
        }
        let items: Vec<cubis_trace::json::JsonValue> = results
            .iter()
            .map(|(body, outcome)| {
                // Bodies are our own codec output; parse failure here
                // would mean the encoder is broken.
                let value = cubis_trace::json::parse(body).unwrap_or_else(|_| {
                    cubis_trace::json::JsonValue::Str("unencodable body".to_string())
                });
                cubis_trace::json::JsonValue::Obj(vec![
                    (
                        "cache".to_string(),
                        cubis_trace::json::JsonValue::Str(outcome.header_value().to_string()),
                    ),
                    ("result".to_string(), value),
                ])
            })
            .collect();
        let envelope = cubis_trace::json::JsonValue::Obj(vec![
            ("version".to_string(), cubis_trace::json::JsonValue::Num(codec::WIRE_VERSION)),
            (
                "kind".to_string(),
                cubis_trace::json::JsonValue::Str(codec::KIND_BATCH.to_string()),
            ),
            ("results".to_string(), cubis_trace::json::JsonValue::Arr(items)),
        ]);
        ApiResponse::ok(envelope.to_json_string(), CacheOutcome::NotApplicable)
    }

    /// Handle a raw `POST /v1/solve_batch` body.
    pub fn handle_batch_body(&self, body: &str) -> ApiResponse {
        match BatchRequest::from_json_str(body) {
            Ok(req) => self.handle_batch(&req),
            Err(detail) => {
                self.metrics.client_errors.fetch_add(1, Ordering::SeqCst);
                ApiResponse::error(400, "bad_request", &detail)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_instance(seed: u64) -> CheckInstance {
        // Clamp the generated knobs so app-level tests stay fast.
        let mut inst = CheckInstance::generate(seed);
        inst.pp = inst.pp.min(4);
        inst
    }

    #[test]
    fn second_identical_solve_is_a_bit_identical_hit() {
        let app = App::new(4, 16);
        let req = SolveRequest { instance: small_instance(42), deadline_ms: None };
        let first = app.handle_solve(&req);
        assert_eq!(first.status, 200);
        assert_eq!(first.cache, CacheOutcome::Miss);
        let second = app.handle_solve(&req);
        assert_eq!(second.status, 200);
        assert_eq!(second.cache, CacheOutcome::Hit);
        assert_eq!(first.body, second.body, "cached body must be bit-identical");
        assert_eq!(app.cache_len(), 1);
    }

    #[test]
    fn invalid_instance_is_422_and_bad_json_is_400() {
        let app = App::new(1, 4);
        let mut inst = small_instance(1);
        inst.resources = 99.0; // > num_targets → invalid
        let resp = app.handle_solve(&SolveRequest { instance: inst, deadline_ms: None });
        assert_eq!(resp.status, 422);
        assert_eq!(codec::error_code(&resp.body).as_deref(), Some("invalid_instance"));
        let resp = app.handle_solve_body("not json at all");
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn zero_deadline_is_504_with_incumbent() {
        let app = App::new(1, 4);
        let req = SolveRequest { instance: small_instance(5), deadline_ms: Some(0) };
        let resp = app.handle_solve(&req);
        assert_eq!(resp.status, 504);
        assert_eq!(codec::error_code(&resp.body).as_deref(), Some("deadline_exceeded"));
        let v = cubis_trace::json::parse(&resp.body).unwrap();
        assert!(v.get("incumbent").is_some(), "504 body must carry incumbent bounds");
        // A 504 must not poison the cache.
        assert_eq!(app.cache_len(), 0);
    }

    #[test]
    fn batch_mixes_hits_and_misses_and_matches_single_solves() {
        let app = App::new(4, 16);
        let a = small_instance(10);
        let b = small_instance(11);
        // Prime the cache with `a`.
        let single_a =
            app.handle_solve(&SolveRequest { instance: a.clone(), deadline_ms: None });
        let resp = app.handle_batch(&BatchRequest {
            instances: vec![a.clone(), b.clone(), a.clone()],
            deadline_ms: None,
        });
        assert_eq!(resp.status, 200);
        let v = cubis_trace::json::parse(&resp.body).unwrap();
        let results = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].get("cache").unwrap().as_str(), Some("hit"));
        assert_eq!(results[1].get("cache").unwrap().as_str(), Some("miss"));
        assert_eq!(results[2].get("cache").unwrap().as_str(), Some("hit"));
        // The batch item for `a` is the same solution the single solve
        // produced.
        let item_a = results[0].get("result").unwrap().to_json_string();
        assert_eq!(item_a, single_a.body);
        // And `b` is now cached for singles.
        let single_b = app.handle_solve(&SolveRequest { instance: b, deadline_ms: None });
        assert_eq!(single_b.cache, CacheOutcome::Hit);
    }

    #[test]
    fn empty_batch_is_422() {
        let app = App::new(1, 4);
        let resp = app.handle_batch(&BatchRequest { instances: vec![], deadline_ms: None });
        assert_eq!(resp.status, 422);
    }

    #[test]
    fn metrics_reflect_traffic() {
        let app = App::new(1, 4);
        let req = SolveRequest { instance: small_instance(20), deadline_ms: None };
        app.handle_solve(&req);
        app.handle_solve(&req);
        let text = app.render_metrics();
        assert!(text.contains("cubis_serve_cache_hits 1"), "metrics:\n{text}");
        assert!(text.contains("cubis_serve_cache_misses 1"), "metrics:\n{text}");
        // Solver-side trace counters flowed through the recorder.
        assert!(text.contains("cubis_trace_"), "metrics:\n{text}");
    }
}
