//! Brace-matched scope tree over the lexer's token stream.
//!
//! The v1 analyzer was purely lexical: every rule saw a flat token
//! slice plus a `#[cfg(test)]` bitmask. The v2 scope-aware rules
//! (DET02, CONC02, NUM04, PANIC01) need to reason about *extents* —
//! "this guard binding and that blocking call live in the same block",
//! "this `HashMap` is iterated inside the same function that serializes
//! output" — and finding fingerprints need a line-number-independent
//! location label. Both come from this pass.
//!
//! The tree is deliberately shallow in ambition: it tracks the item
//! scopes that matter (`mod`, `fn`, `impl`, `trait`) plus `#[cfg(test)]`
//! regions, brace-matched on the token stream the lexer already
//! produced. Closures, blocks, and expressions do **not** open scopes —
//! a token inside a closure belongs to the enclosing `fn`, which is
//! exactly what the guard/iteration rules want.
//!
//! Tokens that precede any item (crate attributes, `use` lines) belong
//! to the root [`ScopeKind::File`] scope.

use crate::lexer::Token;

/// What kind of item opened a scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// The implicit file-level root scope.
    File,
    /// A `mod name { … }` block (inline modules only; `mod name;` has
    /// no body here and opens nothing).
    Module,
    /// A `fn name(…) { … }` body, including methods and default trait
    /// methods.
    Fn,
    /// An `impl … { … }` block.
    Impl,
    /// A `trait Name { … }` block.
    Trait,
}

impl ScopeKind {
    fn label(self) -> &'static str {
        match self {
            ScopeKind::File => "file",
            ScopeKind::Module => "mod",
            ScopeKind::Fn => "fn",
            ScopeKind::Impl => "impl",
            ScopeKind::Trait => "trait",
        }
    }
}

/// One node of the scope tree.
#[derive(Debug, Clone)]
pub struct Scope {
    /// Item kind that opened this scope.
    pub kind: ScopeKind,
    /// Item name (`solve`, `tests`, `Display for Finding`, …). Empty
    /// for the root scope.
    pub name: String,
    /// Index of the parent scope (the root points at itself).
    pub parent: usize,
    /// Token index of the item keyword (`fn`/`mod`/`impl`/`trait`)
    /// that introduced this scope — the start of the signature, so
    /// scope-aware rules can see parameters and return types. Equals
    /// `tok_start` (0) for the root.
    pub sig_start: usize,
    /// First token index covered (the opening `{` for item scopes).
    pub tok_start: usize,
    /// One past the last covered token index (the closing `}`).
    pub tok_end: usize,
    /// True if this scope or an ancestor sits under `#[cfg(test)]` /
    /// `#[test]` / `#[bench]`.
    pub is_test: bool,
}

/// The scope tree plus a per-token innermost-scope map.
#[derive(Debug)]
pub struct ScopeTree {
    scopes: Vec<Scope>,
    /// `scope_of[i]` = index of the innermost scope containing token `i`.
    scope_of: Vec<u32>,
}

impl ScopeTree {
    /// Build the tree for one file's token stream.
    pub fn build(toks: &[Token]) -> ScopeTree {
        Builder::new(toks).run()
    }

    /// All scopes, root first, in source order of their opening brace.
    pub fn scopes(&self) -> &[Scope] {
        &self.scopes
    }

    /// Index of the innermost scope containing token `i`.
    pub fn innermost(&self, tok: usize) -> usize {
        self.scope_of.get(tok).map(|&s| s as usize).unwrap_or(0)
    }

    /// Innermost enclosing `fn` scope of token `i`, if any.
    pub fn enclosing_fn(&self, tok: usize) -> Option<usize> {
        let mut id = self.innermost(tok);
        loop {
            if self.scopes[id].kind == ScopeKind::Fn {
                return Some(id);
            }
            if id == 0 {
                return None;
            }
            id = self.scopes[id].parent;
        }
    }

    /// Human/fingerprint path for a scope: `mod tests > fn solve_one`.
    /// The root scope renders as `file`.
    pub fn path(&self, id: usize) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut cur = id;
        loop {
            let s = &self.scopes[cur];
            if s.kind == ScopeKind::File {
                break;
            }
            if s.name.is_empty() {
                parts.push(s.kind.label().to_string());
            } else {
                parts.push(format!("{} {}", s.kind.label(), s.name));
            }
            cur = s.parent;
        }
        if parts.is_empty() {
            return "file".to_string();
        }
        parts.reverse();
        parts.join(" > ")
    }

    /// Path of the innermost scope containing token `i`.
    pub fn path_at(&self, tok: usize) -> String {
        self.path(self.innermost(tok))
    }

    /// Iterate over all `fn` scopes as `(scope_id, scope)`.
    pub fn fns(&self) -> impl Iterator<Item = (usize, &Scope)> {
        self.scopes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == ScopeKind::Fn)
    }
}

struct Builder<'a> {
    toks: &'a [Token],
    scopes: Vec<Scope>,
    scope_of: Vec<u32>,
    /// Stack of `(scope_id, brace_depth_at_open)`.
    stack: Vec<(usize, usize)>,
    depth: usize,
}

impl<'a> Builder<'a> {
    fn new(toks: &'a [Token]) -> Self {
        Builder {
            toks,
            scopes: vec![Scope {
                kind: ScopeKind::File,
                name: String::new(),
                parent: 0,
                sig_start: 0,
                tok_start: 0,
                tok_end: toks.len(),
                is_test: false,
            }],
            scope_of: Vec::with_capacity(toks.len()),
            stack: vec![(0, 0)],
            depth: 0,
        }
    }

    fn current(&self) -> usize {
        // The root entry never pops, so the stack is never empty.
        self.stack.last().map_or(0, |&(id, _)| id)
    }

    fn run(mut self) -> ScopeTree {
        // Pending item header `(kind, name, keyword_index)`: set when we
        // see `mod`/`fn`/`impl`/`trait`, consumed at the `{` that opens
        // its body (or cancelled by `;`).
        let mut pending: Option<(ScopeKind, String, usize)> = None;
        // Bracket/paren depth inside a pending header, so const-generic
        // braces like `[u8; { N }]` don't get mistaken for the body.
        let mut pending_nest: usize = 0;
        // True when a test-ish attribute (`#[cfg(test)]`, `#[test]`,
        // `#[bench]`) precedes the next item.
        let mut pending_test = false;

        let mut i = 0usize;
        while i < self.toks.len() {
            self.scope_of.push(self.current() as u32);
            let t = &self.toks[i];
            match t.kind {
                crate::lexer::TokKind::Punct => match t.text.as_str() {
                    "{" => {
                        self.depth += 1;
                        if let Some((kind, name, sig_start)) = pending.take() {
                            if pending_nest == 0 {
                                let parent = self.current();
                                let is_test = pending_test || self.scopes[parent].is_test;
                                pending_test = false;
                                let id = self.scopes.len();
                                self.scopes.push(Scope {
                                    kind,
                                    name,
                                    parent,
                                    sig_start,
                                    tok_start: i,
                                    tok_end: self.toks.len(),
                                    is_test,
                                });
                                // The `{` itself belongs to the new scope.
                                if let Some(slot) = self.scope_of.last_mut() {
                                    *slot = id as u32;
                                }
                                self.stack.push((id, self.depth));
                            } else {
                                // `{` nested in the header (const generic):
                                // keep waiting for the body brace.
                                pending = Some((kind, name, sig_start));
                                pending_nest += 1;
                            }
                        }
                    }
                    "}" => {
                        self.depth = self.depth.saturating_sub(1);
                        if pending.is_some() && pending_nest > 0 {
                            pending_nest -= 1;
                        }
                        if let Some(&(id, open_depth)) = self.stack.get(self.stack.len() - 1) {
                            if self.stack.len() > 1 && self.depth + 1 == open_depth {
                                self.scopes[id].tok_end = i + 1;
                                self.stack.pop();
                            }
                        }
                    }
                    "(" | "[" => {
                        if pending.is_some() {
                            pending_nest += 1;
                        }
                    }
                    ")" | "]" => {
                        if pending.is_some() {
                            pending_nest = pending_nest.saturating_sub(1);
                        }
                    }
                    ";" => {
                        if pending_nest == 0 {
                            // `mod name;`, trait method decl, etc.: no body.
                            pending = None;
                            pending_test = false;
                        }
                    }
                    "#" => {
                        if let Some(consumed) = self.attribute_is_testish(i) {
                            if consumed.0 {
                                pending_test = true;
                            }
                            // Map attribute-body tokens to the current
                            // scope and skip past them.
                            for _ in (i + 1)..consumed.1 {
                                self.scope_of.push(self.current() as u32);
                            }
                            i = consumed.1;
                            continue;
                        }
                    }
                    _ => {}
                },
                crate::lexer::TokKind::Ident if pending.is_none() => match t.text.as_str() {
                    "mod" | "fn" | "trait" => {
                        // The name must immediately follow the keyword;
                        // this rejects fn-*pointer types* like
                        // `fn(&[String]) -> T`, which open no scope.
                        if let Some(name) = self.next_ident_adjacent(i + 1) {
                            let kind = match t.text.as_str() {
                                "mod" => ScopeKind::Module,
                                "fn" => ScopeKind::Fn,
                                _ => ScopeKind::Trait,
                            };
                            pending = Some((kind, name, i));
                            pending_nest = 0;
                        }
                    }
                    "impl" => {
                        pending = Some((ScopeKind::Impl, self.impl_name(i + 1), i));
                        pending_nest = 0;
                    }
                    _ => {}
                },
                _ => {}
            }
            i += 1;
        }
        ScopeTree {
            scopes: self.scopes,
            scope_of: self.scope_of,
        }
    }

    /// If token `i` starts an attribute (`#[…]` or `#![…]`), return
    /// `(is_testish, index_one_past_closing_bracket)`.
    fn attribute_is_testish(&self, i: usize) -> Option<(bool, usize)> {
        let mut j = i + 1;
        if self.toks.get(j).is_some_and(|t| t.is_punct("!")) {
            j += 1;
        }
        if !self.toks.get(j).is_some_and(|t| t.is_punct("[")) {
            return None;
        }
        let mut depth = 0usize;
        let mut testish = false;
        let mut negated = false;
        while let Some(t) = self.toks.get(j) {
            match t.kind {
                crate::lexer::TokKind::Punct if t.text == "[" => depth += 1,
                crate::lexer::TokKind::Punct if t.text == "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((testish && !negated, j + 1));
                    }
                }
                crate::lexer::TokKind::Ident if t.text == "test" || t.text == "bench" => {
                    testish = true;
                }
                crate::lexer::TokKind::Ident if t.text == "not" => negated = true,
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// The token at `at`, if it is an `Ident` (the item name directly
    /// after `mod`/`fn`/`trait`).
    fn next_ident_adjacent(&self, at: usize) -> Option<String> {
        self.toks
            .get(at)
            .filter(|t| t.kind == crate::lexer::TokKind::Ident)
            .map(|t| t.text.clone())
    }

    /// Short display name for an `impl` header: the idents between
    /// `impl` and the body brace / `where` clause, e.g.
    /// `Display for Finding`, capped at four idents.
    fn impl_name(&self, from: usize) -> String {
        let mut parts: Vec<&str> = Vec::new();
        for t in &self.toks[from..] {
            match t.kind {
                crate::lexer::TokKind::Punct if t.text == "{" || t.text == ";" => break,
                crate::lexer::TokKind::Ident => {
                    if t.text == "where" {
                        break;
                    }
                    // Skip generic-parameter noise like lifetimes and
                    // `dyn`/`mut`; keep type path segments and `for`.
                    if t.text != "dyn" && t.text != "mut" && t.text != "const" {
                        parts.push(&t.text);
                    }
                    if parts.len() == 4 {
                        break;
                    }
                }
                _ => {}
            }
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> ScopeTree {
        ScopeTree::build(&lex(src).tokens)
    }

    fn find<'a>(t: &'a ScopeTree, kind: ScopeKind, name: &str) -> &'a Scope {
        t.scopes()
            .iter()
            .find(|s| s.kind == kind && s.name == name)
            .unwrap_or_else(|| panic!("no {kind:?} named {name}"))
    }

    #[test]
    fn nests_mod_fn_impl() {
        let src = r#"
            mod inner {
                struct S;
                impl S { fn method(&self) -> u32 { 7 } }
                fn free() {}
            }
            fn top() {}
        "#;
        let t = tree(src);
        let inner = find(&t, ScopeKind::Module, "inner");
        let method = find(&t, ScopeKind::Fn, "method");
        let imp = find(&t, ScopeKind::Impl, "S");
        assert_eq!(t.scopes()[method.parent].name, "S");
        assert_eq!(t.scopes()[imp.parent].name, "inner");
        assert!(method.tok_start > inner.tok_start && method.tok_end < inner.tok_end);
        let free = find(&t, ScopeKind::Fn, "free");
        assert_eq!(t.scopes()[free.parent].name, "inner");
        let top = find(&t, ScopeKind::Fn, "top");
        assert_eq!(top.parent, 0);
    }

    #[test]
    fn paths_and_innermost() {
        let src = "mod m { impl Display for F { fn fmt(&self) { nested_marker(); } } }";
        let t = tree(src);
        let toks = lex(src).tokens;
        let marker = toks
            .iter()
            .position(|t| t.is_ident("nested_marker"))
            .unwrap();
        assert_eq!(t.path_at(marker), "mod m > impl Display for F > fn fmt");
        assert_eq!(t.path(0), "file");
        let fm = t.enclosing_fn(marker).unwrap();
        assert_eq!(t.scopes()[fm].name, "fmt");
    }

    #[test]
    fn cfg_test_marks_subtree() {
        let src = r#"
            fn lib_code() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t1() { assert!(true); }
            }
        "#;
        let t = tree(src);
        assert!(!find(&t, ScopeKind::Fn, "lib_code").is_test);
        assert!(find(&t, ScopeKind::Module, "tests").is_test);
        assert!(find(&t, ScopeKind::Fn, "t1").is_test);
    }

    #[test]
    fn cfg_not_test_is_not_testish() {
        let t = tree("#[cfg(not(test))] mod real { fn f() {} }");
        assert!(!find(&t, ScopeKind::Module, "real").is_test);
    }

    #[test]
    fn mod_decl_without_body_opens_nothing() {
        let t = tree("mod other; fn f() {}");
        assert!(t.scopes().iter().all(|s| s.kind != ScopeKind::Module));
        assert_eq!(find(&t, ScopeKind::Fn, "f").parent, 0);
    }

    #[test]
    fn trait_decl_methods_and_default_bodies() {
        let src = "trait T { fn decl(&self); fn dflt(&self) { body_marker(); } }";
        let t = tree(src);
        // `decl` has no body: cancelled at `;`, no Fn scope for it.
        assert!(t
            .scopes()
            .iter()
            .all(|s| !(s.kind == ScopeKind::Fn && s.name == "decl")));
        let dflt = find(&t, ScopeKind::Fn, "dflt");
        assert_eq!(t.scopes()[dflt.parent].kind, ScopeKind::Trait);
    }

    #[test]
    fn signature_braces_do_not_open_the_body_early() {
        // Const-generic braces inside the parameter list must not be
        // taken for the fn body.
        let src = "fn g(x: [u8; { 2 + 2 }]) { real_body(); }";
        let t = tree(src);
        let toks = lex(src).tokens;
        let marker = toks.iter().position(|t| t.is_ident("real_body")).unwrap();
        assert_eq!(t.path_at(marker), "fn g");
        let g = find(&t, ScopeKind::Fn, "g");
        // Body opens at the second `{`, after the bracketed type.
        assert!(toks[g.tok_start].is_punct("{"));
        assert!(g.tok_start > marker.saturating_sub(marker)); // non-degenerate
        assert_eq!(t.innermost(marker), {
            let (id, _) = t.fns().next().unwrap();
            id
        });
    }

    #[test]
    fn closures_do_not_open_scopes() {
        let src = "fn h() { let c = |x: u32| { closure_marker(x) }; c(1); }";
        let t = tree(src);
        let toks = lex(src).tokens;
        let marker = toks
            .iter()
            .position(|t| t.is_ident("closure_marker"))
            .unwrap();
        assert_eq!(t.path_at(marker), "fn h");
    }

    #[test]
    fn fn_pointer_types_open_no_scope() {
        // The `fn(&[String]) -> u32` type must not become a pending item
        // that swallows the next `{`.
        let src =
            "const H: &[(&str, fn(&[String]) -> u32)] = &[(\"a\", b)]; fn real() { marker(); }";
        let t = tree(src);
        let fns: Vec<_> = t.fns().collect();
        assert_eq!(fns.len(), 1, "{:?}", t.scopes());
        assert_eq!(fns[0].1.name, "real");
        let toks = lex(src).tokens;
        let marker = toks.iter().position(|t| t.is_ident("marker")).unwrap();
        assert_eq!(t.path_at(marker), "fn real");
    }

    #[test]
    fn attribute_with_test_in_name_only_is_not_testish() {
        // `#[cfg(feature = "x")]` on an item must not poison it, and an
        // unrelated attribute between `#[cfg(test)]` and the item must
        // not lose the marker.
        let src = r#"
            #[cfg(test)]
            #[allow(dead_code)]
            mod tests { fn t() {} }
        "#;
        let t = tree(src);
        assert!(find(&t, ScopeKind::Module, "tests").is_test);
    }
}
