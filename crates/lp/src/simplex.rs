//! Bounded-variable two-phase primal simplex.
//!
//! The implementation keeps a dense full tableau `T = B⁻¹·A` (row-major,
//! so pivots stream through contiguous memory) and tracks nonbasic
//! variables at their lower or upper bound, which is the standard way to
//! handle variable bounds without inflating the constraint matrix. Two
//! phases: phase 1 minimizes the sum of artificial variables to find a
//! basic feasible solution; phase 2 optimizes the real objective.
//!
//! Anti-cycling: Dantzig (most-negative reduced cost) pricing by default,
//! switching to Bland's rule after a run of degenerate steps, and back
//! once progress resumes.

use crate::model::{LpProblem, Relation, Sense};
use crate::solution::{LpSolution, LpStatus};
use cubis_linalg::{Lu, Matrix};

/// Errors that prevent a meaningful solve (distinct from the ordinary
/// [`LpStatus`] outcomes, which are data, not errors).
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The final solution violated constraints beyond tolerance —
    /// indicates numerical breakdown on this instance.
    Numerical {
        /// Largest violation observed.
        violation: f64,
    },
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Numerical { violation } => {
                write!(f, "numerical breakdown: final violation {violation:.3e}")
            }
        }
    }
}

impl std::error::Error for LpError {}

/// Tunable tolerances and limits for [`solve`].
#[derive(Debug, Clone)]
pub struct LpOptions {
    /// Reduced-cost threshold for optimality.
    pub opt_tol: f64,
    /// Pivot magnitude threshold.
    pub piv_tol: f64,
    /// Phase-1 objective threshold for declaring feasibility.
    pub feas_tol: f64,
    /// Hard cap on total simplex iterations (both phases). `None` picks
    /// `50·(rows + cols) + 1000`.
    pub max_iterations: Option<usize>,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub bland_after: usize,
    /// Observability sink. Disabled by default; when enabled, [`solve`]
    /// reports `lp.solves`, `lp.pivots` and `lp.refactorizations`
    /// counters plus an `lp.solve` span per call (aggregates only — the
    /// per-pivot hot loop is never instrumented).
    pub recorder: cubis_trace::SharedRecorder,
}

impl Default for LpOptions {
    fn default() -> Self {
        Self {
            opt_tol: 1e-9,
            piv_tol: 1e-9,
            feas_tol: 1e-7,
            max_iterations: None,
            bland_after: 64,
            recorder: cubis_trace::SharedRecorder::null(),
        }
    }
}

/// Where a nonbasic variable currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NbStatus {
    AtLower,
    AtUpper,
    /// Free variable parked at 0.
    Free,
    /// In the basis (value tracked in `xb`).
    Basic,
}

struct Tableau {
    /// Dense `m × ncols` tableau, `B⁻¹·A`.
    t: Matrix,
    /// Right-hand side values of the basic variables, per row.
    xb: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Status of every column.
    status: Vec<NbStatus>,
    /// Current value of every nonbasic column (bound it sits at).
    xval: Vec<f64>,
    /// Column bounds.
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Phase-dependent cost vector (internal minimization sense).
    cost: Vec<f64>,
    /// Number of structural (user) variables.
    n_struct: usize,
    /// First artificial column index (artificials occupy the tail).
    art_start: usize,
    /// Row scaling applied at setup (±1), needed to recover duals.
    row_scale: Vec<f64>,
    /// Per-row slack column (if the row had one) and its coefficient in
    /// the *original* (unscaled) row.
    row_slack: Vec<Option<(usize, f64)>>,
    /// Pristine copy of the (scaled, canonical) constraint matrix used
    /// for refactorization — the working tableau accumulates roundoff
    /// over pivots.
    orig: Matrix,
    /// Pristine right-hand side of the scaled canonical system.
    orig_rhs: Vec<f64>,
    iterations: usize,
    /// Successful refactorizations performed on this tableau.
    refactorizations: usize,
    /// Pivots since the last refactorization.
    pivots_since_refactor: usize,
    /// Tableau-entry magnitude above which we refactorize (error
    /// amplification guard), derived from the pristine system's scale.
    growth_limit: f64,
    /// Refactorize unconditionally after this many pivots.
    refactor_every: usize,
}

/// Refactorize after this many pivots to bound tableau drift.
const REFACTOR_EVERY: usize = 100;

enum StepOutcome {
    Optimal,
    Unbounded,
    Progress { degenerate: bool },
}

impl Tableau {
    /// Build the initial tableau with slack basis where possible and
    /// artificials elsewhere.
    fn build(p: &LpProblem) -> Self {
        let m = p.num_constraints();
        let n = p.num_vars();
        let n_slack = p
            .constraints
            .iter()
            .filter(|c| c.relation != Relation::Eq)
            .count();

        // Column layout: [structural | slacks | artificials].
        let mut lower: Vec<f64> = p.vars.iter().map(|v| v.lower).collect();
        let mut upper: Vec<f64> = p.vars.iter().map(|v| v.upper).collect();
        lower.extend(std::iter::repeat_n(0.0, n_slack));
        upper.extend(std::iter::repeat_n(f64::INFINITY, n_slack));

        // Nonbasic starting point: finite lower bound preferred, then
        // finite upper, else 0 (free).
        let mut status: Vec<NbStatus> = Vec::with_capacity(n + n_slack);
        let mut xval: Vec<f64> = Vec::with_capacity(n + n_slack);
        for j in 0..n + n_slack {
            if lower[j].is_finite() {
                status.push(NbStatus::AtLower);
                xval.push(lower[j]);
            } else if upper[j].is_finite() {
                status.push(NbStatus::AtUpper);
                xval.push(upper[j]);
            } else {
                status.push(NbStatus::Free);
                xval.push(0.0);
            }
        }

        // Assemble rows in canonical form (slack coefficient +1):
        // Le:  lhs + s = rhs
        // Ge: -lhs + s = -rhs
        // Eq:  lhs     = rhs
        struct Row {
            coeffs: Vec<(usize, f64)>,
            rhs: f64,
            slack: Option<(usize, f64)>,
        }
        let mut rows: Vec<Row> = Vec::with_capacity(m);
        let mut next_slack = n;
        for c in &p.constraints {
            let sign = if c.relation == Relation::Ge {
                -1.0
            } else {
                1.0
            };
            let mut coeffs: Vec<(usize, f64)> = c
                .terms
                .iter()
                .map(|(v, co)| (v.index(), sign * co))
                .collect();
            let slack = if c.relation == Relation::Eq {
                None
            } else {
                let s = next_slack;
                next_slack += 1;
                coeffs.push((s, 1.0));
                // Original-row slack coefficient: +1 for Le, -1 for Ge
                // (because the Ge row was negated).
                Some((s, sign))
            };
            rows.push(Row {
                coeffs,
                rhs: sign * c.rhs,
                slack,
            });
        }

        // Residual of each row at the nonbasic starting point decides
        // whether the slack can be the initial basic variable.
        let mut need_art: Vec<bool> = vec![false; m];
        let mut residual: Vec<f64> = vec![0.0; m];
        for (i, row) in rows.iter().enumerate() {
            let mut r = row.rhs;
            for &(j, a) in &row.coeffs {
                r -= a * xval[j];
            }
            residual[i] = r;
            match row.slack {
                // Slack becomes basic at `xval_s + r`; needs to stay >= 0.
                Some((s, _)) => need_art[i] = xval[s] + r < 0.0,
                None => need_art[i] = true,
            }
        }
        let n_art = need_art.iter().filter(|&&b| b).count();
        let art_start = n + n_slack;
        let ncols = art_start + n_art;
        lower.extend(std::iter::repeat_n(0.0, n_art));
        upper.extend(std::iter::repeat_n(f64::INFINITY, n_art));
        status.extend(std::iter::repeat_n(NbStatus::AtLower, n_art));
        xval.extend(std::iter::repeat_n(0.0, n_art));

        let mut t = Matrix::zeros(m, ncols);
        let mut basis = vec![0usize; m];
        let mut xb = vec![0.0; m];
        let mut row_scale = vec![1.0; m];
        let mut row_slack = vec![None; m];
        let mut next_art = art_start;
        for (i, row) in rows.iter().enumerate() {
            row_slack[i] = row.slack;
            if !need_art[i] {
                // Slack basis; row is already canonical.
                for &(j, a) in &row.coeffs {
                    t[(i, j)] = a;
                }
                // cubis:allow(NUM02): infallible by construction —
                // `need_art[i]` is false exactly when this row got a slack.
                let (s, _) = row.slack.expect("slack-basic row must have a slack");
                basis[i] = s;
                xb[i] = xval[s] + residual[i];
                status[s] = NbStatus::Basic;
            } else {
                // Scale the row so the residual is nonnegative, then give
                // it an artificial (+1 column) basic at that residual.
                let scale = if residual[i] < 0.0 { -1.0 } else { 1.0 };
                row_scale[i] = scale;
                for &(j, a) in &row.coeffs {
                    t[(i, j)] = scale * a;
                }
                let a = next_art;
                next_art += 1;
                t[(i, a)] = 1.0;
                basis[i] = a;
                xb[i] = scale * residual[i];
                status[a] = NbStatus::Basic;
            }
        }

        let orig = t.clone();
        let orig_rhs: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, row)| row_scale[i] * row.rhs)
            .collect();
        Self {
            t,
            xb,
            basis,
            status,
            xval,
            lower,
            upper,
            cost: vec![0.0; ncols],
            n_struct: n,
            art_start,
            row_scale,
            row_slack,
            growth_limit: orig.max_abs().max(1.0) * 1e6,
            orig,
            orig_rhs,
            iterations: 0,
            refactorizations: 0,
            pivots_since_refactor: 0,
            refactor_every: REFACTOR_EVERY,
        }
    }

    /// Switch to conservative numerics: refactorize every few pivots and
    /// treat even mild tableau growth as a trigger. Used as a fallback
    /// when the default path breaks down on an ill-conditioned instance
    /// (the accuracy of the tableau is then bounded by ~16 pivots of
    /// drift, at ~10–40x the per-pivot cost).
    fn make_safe(&mut self) {
        self.refactor_every = 16;
        self.growth_limit = self.orig.max_abs().max(1.0) * 1e3;
    }

    /// Rebuild the tableau and basic values from the pristine system:
    /// `T = B⁻¹·A`, `x_B = B⁻¹(b − N·x_N)`. Bounds the roundoff that
    /// in-place pivoting accumulates. Returns `false` (leaving state
    /// untouched) if the basis matrix is numerically singular.
    fn refactorize(&mut self) -> bool {
        let m = self.nrows();
        if m == 0 {
            return true;
        }
        let Some(lu) = self.basis_lu() else {
            return false;
        };
        self.xb = lu.solve(&self.nonbasic_adjusted_rhs());
        // T column-by-column: B⁻¹·a_j.
        let ncols = self.ncols();
        let mut t = Matrix::zeros(m, ncols);
        let mut col_buf = vec![0.0; m];
        for j in 0..ncols {
            for r in 0..m {
                col_buf[r] = self.orig[(r, j)];
            }
            let solved = lu.solve(&col_buf);
            for r in 0..m {
                t[(r, j)] = solved[r];
            }
        }
        self.t = t;
        self.pivots_since_refactor = 0;
        self.refactorizations += 1;
        true
    }

    /// Cheap final polish: recompute only the basic values from the
    /// pristine system (`x_B = B⁻¹(b − N·x_N)`), leaving the working
    /// tableau untouched. Returns the LU of the basis for reuse (duals).
    fn refresh_basics(&mut self) -> Option<Lu> {
        if self.nrows() == 0 {
            return None;
        }
        let lu = self.basis_lu()?;
        self.xb = lu.solve(&self.nonbasic_adjusted_rhs());
        Some(lu)
    }

    /// LU of the current basis matrix (columns of the pristine system).
    fn basis_lu(&self) -> Option<Lu> {
        let m = self.nrows();
        let mut b = Matrix::zeros(m, m);
        for (col, &bi) in self.basis.iter().enumerate() {
            for r in 0..m {
                b[(r, col)] = self.orig[(r, bi)];
            }
        }
        cubis_linalg::Lu::factor(&b).ok()
    }

    /// `b − Σ_{nonbasic j} a_j·x_j` over the pristine system.
    fn nonbasic_adjusted_rhs(&self) -> Vec<f64> {
        let m = self.nrows();
        let mut rhs = self.orig_rhs.clone();
        for j in 0..self.ncols() {
            if self.status[j] == NbStatus::Basic {
                continue;
            }
            let xj = self.xval[j];
            // cubis:allow(NUM01): exact-zero sparsity skip in the rhs
            // rebuild; tiny nonzeros must still be accumulated.
            if xj != 0.0 {
                for r in 0..m {
                    rhs[r] -= self.orig[(r, j)] * xj;
                }
            }
        }
        rhs
    }

    /// Exact duals of the scaled canonical system: solve `Bᵀy = c_B`.
    fn exact_scaled_duals(&self, lu: &Lu) -> Vec<f64> {
        let cb: Vec<f64> = self.basis.iter().map(|&bi| self.cost[bi]).collect();
        lu.solve_transposed(&cb)
    }

    fn ncols(&self) -> usize {
        self.t.cols()
    }

    fn nrows(&self) -> usize {
        self.t.rows()
    }

    /// Reduced costs `d = c − c_Bᵀ·T` for every column.
    fn reduced_costs(&self) -> Vec<f64> {
        let mut d = self.cost.clone();
        for (i, &bi) in self.basis.iter().enumerate() {
            let cb = self.cost[bi];
            // cubis:allow(NUM01): exact-zero sparsity skip over basic
            // costs; correctness needs every bit-nonzero term.
            if cb != 0.0 {
                cubis_linalg::axpy(-cb, self.t.row(i), &mut d);
            }
        }
        d
    }

    /// One simplex step on the current cost vector.
    fn step(&mut self, opts: &LpOptions, bland: bool) -> StepOutcome {
        // Column infinity-norms of the working tableau, for (a) pricing
        // normalization (approximate steepest edge — damps columns whose
        // tableau image is badly amplified) and (b) relative pivot
        // tolerances in the ratio test.
        let mut col_norm = vec![0.0f64; self.ncols()];
        let fill_norms = |t: &Matrix, col_norm: &mut Vec<f64>| {
            col_norm.iter_mut().for_each(|v| *v = 0.0);
            for r in 0..t.rows() {
                for (j, &v) in t.row(r).iter().enumerate() {
                    let a = v.abs();
                    if a > col_norm[j] {
                        col_norm[j] = a;
                    }
                }
            }
        };
        fill_norms(&self.t, &mut col_norm);
        // Growth guard: entries far above the pristine system's scale
        // signal error amplification — rebuild from scratch.
        if self.pivots_since_refactor > 0
            && col_norm.iter().cloned().fold(0.0f64, f64::max) > self.growth_limit
            && self.refactorize()
        {
            fill_norms(&self.t, &mut col_norm);
        }
        let d = self.reduced_costs();

        // Pricing: pick an entering column that can improve.
        let mut entering: Option<(usize, f64)> = None; // (col, direction)
        let mut best_score = 0.0;
        for j in 0..self.ncols() {
            let (dir, viol) = match self.status[j] {
                NbStatus::Basic => continue,
                NbStatus::AtLower => (1.0, -d[j]),
                NbStatus::AtUpper => (-1.0, d[j]),
                NbStatus::Free => {
                    if d[j] < 0.0 {
                        (1.0, -d[j])
                    } else {
                        (-1.0, d[j])
                    }
                }
            };
            if viol <= opts.opt_tol {
                continue;
            }
            let score = viol / col_norm[j].max(1.0);
            if entering.is_none() || score > best_score {
                entering = Some((j, dir));
                if bland {
                    break; // Bland: first eligible (smallest index).
                }
                best_score = score;
            }
        }
        let Some((e, dir)) = entering else {
            return StepOutcome::Optimal;
        };
        // Pivot eligibility threshold for this column: absolute floor
        // plus a relative guard against treating amplification noise as
        // a real coefficient.
        let piv_thresh = opts.piv_tol.max(1e-7 * col_norm[e]);

        // Ratio test (Harris-style two-pass): pass 1 finds the tightest
        // step with a small feasibility relaxation; pass 2 picks, among
        // the rows still blocking within that relaxed step, the one with
        // the **largest pivot magnitude**. Without this, chains of
        // pivots on small-but-admissible elements (e.g. the 1/K
        // fill-order coefficients of the CUBIS MILPs) amplify the
        // tableau geometrically and destroy feasibility.
        let width = self.upper[e] - self.lower[e]; // may be inf
        let feas_relax = 1e-9;
        let strict_cap = |i: usize, g: f64, relax: f64| -> Option<f64> {
            let bi = self.basis[i];
            // Basic value moves by −Δ·g; find the bound it hits.
            let cap = if g > 0.0 {
                let lb = self.lower[bi];
                if !lb.is_finite() {
                    return None;
                }
                (self.xb[i] - (lb - relax)) / g
            } else {
                let ub = self.upper[bi];
                if !ub.is_finite() {
                    return None;
                }
                (self.xb[i] - (ub + relax)) / g
            };
            Some(cap.max(0.0))
        };

        // Pass 1: relaxed limit.
        let mut delta_limit = width;
        for i in 0..self.nrows() {
            let g = dir * self.t[(i, e)];
            if g.abs() <= piv_thresh {
                continue;
            }
            if let Some(cap) = strict_cap(i, g, feas_relax) {
                delta_limit = delta_limit.min(cap);
            }
        }
        if !delta_limit.is_finite() {
            return StepOutcome::Unbounded;
        }

        // Pass 2: choose the leaving row. Bland mode keeps the exact
        // smallest-index rule (anti-cycling); otherwise maximize |pivot|
        // among rows blocking within the relaxed limit.
        let mut leave: Option<(usize, f64, f64)> = None; // (row, |pivot|, cap)
        for i in 0..self.nrows() {
            let g = dir * self.t[(i, e)];
            if g.abs() <= piv_thresh {
                continue;
            }
            let Some(cap) = strict_cap(i, g, 0.0) else {
                continue;
            };
            if cap > delta_limit + 1e-30 {
                continue;
            }
            let take = match &leave {
                None => true,
                Some((li, mag, lcap)) => {
                    if bland {
                        // Smallest basic index among minimal caps.
                        cap < lcap - 1e-12
                            || (cap < lcap + 1e-12 && self.basis[i] < self.basis[*li])
                    } else {
                        g.abs() > *mag
                    }
                }
            };
            if take {
                leave = Some((i, g.abs(), cap));
            }
        }
        let best_delta = match &leave {
            // Entering variable hits its other bound before any basic
            // variable blocks within the relaxed limit.
            None => width,
            Some((_, _, cap)) => *cap,
        };
        debug_assert!(best_delta.is_finite());
        let leave = leave.map(|(i, mag, _)| (i, mag));

        let degenerate = best_delta <= opts.piv_tol;
        match leave {
            // Bound flip: the entering variable crosses to its other
            // bound before any basic variable hits one.
            None => {
                debug_assert!(width.is_finite());
                for i in 0..self.nrows() {
                    let g = self.t[(i, e)];
                    self.xb[i] -= dir * best_delta * g;
                }
                self.status[e] = match self.status[e] {
                    NbStatus::AtLower => NbStatus::AtUpper,
                    NbStatus::AtUpper => NbStatus::AtLower,
                    other => other,
                };
                self.xval[e] = if self.status[e] == NbStatus::AtUpper {
                    self.upper[e]
                } else {
                    self.lower[e]
                };
                StepOutcome::Progress { degenerate }
            }
            Some((r, _)) => {
                // leave == Some implies some row cap was strictly below the
                // bound width, so best_delta is that cap.
                let delta = best_delta;
                let entering_value = self.xval[e] + dir * delta;
                // Update basic values.
                for i in 0..self.nrows() {
                    if i != r {
                        self.xb[i] -= dir * delta * self.t[(i, e)];
                    }
                }
                // Leaving variable exits at the bound it reached.
                let lv = self.basis[r];
                let g = dir * self.t[(r, e)];
                if g > 0.0 {
                    self.status[lv] = NbStatus::AtLower;
                    self.xval[lv] = self.lower[lv];
                } else {
                    self.status[lv] = NbStatus::AtUpper;
                    self.xval[lv] = self.upper[lv];
                }
                // Pivot the tableau on (r, e).
                let piv = self.t[(r, e)];
                debug_assert!(piv.abs() > opts.piv_tol);
                let inv = 1.0 / piv;
                cubis_linalg::scale(inv, self.t.row_mut(r));
                for i in 0..self.nrows() {
                    if i == r {
                        continue;
                    }
                    let factor = self.t[(i, e)];
                    // cubis:allow(NUM01): exact-zero pivot-column skip;
                    // elimination must apply any bit-nonzero factor.
                    if factor != 0.0 {
                        let (prow, irow) = self.t.two_rows_mut(r, i);
                        cubis_linalg::axpy(-factor, prow, irow);
                    }
                }
                self.basis[r] = e;
                self.status[e] = NbStatus::Basic;
                self.xb[r] = entering_value;
                self.pivots_since_refactor += 1;
                // High-amplification pivots (pivot element small relative
                // to its column) multiply existing roundoff by up to
                // colmax/|piv|; a single such pivot can silently corrupt
                // the tableau beyond repair — rebuild it exactly right
                // away so the *next* ratio test sees true coefficients.
                if col_norm[e] / piv.abs() > 1e5 {
                    self.refactorize();
                }
                StepOutcome::Progress { degenerate }
            }
        }
    }

    /// Residual of the pristine system at the current point plus bound
    /// violations of basic variables (diagnostic; O(m·n)).
    #[allow(dead_code)]
    fn true_violation(&self) -> f64 {
        let x = self.values();
        let mut worst = 0.0f64;
        for r in 0..self.nrows() {
            let lhs = cubis_linalg::dot(self.orig.row(r), &x);
            worst = worst.max((lhs - self.orig_rhs[r]).abs());
        }
        for (i, &bi) in self.basis.iter().enumerate() {
            worst = worst
                .max(self.lower[bi] - self.xb[i])
                .max(self.xb[i] - self.upper[bi]);
        }
        worst
    }

    /// Run the simplex loop on the current cost vector until optimal,
    /// unbounded, or the iteration budget is exhausted.
    fn optimize(&mut self, opts: &LpOptions, max_iters: usize) -> LpStatus {
        let mut degen_run = 0usize;
        loop {
            if self.iterations >= max_iters {
                return LpStatus::IterationLimit;
            }
            self.iterations += 1;
            let bland = degen_run >= opts.bland_after;
            match self.step(opts, bland) {
                StepOutcome::Optimal => return LpStatus::Optimal,
                StepOutcome::Unbounded => return LpStatus::Unbounded,
                StepOutcome::Progress { degenerate } => {
                    if degenerate {
                        degen_run += 1;
                    } else {
                        degen_run = 0;
                    }
                    if self.pivots_since_refactor >= self.refactor_every {
                        self.refactorize();
                    }
                }
            }
        }
    }

    /// Current value of every column (basic or at bound).
    fn values(&self) -> Vec<f64> {
        let mut x = self.xval.clone();
        for (i, &bi) in self.basis.iter().enumerate() {
            x[bi] = self.xb[i];
        }
        x
    }

    /// Objective value under the current cost vector.
    fn objective(&self) -> f64 {
        let x = self.values();
        cubis_linalg::dot(&self.cost, &x)
    }
}

/// Solve a linear program.
///
/// Returns `Err` only on numerical breakdown; infeasibility, unboundedness
/// and iteration limits are reported through [`LpStatus`]. Instances on
/// which the default pivoting drifts (rare, ill-conditioned bases) are
/// retried once in a conservative mode with frequent refactorization
/// before an error is surfaced.
pub fn solve(p: &LpProblem, opts: &LpOptions) -> Result<LpSolution, LpError> {
    let _span = opts.recorder.span("lp.solve");
    let out = match solve_once(p, opts, false) {
        Err(LpError::Numerical { .. }) => solve_once(p, opts, true),
        other => other,
    };
    if opts.recorder.enabled() {
        opts.recorder.counter("lp.solves", 1);
        if let Ok(sol) = &out {
            opts.recorder.counter("lp.pivots", sol.iterations as u64);
            opts.recorder
                .counter("lp.refactorizations", sol.refactorizations as u64);
        }
    }
    out
}

fn solve_once(p: &LpProblem, opts: &LpOptions, safe: bool) -> Result<LpSolution, LpError> {
    let mut tab = Tableau::build(p);
    if safe {
        tab.make_safe();
    }
    let m = tab.nrows();
    let ncols = tab.ncols();
    let max_iters = opts.max_iterations.unwrap_or(50 * (m + ncols) + 1000);

    // ---- Phase 1: drive artificials to zero. ----
    if tab.art_start < ncols {
        for j in tab.art_start..ncols {
            tab.cost[j] = 1.0;
        }
        let status = tab.optimize(opts, max_iters);
        match status {
            LpStatus::IterationLimit => {
                return Ok(empty_solution(p, LpStatus::IterationLimit, &tab))
            }
            LpStatus::Unbounded => {
                // Phase-1 objective is bounded below by 0; unbounded here
                // means numerical trouble.
                return Err(LpError::Numerical {
                    violation: f64::INFINITY,
                });
            }
            LpStatus::Optimal => {}
            LpStatus::Infeasible => {
                // The phase-1 auxiliary problem is feasible by
                // construction (artificials give a basic point), so this
                // status can only arise from numerical breakdown.
                return Err(LpError::Numerical {
                    violation: f64::INFINITY,
                });
            }
        }
        if tab.objective() > opts.feas_tol {
            return Ok(empty_solution(p, LpStatus::Infeasible, &tab));
        }
        // Freeze artificials at zero so phase 2 cannot reuse them.
        for j in tab.art_start..ncols {
            tab.cost[j] = 0.0;
            tab.lower[j] = 0.0;
            tab.upper[j] = 0.0;
            if tab.status[j] != NbStatus::Basic {
                tab.status[j] = NbStatus::AtLower;
                tab.xval[j] = 0.0;
            }
        }
        // Pivot out any basic artificial (degenerate pivots); rows where
        // that is impossible are redundant and keep a frozen artificial.
        // Pivot choice matters numerically even here: take the largest
        // eligible |element| in the row (a near-zero pivot amplifies the
        // whole tableau by its reciprocal), and skip rows whose best
        // pivot is numerically noise — the frozen artificial is harmless.
        let mut pivoted_out = false;
        for r in 0..m {
            let bi = tab.basis[r];
            if bi < tab.art_start {
                continue;
            }
            let row_norm = cubis_linalg::inf_norm(tab.t.row(r)).max(1.0);
            let mut pivot_col = None;
            let mut best_mag = (1e-7 * row_norm).max(opts.piv_tol);
            for j in 0..tab.art_start {
                let mag = tab.t[(r, j)].abs();
                if tab.status[j] != NbStatus::Basic && mag > best_mag {
                    pivot_col = Some(j);
                    best_mag = mag;
                }
            }
            if let Some(j) = pivot_col {
                pivoted_out = true;
                // Degenerate pivot: basic artificial sits at ~0, so the
                // entering variable keeps its current (bound) value.
                let entering_value = tab.xval[j];
                let piv = tab.t[(r, j)];
                let inv = 1.0 / piv;
                cubis_linalg::scale(inv, tab.t.row_mut(r));
                for i in 0..m {
                    if i == r {
                        continue;
                    }
                    let factor = tab.t[(i, j)];
                    // cubis:allow(NUM01): exact-zero pivot-column skip,
                    // same invariant as Tableau::pivot above.
                    if factor != 0.0 {
                        let (prow, irow) = tab.t.two_rows_mut(r, i);
                        cubis_linalg::axpy(-factor, prow, irow);
                    }
                }
                tab.status[bi] = NbStatus::AtLower;
                tab.xval[bi] = 0.0;
                tab.basis[r] = j;
                tab.status[j] = NbStatus::Basic;
                tab.xb[r] = entering_value;
            }
        }
        // The forced pivots above may be arbitrarily unbalanced; start
        // phase 2 from an exactly rebuilt tableau.
        if pivoted_out {
            tab.refactorize();
        }
    }

    // ---- Phase 2: real objective (internal minimization). ----
    let flip = if p.sense() == Sense::Maximize {
        -1.0
    } else {
        1.0
    };
    for j in 0..ncols {
        tab.cost[j] = 0.0;
    }
    for (j, v) in p.vars.iter().enumerate() {
        tab.cost[j] = flip * v.obj;
    }
    let status = tab.optimize(opts, max_iters);
    match status {
        LpStatus::IterationLimit => {
            return Ok(empty_solution(p, LpStatus::IterationLimit, &tab))
        }
        LpStatus::Unbounded => return Ok(empty_solution(p, LpStatus::Unbounded, &tab)),
        LpStatus::Optimal => {}
        LpStatus::Infeasible => {
            // Phase 2 starts from the feasible basis phase 1 certified;
            // an infeasible report here means the tableau lost that
            // invariant to roundoff.
            return Err(LpError::Numerical {
                violation: f64::INFINITY,
            });
        }
    }

    // Final polish: rebuild basic values from the pristine system so the
    // answer does not carry accumulated pivot roundoff; reuse the basis
    // factorization for exact duals below.
    let final_lu = tab.refresh_basics();
    let all = tab.values();
    let x: Vec<f64> = all[..tab.n_struct].to_vec();
    // Accept roundoff proportional to the instance's magnitude: a 1e-5
    // absolute residual means something different on a row with rhs 128
    // than on one with rhs 1.
    let scale = problem_scale(p);
    let violation = p.max_violation(&clamp_to_bounds(p, &x));
    if violation > 1e-5 * scale {
        if std::env::var("CUBIS_LP_DUMP").is_ok() {
            let _ = std::fs::write("/tmp/fail_lp.txt", p.dump());
        }
        return Err(LpError::Numerical { violation });
    }
    let x = clamp_to_bounds(p, &x);
    let objective = p.objective_value(&x);

    // Recover duals exactly from the final basis: y′ solves Bᵀy′ = c_B
    // over the *scaled canonical* system. Tableau row i equals
    // ρ_i × (original row i) with ρ_i = sign_i · scale_i, where sign_i
    // is the Ge-negation (recorded as the original slack coefficient σ)
    // and scale_i the artificial-row normalization; the original-row
    // dual is then y_i = ρ_i · y′_i.
    let mut duals = vec![0.0; m];
    if let Some(lu) = &final_lu {
        let y_scaled = tab.exact_scaled_duals(lu);
        for i in 0..m {
            let sign = tab.row_slack[i].map_or(1.0, |(_, sigma)| sigma);
            duals[i] = flip * sign * tab.row_scale[i] * y_scaled[i];
        }
    }

    Ok(LpSolution {
        status: LpStatus::Optimal,
        objective,
        x,
        duals,
        iterations: tab.iterations,
        refactorizations: tab.refactorizations,
    })
}

/// Clamp a solution onto variable bounds (sub-tolerance cleanup only).
fn clamp_to_bounds(p: &LpProblem, x: &[f64]) -> Vec<f64> {
    x.iter()
        .enumerate()
        .map(|(j, &v)| {
            let (l, u) = p.var_bounds(crate::model::VarId(j));
            v.clamp(l.min(u), u)
        })
        .collect()
}

/// Magnitude of an instance: `max(1, |coefficients|, |rhs|)`.
fn problem_scale(p: &LpProblem) -> f64 {
    let mut scale = 1.0f64;
    for ci in 0..p.num_constraints() {
        let (terms, _, rhs) = p.constraint(ci);
        scale = scale.max(rhs.abs());
        for &(_, c) in terms {
            scale = scale.max(c.abs());
        }
    }
    scale
}

fn empty_solution(p: &LpProblem, status: LpStatus, tab: &Tableau) -> LpSolution {
    LpSolution {
        status,
        objective: f64::NAN,
        x: vec![f64::NAN; p.num_vars()],
        duals: vec![f64::NAN; p.num_constraints()],
        iterations: tab.iterations,
        refactorizations: tab.refactorizations,
    }
}
