//! Regression: a T = 6, K = 32 node LP where the phase-1→2 artificial
//! pivot-out used to pick a near-zero pivot, amplifying the tableau by
//! ~1e7 and corrupting phase 2. Captured via CUBIS_LP_DUMP.

use cubis_lp::{parse_dump, solve, LpOptions, LpStatus};

#[test]
fn artificial_pivot_out_is_stable() {
    let p = parse_dump(include_str!("data_fail_lp_4.txt")).expect("parse dump");
    let sol = solve(&p, &LpOptions::default()).expect("no numerical breakdown");
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(p.max_violation(&sol.x) < 1e-6);
}
